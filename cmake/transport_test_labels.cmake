# Included by CTest (TEST_INCLUDE_FILES) after the gtest discovery file
# for dagmx_transport_tests, which exports the discovered test names in
# dagmx_transport_tests_TESTS. Multi-label lists cannot be forwarded
# through gtest_discover_tests(PROPERTIES LABELS ...) — the semicolon is
# split at several expansion layers before reaching set_tests_properties
# — so the second label is applied here, where quoting works.
foreach(dagmx_transport_test ${dagmx_transport_tests_TESTS})
  set_tests_properties(${dagmx_transport_test}
                       PROPERTIES LABELS "fast;transport")
endforeach()
unset(dagmx_transport_test)
