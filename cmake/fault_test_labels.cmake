# Included by CTest (TEST_INCLUDE_FILES) after the gtest discovery file
# for dagmx_fault_tests, which exports the discovered test names in
# dagmx_fault_tests_TESTS. Multi-label lists cannot be forwarded through
# gtest_discover_tests(PROPERTIES LABELS ...) — the semicolon is split at
# several expansion layers before reaching set_tests_properties — so the
# second label is applied here, where quoting works.
foreach(dagmx_fault_test ${dagmx_fault_tests_TESTS})
  set_tests_properties(${dagmx_fault_test} PROPERTIES LABELS "fast;fault")
endforeach()
unset(dagmx_fault_test)
