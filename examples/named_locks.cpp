// A multi-resource lock service: worker threads on N nodes update a set
// of named bank accounts, each account protected by its own distributed
// lock (one Neilsen DAG protocol instance per account, all carried by the
// same N mailbox threads). Transfers lock two accounts in a global order
// — per-account exclusivity makes every balance transfer atomic, and the
// conserved total is the arithmetic proof.
//
//   $ ./named_locks [nodes] [accounts] [transfers]
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "common/rng.hpp"
#include "service/threaded_lock_space.hpp"

int main(int argc, char** argv) {
  using namespace dmx;
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 6;
  const int accounts = argc > 2 ? std::atoi(argv[2]) : 16;
  const int transfers = argc > 3 ? std::atoi(argv[3]) : 400;
  const long long initial_balance = 1000;

  service::ThreadedLockSpaceConfig config;
  config.n = nodes;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  for (int i = 0; i < accounts; ++i) {
    config.resources.push_back("accounts/" + std::to_string(i));
  }
  service::ThreadedLockSpace space(std::move(config));

  // Balances are protected only by the named distributed locks.
  std::vector<long long> balance(static_cast<std::size_t>(accounts),
                                 initial_balance);

  std::vector<std::thread> workers;
  for (NodeId v = 1; v <= nodes; ++v) {
    workers.emplace_back([&, v] {
      Rng rng(static_cast<std::uint64_t>(v) * 7919);
      for (int t = 0; t < transfers; ++t) {
        auto a = static_cast<ResourceId>(
            rng.uniform_int(0, accounts - 1));
        auto b = static_cast<ResourceId>(
            rng.uniform_int(0, accounts - 2));
        if (b >= a) ++b;          // two distinct accounts
        if (b < a) std::swap(a, b);  // global lock order: no deadlock
        service::ScopedLock first(space, a, v);
        service::ScopedLock second(space, b, v);
        const long long amount = rng.uniform_int(1, 50);
        balance[static_cast<std::size_t>(a)] -= amount;
        balance[static_cast<std::size_t>(b)] += amount;
      }
    });
  }
  for (auto& worker : workers) worker.join();

  long long total = 0;
  for (const long long b : balance) total += b;
  const long long expected =
      static_cast<long long>(accounts) * initial_balance;

  std::cout << "nodes: " << nodes << ", accounts: " << accounts
            << ", transfers/node: " << transfers
            << "\ncritical sections served: " << space.total_entries()
            << " across " << space.resource_count() << " named locks"
            << "\ntotal balance: " << total << " (expected " << expected
            << ") "
            << (total == expected ? "— conserved, locks held"
                                  : "— MONEY LEAKED!")
            << "\n";
  if (auto error = space.first_error()) {
    std::cout << "service error: " << *error << "\n";
    return 1;
  }
  return total == expected ? 0 : 1;
}
