// A real multi-threaded lock service: N worker threads (one per node)
// increment a shared, deliberately unsynchronized counter under a
// DistributedMutex backed by the Neilsen DAG protocol. Lost updates would
// make the final count fall short — run it and check the arithmetic.
//
//   $ ./lock_service [workers] [increments]
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "runtime/lock_cluster.hpp"
#include "topology/tree.hpp"

int main(int argc, char** argv) {
  using namespace dmx;
  const int workers = argc > 1 ? std::atoi(argv[1]) : 8;
  const int increments = argc > 2 ? std::atoi(argv[2]) : 250;

  runtime::LockClusterConfig config;
  config.n = workers;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::star(workers, 1);
  config.jitter_us = 20;  // shake the thread schedules a little
  runtime::LockCluster cluster(baselines::algorithm_by_name("Neilsen"),
                               std::move(config));

  long long counter = 0;  // protected only by the distributed mutex
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (NodeId v = 1; v <= workers; ++v) {
    threads.emplace_back([&cluster, &counter, increments, v] {
      runtime::DistributedMutex mutex = cluster.mutex(v);
      for (int i = 0; i < increments; ++i) {
        std::lock_guard<runtime::DistributedMutex> guard(mutex);
        ++counter;  // the critical section
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const long long expected =
      static_cast<long long>(workers) * increments;
  std::cout << "workers: " << workers << ", increments each: " << increments
            << "\ncounter: " << counter << " (expected " << expected << ") "
            << (counter == expected ? "— mutual exclusion held"
                                    : "— LOST UPDATES!")
            << "\ncritical sections served: " << cluster.total_entries()
            << "\n";
  if (auto error = cluster.first_error()) {
    std::cout << "protocol error: " << *error << "\n";
    return 1;
  }
  return counter == expected ? 0 : 1;
}
