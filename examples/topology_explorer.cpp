// Topology explorer: how does the choice of logical structure drive the
// cost of the Neilsen algorithm? For each topology this prints diameter,
// the paper's worst-case bound D+1, the measured worst case, the measured
// uniform average, and contended throughput figures — the ablation
// DESIGN.md calls out for the paper's "best topology" claim (Figure 8).
//
//   $ ./topology_explorer [n]
#include <cstdlib>
#include <iostream>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "harness/probe.hpp"
#include "metrics/table.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace {

using namespace dmx;

topology::Tree make(const std::string& kind, int n) {
  if (kind == "line") return topology::Tree::line(n);
  if (kind == "star") return topology::Tree::star(n, 1);
  if (kind == "kary2") return topology::Tree::kary(n, 2);
  if (kind == "kary3") return topology::Tree::kary(n, 3);
  if (kind == "radiating") return topology::Tree::radiating_star(n, 4);
  return topology::Tree::random_tree(n, 99);
}

std::uint64_t worst_probe(harness::Cluster& cluster) {
  std::uint64_t worst = 0;
  for (NodeId holder = 1; holder <= cluster.size(); ++holder) {
    harness::park_token_at(cluster, holder);
    for (NodeId requester = 1; requester <= cluster.size(); ++requester) {
      worst = std::max(
          worst,
          harness::single_entry_probe(cluster, requester).messages_total);
      harness::park_token_at(cluster, holder);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmx;
  const int n = argc > 1 ? std::atoi(argv[1]) : 13;
  std::cout << "Neilsen algorithm cost vs logical topology, N = " << n
            << "\n\n";

  metrics::Table table({"topology", "D", "worst (D+1)", "worst measured",
                        "avg measured", "saturated msgs/entry",
                        "mean wait (ticks)"});
  for (const std::string kind :
       {"line", "star", "kary2", "kary3", "radiating", "random"}) {
    const topology::Tree tree = make(kind, n);

    harness::ClusterConfig config;
    config.n = n;
    config.initial_token_holder = 1;
    config.tree = tree;
    harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                             std::move(config));

    const std::uint64_t worst = worst_probe(cluster);

    std::uint64_t total = 0;
    std::uint64_t probes = 0;
    for (NodeId holder = 1; holder <= n; ++holder) {
      harness::park_token_at(cluster, holder);
      for (NodeId requester = 1; requester <= n; ++requester) {
        total += harness::single_entry_probe(cluster, requester)
                     .messages_total;
        ++probes;
        harness::park_token_at(cluster, holder);
      }
    }
    const double average =
        static_cast<double>(total) / static_cast<double>(probes);

    workload::WorkloadConfig wl;
    wl.target_entries = static_cast<std::uint64_t>(50 * n);
    wl.mean_think_ticks = 0.0;
    wl.hold_lo = wl.hold_hi = 2;
    wl.seed = 23;
    const workload::WorkloadResult result =
        workload::run_workload(cluster, wl);

    table.add_row({kind, std::to_string(tree.diameter()),
                   std::to_string(tree.diameter() + 1), std::to_string(worst),
                   metrics::Table::num(average),
                   metrics::Table::num(result.messages_per_entry),
                   metrics::Table::num(result.waiting_ticks.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nThe star (the paper's \"centralized topology\", Figure 8) "
               "minimizes both the worst\ncase and the average — the "
               "paper's best-topology claim.\n";
  return 0;
}
