// Implicit-queue inspector: demonstrates the paper's structural claim
// that "no node or message explicitly holds a waiting queue ... the queue
// may be constructed by observing the states of the nodes". We freeze a
// contended moment, print every node's three variables, deduce the queue
// from the FOLLOW chain, then let the token run and verify the service
// order equals the deduced queue.
//
//   $ ./implicit_queue [n]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/algorithm.hpp"
#include "core/implicit_queue.hpp"
#include "core/invariants.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"

int main(int argc, char** argv) {
  using namespace dmx;
  const int n = argc > 1 ? std::atoi(argv[1]) : 7;

  harness::ClusterConfig config;
  config.n = n;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::random_tree(n, 4);
  harness::Cluster cluster(core::make_neilsen_algorithm(),
                           std::move(config));

  // Node 1 occupies the CS; everyone else queues up behind it.
  cluster.request_cs(1);
  std::vector<NodeId> service_order;
  for (NodeId v = 2; v <= n; ++v) {
    cluster.request_cs(v, [&](NodeId who) { service_order.push_back(who); });
  }
  // Absorb all in-flight requests into FOLLOW variables.
  while (cluster.network().in_flight_count("REQUEST") > 0) {
    cluster.simulator().step();
  }

  std::cout << "frozen state with node 1 in its CS and " << n - 1
            << " waiters:\n\n";
  core::NodeView nodes;
  nodes.push_back(nullptr);
  for (NodeId v = 1; v <= n; ++v) {
    const auto& node = cluster.node_as<core::NeilsenNode>(v);
    nodes.push_back(&node);
    std::cout << "  node " << v << ": " << node.debug_state() << "\n";
  }

  const core::InvariantReport report = core::check_all(nodes, 0);
  std::cout << "\nstructural invariants: "
            << (report.ok ? "OK" : report.violation) << "\n";

  const NodeId holder = core::find_token_holder(nodes);
  const std::vector<NodeId> deduced =
      core::deduce_waiting_queue(nodes, holder);
  std::cout << "deduced implicit queue (from FOLLOW chain, holder " << holder
            << "):";
  for (NodeId v : deduced) std::cout << " " << v;
  std::cout << "\n";

  // Let the token walk the queue.
  cluster.release_cs(1);
  for (std::size_t i = 0; i < deduced.size(); ++i) {
    cluster.run_to_quiescence();
    cluster.release_cs(service_order.back());
  }
  std::cout << "actual service order:                               ";
  for (NodeId v : service_order) std::cout << " " << v;
  std::cout << "\n"
            << (service_order == deduced
                    ? "service order matches the deduced queue\n"
                    : "MISMATCH — protocol bug!\n");
  return service_order == deduced ? 0 : 1;
}
