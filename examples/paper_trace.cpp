// Replays the paper's Figure 6 "Complete Example" step by step, printing
// the same variable tables (HOLDING/NEXT/FOLLOW per node) the thesis
// shows in Figures 6a–6k, plus the implicit queue deduced from the FOLLOW
// chain at the moment the paper calls it out.
//
//   $ ./paper_trace
#include <iomanip>
#include <iostream>

#include "core/algorithm.hpp"
#include "core/implicit_queue.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"

namespace {

using namespace dmx;

void print_table(harness::Cluster& cluster, const std::string& caption) {
  std::cout << "\n" << caption << "\n";
  std::cout << "  I         ";
  for (NodeId v = 1; v <= cluster.size(); ++v) std::cout << std::setw(4) << v;
  std::cout << "\n  HOLDING_I ";
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    std::cout << std::setw(4)
              << (cluster.node_as<core::NeilsenNode>(v).holding() ? 't'
                                                                  : 'f');
  }
  std::cout << "\n  NEXT_I    ";
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    std::cout << std::setw(4) << cluster.node_as<core::NeilsenNode>(v).next();
  }
  std::cout << "\n  FOLLOW_I  ";
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    std::cout << std::setw(4)
              << cluster.node_as<core::NeilsenNode>(v).follow();
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace dmx;
  std::cout << "Figure 6 complete example: 6 nodes, edges "
               "{1-2, 2-3, 3-4, 2-5, 4-6}, token at node 3\n";

  harness::ClusterConfig config;
  config.n = 6;
  config.initial_token_holder = 3;
  config.tree =
      topology::Tree::from_edges(6, {{1, 2}, {2, 3}, {3, 4}, {2, 5}, {4, 6}});
  harness::Cluster cluster(core::make_neilsen_algorithm(), std::move(config));

  print_table(cluster, "Figure 6a: node 3 is holding the token.");

  cluster.request_cs(3);
  cluster.request_cs(2);
  print_table(cluster,
              "Figure 6b: node 3 enters its CS; node 2 sends a request to "
              "node 3.");

  cluster.simulator().run(1);
  print_table(cluster,
              "Figure 6c: node 3 processes the request: FOLLOW_3=2, "
              "NEXT_3=2.");

  cluster.request_cs(1);
  cluster.request_cs(5);
  print_table(cluster, "Figure 6d: nodes 1 and 5 send requests to node 2.");

  cluster.simulator().run(1);
  print_table(cluster,
              "Figure 6e: node 2 processes node 1's request: FOLLOW_2=1, "
              "NEXT_2=1.");

  cluster.simulator().run(1);
  print_table(cluster,
              "Figure 6f: node 2 forwards node 5's request to node 1, "
              "NEXT_2=5.");

  cluster.simulator().run(1);
  print_table(cluster,
              "Figure 6g: node 1 processes REQUEST(2,5): FOLLOW_1=5, "
              "NEXT_1=2.");

  {
    core::NodeView nodes;
    nodes.push_back(nullptr);
    for (NodeId v = 1; v <= 6; ++v) {
      nodes.push_back(&cluster.node_as<core::NeilsenNode>(v));
    }
    const NodeId holder = core::find_token_holder(nodes);
    std::cout << "\nImplicit queue deduced from FOLLOW chain (holder "
              << holder << "):";
    for (NodeId v : core::deduce_waiting_queue(nodes, holder)) {
      std::cout << " " << v;
    }
    std::cout << "   <- the paper's \"2, 1, 5\"\n";
  }

  cluster.release_cs(3);
  print_table(cluster,
              "Figure 6h: node 3 leaves its CS and sends PRIVILEGE to "
              "node 2.");

  cluster.run_to_quiescence();
  cluster.release_cs(2);
  print_table(cluster,
              "Figure 6i: node 2 enters/leaves its CS; PRIVILEGE to node 1.");

  cluster.run_to_quiescence();
  cluster.release_cs(1);
  print_table(cluster,
              "Figure 6j: node 1 enters/leaves its CS; PRIVILEGE to node 5.");

  cluster.run_to_quiescence();
  cluster.release_cs(5);
  print_table(cluster,
              "Figure 6k: node 5 enters/leaves its CS and keeps the token "
              "(HOLDING_5 = t).");

  std::cout << "\ntotal: " << cluster.network().stats().sent("REQUEST")
            << " REQUEST + " << cluster.network().stats().sent("PRIVILEGE")
            << " PRIVILEGE messages for 4 critical-section entries\n";
  return 0;
}
