// Quickstart: five nodes on a star topology run the Neilsen DAG mutual
// exclusion algorithm on the deterministic simulator. Shows the public
// API end to end: build a topology, spin up a cluster, request/hold/
// release critical sections, and read the message counters.
//
//   $ ./quickstart
#include <iostream>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace dmx;

  // 1. A logical topology: node 1 in the center, 2..5 as leaves (the
  //    paper's best topology — worst case three messages per entry).
  harness::ClusterConfig config;
  config.n = 5;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::star(5, 1);

  // 2. A cluster of protocol nodes over the simulated network.
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           std::move(config));

  // 3. Ask node 4 for its critical section; hold it 10 ticks.
  cluster.hold_and_release(4, 10, [](NodeId v) {
    std::cout << "node " << v << " left its critical section\n";
  });
  cluster.run_to_quiescence();

  std::cout << "messages for that entry: "
            << cluster.network().stats().total_sent << " (REQUEST="
            << cluster.network().stats().sent("REQUEST") << ", PRIVILEGE="
            << cluster.network().stats().sent("PRIVILEGE") << ")\n";

  // 4. Run a contended workload: every node loops request -> hold ->
  //    release until 1000 entries complete.
  workload::WorkloadConfig wl;
  wl.target_entries = 1000;
  wl.mean_think_ticks = 20.0;
  wl.hold_lo = 1;
  wl.hold_hi = 5;
  const workload::WorkloadResult result = workload::run_workload(cluster, wl);

  std::cout << "\ncontended run: " << result.entries << " entries, "
            << result.messages << " messages ("
            << result.messages_per_entry << " per entry)\n"
            << "waiting ticks: " << result.waiting_ticks.to_string() << "\n"
            << "sync delay:    " << result.sync_delay_ticks.to_string()
            << "\n";
  return 0;
}
