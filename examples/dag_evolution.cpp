// Watches the DAG evolve: prints the NEXT-edge structure (the arrows of
// the paper's Figures 1/2) after every single simulator event while
// requests travel and invert edges, with the message trace alongside.
//
//   $ ./dag_evolution
#include <iostream>

#include "core/algorithm.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"
#include "trace/trace.hpp"

namespace {

using namespace dmx;

std::string dag(harness::Cluster& cluster) {
  std::vector<const core::NeilsenNode*> nodes;
  nodes.push_back(nullptr);
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    nodes.push_back(&cluster.node_as<core::NeilsenNode>(v));
  }
  return trace::render_dag(nodes);
}

}  // namespace

int main() {
  using namespace dmx;
  std::cout << "Figure 2 scenario: line 1-2-3-4-5-6, token at node 5.\n"
            << "Watch the REQUEST invert edges hop by hop, then the\n"
            << "PRIVILEGE fly straight to the requester.\n\n";

  harness::ClusterConfig config;
  config.n = 6;
  config.initial_token_holder = 5;
  config.tree = topology::Tree::line(6);
  harness::Cluster cluster(core::make_neilsen_algorithm(),
                           std::move(config));
  trace::MessageTrace trace;
  cluster.network().set_observer(&trace);

  std::cout << "initial:            " << dag(cluster) << "\n";

  cluster.request_cs(5);
  std::cout << "5 enters its CS:    " << dag(cluster) << "\n";

  cluster.request_cs(3);
  std::cout << "3 requests:         " << dag(cluster) << "\n";

  while (cluster.simulator().step()) {
    std::cout << "after "
              << (trace.records().empty()
                      ? std::string("event")
                      : trace.records().back().description)
              << " hop:  " << dag(cluster) << "\n";
    if (cluster.is_waiting(3) &&
        cluster.network().in_flight_count() == 0) {
      break;
    }
  }

  cluster.release_cs(5);
  std::cout << "5 releases:         " << dag(cluster) << "\n";
  cluster.run_to_quiescence();
  std::cout << "3 enters its CS:    " << dag(cluster) << "\n";
  cluster.release_cs(3);
  std::cout << "3 releases:         " << dag(cluster) << "\n";

  std::cout << "\nmessage trace (sent / delivered / route / payload):\n"
            << trace.dump();
  return 0;
}
