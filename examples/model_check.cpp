// Exhaustively verifies the Neilsen algorithm's safety and liveness over
// EVERY message/request interleaving of a small configuration — the
// Chapter 5 proofs, machine-checked against the production protocol code.
//
//   $ ./model_check [n] [requests_per_node] [topology: line|star|random]
#include <cstdlib>
#include <iostream>
#include <string>

#include "modelcheck/explorer.hpp"
#include "topology/tree.hpp"

int main(int argc, char** argv) {
  using namespace dmx;
  const int n = argc > 1 ? std::atoi(argv[1]) : 4;
  const int requests = argc > 2 ? std::atoi(argv[2]) : 1;
  const std::string kind = argc > 3 ? argv[3] : "star";

  const topology::Tree tree = kind == "line" ? topology::Tree::line(n)
                              : kind == "random"
                                  ? topology::Tree::random_tree(n, 1)
                                  : topology::Tree::star(n, 1);

  std::cout << "model-checking Neilsen on " << kind << "(" << n << "), "
            << requests << " request(s) per node, all interleavings...\n";

  modelcheck::ExplorerConfig config;
  config.n = n;
  config.initial_token_holder = 1;
  config.tree = &tree;
  config.requests_per_node = requests;
  const modelcheck::ExplorerResult result = modelcheck::explore(config);

  std::cout << "states explored:   " << result.states << "\n"
            << "transitions:       " << result.transitions << "\n"
            << "terminal states:   " << result.terminal_states << "\n";
  if (result.ok) {
    std::cout << "VERIFIED: mutual exclusion, token uniqueness, Lemma 2 "
                 "structure, deadlock- and\nstarvation-freedom hold in "
                 "every reachable state.\n";
    return 0;
  }
  std::cout << "VIOLATION: " << result.violation << "\n";
  for (const auto& action : result.counterexample) {
    std::cout << "  " << action.to_string() << "\n";
  }
  return 1;
}
