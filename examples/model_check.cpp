// Exhaustively verifies a registry algorithm's safety and liveness over
// EVERY message/request interleaving of a small configuration — the
// Chapter 5 proofs, machine-checked against the production protocol code.
// Works for any of the nine registry algorithms.
//
//   $ ./model_check [algorithm] [n] [requests_per_node] [topology: line|star|random]
#include <cstdlib>
#include <iostream>
#include <string>

#include "baselines/registry.hpp"
#include "modelcheck/explorer.hpp"
#include "topology/tree.hpp"

int main(int argc, char** argv) {
  using namespace dmx;
  const std::string name = argc > 1 ? argv[1] : "Neilsen";
  const int n = argc > 2 ? std::atoi(argv[2]) : 4;
  const int requests = argc > 3 ? std::atoi(argv[3]) : 1;
  const std::string kind = argc > 4 ? argv[4] : "star";

  const proto::Algorithm algorithm = baselines::algorithm_by_name(name);
  const topology::Tree tree = kind == "line" ? topology::Tree::line(n)
                              : kind == "random"
                                  ? topology::Tree::random_tree(n, 1)
                                  : topology::Tree::star(n, 1);

  std::cout << "model-checking " << algorithm.name << " on " << kind << "("
            << n << "), " << requests
            << " request(s) per node, all interleavings...\n";

  modelcheck::ExplorerConfig config;
  config.algorithm = &algorithm;
  config.n = n;
  config.initial_token_holder = 1;
  config.tree = &tree;
  config.requests_per_node = requests;
  const modelcheck::ExplorerResult result = modelcheck::explore(config);

  std::cout << "states explored:   " << result.states << "\n"
            << "transitions:       " << result.transitions << "\n"
            << "terminal states:   " << result.terminal_states << "\n";
  if (result.ok) {
    std::cout << "VERIFIED: mutual exclusion"
              << (algorithm.token_based ? ", token uniqueness" : "")
              << ", structural invariants, deadlock- and\n"
                 "starvation-freedom hold in every reachable state.\n";
    return 0;
  }
  std::cout << "VIOLATION: " << result.violation << "\n";
  for (const auto& action : result.counterexample) {
    std::cout << "  " << action.to_string() << "\n";
  }
  for (std::size_t v = 1; v < result.violating_node_states.size(); ++v) {
    std::cout << "  node " << v << ": " << result.violating_node_states[v]
              << "\n";
  }
  return 1;
}
