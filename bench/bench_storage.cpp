// E5 — §6.4 storage overhead.
//
// "Each node maintains three simple variables. A REQUEST message carries
// two integer variables, and a PRIVILEGE message needs no data structure."
// We report, per algorithm, the peak resident protocol state across all
// nodes during a contended run (captured after every event), plus the
// peak payload of the token/grant message and of a REQUEST message.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench_util.hpp"
#include "net/network.hpp"

namespace dmx::bench {
namespace {

struct StorageResult {
  std::size_t peak_node_bytes = 0;
  std::size_t peak_token_payload = 0;
  std::size_t request_payload = 0;
};

/// Observer capturing the largest payload per message kind.
class PayloadObserver final : public net::NetworkObserver {
 public:
  void on_send(const net::Envelope& env) override {
    auto& peak = peak_[std::string(env.message->kind())];
    peak = std::max(peak, env.message->payload_bytes());
  }
  void on_deliver(const net::Envelope&) override {}

  std::size_t peak(const std::string& kind) const {
    auto it = peak_.find(kind);
    return it == peak_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, std::size_t> peak_;
};

StorageResult measure(const proto::Algorithm& algo, int n) {
  harness::Cluster cluster = make_cluster(algo, "star", n, 1, 9);
  PayloadObserver observer;
  cluster.network().set_observer(&observer);

  StorageResult result;
  cluster.set_post_event_hook([&result](harness::Cluster& c) {
    for (NodeId v = 1; v <= c.size(); ++v) {
      result.peak_node_bytes =
          std::max(result.peak_node_bytes, c.node(v).state_bytes());
    }
  });

  workload::WorkloadConfig wl;
  wl.target_entries = static_cast<std::uint64_t>(20 * n);
  wl.mean_think_ticks = 2.0;  // high contention -> long queues
  wl.hold_lo = wl.hold_hi = 3;
  wl.seed = 13;
  workload::run_workload(cluster, wl);

  for (const char* kind : {"PRIVILEGE", "TOKEN", "GRANT", "LOCKED"}) {
    result.peak_token_payload =
        std::max(result.peak_token_payload, observer.peak(kind));
  }
  result.request_payload = observer.peak("REQUEST");
  return result;
}

void run(int n) {
  std::cout << "\nE5 (§6.4): storage overhead under contention, N = " << n
            << "\n\n";
  metrics::Table table({"algorithm", "peak node state (B)",
                        "token/grant payload (B)", "REQUEST payload (B)"});
  for (const auto& algo : baselines::all_algorithms()) {
    const StorageResult r = measure(algo, n);
    table.add_row({algo.name, std::to_string(r.peak_node_bytes),
                   std::to_string(r.peak_token_payload),
                   std::to_string(r.request_payload)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dmx::bench

int main() {
  std::cout << "bench_storage — reproduces the §6.4 storage-overhead "
               "comparison\n";
  for (int n : {10, 50}) {
    dmx::bench::run(n);
  }
  std::cout << "\nShape check: Neilsen keeps O(1) bytes per node (3 scalar "
               "variables) and a\npayload-free token, while queue/array "
               "algorithms grow with N.\n";
  return 0;
}
