// E1 — §6.1 upper-bound comparison.
//
// Reproduces the paper's list of worst-case messages per critical-section
// entry. For every algorithm we measure the worst single-entry cost over
// all (token position, requester) placements on the centralized (star)
// topology — the setting §6.1 quotes "3" for — plus the paper's closed-
// form bound evaluated at the same N. Maekawa's contended worst case
// (the 7*sqrt(N) figure) additionally needs adversarial interleaving, so
// we report both the uncontended probe and the maximum observed per-entry
// cost under a saturated workload.
#include <cmath>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"

namespace dmx::bench {
namespace {

std::string paper_bound(const std::string& name, int n, int diameter) {
  std::ostringstream oss;
  if (name == "Lamport") {
    oss << "3(N-1) = " << 3 * (n - 1);
  } else if (name == "Ricart-Agrawala") {
    oss << "2(N-1) = " << 2 * (n - 1);
  } else if (name == "Carvalho-Roucairol") {
    oss << "0..2(N-1) = 0.." << 2 * (n - 1);
  } else if (name == "Suzuki-Kasami" || name == "Singhal") {
    oss << "N = " << n;
  } else if (name == "Maekawa") {
    oss << "~3..7*sqrt(N) = " << static_cast<int>(3 * std::sqrt(n)) << ".."
        << static_cast<int>(7 * std::sqrt(n));
  } else if (name == "Raymond") {
    oss << "2D = " << 2 * diameter;
  } else if (name == "Neilsen") {
    oss << "D+1 = " << diameter + 1;
  } else if (name == "Central") {
    oss << "3";
  }
  return oss.str();
}

void run(int n) {
  const int diameter = 2;  // star topology
  std::cout << "\nE1 (§6.1): worst-case messages per CS entry, centralized "
               "(star) topology, N = "
            << n << "\n\n";
  metrics::Table table({"algorithm", "paper worst case", "measured worst",
                        "saturated mean"});
  for (const auto& algo : baselines::all_algorithms()) {
    harness::Cluster probe_cluster = make_cluster(algo, "star", n, /*holder=*/2);
    const std::uint64_t worst = worst_case_probe(probe_cluster);

    harness::Cluster load_cluster = make_cluster(algo, "star", n, 2);
    workload::WorkloadConfig wl;
    wl.target_entries = static_cast<std::uint64_t>(40 * n);
    wl.mean_think_ticks = 0.0;
    wl.hold_lo = wl.hold_hi = n;
    wl.seed = 7;
    const workload::WorkloadResult result =
        workload::run_workload(load_cluster, wl);

    table.add_row({algo.name, paper_bound(algo.name, n, diameter),
                   std::to_string(worst),
                   metrics::Table::num(result.messages_per_entry)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dmx::bench

int main() {
  std::cout << "bench_upper_bound — reproduces §6.1 (worst-case message "
               "complexity comparison)\n";
  for (int n : {5, 10, 20}) {
    dmx::bench::run(n);
  }
  std::cout << "\nShape check: Neilsen matches the centralized scheme's 3 "
               "and beats Raymond's 4;\nbroadcast algorithms grow linearly "
               "with N while quorum/tree schemes stay sublinear.\n";
  return 0;
}
