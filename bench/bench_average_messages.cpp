// E3 — §6.2 average bound on the best (centralized/star) topology.
//
// The paper derives, under "each node has an equal likelihood of holding
// the token" and a single outstanding request:
//   Neilsen:      3 - 5/N + 2/N^2   messages per entry,
//   centralized:  3 - 3/N,
// both approaching 3 as N grows. We measure the exact uniform average by
// enumerating every (token position, requester) pair.
#include <iostream>

#include "bench_util.hpp"

namespace dmx::bench {
namespace {

void run() {
  std::cout << "\nE3 (§6.2): average messages per CS entry, star topology, "
               "uniform token position\n\n";
  metrics::Table table({"N", "Neilsen measured", "Neilsen 3-5/N+2/N^2",
                        "Central measured", "Central 3-3/N"});
  for (int n : {3, 5, 10, 20, 50, 100}) {
    harness::Cluster neilsen =
        make_cluster(baselines::algorithm_by_name("Neilsen"), "star", n);
    const double neilsen_measured = average_probe(neilsen);
    const double neilsen_paper =
        3.0 - 5.0 / n + 2.0 / (static_cast<double>(n) * n);

    harness::Cluster central =
        make_cluster(baselines::algorithm_by_name("Central"), "star", n);
    const double central_measured = average_probe(central);
    const double central_paper = 3.0 - 3.0 / n;

    table.add_row({std::to_string(n), metrics::Table::num(neilsen_measured, 4),
                   metrics::Table::num(neilsen_paper, 4),
                   metrics::Table::num(central_measured, 4),
                   metrics::Table::num(central_paper, 4)});
  }
  table.print(std::cout);
  std::cout << "\nBoth columns converge to 3 as N grows — the paper's "
               "headline parity with centralized schemes.\n";
}

}  // namespace
}  // namespace dmx::bench

int main() {
  std::cout << "bench_average_messages — reproduces the §6.2 average-bound "
               "analysis\n";
  dmx::bench::run();
  return 0;
}
