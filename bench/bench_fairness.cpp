// E7 (extension) — fairness beyond starvation freedom.
//
// The paper proves no node waits forever (Theorem 2) but reports no
// fairness numbers. This extension bench quantifies service fairness
// under saturation: Jain's index over per-node entry counts, plus bypass
// statistics (how many later requesters overtake an earlier one). The
// implicit FOLLOW queue serializes requests by arrival at the sink, so
// Neilsen is near-FIFO; the centralized coordinator is exactly FIFO;
// priority-based schemes (Maekawa, Ricart–Agrawala) reorder by timestamp.
#include <iostream>

#include "bench_util.hpp"
#include "harness/delay_analysis.hpp"
#include "metrics/summary.hpp"

namespace dmx::bench {
namespace {

void run(int n) {
  std::cout << "\nE7 (extension): fairness under saturation, star topology, "
               "N = "
            << n << "\n\n";
  metrics::Table table({"algorithm", "Jain index", "mean bypass",
                        "max bypass"});
  for (const auto& algo : baselines::all_algorithms()) {
    harness::Cluster cluster = make_cluster(algo, "star", n, 1, 3);
    workload::WorkloadConfig wl;
    wl.target_entries = static_cast<std::uint64_t>(50 * n);
    wl.mean_think_ticks = 0.0;
    wl.hold_lo = wl.hold_hi = n;
    wl.seed = 29;
    workload::run_workload(cluster, wl);

    std::vector<double> counts =
        harness::entries_per_node(cluster.events(), n);
    counts.erase(counts.begin());
    const metrics::Summary bypasses =
        harness::bypass_counts(cluster.events());
    table.add_row({algo.name,
                   metrics::Table::num(metrics::jain_fairness_index(counts),
                                       4),
                   metrics::Table::num(bypasses.mean()),
                   metrics::Table::num(bypasses.max(), 0)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dmx::bench

int main() {
  std::cout << "bench_fairness — extension experiment: service fairness "
               "(not reported in the paper;\nquantifies the FIFO-ness "
               "implied by the implicit-queue design)\n";
  dmx::bench::run(10);
  return 0;
}
