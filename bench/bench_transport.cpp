// Transport-substrate throughput: real processes over loopback TCP vs
// the in-process threaded runtime, same protocol code.
//
// Each point forks one process per node (the transport test harness),
// brings the TCP mesh up, and saturates the DistributedLockSpace with
// one client per node and zero hold time — every critical-section entry
// therefore pays the full wire cost of its protocol messages (frames
// encoded, queued, epoll-flushed, reassembled, decoded). The paired
// threaded point runs the identical workload shape on ThreadedLockSpace,
// where Context::send is a strand post; the ratio between the two
// columns is the measured price of crossing process boundaries, which
// is the honest denominator for any future wire-level optimisation.
//
// Wall clock is measured in the parent around the whole harness run, so
// fork + rendezvous + mesh bring-up is amortised into the figure; the
// entry counts are large enough that steady-state traffic dominates.
//
//   $ ./bench_transport [out.json]    # optional JSON snapshot path
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "metrics/table.hpp"
#include "service/threaded_lock_space.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/distributed_lock_space.hpp"
#include "transport/process_harness.hpp"

namespace dmx::bench {
namespace {

using namespace std::chrono_literals;

constexpr int kBarrierSlot = 0;  // shared coordination slot, not a resource

std::vector<std::string> resource_names(int resources) {
  std::vector<std::string> names;
  for (int i = 0; i < resources; ++i) {
    names.push_back("bench/shard-" + std::to_string(i));
  }
  return names;
}

struct Point {
  std::string algorithm;
  int nodes;
  int resources;
  std::uint64_t entries;
  double tcp_entries_per_second;
  double threaded_entries_per_second;
};

/// One process per node over loopback TCP; every node hammers every
/// resource round-robin, `per_node` entries each, then quiesces at the
/// shared barrier before the collective shutdown.
double run_tcp(const std::string& algorithm, int nodes, int resources,
               int per_node) {
  const auto names = resource_names(resources);
  const auto started = std::chrono::steady_clock::now();
  const transport::HarnessResult result = transport::ProcessHarness::run(
      nodes,
      [&](NodeId self, const transport::ProcessHarness::Rendezvous& rendezvous,
          transport::SharedWitness& shared) -> int {
        transport::DistributedLockSpaceConfig config;
        config.self = self;
        config.n = nodes;
        config.algorithm = baselines::algorithm_by_name(algorithm);
        config.resources = names;
        transport::DistributedLockSpace space(std::move(config));
        const std::uint16_t port = space.listen();
        const auto ports = rendezvous(port);
        for (NodeId peer = 1; peer < self; ++peer) {
          space.connect(peer, ports[static_cast<std::size_t>(peer)]);
        }
        space.start();
        if (!space.wait_connected(10000ms)) return 2;
        for (int i = 0; i < per_node; ++i) {
          const auto r = static_cast<ResourceId>(i % resources);
          space.lock(r);
          shared.enter(r, self);
          shared.exit(r);
          space.unlock(r);
        }
        shared.slots[kBarrierSlot].fetch_add(1);
        while (shared.slots[kBarrierSlot].load() < nodes) {
          std::this_thread::sleep_for(1ms);
        }
        if (space.first_error().has_value()) return 3;
        // Flight-recorder export: node 1 dumps its run as a Chrome trace
        // (chrome://tracing / Perfetto) when DMX_CHROME_TRACE names a
        // path. One writer is enough — every node records the same event
        // mix (client gate, strand, wire, fault/membership).
        if (self == 1) {
          if (const char* path = std::getenv("DMX_CHROME_TRACE")) {
            std::ofstream trace(path);
            trace << telemetry::FlightRecorder::chrome_trace_json();
          }
        }
        space.shutdown();
        return 0;
      });
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  if (!result.all_ok() || result.witness.violations != 0) {
    std::cerr << "tcp bench point failed (" << algorithm << " n=" << nodes
              << " r=" << resources << ")\n";
    std::exit(1);
  }
  return static_cast<double>(result.witness.entries) / seconds;
}

/// The identical workload shape on the threaded substrate: same node
/// count, one saturated client per node, zero hold.
double run_threaded(const std::string& algorithm, int nodes, int resources,
                    int per_node) {
  service::ThreadedLockSpaceConfig config;
  config.n = nodes;
  config.algorithm = baselines::algorithm_by_name(algorithm);
  config.resources = resource_names(resources);
  service::ThreadedLockSpace space(std::move(config));
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= nodes; ++v) {
    threads.emplace_back([&, v] {
      for (int i = 0; i < per_node; ++i) {
        const auto r = static_cast<ResourceId>(i % resources);
        service::ScopedLock guard(space, r, v);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  if (auto error = space.first_error()) {
    std::cerr << "threaded bench point failed: " << *error << "\n";
    std::exit(1);
  }
  return static_cast<double>(space.total_entries()) / seconds;
}

}  // namespace
}  // namespace dmx::bench

int main(int argc, char** argv) {
  using namespace dmx;
  using dmx::bench::Point;

  std::cout << "bench_transport — DistributedLockSpace (one process per "
               "node, loopback TCP)\nvs ThreadedLockSpace (one process, "
               "strand posts); saturated, zero hold\n\n";

  const int per_node = 1500;
  std::vector<Point> points;
  metrics::Table table({"algorithm", "nodes", "resources", "entries",
                        "tcp entries/s", "threaded entries/s", "tcp/threaded"});
  for (const std::string algorithm : {"Neilsen", "Suzuki-Kasami"}) {
    for (const int resources : {1, 4}) {
      const int nodes = 3;
      const double tcp =
          bench::run_tcp(algorithm, nodes, resources, per_node);
      const double threaded =
          bench::run_threaded(algorithm, nodes, resources, per_node);
      const auto entries =
          static_cast<std::uint64_t>(nodes) * per_node;
      points.push_back({algorithm, nodes, resources, entries, tcp, threaded});
      table.add_row({algorithm, metrics::Table::num(nodes, 0),
                     metrics::Table::num(resources, 0),
                     metrics::Table::num(static_cast<double>(entries), 0),
                     metrics::Table::num(tcp, 0),
                     metrics::Table::num(threaded, 0),
                     metrics::Table::num(tcp / threaded)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: the TCP substrate trades per-entry latency "
               "for process isolation;\nthe ratio column is the wire tax a "
               "future transport optimisation has to beat.\n";

  if (argc > 1) {
    std::ostringstream json;
    json << "{\n  \"transport\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      json << "    {\"algorithm\": \"" << p.algorithm
           << "\", \"nodes\": " << p.nodes
           << ", \"resources\": " << p.resources
           << ", \"entries\": " << p.entries
           << ", \"tcp_entries_per_second\": " << p.tcp_entries_per_second
           << ", \"threaded_entries_per_second\": "
           << p.threaded_entries_per_second << "}"
           << (i + 1 < points.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(argv[1]);
    out << json.str();
    std::cout << "\nwrote " << argv[1] << "\n";
  }
  return 0;
}
