// E6 — §6.2 heavy-demand remark.
//
// "Under heavy demand, the performance is about the same, i.e., at most
// three messages per critical section entry." We sweep offered load
// (mean think time from light to saturation) on the star topology and
// report messages per entry for Neilsen against the closest comparison
// points. Under saturation every Neilsen entry costs at most 3 messages:
// one or two REQUEST hops plus one PRIVILEGE.
#include <iostream>

#include "bench_util.hpp"

namespace dmx::bench {
namespace {

void run(int n) {
  std::cout << "\nE6 (§6.2): messages per CS entry vs offered load, star "
               "topology, N = "
            << n << " (think time in ticks; 0 = saturation)\n\n";
  metrics::Table table({"mean think", "Neilsen", "Central", "Raymond",
                        "Suzuki-Kasami", "Ricart-Agrawala"});
  for (double think : {500.0, 200.0, 100.0, 50.0, 20.0, 5.0, 0.0}) {
    std::vector<std::string> row{metrics::Table::num(think, 0)};
    for (const char* name : {"Neilsen", "Central", "Raymond",
                             "Suzuki-Kasami", "Ricart-Agrawala"}) {
      harness::Cluster cluster =
          make_cluster(baselines::algorithm_by_name(name), "star", n, 2, 3);
      workload::WorkloadConfig wl;
      wl.target_entries = static_cast<std::uint64_t>(60 * n);
      wl.mean_think_ticks = think;
      wl.hold_lo = wl.hold_hi = 2;
      wl.seed = 17;
      const workload::WorkloadResult result =
          workload::run_workload(cluster, wl);
      row.push_back(metrics::Table::num(result.messages_per_entry));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dmx::bench

int main() {
  std::cout << "bench_load_sweep — reproduces the §6.2 heavy-demand claim "
               "(Neilsen stays <= 3 msgs/entry on the star)\n";
  dmx::bench::run(15);
  std::cout << "\nShape check: Neilsen and Central track each other around "
               "~3 and below;\nbroadcast algorithms pay O(N) regardless of "
               "load.\n";
  return 0;
}
