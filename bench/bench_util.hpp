// Shared helpers for the experiment benches (E1–E6 in DESIGN.md).
#pragma once

#include <memory>
#include <string>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "harness/probe.hpp"
#include "metrics/table.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::bench {

inline topology::Tree make_topology(const std::string& kind, int n,
                                    std::uint64_t seed = 1) {
  if (kind == "line") return topology::Tree::line(n);
  if (kind == "star") return topology::Tree::star(n, 1);
  if (kind == "kary3") return topology::Tree::kary(n, 3);
  if (kind == "radiating") {
    return topology::Tree::radiating_star(n, std::max(2, n / 4));
  }
  if (kind == "random") return topology::Tree::random_tree(n, seed);
  DMX_CHECK_MSG(false, "unknown topology kind " << kind);
  return topology::Tree::line(n);
}

inline harness::Cluster make_cluster(const proto::Algorithm& algo,
                                     const std::string& topology_kind, int n,
                                     NodeId holder = 1,
                                     std::uint64_t seed = 1) {
  harness::ClusterConfig config;
  config.n = n;
  // Singhal's staircase initialization pins the initial holder to node 1.
  config.initial_token_holder = algo.name == "Singhal" ? 1 : holder;
  config.tree = make_topology(topology_kind, n, seed);
  config.seed = seed;
  return harness::Cluster(algo, std::move(config));
}

/// Worst measured single-entry cost over every (token position, requester)
/// placement — the empirical counterpart of the §6.1 upper bounds.
inline std::uint64_t worst_case_probe(harness::Cluster& cluster) {
  std::uint64_t worst = 0;
  const bool movable_token = cluster.algorithm().token_based;
  for (NodeId holder = 1; holder <= cluster.size(); ++holder) {
    if (movable_token) {
      harness::park_token_at(cluster, holder);
    } else if (holder > 1) {
      break;  // placement-independent
    }
    for (NodeId requester = 1; requester <= cluster.size(); ++requester) {
      const harness::ProbeResult probe =
          harness::single_entry_probe(cluster, requester);
      worst = std::max(worst, probe.messages_total);
      if (movable_token) harness::park_token_at(cluster, holder);
    }
  }
  return worst;
}

/// Mean single-entry cost over all placements, weighted uniformly — the
/// §6.2 "equal likelihood of holding the token" assumption.
inline double average_probe(harness::Cluster& cluster) {
  std::uint64_t total = 0;
  std::uint64_t count = 0;
  const bool movable_token = cluster.algorithm().token_based;
  const int holders = movable_token ? cluster.size() : 1;
  for (NodeId holder = 1; holder <= holders; ++holder) {
    if (movable_token) harness::park_token_at(cluster, holder);
    for (NodeId requester = 1; requester <= cluster.size(); ++requester) {
      const harness::ProbeResult probe =
          harness::single_entry_probe(cluster, requester);
      total += probe.messages_total;
      ++count;
      if (movable_token) harness::park_token_at(cluster, holder);
    }
  }
  return static_cast<double>(total) / static_cast<double>(count);
}

}  // namespace dmx::bench
