// E4 — §6.3 synchronization delay.
//
// Sequential messages between one node leaving its CS and the next
// (already blocked) node entering. With unit link latency, the tick gap
// equals the message count on the critical path. Paper values:
//   Neilsen 1, Suzuki–Kasami 1, Singhal 1, Raymond <= D, centralized 2.
// CS hold times are >= N ticks so every pending request is enqueued by
// exit — the scenario the paper defines the metric for.
#include <iostream>

#include "bench_util.hpp"

namespace dmx::bench {
namespace {

std::string paper_delay(const std::string& name, int diameter) {
  if (name == "Neilsen" || name == "Suzuki-Kasami" || name == "Singhal") {
    return "1";
  }
  if (name == "Raymond") return "<= D = " + std::to_string(diameter);
  if (name == "Central") return "2";
  if (name == "Maekawa") return "(not stated)";
  return "(not stated)";
}

void run(const std::string& topology_kind, int n) {
  const topology::Tree tree = make_topology(topology_kind, n, 3);
  std::cout << "\nE4 (§6.3): synchronization delay, " << topology_kind
            << " topology, N = " << n << ", D = " << tree.diameter()
            << ", saturated\n\n";
  metrics::Table table(
      {"algorithm", "paper", "measured mean", "measured max"});
  for (const auto& algo : baselines::all_algorithms()) {
    harness::Cluster cluster =
        make_cluster(algo, topology_kind, n, /*holder=*/1, 3);
    workload::WorkloadConfig wl;
    wl.target_entries = static_cast<std::uint64_t>(30 * n);
    wl.mean_think_ticks = 0.0;
    wl.hold_lo = wl.hold_hi = n;
    wl.seed = 11;
    const workload::WorkloadResult result =
        workload::run_workload(cluster, wl);
    table.add_row({algo.name, paper_delay(algo.name, tree.diameter()),
                   metrics::Table::num(result.sync_delay_ticks.mean()),
                   metrics::Table::num(result.sync_delay_ticks.max(), 0)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dmx::bench

int main() {
  std::cout << "bench_sync_delay — reproduces the §6.3 synchronization-"
               "delay comparison\n";
  dmx::bench::run("star", 10);
  dmx::bench::run("line", 10);
  std::cout << "\nShape check: Neilsen's hand-off is a single PRIVILEGE hop "
               "on every topology —\nhalf the centralized scheme's RELEASE+"
               "GRANT and up to D times cheaper than Raymond.\n";
  return 0;
}
