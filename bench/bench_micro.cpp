// M1 — engineering microbenchmarks (google-benchmark): substrate and
// protocol throughput. Not a paper experiment; guards against the
// simulator becoming the bottleneck of the reproduction.
#include <benchmark/benchmark.h>

#include <vector>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<Tick>(i % 97), [&sum] { ++sum; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorScheduleRun)->Arg(1000)->Arg(10000);

// Timer churn: most scheduled events are cancelled before firing (the
// pattern of timeout guards and retry timers). Exercises true O(1)/O(log n)
// cancellation rather than lazy tombstoning.
void BM_SimulatorCancelHeavy(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  std::vector<sim::EventId> ids(events);
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    for (std::size_t i = 0; i < events; ++i) {
      ids[i] = sim.schedule_at(static_cast<Tick>(i % 97),
                               [&fired] { ++fired; });
    }
    // Cancel three quarters; the survivors still fire in order.
    std::size_t cancelled = 0;
    for (std::size_t i = 0; i < events; ++i) {
      if (i % 4 != 0) cancelled += sim.cancel(ids[i]) ? 1 : 0;
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
    benchmark::DoNotOptimize(cancelled);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulatorCancelHeavy)->Arg(1000)->Arg(10000);

class PingMessage final : public net::Message {
 public:
  PingMessage() : net::Message(ping_kind()) {}
  std::size_t payload_bytes() const override { return 0; }
  net::MessagePtr clone() const override {
    return std::make_unique<PingMessage>(*this);
  }

 private:
  static net::MessageKind ping_kind() {
    static const net::MessageKind kind = net::MessageKind::of("PING");
    return kind;
  }
};

void BM_NetworkSendDeliver(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network network(sim, 2, std::make_unique<net::FixedLatency>(1));
    std::uint64_t delivered = 0;
    network.set_delivery_handler(
        [&delivered](const net::Envelope&) { ++delivered; });
    for (int i = 0; i < 1000; ++i) {
      network.send(1, 2, std::make_unique<PingMessage>());
    }
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_NetworkSendDeliver);

// Steady-state message throughput with warm pools: one long-lived
// simulator+network, send/deliver in rounds so every envelope slot, event
// slot, and message block is recycled. This is the regime the
// zero-allocation kernel optimizes for (BM_NetworkSendDeliver pays
// construction and warm-up inside the timed region).
void BM_MessagePoolSendDeliver(benchmark::State& state) {
  sim::Simulator sim;
  net::Network network(sim, 2, std::make_unique<net::FixedLatency>(1));
  std::uint64_t delivered = 0;
  network.set_delivery_handler(
      [&delivered](const net::Envelope&) { ++delivered; });
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) {
      network.send(1, 2, std::make_unique<PingMessage>());
    }
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_MessagePoolSendDeliver);

void BM_AlgorithmSaturatedEntries(benchmark::State& state,
                                  const std::string& name) {
  const int n = 16;
  for (auto _ : state) {
    harness::ClusterConfig config;
    config.n = n;
    config.initial_token_holder = 1;
    config.tree = topology::Tree::star(n, 1);
    harness::Cluster cluster(baselines::algorithm_by_name(name),
                             std::move(config));
    cluster.set_event_logging(false);
    workload::WorkloadConfig wl;
    wl.target_entries = 500;
    wl.mean_think_ticks = 0.0;
    wl.seed = 3;
    const workload::WorkloadResult result =
        workload::run_workload(cluster, wl);
    benchmark::DoNotOptimize(result.entries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          500);
}
BENCHMARK_CAPTURE(BM_AlgorithmSaturatedEntries, neilsen, "Neilsen");
BENCHMARK_CAPTURE(BM_AlgorithmSaturatedEntries, raymond, "Raymond");
BENCHMARK_CAPTURE(BM_AlgorithmSaturatedEntries, suzuki_kasami,
                  "Suzuki-Kasami");
BENCHMARK_CAPTURE(BM_AlgorithmSaturatedEntries, ricart_agrawala,
                  "Ricart-Agrawala");
BENCHMARK_CAPTURE(BM_AlgorithmSaturatedEntries, maekawa, "Maekawa");

void BM_TopologyDiameter(benchmark::State& state) {
  const topology::Tree tree = topology::Tree::random_tree(200, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.diameter());
  }
}
BENCHMARK(BM_TopologyDiameter);

// --- Telemetry callsite costs -----------------------------------------------
// The per-call budget of the always-on instrumentation: one relaxed
// fetch_add on a thread-local shard for counters, one bit_width + two
// fetch_adds for histograms, one short ring-mutex hold for flight
// events. The Threads(8) variants show the shards stay independent
// (per-call cost must not grow with writer count).

void BM_TelemetryCounterAdd(benchmark::State& state) {
  static const telemetry::CounterId id =
      telemetry::Registry::global().counter("bench.counter_add");
  for (auto _ : state) {
    telemetry::count(id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterAdd);
BENCHMARK(BM_TelemetryCounterAdd)->Threads(8);

void BM_TelemetryCounterAddDisabled(benchmark::State& state) {
  static const telemetry::CounterId id =
      telemetry::Registry::global().counter("bench.counter_add_off");
  telemetry::Registry::global().set_enabled(false);
  for (auto _ : state) {
    telemetry::count(id);
  }
  telemetry::Registry::global().set_enabled(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryCounterAddDisabled);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  static const telemetry::HistogramId id =
      telemetry::Registry::global().histogram("bench.hist_record");
  std::uint64_t value = 1;
  for (auto _ : state) {
    telemetry::observe(id, value);
    value = value * 2862933555777941757ull + 3037000493ull;  // cheap lcg
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryHistogramRecord);
BENCHMARK(BM_TelemetryHistogramRecord)->Threads(8);

void BM_TelemetryFlightRecord(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::FlightRecorder::record(telemetry::FlightEvent::kRequest,
                                      /*resource=*/1, /*node=*/2,
                                      /*arg=*/3);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryFlightRecord);
BENCHMARK(BM_TelemetryFlightRecord)->Threads(8);

void BM_TelemetrySnapshot(benchmark::State& state) {
  static const telemetry::CounterId id =
      telemetry::Registry::global().counter("bench.snapshot_subject");
  telemetry::count(id);
  for (auto _ : state) {
    benchmark::DoNotOptimize(telemetry::Registry::global().snapshot());
  }
}
BENCHMARK(BM_TelemetrySnapshot);

}  // namespace
}  // namespace dmx

BENCHMARK_MAIN();
