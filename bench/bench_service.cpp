// Service-layer throughput sweep: resources x nodes x skew on the
// multi-resource LockSpace.
//
// The scaling argument: one resource serializes the whole cluster behind
// a single token, so aggregate throughput is pinned near 1/handoff-
// latency no matter how many nodes ask. Independent resources admit
// concurrent critical sections — aggregate entries per unit time grows
// with the resource count until clients saturate. Skew (Zipfian resource
// popularity) pulls the service back toward the serialized regime as the
// hot resources re-serialize their shard of the traffic.
//
// Two substrates:
//  * deterministic sim — entries per kilotick of virtual time (exact,
//    seed-reproducible; the scaling table);
//  * threaded runtime — wall-clock entries per second, swept over
//    resources x pool workers. Clients hold each lock for a small random
//    sleep window (the real-time analogue of the sim workload's hold
//    ticks — CS work in a lock service is the client's, not the
//    service's, so it occupies time but not service CPU). A single
//    resource serializes those windows end to end; independent resources
//    overlap them across the strand pool until clients or cores
//    saturate.
//
//   $ ./bench_service [out.json]    # optional JSON snapshot path
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "common/rng.hpp"
#include "metrics/table.hpp"
#include "service/lock_space.hpp"
#include "service/space_workload.hpp"
#include "service/threaded_lock_space.hpp"
#include "telemetry/telemetry.hpp"

namespace dmx::bench {
namespace {

struct SimPoint {
  int nodes;
  int resources;
  double zipf_s;
  std::uint64_t entries;
  std::uint64_t messages;
  Tick makespan;
  double entries_per_kilotick;
};

SimPoint run_sim_point(int nodes, int resources, double zipf_s,
                       std::uint64_t target_entries) {
  service::LockSpaceConfig config;
  config.n = nodes;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  config.seed = 7;
  service::LockSpace space(std::move(config));
  for (int i = 0; i < resources; ++i) {
    space.open("bench/shard-" + std::to_string(i));
  }
  service::SpaceWorkloadConfig wl;
  wl.target_entries = target_entries;
  wl.clients_per_node = 4;
  wl.zipf_s = zipf_s;
  wl.mean_think_ticks = 0.0;  // saturation
  wl.hold_lo = 0;
  wl.hold_hi = 2;
  wl.seed = 7;
  const service::SpaceWorkloadResult result =
      service::run_space_workload(space, wl);
  return {nodes,          resources,      zipf_s,
          result.entries, result.messages, result.makespan,
          result.entries_per_kilotick};
}

struct ThreadedPoint {
  int nodes;
  int resources;
  int workers;
  int clients_per_node;
  double zipf_s;
  unsigned hold_hi_us;
  std::uint64_t entries;
  double entries_per_second;
};

ThreadedPoint run_threaded_point(int nodes, int resources, int workers,
                                 int clients_per_node, double zipf_s,
                                 unsigned hold_hi_us,
                                 std::uint64_t target_entries,
                                 std::string* metrics_json = nullptr) {
  service::ThreadedLockSpaceConfig config;
  config.n = nodes;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  config.workers = workers;
  for (int i = 0; i < resources; ++i) {
    config.resources.push_back("bench/shard-" + std::to_string(i));
  }
  service::ThreadedLockSpace space(std::move(config));

  const service::ZipfSampler zipf(resources, zipf_s);
  std::atomic<std::uint64_t> claimed{0};
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= nodes; ++v) {
    for (int c = 0; c < clients_per_node; ++c) {
      threads.emplace_back([&, v, c] {
        Rng rng(static_cast<std::uint64_t>(v) * 100 +
                static_cast<std::uint64_t>(c) + 1);
        while (claimed.fetch_add(1, std::memory_order_relaxed) <
               target_entries) {
          const auto r = static_cast<ResourceId>(zipf.sample(rng));
          service::ScopedLock guard(space, r, v);
          if (hold_hi_us > 0) {
            // The held-lock work window (e.g. a remote record update):
            // wall time inside the CS, no service CPU.
            const auto us = rng.uniform_int(
                0, static_cast<std::int64_t>(hold_hi_us));
            if (us > 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(us));
            }
          }
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (auto error = space.first_error()) {
    std::cerr << "threaded service error: " << *error << "\n";
    std::exit(1);
  }
  if (metrics_json != nullptr) {
    *metrics_json = space.telemetry_snapshot().to_json();
  }
  return {nodes,
          resources,
          workers,
          clients_per_node,
          zipf_s,
          hold_hi_us,
          space.total_entries(),
          static_cast<double>(space.total_entries()) / seconds};
}

// ---- Lease sweep ------------------------------------------------------------
// Hot-shard chaining before/after: the same saturated zero-hold workload
// swept over lease caps (0 = chaining off — the pre-chaining baseline) at
// uniform and Zipf-0.99 skew. Zero hold makes the point deliberately
// hand-off-bound: every entry's cost is the grant hand-off itself, which
// is exactly what chaining removes for co-located waiters, so the ratio
// between cap 0 and the default cap is the headline chaining speedup.
// Delivery jitter (100us, the same knob the exclusivity stress tests use)
// stands in for network latency: a protocol round pays it, a local chain
// hand-off does not — without it the strand pool's in-process hand-off is
// so cheap that chaining's advantage shrinks to the scheduling overhead.
// 32 clients per node keeps the hot shard's local queues deep enough for
// real chains to form at 64 resources.

struct LeasePoint {
  double zipf_s;
  int max_chain;
  std::uint64_t entries;
  double entries_per_second;
  std::uint64_t chained_grants;
  std::uint64_t lease_yields;
  /// Fraction of entries served by a local hand-off (no protocol round).
  double chained_fraction;
  /// Mean closed-window chain length (global histogram, diffed per point).
  double mean_chain_len;
  /// Jain fairness index over per-client completed entries (1 = perfectly
  /// even, 1/clients = one client took everything).
  double jain_fairness;
};

LeasePoint run_lease_point(int nodes, int resources, int workers,
                           int clients_per_node, double zipf_s,
                           int max_chain, unsigned jitter_us,
                           std::uint64_t target_entries) {
  service::ThreadedLockSpaceConfig config;
  config.n = nodes;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  config.workers = workers;
  config.jitter_us = jitter_us;
  config.lease.max_chain = max_chain;
  for (int i = 0; i < resources; ++i) {
    config.resources.push_back("bench/shard-" + std::to_string(i));
  }
  const telemetry::HistogramSnapshot* before =
      telemetry::Registry::global().snapshot().histogram("client.chain_len");
  const std::uint64_t chain_count_before = before ? before->count : 0;
  const std::uint64_t chain_sum_before = before ? before->sum : 0;

  service::ThreadedLockSpace space(std::move(config));
  const service::ZipfSampler zipf(resources, zipf_s);
  std::atomic<std::uint64_t> claimed{0};
  std::vector<std::uint64_t> per_client(
      static_cast<std::size_t>(nodes) *
          static_cast<std::size_t>(clients_per_node),
      0);
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= nodes; ++v) {
    for (int c = 0; c < clients_per_node; ++c) {
      const std::size_t slot =
          static_cast<std::size_t>(v - 1) *
              static_cast<std::size_t>(clients_per_node) +
          static_cast<std::size_t>(c);
      threads.emplace_back([&, v, c, slot] {
        Rng rng(static_cast<std::uint64_t>(v) * 100 +
                static_cast<std::uint64_t>(c) + 1);
        while (claimed.fetch_add(1, std::memory_order_relaxed) <
               target_entries) {
          const auto r = static_cast<ResourceId>(zipf.sample(rng));
          service::ScopedLock guard(space, r, v);
          ++per_client[slot];
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (auto error = space.first_error()) {
    std::cerr << "threaded service error: " << *error << "\n";
    std::exit(1);
  }
  const telemetry::HistogramSnapshot* after =
      telemetry::Registry::global().snapshot().histogram("client.chain_len");
  const std::uint64_t windows =
      (after ? after->count : 0) - chain_count_before;
  const std::uint64_t chain_sum = (after ? after->sum : 0) - chain_sum_before;

  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::uint64_t x : per_client) {
    sum += static_cast<double>(x);
    sum_sq += static_cast<double>(x) * static_cast<double>(x);
  }
  const double jain =
      sum_sq == 0.0 ? 1.0
                    : sum * sum / (static_cast<double>(per_client.size()) *
                                   sum_sq);
  const std::uint64_t entries = space.total_entries();
  return {zipf_s,
          max_chain,
          entries,
          static_cast<double>(entries) / seconds,
          space.chained_grants(),
          space.lease_yields(),
          entries == 0 ? 0.0
                       : static_cast<double>(space.chained_grants()) /
                             static_cast<double>(entries),
          windows == 0 ? 0.0
                       : static_cast<double>(chain_sum) /
                             static_cast<double>(windows),
          jain};
}

/// Runs the cap x skew grid, prints the table, and returns the points.
/// The headline — throughput at the default cap vs chaining off — is
/// computed per skew by the caller from the returned grid.
std::vector<LeasePoint> run_lease_sweep(std::uint64_t target_entries) {
  const int nodes = 8;
  const int resources = 64;
  const int workers = 4;
  const int clients_per_node = 32;
  const unsigned jitter_us = 100;
  std::vector<LeasePoint> points;
  metrics::Table table({"skew s", "lease cap", "entries/s", "chained %",
                        "mean chain", "yields", "fairness", "vs cap 0"});
  for (const double s : {0.0, 0.99}) {
    double off = 0.0;
    for (const int cap : {0, 1, 4, 16, 64, -1}) {
      const LeasePoint p =
          run_lease_point(nodes, resources, workers, clients_per_node, s,
                          cap, jitter_us, target_entries);
      if (cap == 0) off = p.entries_per_second;
      points.push_back(p);
      table.add_row(
          {metrics::Table::num(s),
           cap < 0 ? "unbounded" : metrics::Table::num(cap, 0),
           metrics::Table::num(p.entries_per_second, 0),
           metrics::Table::num(p.chained_fraction * 100.0, 1),
           metrics::Table::num(p.mean_chain_len),
           metrics::Table::num(static_cast<double>(p.lease_yields), 0),
           metrics::Table::num(p.jain_fairness),
           metrics::Table::num(p.entries_per_second / off) + "x"});
    }
  }
  table.print(std::cout);
  return points;
}

void append_lease_json(std::ostringstream& json,
                       const std::vector<LeasePoint>& points) {
  json << "  \"lease_sweep\": {\n"
       << "    \"nodes\": 8, \"resources\": 64, \"workers\": 4, "
          "\"clients_per_node\": 32, \"jitter_us\": 100, \"hold_us\": 0,\n"
          "    \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LeasePoint& p = points[i];
    json << "      {\"zipf_s\": " << p.zipf_s
         << ", \"max_chain\": " << p.max_chain
         << ", \"entries\": " << p.entries
         << ", \"entries_per_second\": " << p.entries_per_second
         << ", \"chained_grants\": " << p.chained_grants
         << ", \"lease_yields\": " << p.lease_yields
         << ", \"chained_fraction\": " << p.chained_fraction
         << ", \"mean_chain_len\": " << p.mean_chain_len
         << ", \"jain_fairness\": " << p.jain_fairness << "}"
         << (i + 1 < points.size() ? "," : "") << "\n";
  }
  double uniform_speedup = 0.0;
  double zipf_speedup = 0.0;
  for (const double s : {0.0, 0.99}) {
    double off = 0.0;
    double def = 0.0;
    for (const LeasePoint& p : points) {
      if (p.zipf_s != s) continue;
      if (p.max_chain == 0) off = p.entries_per_second;
      if (p.max_chain == 16) def = p.entries_per_second;
    }
    (s == 0.0 ? uniform_speedup : zipf_speedup) = off == 0.0 ? 0.0 : def / off;
  }
  json << "    ],\n    \"chaining_speedup_uniform\": " << uniform_speedup
       << ",\n    \"chaining_speedup_zipf99\": " << zipf_speedup << "\n  }";
}

}  // namespace
}  // namespace dmx::bench

int main(int argc, char** argv) {
  using namespace dmx;
  using dmx::bench::LeasePoint;
  using dmx::bench::SimPoint;
  using dmx::bench::ThreadedPoint;

  bool lease_sweep_only = false;
  bool smoke = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--lease-sweep") {
      lease_sweep_only = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  if (lease_sweep_only) {
    // Chaining before/after only: lease cap x skew at the saturated
    // zero-hold point. --smoke shrinks the target so the fast test tier
    // can exercise the whole mode in seconds.
    std::cout << "bench_service --lease-sweep — hot-shard chaining: lease "
                 "cap x skew (N=8, 64 resources, zero hold)\n\n";
    const std::vector<LeasePoint> points =
        bench::run_lease_sweep(smoke ? 400 : 6000);
    std::cout << "\nShape check: cap 0 is the pre-chaining baseline; the "
                 "default cap (16) recovers the\nhand-off cost for "
                 "co-located waiters (chained % rises with skew, >= 2x "
                 "at Zipf 0.99)\nwhile yields and fairness stay healthy. "
                 "Raising the cap past 16 buys little more\nthroughput "
                 "but visibly longer chains — the fairness/throughput "
                 "trade the lease\nwindow is for.\n";
    if (out_path != nullptr) {
      std::ostringstream json;
      json << "{\n";
      bench::append_lease_json(json, points);
      json << "\n}\n";
      std::ofstream out(out_path);
      out << json.str();
      std::cout << "\nwrote " << out_path << "\n";
    }
    return 0;
  }

  std::cout << "bench_service — LockSpace throughput: resources x nodes x "
               "skew (Neilsen-backed, saturation)\n";

  // DMX_BENCH_OVERHEAD_ONLY=1 skips the scaling sweeps and runs just the
  // telemetry overhead point — the mode the compiled-out baseline build
  // is run in to produce DMX_BENCH_BASELINE_EPS.
  const char* overhead_only_env = std::getenv("DMX_BENCH_OVERHEAD_ONLY");
  const bool overhead_only =
      overhead_only_env != nullptr && overhead_only_env[0] != '\0' &&
      std::string(overhead_only_env) != "0";

  std::vector<SimPoint> sim_points;
  for (const int nodes : overhead_only ? std::vector<int>{}
                                       : std::vector<int>{8, 16}) {
    std::cout << "\nSim substrate, N = " << nodes
              << ", 4 clients/node, entries per kilotick of virtual time\n\n";
    metrics::Table table({"resources", "skew s", "entries", "msgs/entry",
                          "makespan", "entries/ktick", "vs 1 resource"});
    for (const double s : {0.0, 0.99}) {
      double single = 0.0;
      for (const int resources : {1, 4, 16, 64}) {
        const SimPoint p =
            bench::run_sim_point(nodes, resources, s, 20000);
        if (resources == 1) single = p.entries_per_kilotick;
        sim_points.push_back(p);
        table.add_row(
            {metrics::Table::num(resources, 0), metrics::Table::num(s),
             metrics::Table::num(static_cast<double>(p.entries), 0),
             metrics::Table::num(static_cast<double>(p.messages) /
                                 static_cast<double>(p.entries)),
             metrics::Table::num(static_cast<double>(p.makespan), 0),
             metrics::Table::num(p.entries_per_kilotick),
             metrics::Table::num(p.entries_per_kilotick / single) + "x"});
      }
    }
    table.print(std::cout);
  }

  // Threaded sweep: resources x pool workers x skew at N = 8, saturated
  // clients, 0-40us hold windows (the sim sweep's hold ticks scaled to
  // the runtime's hand-off latency). Uniform skew is the scaling regime
  // (the acceptance ratio); Zipf 0.99 shows the hot shards re-serializing
  // exactly as the sim table does. The "vs 1 resource" column is computed
  // within each (workers, skew) row — the single serialized resource is
  // the baseline the strand pool is supposed to beat.
  std::cout << "\nThreaded substrate, wall clock (4 clients/node, hold "
               "0-40us)\n\n";
  std::vector<ThreadedPoint> threaded_points;
  {
    metrics::Table table({"workers", "skew s", "resources", "entries",
                          "entries/s", "vs 1 resource"});
    const unsigned hold_hi_us = 40;
    const int clients_per_node = 4;
    for (const int workers : overhead_only ? std::vector<int>{}
                                           : std::vector<int>{1, 2, 4}) {
      for (const double s : {0.0, 0.99}) {
        double single = 0.0;
        for (const int resources : {1, 4, 16, 64}) {
          const ThreadedPoint p = bench::run_threaded_point(
              8, resources, workers, clients_per_node, s, hold_hi_us, 6000);
          if (resources == 1) single = p.entries_per_second;
          threaded_points.push_back(p);
          table.add_row(
              {metrics::Table::num(workers, 0), metrics::Table::num(s),
               metrics::Table::num(resources, 0),
               metrics::Table::num(static_cast<double>(p.entries), 0),
               metrics::Table::num(p.entries_per_second, 0),
               metrics::Table::num(p.entries_per_second / single) + "x"});
        }
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nShape check: throughput grows with resource count on "
               "BOTH substrates (sim >= 3x,\nthreaded >= 5x by 64 "
               "resources at uniform skew); skew 0.99 lands between the\n"
               "serialized and fully sharded regimes as the hot shards "
               "re-serialize.\n";

  // Hot-shard chaining before/after (see run_lease_sweep): cap 0 is the
  // pre-chaining service, the default cap is this PR's release path.
  std::cout << "\nLease sweep: chaining before/after (N=8, 64 resources, "
               "zero hold, saturated)\n\n";
  const std::vector<LeasePoint> lease_points =
      overhead_only ? std::vector<LeasePoint>{} : bench::run_lease_sweep(6000);

  // Telemetry overhead proof: the saturated point (N=8, 64 resources,
  // uniform skew, zero hold — the hottest instrumentation path) best of
  // three with recording enabled vs the runtime kill switch. The same
  // binary built with -DDAGMX_TELEMETRY=OFF is the compiled-out
  // baseline; run it first and pass its entries/s via
  // DMX_BENCH_BASELINE_EPS so the cross-build ratio lands in the JSON
  // snapshot too.
  std::cout << "\nTelemetry overhead (N=8, 64 resources, uniform, zero "
               "hold, best of 5)\n\n";
  double enabled_eps = 0.0;
  double disabled_eps = 0.0;
  std::string metrics_json = "{}";
  // Long reps (120k entries, ~0.5s each) interleaved enabled/disabled:
  // short reps disappear into scheduler noise on a loaded box, and only
  // the within-run contrast controls for machine load at all.
  for (int rep = 0; rep < 5; ++rep) {
    telemetry::Registry::global().set_enabled(true);
    enabled_eps = std::max(
        enabled_eps,
        bench::run_threaded_point(8, 64, 4, 4, 0.0, 0, 120000, &metrics_json)
            .entries_per_second);
    telemetry::Registry::global().set_enabled(false);
    disabled_eps = std::max(
        disabled_eps,
        bench::run_threaded_point(8, 64, 4, 4, 0.0, 0, 120000)
            .entries_per_second);
  }
  telemetry::Registry::global().set_enabled(true);
  const bool compiled_in = DMX_TELEMETRY != 0;
  const double kill_switch_delta_pct =
      (disabled_eps - enabled_eps) / disabled_eps * 100.0;
  double baseline_eps = 0.0;
  if (const char* env = std::getenv("DMX_BENCH_BASELINE_EPS")) {
    baseline_eps = std::strtod(env, nullptr);
  }
  {
    metrics::Table table({"build", "recording", "entries/s", "delta"});
    table.add_row({compiled_in ? "telemetry" : "compiled-out", "on",
                   metrics::Table::num(enabled_eps, 0), "-"});
    table.add_row({compiled_in ? "telemetry" : "compiled-out", "off",
                   metrics::Table::num(disabled_eps, 0),
                   metrics::Table::num(kill_switch_delta_pct) + "%"});
    if (baseline_eps > 0.0) {
      table.add_row({"compiled-out", "n/a",
                     metrics::Table::num(baseline_eps, 0),
                     metrics::Table::num((baseline_eps - enabled_eps) /
                                         baseline_eps * 100.0) +
                         "%"});
    }
    table.print(std::cout);
    std::cout << "\nShape check: the kill-switch delta bounds the recording "
                 "cost (budget: a few percent\nof saturated throughput; "
                 "per-op costs are single-digit ns, see BENCH_micro.json).\n"
                 "Caveat: on a 1-vCPU container every thread's recording "
                 "serializes onto the\ncritical path and run-to-run "
                 "scheduler noise is +-10%, so treat any single\nreading "
                 "as an upper bound, not a point estimate.\n";
  }

  if (out_path != nullptr) {
    std::ostringstream json;
    json << "{\n  \"sim\": [\n";
    for (std::size_t i = 0; i < sim_points.size(); ++i) {
      const SimPoint& p = sim_points[i];
      json << "    {\"nodes\": " << p.nodes
           << ", \"resources\": " << p.resources << ", \"zipf_s\": " << p.zipf_s
           << ", \"entries\": " << p.entries
           << ", \"messages\": " << p.messages
           << ", \"makespan_ticks\": " << p.makespan
           << ", \"entries_per_kilotick\": " << p.entries_per_kilotick << "}"
           << (i + 1 < sim_points.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"threaded\": [\n";
    for (std::size_t i = 0; i < threaded_points.size(); ++i) {
      const ThreadedPoint& p = threaded_points[i];
      json << "    {\"nodes\": " << p.nodes
           << ", \"resources\": " << p.resources
           << ", \"workers\": " << p.workers
           << ", \"clients_per_node\": " << p.clients_per_node
           << ", \"zipf_s\": " << p.zipf_s
           << ", \"hold_hi_us\": " << p.hold_hi_us
           << ", \"entries\": " << p.entries
           << ", \"entries_per_second\": " << p.entries_per_second << "}"
           << (i + 1 < threaded_points.size() ? "," : "") << "\n";
    }
    json << "  ],\n";
    if (!lease_points.empty()) {
      bench::append_lease_json(json, lease_points);
      json << ",\n";
    }
    json << "  \"telemetry\": {\n"
         << "    \"compiled_in\": " << (compiled_in ? "true" : "false")
         << ",\n    \"nodes\": 8, \"resources\": 64, \"workers\": 4, "
            "\"clients_per_node\": 4, \"zipf_s\": 0,\n"
         << "    \"enabled_entries_per_second\": " << enabled_eps
         << ",\n    \"kill_switch_entries_per_second\": " << disabled_eps
         << ",\n    \"kill_switch_delta_percent\": " << kill_switch_delta_pct;
    if (baseline_eps > 0.0) {
      json << ",\n    \"compiled_out_entries_per_second\": " << baseline_eps
           << ",\n    \"overhead_vs_compiled_out_percent\": "
           << (baseline_eps - enabled_eps) / baseline_eps * 100.0;
    }
    json << "\n  },\n  \"metrics\": " << metrics_json << "\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    std::cout << "\nwrote " << out_path << "\n";
  }
  return 0;
}
