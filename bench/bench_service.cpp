// Service-layer throughput sweep: resources x nodes x skew on the
// multi-resource LockSpace.
//
// The scaling argument: one resource serializes the whole cluster behind
// a single token, so aggregate throughput is pinned near 1/handoff-
// latency no matter how many nodes ask. Independent resources admit
// concurrent critical sections — aggregate entries per unit time grows
// with the resource count until clients saturate. Skew (Zipfian resource
// popularity) pulls the service back toward the serialized regime as the
// hot resources re-serialize their shard of the traffic.
//
// Two substrates:
//  * deterministic sim — entries per kilotick of virtual time (exact,
//    seed-reproducible; the scaling table);
//  * threaded runtime — wall-clock entries per second, swept over
//    resources x pool workers. Clients hold each lock for a small random
//    sleep window (the real-time analogue of the sim workload's hold
//    ticks — CS work in a lock service is the client's, not the
//    service's, so it occupies time but not service CPU). A single
//    resource serializes those windows end to end; independent resources
//    overlap them across the strand pool until clients or cores
//    saturate.
//
//   $ ./bench_service [out.json]    # optional JSON snapshot path
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "common/rng.hpp"
#include "metrics/table.hpp"
#include "service/lock_space.hpp"
#include "service/space_workload.hpp"
#include "service/threaded_lock_space.hpp"
#include "telemetry/telemetry.hpp"

namespace dmx::bench {
namespace {

struct SimPoint {
  int nodes;
  int resources;
  double zipf_s;
  std::uint64_t entries;
  std::uint64_t messages;
  Tick makespan;
  double entries_per_kilotick;
};

SimPoint run_sim_point(int nodes, int resources, double zipf_s,
                       std::uint64_t target_entries) {
  service::LockSpaceConfig config;
  config.n = nodes;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  config.seed = 7;
  service::LockSpace space(std::move(config));
  for (int i = 0; i < resources; ++i) {
    space.open("bench/shard-" + std::to_string(i));
  }
  service::SpaceWorkloadConfig wl;
  wl.target_entries = target_entries;
  wl.clients_per_node = 4;
  wl.zipf_s = zipf_s;
  wl.mean_think_ticks = 0.0;  // saturation
  wl.hold_lo = 0;
  wl.hold_hi = 2;
  wl.seed = 7;
  const service::SpaceWorkloadResult result =
      service::run_space_workload(space, wl);
  return {nodes,          resources,      zipf_s,
          result.entries, result.messages, result.makespan,
          result.entries_per_kilotick};
}

struct ThreadedPoint {
  int nodes;
  int resources;
  int workers;
  int clients_per_node;
  double zipf_s;
  unsigned hold_hi_us;
  std::uint64_t entries;
  double entries_per_second;
};

ThreadedPoint run_threaded_point(int nodes, int resources, int workers,
                                 int clients_per_node, double zipf_s,
                                 unsigned hold_hi_us,
                                 std::uint64_t target_entries,
                                 std::string* metrics_json = nullptr) {
  service::ThreadedLockSpaceConfig config;
  config.n = nodes;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  config.workers = workers;
  for (int i = 0; i < resources; ++i) {
    config.resources.push_back("bench/shard-" + std::to_string(i));
  }
  service::ThreadedLockSpace space(std::move(config));

  const service::ZipfSampler zipf(resources, zipf_s);
  std::atomic<std::uint64_t> claimed{0};
  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= nodes; ++v) {
    for (int c = 0; c < clients_per_node; ++c) {
      threads.emplace_back([&, v, c] {
        Rng rng(static_cast<std::uint64_t>(v) * 100 +
                static_cast<std::uint64_t>(c) + 1);
        while (claimed.fetch_add(1, std::memory_order_relaxed) <
               target_entries) {
          const auto r = static_cast<ResourceId>(zipf.sample(rng));
          service::ScopedLock guard(space, r, v);
          if (hold_hi_us > 0) {
            // The held-lock work window (e.g. a remote record update):
            // wall time inside the CS, no service CPU.
            const auto us = rng.uniform_int(
                0, static_cast<std::int64_t>(hold_hi_us));
            if (us > 0) {
              std::this_thread::sleep_for(std::chrono::microseconds(us));
            }
          }
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  if (auto error = space.first_error()) {
    std::cerr << "threaded service error: " << *error << "\n";
    std::exit(1);
  }
  if (metrics_json != nullptr) {
    *metrics_json = space.telemetry_snapshot().to_json();
  }
  return {nodes,
          resources,
          workers,
          clients_per_node,
          zipf_s,
          hold_hi_us,
          space.total_entries(),
          static_cast<double>(space.total_entries()) / seconds};
}

}  // namespace
}  // namespace dmx::bench

int main(int argc, char** argv) {
  using namespace dmx;
  using dmx::bench::SimPoint;
  using dmx::bench::ThreadedPoint;

  std::cout << "bench_service — LockSpace throughput: resources x nodes x "
               "skew (Neilsen-backed, saturation)\n";

  // DMX_BENCH_OVERHEAD_ONLY=1 skips the scaling sweeps and runs just the
  // telemetry overhead point — the mode the compiled-out baseline build
  // is run in to produce DMX_BENCH_BASELINE_EPS.
  const char* overhead_only_env = std::getenv("DMX_BENCH_OVERHEAD_ONLY");
  const bool overhead_only =
      overhead_only_env != nullptr && overhead_only_env[0] != '\0' &&
      std::string(overhead_only_env) != "0";

  std::vector<SimPoint> sim_points;
  for (const int nodes : overhead_only ? std::vector<int>{}
                                       : std::vector<int>{8, 16}) {
    std::cout << "\nSim substrate, N = " << nodes
              << ", 4 clients/node, entries per kilotick of virtual time\n\n";
    metrics::Table table({"resources", "skew s", "entries", "msgs/entry",
                          "makespan", "entries/ktick", "vs 1 resource"});
    for (const double s : {0.0, 0.99}) {
      double single = 0.0;
      for (const int resources : {1, 4, 16, 64}) {
        const SimPoint p =
            bench::run_sim_point(nodes, resources, s, 20000);
        if (resources == 1) single = p.entries_per_kilotick;
        sim_points.push_back(p);
        table.add_row(
            {metrics::Table::num(resources, 0), metrics::Table::num(s),
             metrics::Table::num(static_cast<double>(p.entries), 0),
             metrics::Table::num(static_cast<double>(p.messages) /
                                 static_cast<double>(p.entries)),
             metrics::Table::num(static_cast<double>(p.makespan), 0),
             metrics::Table::num(p.entries_per_kilotick),
             metrics::Table::num(p.entries_per_kilotick / single) + "x"});
      }
    }
    table.print(std::cout);
  }

  // Threaded sweep: resources x pool workers x skew at N = 8, saturated
  // clients, 0-40us hold windows (the sim sweep's hold ticks scaled to
  // the runtime's hand-off latency). Uniform skew is the scaling regime
  // (the acceptance ratio); Zipf 0.99 shows the hot shards re-serializing
  // exactly as the sim table does. The "vs 1 resource" column is computed
  // within each (workers, skew) row — the single serialized resource is
  // the baseline the strand pool is supposed to beat.
  std::cout << "\nThreaded substrate, wall clock (4 clients/node, hold "
               "0-40us)\n\n";
  std::vector<ThreadedPoint> threaded_points;
  {
    metrics::Table table({"workers", "skew s", "resources", "entries",
                          "entries/s", "vs 1 resource"});
    const unsigned hold_hi_us = 40;
    const int clients_per_node = 4;
    for (const int workers : overhead_only ? std::vector<int>{}
                                           : std::vector<int>{1, 2, 4}) {
      for (const double s : {0.0, 0.99}) {
        double single = 0.0;
        for (const int resources : {1, 4, 16, 64}) {
          const ThreadedPoint p = bench::run_threaded_point(
              8, resources, workers, clients_per_node, s, hold_hi_us, 6000);
          if (resources == 1) single = p.entries_per_second;
          threaded_points.push_back(p);
          table.add_row(
              {metrics::Table::num(workers, 0), metrics::Table::num(s),
               metrics::Table::num(resources, 0),
               metrics::Table::num(static_cast<double>(p.entries), 0),
               metrics::Table::num(p.entries_per_second, 0),
               metrics::Table::num(p.entries_per_second / single) + "x"});
        }
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nShape check: throughput grows with resource count on "
               "BOTH substrates (sim >= 3x,\nthreaded >= 5x by 64 "
               "resources at uniform skew); skew 0.99 lands between the\n"
               "serialized and fully sharded regimes as the hot shards "
               "re-serialize.\n";

  // Telemetry overhead proof: the saturated point (N=8, 64 resources,
  // uniform skew, zero hold — the hottest instrumentation path) best of
  // three with recording enabled vs the runtime kill switch. The same
  // binary built with -DDAGMX_TELEMETRY=OFF is the compiled-out
  // baseline; run it first and pass its entries/s via
  // DMX_BENCH_BASELINE_EPS so the cross-build ratio lands in the JSON
  // snapshot too.
  std::cout << "\nTelemetry overhead (N=8, 64 resources, uniform, zero "
               "hold, best of 5)\n\n";
  double enabled_eps = 0.0;
  double disabled_eps = 0.0;
  std::string metrics_json = "{}";
  // Long reps (120k entries, ~0.5s each) interleaved enabled/disabled:
  // short reps disappear into scheduler noise on a loaded box, and only
  // the within-run contrast controls for machine load at all.
  for (int rep = 0; rep < 5; ++rep) {
    telemetry::Registry::global().set_enabled(true);
    enabled_eps = std::max(
        enabled_eps,
        bench::run_threaded_point(8, 64, 4, 4, 0.0, 0, 120000, &metrics_json)
            .entries_per_second);
    telemetry::Registry::global().set_enabled(false);
    disabled_eps = std::max(
        disabled_eps,
        bench::run_threaded_point(8, 64, 4, 4, 0.0, 0, 120000)
            .entries_per_second);
  }
  telemetry::Registry::global().set_enabled(true);
  const bool compiled_in = DMX_TELEMETRY != 0;
  const double kill_switch_delta_pct =
      (disabled_eps - enabled_eps) / disabled_eps * 100.0;
  double baseline_eps = 0.0;
  if (const char* env = std::getenv("DMX_BENCH_BASELINE_EPS")) {
    baseline_eps = std::strtod(env, nullptr);
  }
  {
    metrics::Table table({"build", "recording", "entries/s", "delta"});
    table.add_row({compiled_in ? "telemetry" : "compiled-out", "on",
                   metrics::Table::num(enabled_eps, 0), "-"});
    table.add_row({compiled_in ? "telemetry" : "compiled-out", "off",
                   metrics::Table::num(disabled_eps, 0),
                   metrics::Table::num(kill_switch_delta_pct) + "%"});
    if (baseline_eps > 0.0) {
      table.add_row({"compiled-out", "n/a",
                     metrics::Table::num(baseline_eps, 0),
                     metrics::Table::num((baseline_eps - enabled_eps) /
                                         baseline_eps * 100.0) +
                         "%"});
    }
    table.print(std::cout);
    std::cout << "\nShape check: the kill-switch delta bounds the recording "
                 "cost (budget: a few percent\nof saturated throughput; "
                 "per-op costs are single-digit ns, see BENCH_micro.json).\n"
                 "Caveat: on a 1-vCPU container every thread's recording "
                 "serializes onto the\ncritical path and run-to-run "
                 "scheduler noise is +-10%, so treat any single\nreading "
                 "as an upper bound, not a point estimate.\n";
  }

  if (argc > 1) {
    std::ostringstream json;
    json << "{\n  \"sim\": [\n";
    for (std::size_t i = 0; i < sim_points.size(); ++i) {
      const SimPoint& p = sim_points[i];
      json << "    {\"nodes\": " << p.nodes
           << ", \"resources\": " << p.resources << ", \"zipf_s\": " << p.zipf_s
           << ", \"entries\": " << p.entries
           << ", \"messages\": " << p.messages
           << ", \"makespan_ticks\": " << p.makespan
           << ", \"entries_per_kilotick\": " << p.entries_per_kilotick << "}"
           << (i + 1 < sim_points.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"threaded\": [\n";
    for (std::size_t i = 0; i < threaded_points.size(); ++i) {
      const ThreadedPoint& p = threaded_points[i];
      json << "    {\"nodes\": " << p.nodes
           << ", \"resources\": " << p.resources
           << ", \"workers\": " << p.workers
           << ", \"clients_per_node\": " << p.clients_per_node
           << ", \"zipf_s\": " << p.zipf_s
           << ", \"hold_hi_us\": " << p.hold_hi_us
           << ", \"entries\": " << p.entries
           << ", \"entries_per_second\": " << p.entries_per_second << "}"
           << (i + 1 < threaded_points.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"telemetry\": {\n"
         << "    \"compiled_in\": " << (compiled_in ? "true" : "false")
         << ",\n    \"nodes\": 8, \"resources\": 64, \"workers\": 4, "
            "\"clients_per_node\": 4, \"zipf_s\": 0,\n"
         << "    \"enabled_entries_per_second\": " << enabled_eps
         << ",\n    \"kill_switch_entries_per_second\": " << disabled_eps
         << ",\n    \"kill_switch_delta_percent\": " << kill_switch_delta_pct;
    if (baseline_eps > 0.0) {
      json << ",\n    \"compiled_out_entries_per_second\": " << baseline_eps
           << ",\n    \"overhead_vs_compiled_out_percent\": "
           << (baseline_eps - enabled_eps) / baseline_eps * 100.0;
    }
    json << "\n  },\n  \"metrics\": " << metrics_json << "\n}\n";
    std::ofstream out(argv[1]);
    out << json.str();
    std::cout << "\nwrote " << argv[1] << "\n";
  }
  return 0;
}
