// E2 — §6.1 topology dependence (and the Raymond comparison the paper
// leans on): Neilsen's worst case is D+1 on any tree — N on the straight
// line (worst topology), 3 on the centralized star (best topology) —
// while Raymond pays up to 2D. This bench sweeps topologies at fixed N
// and sweeps N on the two extreme topologies.
#include <iostream>

#include "bench_util.hpp"

namespace dmx::bench {
namespace {

void sweep_topologies(int n) {
  std::cout << "\nE2a: worst-case messages per entry across logical "
               "topologies, N = "
            << n << "\n\n";
  metrics::Table table({"topology", "diameter D", "Neilsen (D+1)",
                        "Neilsen measured", "Raymond (2D)",
                        "Raymond measured"});
  for (const std::string kind :
       {"line", "star", "kary3", "radiating", "random"}) {
    const topology::Tree tree = make_topology(kind, n, 5);
    const int d = tree.diameter();

    harness::Cluster neilsen =
        make_cluster(baselines::algorithm_by_name("Neilsen"), kind, n, 1, 5);
    const std::uint64_t neilsen_worst = worst_case_probe(neilsen);

    harness::Cluster raymond =
        make_cluster(baselines::algorithm_by_name("Raymond"), kind, n, 1, 5);
    const std::uint64_t raymond_worst = worst_case_probe(raymond);

    table.add_row({kind, std::to_string(d), std::to_string(d + 1),
                   std::to_string(neilsen_worst), std::to_string(2 * d),
                   std::to_string(raymond_worst)});
  }
  table.print(std::cout);
}

void sweep_n() {
  std::cout << "\nE2b: Neilsen worst case vs N on the extreme topologies "
               "(line: N, star: 3)\n\n";
  metrics::Table table({"N", "line measured", "line paper (N)",
                        "star measured", "star paper (3)"});
  for (int n : {3, 5, 9, 17, 25}) {
    harness::Cluster line =
        make_cluster(baselines::algorithm_by_name("Neilsen"), "line", n);
    harness::Cluster star =
        make_cluster(baselines::algorithm_by_name("Neilsen"), "star", n);
    table.add_row({std::to_string(n),
                   std::to_string(worst_case_probe(line)), std::to_string(n),
                   std::to_string(worst_case_probe(star)), "3"});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace dmx::bench

int main() {
  std::cout << "bench_topology_sweep — reproduces §6.1 topology analysis "
               "(worst = line, best = centralized star)\n";
  dmx::bench::sweep_topologies(15);
  dmx::bench::sweep_n();
  return 0;
}
