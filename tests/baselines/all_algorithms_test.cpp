// Conformance suite: EVERY registered algorithm (the Neilsen core and all
// eight baselines) must guarantee mutual exclusion (checked continuously
// by the harness), deadlock freedom and starvation freedom under
// randomized workloads across sizes, seeds and latency models.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::baselines {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig make_config(const proto::Algorithm& algo, int n,
                          std::uint64_t seed, bool jittery_latency) {
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = algo.name == "Singhal"
                                    ? 1  // fixed by its staircase init
                                    : static_cast<NodeId>(seed % n + 1);
  config.tree = topology::Tree::random_tree(n, seed);
  if (jittery_latency) {
    config.latency_model = std::make_unique<net::ExponentialLatency>(3.0);
  }
  config.seed = seed;
  return config;
}

using Params = std::tuple<std::string, int, std::uint64_t>;

class AlgorithmConformance : public ::testing::TestWithParam<Params> {};

TEST_P(AlgorithmConformance, SafeAndLiveUnderContention) {
  const auto& [name, n, seed] = GetParam();
  const proto::Algorithm algo = algorithm_by_name(name);
  Cluster cluster(algo, make_config(algo, n, seed, /*jittery=*/false));

  workload::WorkloadConfig wl;
  wl.target_entries = 150;
  wl.mean_think_ticks = 5.0;  // moderate contention
  wl.hold_lo = 0;
  wl.hold_hi = 4;
  wl.seed = seed * 31 + 7;
  const workload::WorkloadResult result = workload::run_workload(cluster, wl);
  EXPECT_GE(result.entries, wl.target_entries);
}

TEST_P(AlgorithmConformance, SafeAndLiveUnderJitteryNetwork) {
  const auto& [name, n, seed] = GetParam();
  const proto::Algorithm algo = algorithm_by_name(name);
  Cluster cluster(algo, make_config(algo, n, seed, /*jittery=*/true));

  workload::WorkloadConfig wl;
  wl.target_entries = 120;
  wl.mean_think_ticks = 0.0;  // saturation
  wl.seed = seed * 13 + 3;
  const workload::WorkloadResult result = workload::run_workload(cluster, wl);
  EXPECT_GE(result.entries, wl.target_entries);
}

TEST_P(AlgorithmConformance, NoStarvationUnderSaturation) {
  const auto& [name, n, seed] = GetParam();
  const proto::Algorithm algo = algorithm_by_name(name);
  Cluster cluster(algo, make_config(algo, n, seed, /*jittery=*/false));

  workload::WorkloadConfig wl;
  wl.target_entries = static_cast<std::uint64_t>(12 * n);
  wl.mean_think_ticks = 0.0;
  wl.seed = seed;
  workload::run_workload(cluster, wl);

  std::map<NodeId, int> entries;
  for (const auto& event : cluster.events()) {
    if (event.kind == harness::CsEvent::Kind::kEnter) {
      entries[event.node] += 1;
    }
  }
  for (NodeId v = 1; v <= n; ++v) {
    EXPECT_GE(entries[v], 1) << name << ": node " << v << " starved";
  }
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const auto& algo : all_algorithms()) {
    names.push_back(algo.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgorithmConformance,
    ::testing::Combine(::testing::ValuesIn(algorithm_names()),
                       ::testing::Values(2, 4, 7, 13),
                       ::testing::Values(1u, 9u, 23u, 77u)),
    [](const ::testing::TestParamInfo<Params>& info) {
      std::string name = std::get<0>(info.param) + "_n" +
                         std::to_string(std::get<1>(info.param)) + "_s" +
                         std::to_string(std::get<2>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(AlgorithmRegistry, ContainsAllNine) {
  EXPECT_EQ(all_algorithms().size(), 9u);
  EXPECT_EQ(token_algorithms().size(), 4u);
}

TEST(AlgorithmRegistry, LookupByNameWorksAndRejectsUnknown) {
  EXPECT_EQ(algorithm_by_name("Neilsen").name, "Neilsen");
  EXPECT_TRUE(algorithm_by_name("Raymond").token_based);
  EXPECT_THROW(algorithm_by_name("nope"), std::logic_error);
}

TEST(AlgorithmRegistry, SingleNodeClustersWorkEverywhere) {
  // Degenerate n=1: every algorithm must grant locally with no messages.
  for (const auto& algo : all_algorithms()) {
    ClusterConfig config;
    config.n = 1;
    config.initial_token_holder = 1;
    config.tree = topology::Tree::from_edges(1, {});
    Cluster cluster(algo, std::move(config));
    for (int i = 0; i < 3; ++i) {
      bool entered = false;
      cluster.request_cs(1, [&](NodeId) { entered = true; });
      cluster.run_to_quiescence();
      EXPECT_TRUE(entered) << algo.name;
      cluster.release_cs(1);
    }
    EXPECT_EQ(cluster.network().stats().total_sent, 0u) << algo.name;
  }
}

}  // namespace
}  // namespace dmx::baselines

// ---- extreme reordering ------------------------------------------------------
// Cross-channel delivery order scrambled as hard as the FIFO-per-channel
// guarantee allows: latencies uniform in [1, 50] while hops normally take
// 1 tick. Catches protocols that accidentally rely on cross-channel
// timing (the per-channel guarantee is the only one the paper grants).

namespace dmx::baselines {
namespace {

class ExtremeReorder : public ::testing::TestWithParam<std::string> {};

TEST_P(ExtremeReorder, SafeAndLiveUnderScrambledDelivery) {
  const proto::Algorithm algo = algorithm_by_name(GetParam());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    harness::ClusterConfig config;
    config.n = 7;
    config.initial_token_holder = algo.name == "Singhal" ? 1 : 4;
    config.tree = topology::Tree::random_tree(7, seed);
    config.latency_model = std::make_unique<net::UniformLatency>(1, 50);
    config.seed = seed;
    harness::Cluster cluster(algo, std::move(config));

    workload::WorkloadConfig wl;
    wl.target_entries = 120;
    wl.mean_think_ticks = 10.0;
    wl.hold_lo = 0;
    wl.hold_hi = 5;
    wl.seed = seed * 53 + 1;
    const workload::WorkloadResult result =
        workload::run_workload(cluster, wl);
    ASSERT_GE(result.entries, wl.target_entries)
        << algo.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtremeReorder,
    ::testing::Values("Neilsen", "Raymond", "Central", "Suzuki-Kasami",
                      "Singhal", "Lamport", "Ricart-Agrawala",
                      "Carvalho-Roucairol", "Maekawa"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dmx::baselines
