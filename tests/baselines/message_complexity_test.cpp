// Per-algorithm message-complexity tests: the closed-form per-entry
// message counts from Chapter 2 / §6.1, measured with single-entry probes
// on quiescent systems.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "harness/probe.hpp"
#include "topology/tree.hpp"

namespace dmx::baselines {
namespace {

using harness::Cluster;
using harness::ClusterConfig;
using harness::ProbeResult;
using harness::park_token_at;
using harness::single_entry_probe;

ClusterConfig base_config(int n, NodeId holder) {
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = holder;
  config.tree = topology::Tree::star(n, 1);
  return config;
}

TEST(LamportComplexity, ThreeTimesNMinusOneWorstCase) {
  const int n = 7;
  Cluster cluster(algorithm_by_name("Lamport"), base_config(n, 1));
  // Probe from a node with no outstanding peers: N-1 REQUEST + N-1 ACK +
  // N-1 RELEASE.
  const ProbeResult probe = single_entry_probe(cluster, 3);
  EXPECT_EQ(probe.messages_total, static_cast<std::uint64_t>(3 * (n - 1)));
  EXPECT_EQ(cluster.network().stats().sent("REQUEST"),
            static_cast<std::uint64_t>(n - 1));
  EXPECT_EQ(cluster.network().stats().sent("ACKNOWLEDGE"),
            static_cast<std::uint64_t>(n - 1));
  EXPECT_EQ(cluster.network().stats().sent("RELEASE"),
            static_cast<std::uint64_t>(n - 1));
}

TEST(RicartAgrawalaComplexity, TwoTimesNMinusOneAlways) {
  const int n = 9;
  Cluster cluster(algorithm_by_name("Ricart-Agrawala"), base_config(n, 1));
  for (NodeId requester : {2, 5, 9, 2}) {
    const ProbeResult probe = single_entry_probe(cluster, requester);
    EXPECT_EQ(probe.messages_total, static_cast<std::uint64_t>(2 * (n - 1)));
  }
}

TEST(CarvalhoRoucairolComplexity, ZeroOnRepeatEntry) {
  const int n = 8;
  Cluster cluster(algorithm_by_name("Carvalho-Roucairol"),
                  base_config(n, 1));
  // First entry pays the full 2(N-1); repeats are free while nobody else
  // requests (the §2.3 lower bound of 0).
  const ProbeResult first = single_entry_probe(cluster, 4);
  EXPECT_EQ(first.messages_total, static_cast<std::uint64_t>(2 * (n - 1)));
  for (int repeat = 0; repeat < 3; ++repeat) {
    const ProbeResult again = single_entry_probe(cluster, 4);
    EXPECT_EQ(again.messages_total, 0u);
  }
  // Another node then requests: it must reclaim permissions, but never
  // more than 2(N-1) messages.
  const ProbeResult other = single_entry_probe(cluster, 5);
  EXPECT_GT(other.messages_total, 0u);
  EXPECT_LE(other.messages_total, static_cast<std::uint64_t>(2 * (n - 1)));
}

TEST(SuzukiKasamiComplexity, NMessagesOrZero) {
  const int n = 6;
  Cluster cluster(algorithm_by_name("Suzuki-Kasami"), base_config(n, 2));
  // Requester does not hold the token: N-1 REQUEST broadcasts + 1 TOKEN.
  const ProbeResult probe = single_entry_probe(cluster, 5);
  EXPECT_EQ(probe.messages_total, static_cast<std::uint64_t>(n));
  // Requester holds the token: free.
  const ProbeResult holder_probe = single_entry_probe(cluster, 5);
  EXPECT_EQ(holder_probe.messages_total, 0u);
}

TEST(SinghalComplexity, AtMostNMessages) {
  const int n = 8;
  Cluster cluster(algorithm_by_name("Singhal"), base_config(n, 1));
  for (NodeId requester : {3, 7, 2, 8, 3}) {
    const ProbeResult probe = single_entry_probe(cluster, requester);
    // Heuristic: REQUESTs go only to nodes believed requesting, plus one
    // TOKEN transfer — at most N of those. On top, a node that can
    // neither serve nor carry a request forwards it along the token
    // trail (the liveness repair found by the exhaustive explorer; see
    // SinghalNode::on_message), adding at most one forward per contacted
    // node: 2N bounds the total.
    EXPECT_LE(probe.messages_total, 2 * static_cast<std::uint64_t>(n));
  }
}

TEST(MaekawaComplexity, ProportionalToSqrtN) {
  const int n = 13;  // projective plane: committees of size 4
  Cluster cluster(algorithm_by_name("Maekawa"), base_config(n, 1));
  const ProbeResult probe = single_entry_probe(cluster, 5);
  // Uncontended: (K-1) REQUEST + (K-1) LOCKED + (K-1) RELEASE with K=4;
  // the committee contains self, whose exchange is local.
  EXPECT_EQ(probe.messages_total, 9u);
}

TEST(CentralComplexity, ThreeMessagesForClientsZeroForCoordinator) {
  const int n = 10;
  Cluster cluster(algorithm_by_name("Central"), base_config(n, 1));
  const ProbeResult client = single_entry_probe(cluster, 7);
  EXPECT_EQ(client.messages_total, 3u);  // REQUEST + GRANT + RELEASE
  EXPECT_EQ(client.messages_to_enter, 2u);
  const ProbeResult coordinator = single_entry_probe(cluster, 1);
  EXPECT_EQ(coordinator.messages_total, 0u);
}

TEST(RaymondComplexity, AtMostTwoDiameter) {
  const int n = 9;
  for (auto [make_tree, expected_diameter] :
       {std::pair{+[](int k) { return topology::Tree::line(k); }, 8},
        std::pair{+[](int k) { return topology::Tree::star(k, 1); }, 2}}) {
    ClusterConfig config;
    config.n = n;
    config.initial_token_holder = 1;
    config.tree = make_tree(n);
    Cluster cluster(algorithm_by_name("Raymond"), std::move(config));
    for (NodeId holder : {1, 5, 9}) {
      park_token_at(cluster, holder);
      for (NodeId requester : {2, 9, 1}) {
        if (requester == holder) continue;
        const ProbeResult probe = single_entry_probe(cluster, requester);
        EXPECT_LE(probe.messages_total,
                  static_cast<std::uint64_t>(2 * expected_diameter));
        park_token_at(cluster, holder);
      }
    }
  }
}

TEST(RaymondVsNeilsen, NeilsenStrictlyCheaperOnStarWorstCase) {
  // §6.1: star topology, token at a leaf, request from another leaf.
  // Raymond: REQUEST leaf->hub->leaf then PRIVILEGE leaf->hub->leaf = 4.
  // Neilsen: 2 REQUEST hops + 1 direct PRIVILEGE = 3.
  const int n = 8;
  ClusterConfig raymond_config = base_config(n, 2);
  Cluster raymond(algorithm_by_name("Raymond"), std::move(raymond_config));
  park_token_at(raymond, 2);
  const ProbeResult raymond_probe = single_entry_probe(raymond, 3);
  EXPECT_EQ(raymond_probe.messages_total, 4u);

  ClusterConfig neilsen_config = base_config(n, 2);
  Cluster neilsen(algorithm_by_name("Neilsen"), std::move(neilsen_config));
  park_token_at(neilsen, 2);
  const ProbeResult neilsen_probe = single_entry_probe(neilsen, 3);
  EXPECT_EQ(neilsen_probe.messages_total, 3u);
}

TEST(NeilsenComplexity, LineWorstCaseIsN) {
  // §6.1: on the straight line the upper bound is N = D+1.
  const int n = 9;
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::line(n);
  Cluster cluster(algorithm_by_name("Neilsen"), std::move(config));
  park_token_at(cluster, 1);
  const ProbeResult probe = single_entry_probe(cluster, n);
  EXPECT_EQ(probe.messages_total, static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace dmx::baselines
