// Behavioral unit tests for the baseline algorithms: the protocol paths
// that only fire under contention (deferred replies, token queues,
// quorum inquiries) and the variant knobs.
#include <gtest/gtest.h>

#include "baselines/carvalho_roucairol.hpp"
#include "baselines/lamport.hpp"
#include "baselines/maekawa.hpp"
#include "baselines/raymond.hpp"
#include "baselines/registry.hpp"
#include "baselines/singhal.hpp"
#include "baselines/suzuki_kasami.hpp"
#include "harness/cluster.hpp"
#include "harness/probe.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::baselines {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig config_for(int n, NodeId holder = 1) {
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = holder;
  config.tree = topology::Tree::star(n, 1);
  return config;
}

// --- Raymond -----------------------------------------------------------

TEST(RaymondBehavior, AskedFlagDedupesForwardedRequests) {
  // Two leaves request through the hub; the hub must forward only ONE
  // REQUEST toward the token holder (the ASKED flag).
  ClusterConfig config;
  config.n = 4;
  config.initial_token_holder = 4;  // a leaf holds the token
  config.tree = topology::Tree::star(4, 1);
  Cluster cluster(make_raymond_algorithm(), std::move(config));

  cluster.request_cs(2);
  cluster.request_cs(3);
  // Deliver exactly the two leaf REQUESTs at the hub and the hub's single
  // forward at node 4 (stopping before the PRIVILEGE hand-back, which
  // would clear ASKED and trigger a follow-up request for node 3).
  cluster.simulator().run(3);
  EXPECT_EQ(cluster.network().stats().sent("REQUEST"), 3u);  // 2 + 1 fwd
  EXPECT_TRUE(cluster.node_as<RaymondNode>(1).asked());
  EXPECT_EQ(cluster.node_as<RaymondNode>(1).queue().size(), 2u);

  // Drain: both leaves get served in request order.
  cluster.run_to_quiescence();
  EXPECT_TRUE(cluster.is_in_cs(2));
  cluster.release_cs(2);
  cluster.run_to_quiescence();
  EXPECT_TRUE(cluster.is_in_cs(3));
  cluster.release_cs(3);
}

TEST(RaymondBehavior, TokenFollowsHolderPointers) {
  ClusterConfig config;
  config.n = 5;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::line(5);
  Cluster cluster(make_raymond_algorithm(), std::move(config));
  harness::park_token_at(cluster, 5);
  // Every HOLDER pointer now leads toward node 5.
  for (NodeId v = 1; v <= 4; ++v) {
    EXPECT_EQ(cluster.node_as<RaymondNode>(v).holder(), v + 1);
  }
  EXPECT_TRUE(cluster.node(5).has_token());
}

// --- Suzuki–Kasami -------------------------------------------------------

TEST(SuzukiKasamiBehavior, TokenQueueBatchesWaiters) {
  Cluster cluster(make_suzuki_kasami_algorithm(), config_for(5, 1));
  // Node 1 holds the token inside its CS while 2, 3, 4 request.
  cluster.request_cs(1);
  cluster.request_cs(2);
  cluster.request_cs(3);
  cluster.request_cs(4);
  cluster.run_to_quiescence();
  // Release: LN updated, all three go onto the token queue, token moves.
  cluster.release_cs(1);
  cluster.run_to_quiescence();
  EXPECT_TRUE(cluster.is_in_cs(2) || cluster.is_in_cs(3) ||
              cluster.is_in_cs(4));
  // Exactly one token transfer so far; the queue rides inside the token.
  EXPECT_EQ(cluster.network().stats().sent("TOKEN"), 1u);
}

TEST(SuzukiKasamiBehavior, RequestNumbersAdvancePerBroadcast) {
  Cluster cluster(make_suzuki_kasami_algorithm(), config_for(3, 1));
  // First entry by node 2 broadcasts sn=1; the second entry happens while
  // node 2 already holds the token, so no broadcast and no RN change.
  harness::single_entry_probe(cluster, 2);
  harness::single_entry_probe(cluster, 2);
  EXPECT_EQ(cluster.node_as<SkNode>(3).request_number(2), 1);
  // Move the token away, then a fresh request from node 2 bumps its RN.
  harness::single_entry_probe(cluster, 3);
  harness::single_entry_probe(cluster, 2);
  EXPECT_EQ(cluster.node_as<SkNode>(3).request_number(2), 2);
  EXPECT_EQ(cluster.node_as<SkNode>(1).request_number(3), 1);
}

// --- Lamport -------------------------------------------------------------

TEST(LamportBehavior, NoOptVariantAcksEverything) {
  Cluster cluster(make_lamport_algorithm(false), config_for(6));
  // Two concurrent requesters: with the optimization disabled, each of
  // the other nodes ACKs every REQUEST — including the two requesters
  // ACKing each other.
  cluster.request_cs(2);
  cluster.request_cs(3);
  cluster.run_to_quiescence();
  EXPECT_EQ(cluster.network().stats().sent("ACKNOWLEDGE"), 10u);
  while (cluster.cs_occupant() != kNilNode ||
         cluster.is_waiting(2) || cluster.is_waiting(3)) {
    if (cluster.cs_occupant() != kNilNode) {
      cluster.release_cs(cluster.cs_occupant());
    }
    cluster.run_to_quiescence();
  }
}

TEST(LamportBehavior, OptimizedVariantSuppressesRequesterAcks) {
  Cluster cluster(make_lamport_algorithm(true), config_for(6));
  cluster.request_cs(2);
  cluster.request_cs(3);
  cluster.run_to_quiescence();
  // The two concurrent requesters suppress their mutual ACKs: 4 idle
  // nodes ACK each requester, requesters ACK nothing.
  EXPECT_EQ(cluster.network().stats().sent("ACKNOWLEDGE"), 8u);
  // Drain so the fixture tears down cleanly.
  while (cluster.cs_occupant() != kNilNode ||
         cluster.is_waiting(2) || cluster.is_waiting(3)) {
    if (cluster.cs_occupant() != kNilNode) {
      cluster.release_cs(cluster.cs_occupant());
    }
    cluster.run_to_quiescence();
  }
}

TEST(LamportBehavior, TimestampTieBrokenByNodeId) {
  // Simultaneous requests with equal clocks: the smaller id wins.
  Cluster cluster(make_lamport_algorithm(true), config_for(4));
  std::vector<NodeId> order;
  cluster.request_cs(3, [&](NodeId v) { order.push_back(v); });
  cluster.request_cs(2, [&](NodeId v) { order.push_back(v); });
  cluster.run_to_quiescence();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 2);
  cluster.release_cs(2);
  cluster.run_to_quiescence();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 3);
  cluster.release_cs(3);
}

// --- Carvalho–Roucairol ---------------------------------------------------

TEST(CarvalhoRoucairolBehavior, AuthorizationsPersistAcrossEntries) {
  Cluster cluster(make_carvalho_roucairol_algorithm(), config_for(5));
  harness::single_entry_probe(cluster, 3);
  for (NodeId j = 1; j <= 5; ++j) {
    EXPECT_TRUE(cluster.node_as<CrNode>(3).authorized_by(j));
  }
  // A request by node 4 strips node 3 of exactly one authorization.
  harness::single_entry_probe(cluster, 4);
  EXPECT_FALSE(cluster.node_as<CrNode>(3).authorized_by(4));
  EXPECT_TRUE(cluster.node_as<CrNode>(3).authorized_by(2));
}

TEST(CarvalhoRoucairolBehavior, ConcurrentRequestersStaySafe) {
  Cluster cluster(make_carvalho_roucairol_algorithm(), config_for(4));
  // Repeated simultaneous request pairs; the harness asserts mutual
  // exclusion continuously.
  for (int round = 0; round < 20; ++round) {
    std::vector<NodeId> entered;
    cluster.hold_and_release(2, 3);
    cluster.hold_and_release(3, 3);
    cluster.run_to_quiescence();
  }
  EXPECT_EQ(cluster.total_entries(), 40u);
}

// --- Singhal ----------------------------------------------------------------

TEST(SinghalBehavior, HeuristicSendsToRequestingSubsetOnly) {
  Cluster cluster(make_singhal_algorithm(), config_for(8));
  cluster.network().reset_stats();
  // Node 3's staircase knows only {1, 2} as possible holders.
  cluster.request_cs(3);
  EXPECT_EQ(cluster.network().stats().sent("REQUEST"), 2u);
  cluster.run_to_quiescence();
  EXPECT_TRUE(cluster.is_in_cs(3));
  cluster.release_cs(3);
}

TEST(SinghalBehavior, KnowledgeSpreadsWithTheToken) {
  Cluster cluster(make_singhal_algorithm(), config_for(6));
  harness::single_entry_probe(cluster, 4);
  // Node 4 now knows node 1 gave the token away (merged arrays).
  EXPECT_TRUE(cluster.node(4).has_token());
  EXPECT_EQ(cluster.node_as<SinghalNode>(4).known_state(4),
            SinghalState::kHolding);
}

// --- Maekawa ------------------------------------------------------------------

TEST(MaekawaBehavior, InquireRelinquishPathFires) {
  // Priority inversion: a high-id node locks part of its quorum, then a
  // lower-priority... rather, a lower-(seq,id) request arrives at a
  // locked arbiter and must INQUIRE the current holder. Drive many
  // contended rounds and assert the rare-path message kinds all fired.
  ClusterConfig config;
  config.n = 13;  // projective-plane committees of 4
  config.initial_token_holder = 1;
  config.tree = topology::Tree::star(13, 1);
  config.latency_model = std::make_unique<net::UniformLatency>(1, 9);
  config.seed = 3;
  Cluster cluster(make_maekawa_algorithm(), std::move(config));

  workload::WorkloadConfig wl;
  wl.target_entries = 600;
  wl.mean_think_ticks = 2.0;
  wl.hold_lo = 0;
  wl.hold_hi = 3;
  wl.seed = 41;
  workload::run_workload(cluster, wl);

  const auto& stats = cluster.network().stats();
  EXPECT_GT(stats.sent("FAIL"), 0u);
  EXPECT_GT(stats.sent("INQUIRE"), 0u);
  EXPECT_GT(stats.sent("RELINQUISH"), 0u);
  EXPECT_GT(stats.sent("LOCKED"), stats.sent("RELINQUISH"));
}

TEST(MaekawaBehavior, QuorumsComeFromRegistry) {
  Cluster cluster(make_maekawa_algorithm(), config_for(13));
  for (NodeId v = 1; v <= 13; ++v) {
    EXPECT_EQ(cluster.node_as<MaekawaNode>(v).quorum().size(), 4u);
  }
}

// --- Debug output -----------------------------------------------------------

TEST(BaselineDebug, AllAlgorithmsRenderState) {
  for (const auto& algo : all_algorithms()) {
    Cluster cluster(algo, config_for(4));
    for (NodeId v = 1; v <= 4; ++v) {
      EXPECT_FALSE(cluster.node(v).debug_state().empty()) << algo.name;
    }
  }
}

}  // namespace
}  // namespace dmx::baselines

// ---- heavy randomized stress for the intricate protocols -------------------
// (regression net for round-boundary races like the stale-INQUIRE bug the
// timestamped-message fix addresses)

namespace dmx::baselines {
namespace {

class IntricateProtocolStress
    : public ::testing::TestWithParam<std::string> {};

TEST_P(IntricateProtocolStress, ManySeedsJitteredSaturation) {
  const proto::Algorithm algo = algorithm_by_name(GetParam());
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    ClusterConfig config;
    config.n = 13;
    config.initial_token_holder = 1;
    config.tree = topology::Tree::random_tree(13, seed);
    config.latency_model = std::make_unique<net::ExponentialLatency>(4.0);
    config.seed = seed;
    Cluster cluster(algo, std::move(config));

    workload::WorkloadConfig wl;
    wl.target_entries = 250;
    wl.mean_think_ticks = seed % 3 == 0 ? 0.0 : 2.0;
    wl.hold_lo = 0;
    wl.hold_hi = 3;
    wl.seed = seed * 101 + 7;
    const workload::WorkloadResult result =
        workload::run_workload(cluster, wl);
    ASSERT_GE(result.entries, wl.target_entries)
        << algo.name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntricateProtocolStress,
                         ::testing::Values("Maekawa", "Singhal",
                                           "Carvalho-Roucairol"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace dmx::baselines
