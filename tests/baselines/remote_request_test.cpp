// has_remote_request() conformance: for every registered algorithm the
// predicate must flip exactly when a request from ANOTHER node is queued
// at this one, and drop back once that request has been served. The lease
// layer renews a holder's chain window only while the holder's instance
// reports no remote demand, so a predicate stuck false would starve
// remote requesters and one stuck true would defeat renewal — both are
// caught here.
#include <gtest/gtest.h>

#include <string>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"

namespace dmx::baselines {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig make_config(int n) {
  ClusterConfig config;
  config.n = n;
  // Holder fixed at node 1 (Singhal's staircase init requires it anyway),
  // so the flip assertions below always target the same node.
  config.initial_token_holder = 1;
  config.tree = topology::Tree::star(n, 1);
  config.seed = 7;
  return config;
}

class RemoteRequestPredicate : public ::testing::TestWithParam<std::string> {};

TEST_P(RemoteRequestPredicate, FlipsWithARemoteRequestAndDrainsClean) {
  const proto::Algorithm algo = algorithm_by_name(GetParam());
  constexpr int n = 3;
  Cluster cluster(algo, make_config(n));

  // Quiescent start: no request anywhere, so no node may report one.
  for (NodeId v = 1; v <= n; ++v) {
    EXPECT_FALSE(cluster.node(v).has_remote_request())
        << algo.name << ": node " << v << " reports a phantom request";
  }

  // Node 1 enters its own CS. Its OWN request is local, so node 1 itself
  // must still report false — that is exactly the state in which a lease
  // renewal is sound.
  bool entered = false;
  cluster.request_cs(1, [&](NodeId) { entered = true; });
  cluster.run_to_quiescence();
  ASSERT_TRUE(entered) << algo.name;
  EXPECT_FALSE(cluster.node(1).has_remote_request())
      << algo.name << ": holder reports its own request as remote";

  // Node 3 requests while node 1 holds. (Node 3, not 2: with the n=3
  // projective-plane quorums {1,2},{2,3},{1,3}, node 2's only contended
  // Maekawa arbiter would be node 2 itself — a self request, invisible by
  // definition. Node 3's contended arbiter is node 1.) The request parks
  // somewhere in the structure: at least one node other than the
  // requester must now see it, and any algorithm whose holder can see
  // (holder_sees_remote_requests) must see it AT THE HOLDER — the
  // property the lease renewal relies on.
  cluster.request_cs(3, [](NodeId) {});
  cluster.run_to_quiescence();
  ASSERT_TRUE(cluster.is_in_cs(1)) << algo.name;
  bool seen_somewhere = false;
  for (NodeId v = 1; v <= n; ++v) {
    if (v != 3 && cluster.node(v).has_remote_request()) seen_somewhere = true;
  }
  EXPECT_TRUE(seen_somewhere)
      << algo.name << ": node 3's parked request is invisible everywhere";
  if (algo.holder_sees_remote_requests) {
    EXPECT_TRUE(cluster.node(1).has_remote_request())
        << algo.name << ": holder is blind to node 3's queued request";
  }

  // Serve node 3 and drain both critical sections: every predicate must
  // drop back to false (nothing pending anywhere).
  cluster.release_cs(1);
  cluster.run_to_quiescence();
  ASSERT_TRUE(cluster.is_in_cs(3)) << algo.name;
  cluster.release_cs(3);
  cluster.run_to_quiescence();
  for (NodeId v = 1; v <= n; ++v) {
    EXPECT_FALSE(cluster.node(v).has_remote_request())
        << algo.name << ": node " << v << " still reports a served request";
  }
}

std::vector<std::string> algorithm_names() {
  std::vector<std::string> names;
  for (const auto& algo : all_algorithms()) {
    names.push_back(algo.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RemoteRequestPredicate, ::testing::ValuesIn(algorithm_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(RemoteRequestPredicate, VisibilityMetadataMatchesTheRegistry) {
  // The renewal policy keys off holder_sees_remote_requests; pin which
  // algorithms are blind so a registry edit cannot silently flip one.
  for (const auto& algo : all_algorithms()) {
    const bool blind = algo.name == "Maekawa" || algo.name == "Central";
    EXPECT_EQ(algo.holder_sees_remote_requests, !blind) << algo.name;
  }
}

}  // namespace
}  // namespace dmx::baselines
