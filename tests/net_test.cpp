// Tests for the simulated network: FIFO channels, latency models,
// counters, in-flight introspection.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace dmx::net {
namespace {

class TestMessage final : public Message {
 public:
  explicit TestMessage(int value, std::string_view kind = "TEST")
      : Message(MessageKind::of(kind)), value_(value) {}
  int value() const { return value_; }
  std::size_t payload_bytes() const override { return sizeof(int); }
  MessagePtr clone() const override {
    return std::make_unique<TestMessage>(*this);
  }

 private:
  int value_;
};

struct Delivery {
  NodeId from;
  NodeId to;
  int value;
  Tick at;
};

class NetTest : public ::testing::Test {
 protected:
  void install(int n, std::unique_ptr<LatencyModel> latency,
               std::uint64_t seed = 1) {
    network = std::make_unique<Network>(sim, n, std::move(latency), seed);
    network->set_delivery_handler([this](const Envelope& env) {
      const auto& msg = dynamic_cast<const TestMessage&>(*env.message);
      deliveries.push_back({env.from, env.to, msg.value(), sim.now()});
    });
  }

  sim::Simulator sim;
  std::unique_ptr<Network> network;
  std::vector<Delivery> deliveries;
};

TEST_F(NetTest, DeliversWithFixedLatency) {
  install(2, std::make_unique<FixedLatency>(5));
  network->send(1, 2, std::make_unique<TestMessage>(7));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].value, 7);
  EXPECT_EQ(deliveries[0].at, 5);
}

TEST_F(NetTest, PerChannelFifoWithFixedLatency) {
  install(2, std::make_unique<FixedLatency>(3));
  for (int i = 0; i < 10; ++i) {
    network->send(1, 2, std::make_unique<TestMessage>(i));
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(deliveries[static_cast<std::size_t>(i)].value, i);
  }
}

TEST_F(NetTest, PerChannelFifoSurvivesRandomLatency) {
  // Exponential latency would reorder; the network must clamp deliveries
  // to preserve per-channel order (the paper's no-overtaking assumption).
  install(3, std::make_unique<ExponentialLatency>(20.0), 99);
  for (int i = 0; i < 200; ++i) {
    network->send(1, 2, std::make_unique<TestMessage>(i));
  }
  sim.run();
  ASSERT_EQ(deliveries.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(deliveries[static_cast<std::size_t>(i)].value, i);
  }
}

TEST_F(NetTest, DifferentChannelsMayInterleave) {
  install(3, std::make_unique<FixedLatency>(2));
  network->send(1, 3, std::make_unique<TestMessage>(1));
  sim.run_until(1);
  network->send(2, 3, std::make_unique<TestMessage>(2));
  sim.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].value, 1);
  EXPECT_EQ(deliveries[1].value, 2);
}

TEST_F(NetTest, CountsPerKindAndBytes) {
  install(2, std::make_unique<FixedLatency>(1));
  network->send(1, 2, std::make_unique<TestMessage>(1, "A"));
  network->send(1, 2, std::make_unique<TestMessage>(2, "A"));
  network->send(2, 1, std::make_unique<TestMessage>(3, "B"));
  sim.run();
  EXPECT_EQ(network->stats().total_sent, 3u);
  EXPECT_EQ(network->stats().sent("A"), 2u);
  EXPECT_EQ(network->stats().sent("B"), 1u);
  EXPECT_EQ(network->stats().sent("C"), 0u);
  EXPECT_EQ(network->stats().total_payload_bytes, 3 * sizeof(int));
}

TEST_F(NetTest, ResetStatsZeroesCounters) {
  install(2, std::make_unique<FixedLatency>(1));
  network->send(1, 2, std::make_unique<TestMessage>(1));
  sim.run();
  network->reset_stats();
  EXPECT_EQ(network->stats().total_sent, 0u);
  EXPECT_EQ(network->stats().sent("TEST"), 0u);
}

TEST_F(NetTest, InFlightTracking) {
  install(3, std::make_unique<FixedLatency>(10));
  network->send(1, 2, std::make_unique<TestMessage>(1, "X"));
  network->send(1, 3, std::make_unique<TestMessage>(2, "Y"));
  EXPECT_EQ(network->in_flight_count(), 2u);
  EXPECT_EQ(network->in_flight_count("X"), 1u);
  EXPECT_EQ(network->in_flight_count("Y"), 1u);
  EXPECT_EQ(network->in_flight_count("Z"), 0u);
  sim.run();
  EXPECT_EQ(network->in_flight_count(), 0u);
}

TEST_F(NetTest, ForEachInFlightVisitsAll) {
  install(3, std::make_unique<FixedLatency>(10));
  network->send(1, 2, std::make_unique<TestMessage>(1));
  network->send(2, 3, std::make_unique<TestMessage>(2));
  int visited = 0;
  network->for_each_in_flight([&](const Envelope& env) {
    ++visited;
    EXPECT_GE(env.deliver_at, 10);
  });
  EXPECT_EQ(visited, 2);
}

TEST_F(NetTest, SelfSendRejected) {
  install(2, std::make_unique<FixedLatency>(1));
  EXPECT_THROW(network->send(1, 1, std::make_unique<TestMessage>(0)),
               std::logic_error);
}

TEST_F(NetTest, OutOfRangeNodesRejected) {
  install(2, std::make_unique<FixedLatency>(1));
  EXPECT_THROW(network->send(0, 2, std::make_unique<TestMessage>(0)),
               std::logic_error);
  EXPECT_THROW(network->send(1, 3, std::make_unique<TestMessage>(0)),
               std::logic_error);
}

TEST_F(NetTest, ObserverSeesSendAndDeliver) {
  struct Spy : NetworkObserver {
    int sends = 0;
    int delivers = 0;
    void on_send(const Envelope&) override { ++sends; }
    void on_deliver(const Envelope&) override { ++delivers; }
  };
  install(2, std::make_unique<FixedLatency>(1));
  Spy spy;
  network->set_observer(&spy);
  network->send(1, 2, std::make_unique<TestMessage>(1));
  EXPECT_EQ(spy.sends, 1);
  EXPECT_EQ(spy.delivers, 0);
  sim.run();
  EXPECT_EQ(spy.delivers, 1);
}

TEST_F(NetTest, PartitionSeversBothDirectionsUntilHealed) {
  install(3, std::make_unique<FixedLatency>(1));
  network->partition(1, 2);
  EXPECT_TRUE(network->is_partitioned(1, 2));
  EXPECT_TRUE(network->is_partitioned(2, 1));  // symmetric
  EXPECT_FALSE(network->is_partitioned(1, 3));
  network->send(1, 2, std::make_unique<TestMessage>(1));
  network->send(2, 1, std::make_unique<TestMessage>(2));
  network->send(1, 3, std::make_unique<TestMessage>(3));  // unaffected link
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].value, 3);
  EXPECT_EQ(network->stats().total_sent, 3u);  // severed sends still count
  EXPECT_EQ(network->stats().total_dropped, 2u);

  network->heal(1, 2);
  EXPECT_FALSE(network->is_partitioned(1, 2));
  network->send(1, 2, std::make_unique<TestMessage>(4));
  network->send(2, 1, std::make_unique<TestMessage>(5));
  sim.run();
  EXPECT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(network->stats().total_dropped, 2u);
}

TEST_F(NetTest, PartitionLeavesInFlightEnvelopesToDeliver) {
  // A partition severs the LINK, not the wire already traversed: it drops
  // at send time only. Envelopes mid-flight when the link goes down still
  // deliver, and every per-resource/per-kind in-flight counter must agree
  // with that — in particular a PRIVILEGE (the token) launched before the
  // partition keeps existing exactly once, so the token-uniqueness
  // witness (in-flight PRIVILEGE count plus holder count) is unaffected.
  install(3, std::make_unique<FixedLatency>(10));
  const ResourceId r = 0;
  const MessageKind privilege = MessageKind::of("PRIVILEGE");
  network->send(r, 1, 2,
                std::make_unique<TestMessage>(1, "PRIVILEGE"));  // the token
  network->send(r, 1, 2, std::make_unique<TestMessage>(2, "TEST"));
  sim.run_until(5);
  EXPECT_EQ(network->in_flight_count(), 2u);
  EXPECT_EQ(network->in_flight_count(r, privilege), 1u);

  network->partition(1, 2);  // both envelopes are mid-flight, due at t=10

  // In flight means in flight: the partition changed nothing about them.
  EXPECT_EQ(network->in_flight_count(), 2u);
  EXPECT_EQ(network->in_flight_count(r, privilege), 1u);
  EXPECT_EQ(network->in_flight_count(r, Epoch{0}, privilege), 1u);

  // New traffic on the severed link is dropped at send, and the dropped
  // PRIVILEGE never enters the in-flight accounting (it never existed on
  // the wire — the counter must not leak upward and later underflow).
  network->send(r, 2, 1, std::make_unique<TestMessage>(3, "PRIVILEGE"));
  EXPECT_EQ(network->in_flight_count(r, privilege), 1u);
  EXPECT_EQ(network->stats().total_dropped, 1u);

  int discards = 0;
  network->set_discard_handler(
      [&](const Envelope&, Network::DiscardReason) { ++discards; });
  sim.run();

  // Both pre-partition envelopes delivered (no discards), counters drained
  // to zero exactly once each.
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].value, 1);
  EXPECT_EQ(deliveries[1].value, 2);
  EXPECT_EQ(discards, 0);
  EXPECT_EQ(network->in_flight_count(), 0u);
  EXPECT_EQ(network->in_flight_count(r, privilege), 0u);
  EXPECT_EQ(network->in_flight_count(r, Epoch{0}, privilege), 0u);
  // Exactly one token ever existed: one PRIVILEGE sent, none duplicated.
  EXPECT_EQ(network->stats().sent(privilege), 2u);  // 1 delivered + 1 dropped
  EXPECT_EQ(network->stats().total_duplicated, 0u);
}

TEST_F(NetTest, DeadNodeEatsInFlightTrafficAtDelivery) {
  install(3, std::make_unique<FixedLatency>(10));
  int discards = 0;
  network->set_discard_handler(
      [&](const Envelope& env, Network::DiscardReason reason) {
        EXPECT_EQ(env.to, 2);
        EXPECT_EQ(reason, Network::DiscardReason::kDeadDestination);
        ++discards;
      });
  network->send(1, 2, std::make_unique<TestMessage>(1));
  sim.run_until(5);
  network->set_node_down(2);  // message is mid-flight, due at t=10
  network->send(1, 2, std::make_unique<TestMessage>(2));  // dropped at send
  sim.run();
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(discards, 1);  // only the in-flight one reaches the handler
  EXPECT_EQ(network->stats().total_dropped, 2u);
  EXPECT_EQ(network->in_flight_count(), 0u);

  network->set_node_up(2);
  network->send(1, 2, std::make_unique<TestMessage>(3));
  sim.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].value, 3);
}

TEST_F(NetTest, StaleEpochEnvelopesAreFencedAtDelivery) {
  install(2, std::make_unique<FixedLatency>(10));
  std::vector<Network::DiscardReason> reasons;
  network->set_discard_handler(
      [&](const Envelope&, Network::DiscardReason reason) {
        reasons.push_back(reason);
      });
  // Epoch-0 message departs; the resource moves to epoch 1 mid-flight.
  network->send(0, 1, 2, std::make_unique<TestMessage>(1, "PRIVILEGE"), 0);
  EXPECT_EQ(network->in_flight_count(0, Epoch{0}, MessageKind::of("PRIVILEGE")),
            1u);
  sim.run_until(5);
  network->set_resource_epoch(0, 1);
  network->send(0, 2, 1, std::make_unique<TestMessage>(2, "PRIVILEGE"), 1);
  sim.run();
  // The stale envelope was fenced, the current-epoch one delivered.
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].value, 2);
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], Network::DiscardReason::kStaleEpoch);
  EXPECT_EQ(network->stats().total_fenced, 1u);
  EXPECT_EQ(network->in_flight_count(0, Epoch{0}, MessageKind::of("PRIVILEGE")),
            0u);
  EXPECT_EQ(network->in_flight_count(0, Epoch{1}, MessageKind::of("PRIVILEGE")),
            0u);
}

TEST(LatencyModels, FixedAlwaysSame) {
  Rng rng(1);
  FixedLatency model(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.sample(1, 2, rng), 7);
  }
}

TEST(LatencyModels, UniformWithinBounds) {
  Rng rng(1);
  UniformLatency model(3, 9);
  for (int i = 0; i < 1000; ++i) {
    const Tick t = model.sample(1, 2, rng);
    EXPECT_GE(t, 3);
    EXPECT_LE(t, 9);
  }
}

TEST(LatencyModels, ExponentialAtLeastOne) {
  Rng rng(1);
  ExponentialLatency model(2.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.sample(1, 2, rng), 1);
  }
}

TEST(LatencyModels, SubUnitLatencyRejected) {
  EXPECT_THROW(FixedLatency(0), std::logic_error);
  EXPECT_THROW(UniformLatency(0, 5), std::logic_error);
  EXPECT_THROW(ExponentialLatency(0.5), std::logic_error);
}

}  // namespace
}  // namespace dmx::net
