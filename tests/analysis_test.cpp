// Tests for the closed-form cost models — including the key property that
// measured averages on ARBITRARY trees equal the analytic generalization
// of the paper's §6.2 derivation.
#include <gtest/gtest.h>

#include "analysis/formulas.hpp"
#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "harness/probe.hpp"
#include "topology/tree.hpp"

namespace dmx::analysis {
namespace {

TEST(Formulas, WorstCases) {
  EXPECT_EQ(lamport_worst_case(10), 27);
  EXPECT_EQ(ricart_agrawala_worst_case(10), 18);
  EXPECT_EQ(carvalho_roucairol_worst_case(10), 18);
  EXPECT_EQ(suzuki_kasami_worst_case(10), 10);
  EXPECT_EQ(singhal_worst_case(10), 10);
  EXPECT_EQ(central_worst_case(), 3);
  EXPECT_NEAR(maekawa_best_case(16), 12.0, 1e-9);
  EXPECT_NEAR(maekawa_worst_case(16), 28.0, 1e-9);
}

TEST(Formulas, TopologyDependentWorstCases) {
  const topology::Tree line = topology::Tree::line(9);
  const topology::Tree star = topology::Tree::star(9, 1);
  EXPECT_EQ(neilsen_worst_case(line), 9);   // N on the line
  EXPECT_EQ(neilsen_worst_case(star), 3);   // 3 on the star
  EXPECT_EQ(raymond_worst_case(line), 16);  // 2D
  EXPECT_EQ(raymond_worst_case(star), 4);
}

TEST(Formulas, StarAverageMatchesPaperValues) {
  // §6.2 closed forms at the sizes the bench prints.
  EXPECT_NEAR(neilsen_star_average(3), 14.0 / 9.0, 1e-12);
  EXPECT_NEAR(neilsen_star_average(5), 2.08, 1e-12);
  EXPECT_NEAR(central_average(10), 2.7, 1e-12);
}

TEST(Formulas, TreeAverageGeneralizesStarFormula) {
  // On the star the generalized per-tree average must reduce to the
  // paper's 3 - 5/N + 2/N^2 exactly.
  for (int n : {3, 5, 10, 25}) {
    const topology::Tree star = topology::Tree::star(n, 1);
    EXPECT_NEAR(neilsen_tree_average(star), neilsen_star_average(n), 1e-12)
        << "n=" << n;
  }
}

TEST(Formulas, SyncDelays) {
  const topology::Tree line = topology::Tree::line(7);
  EXPECT_EQ(neilsen_sync_delay(), 1);
  EXPECT_EQ(suzuki_kasami_sync_delay(), 1);
  EXPECT_EQ(singhal_sync_delay(), 1);
  EXPECT_EQ(central_sync_delay(), 2);
  EXPECT_EQ(raymond_sync_delay(line), 6);
}

TEST(Formulas, NeilsenStateBytes) {
  EXPECT_EQ(neilsen_node_state_bytes(), 9u);
}

class TreeAverageProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TreeAverageProperty, MeasuredEqualsAnalyticOnRandomTrees) {
  // The strongest correctness statement about the message-cost model:
  // enumerate all (holder, requester) probes on a random tree and compare
  // with the closed form, for both Neilsen and Raymond.
  const std::uint64_t seed = GetParam();
  const int n = 7;
  const topology::Tree tree = topology::Tree::random_tree(n, seed);

  for (const char* name : {"Neilsen", "Raymond"}) {
    harness::ClusterConfig config;
    config.n = n;
    config.initial_token_holder = 1;
    config.tree = tree;
    harness::Cluster cluster(baselines::algorithm_by_name(name),
                             std::move(config));
    std::uint64_t total = 0;
    for (NodeId holder = 1; holder <= n; ++holder) {
      harness::park_token_at(cluster, holder);
      for (NodeId requester = 1; requester <= n; ++requester) {
        total +=
            harness::single_entry_probe(cluster, requester).messages_total;
        harness::park_token_at(cluster, holder);
      }
    }
    const double measured =
        static_cast<double>(total) / static_cast<double>(n * n);
    const double analytic = std::string(name) == "Neilsen"
                                ? neilsen_tree_average(tree)
                                : raymond_tree_average(tree);
    EXPECT_NEAR(measured, analytic, 1e-9) << name << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeAverageProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace dmx::analysis
