// Tests for logical-tree topologies: generators, metrics, orientation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/tree.hpp"

namespace dmx::topology {
namespace {

TEST(TreeFromEdges, RejectsWrongEdgeCount) {
  EXPECT_THROW(Tree::from_edges(3, {{1, 2}}), std::logic_error);
  EXPECT_THROW(Tree::from_edges(2, {{1, 2}, {1, 2}}), std::logic_error);
}

TEST(TreeFromEdges, RejectsCycle) {
  // 4 nodes, 3 edges, but a triangle + isolated node: disconnected/cyclic.
  EXPECT_THROW(Tree::from_edges(4, {{1, 2}, {2, 3}, {3, 1}}),
               std::logic_error);
}

TEST(TreeFromEdges, RejectsSelfLoopAndOutOfRange) {
  EXPECT_THROW(Tree::from_edges(2, {{1, 1}}), std::logic_error);
  EXPECT_THROW(Tree::from_edges(2, {{1, 3}}), std::logic_error);
}

TEST(TreeFromEdges, RejectsDuplicateEdge) {
  EXPECT_THROW(Tree::from_edges(3, {{1, 2}, {2, 1}}), std::logic_error);
}

TEST(TreeFromEdges, SingleNodeTree) {
  const Tree t = Tree::from_edges(1, {});
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.diameter(), 0);
  EXPECT_TRUE(t.neighbors(1).empty());
}

TEST(TreeLine, StructureAndDiameter) {
  const Tree t = Tree::line(6);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.diameter(), 5);
  EXPECT_EQ(t.degree(1), 1);
  EXPECT_EQ(t.degree(3), 2);
  EXPECT_EQ(t.distance(1, 6), 5);
}

TEST(TreeStar, CentralizedTopologyHasDiameterTwo) {
  // Figure 8: the paper's best topology.
  const Tree t = Tree::star(10, 1);
  EXPECT_EQ(t.diameter(), 2);
  EXPECT_EQ(t.degree(1), 9);
  for (NodeId v = 2; v <= 10; ++v) {
    EXPECT_EQ(t.degree(v), 1);
    EXPECT_EQ(t.distance(1, v), 1);
  }
  EXPECT_EQ(t.distance(2, 10), 2);
}

TEST(TreeStar, NonDefaultCenter) {
  const Tree t = Tree::star(5, 3);
  EXPECT_EQ(t.degree(3), 4);
  EXPECT_EQ(t.center(), 3);
}

TEST(TreeRadiatingStar, ArmsAreBalanced) {
  const Tree t = Tree::radiating_star(7, 3);  // hub + 3 arms of 2
  EXPECT_EQ(t.degree(1), 3);
  EXPECT_EQ(t.diameter(), 4);  // leaf -> hub -> leaf across two arms
}

TEST(TreeKary, BinaryTreeDepth) {
  const Tree t = Tree::kary(7, 2);  // perfect binary tree of depth 2
  EXPECT_EQ(t.degree(1), 2);
  EXPECT_EQ(t.distance(1, 7), 2);
  EXPECT_EQ(t.diameter(), 4);
}

TEST(TreeRandom, IsAlwaysAValidTree) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    for (int n : {1, 2, 3, 5, 10, 33}) {
      const Tree t = Tree::random_tree(n, seed);
      EXPECT_EQ(t.size(), n);
      // from_edges already validates; spot-check connectivity.
      for (NodeId v = 1; v <= n; ++v) {
        EXPECT_GE(t.distance(1, v), 0);
      }
    }
  }
}

TEST(TreeRandom, DifferentSeedsGiveDifferentTrees) {
  const Tree a = Tree::random_tree(12, 1);
  const Tree b = Tree::random_tree(12, 2);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(TreePath, EndpointsInclusiveAndUnique) {
  const Tree t = Tree::line(5);
  const auto path = t.path(2, 5);
  EXPECT_EQ(path, (std::vector<NodeId>{2, 3, 4, 5}));
  const auto self_path = t.path(3, 3);
  EXPECT_EQ(self_path, (std::vector<NodeId>{3}));
}

TEST(TreePath, PathThroughStarCenter) {
  const Tree t = Tree::star(6, 1);
  const auto path = t.path(4, 5);
  EXPECT_EQ(path, (std::vector<NodeId>{4, 1, 5}));
}

TEST(TreeEccentricity, LineEndpoints) {
  const Tree t = Tree::line(7);
  EXPECT_EQ(t.eccentricity(1), 6);
  EXPECT_EQ(t.eccentricity(4), 3);
  EXPECT_EQ(t.center(), 4);
}

TEST(TreeNextPointers, OrientsTowardRoot) {
  const Tree t = Tree::line(5);
  const auto next = t.next_pointers_toward(3);
  EXPECT_EQ(next[1], 2);
  EXPECT_EQ(next[2], 3);
  EXPECT_EQ(next[3], kNilNode);
  EXPECT_EQ(next[4], 3);
  EXPECT_EQ(next[5], 4);
}

TEST(TreeNextPointers, EveryNodeReachesRoot) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Tree t = Tree::random_tree(20, seed);
    for (NodeId root = 1; root <= 20; root += 7) {
      const auto next = t.next_pointers_toward(root);
      for (NodeId v = 1; v <= 20; ++v) {
        NodeId cur = v;
        int steps = 0;
        while (cur != root) {
          cur = next[static_cast<std::size_t>(cur)];
          ASSERT_NE(cur, kNilNode);
          ASSERT_LT(++steps, 20);
        }
      }
    }
  }
}

TEST(TreeEdges, NormalizedAndSorted) {
  const Tree t = Tree::from_edges(4, {{4, 3}, {2, 1}, {3, 2}});
  const auto& edges = t.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const auto& [a, b] : edges) {
    EXPECT_LT(a, b);
  }
}

TEST(TreeNeighbors, SortedAscending) {
  const Tree t = Tree::star(6, 3);
  const auto& nbrs = t.neighbors(3);
  EXPECT_EQ(nbrs, (std::vector<NodeId>{1, 2, 4, 5, 6}));
}

}  // namespace
}  // namespace dmx::topology
