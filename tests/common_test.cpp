// Tests for common utilities: deterministic RNG and check macros.
#include <gtest/gtest.h>

#include <set>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dmx {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const std::uint64_t first = a.next();
  a.next();
  a.reseed(7);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(9, 9), 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(42);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_int(0, 7));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ExponentialMeanIsApproximatelyRight) {
  Rng rng(11);
  double sum = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    sum += rng.exponential(10.0);
  }
  EXPECT_NEAR(sum / samples, 10.0, 0.2);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(3.0), 0.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(DMX_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsLogicError) {
  EXPECT_THROW(DMX_CHECK(false), std::logic_error);
}

TEST(Check, FailingCheckMsgIncludesMessage) {
  try {
    DMX_CHECK_MSG(false, "node " << 42 << " broke");
    FAIL() << "expected throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("node 42 broke"), std::string::npos);
  }
}

}  // namespace
}  // namespace dmx
