// Exhaustive crash exploration: the explorer injects the crash of a
// configured node at EVERY reachable point of the protocol — including
// while the victim holds the token or has it in flight — and verifies
// that with regeneration on, no interleaving violates mutual exclusion,
// token uniqueness (<= 1 degraded, == 1 after regeneration), the
// post-repair structural invariants, or starvation freedom; and that with
// regeneration OFF, the checker produces the counterexample trace in
// which the crash strands a waiter forever.
#include <gtest/gtest.h>

#include <string>

#include "baselines/registry.hpp"
#include "modelcheck/explorer.hpp"
#include "topology/tree.hpp"

namespace dmx::modelcheck {
namespace {

ExplorerConfig crash_config(const proto::Algorithm& algorithm,
                            const topology::Tree& tree, NodeId holder,
                            NodeId victim, bool regeneration) {
  ExplorerConfig config;
  config.algorithm = &algorithm;
  config.n = tree.size();
  config.initial_token_holder = holder;
  config.tree = &tree;
  config.requests_per_node = 1;
  config.crash_node = victim;
  config.regeneration = regeneration;
  return config;
}

bool has_action(const std::vector<Action>& trace, Action::Type type) {
  for (const Action& action : trace) {
    if (action.type == type) return true;
  }
  return false;
}

// ---- Regeneration on: every crash point must be survivable -----------------

TEST(ExplorerFault, NeilsenSurvivesTokenHolderCrashEverywhere) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(3);
  // The victim is the initial token holder — the crash kills the token
  // in some interleavings and merely the DAG structure in others.
  const ExplorerResult result = explore(crash_config(algo, tree, 1, 1, true));
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.states, 100u);
  EXPECT_GE(result.terminal_states, 1u);
}

TEST(ExplorerFault, RaymondSurvivesTokenHolderCrashEverywhere) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::line(3);
  const ExplorerResult result = explore(crash_config(algo, tree, 1, 1, true));
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.states, 100u);
}

TEST(ExplorerFault, BystanderCrashIsAlsoSurvivable) {
  // Crashing a non-holder exercises structure repair without token loss:
  // the line 1-2-3 loses its middle node while requests route through it.
  for (const char* name : {"Neilsen", "Raymond"}) {
    const proto::Algorithm algo = baselines::algorithm_by_name(name);
    const topology::Tree tree = topology::Tree::line(3);
    const ExplorerResult result =
        explore(crash_config(algo, tree, 1, 2, true));
    EXPECT_TRUE(result.ok) << name << ": " << result.violation;
  }
}

TEST(ExplorerFault, StarOfFourHolderCrashWithRegeneration) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::star(4, 1);
  const ExplorerResult result = explore(crash_config(algo, tree, 1, 1, true));
  EXPECT_TRUE(result.ok) << result.violation;
}

// ---- Regeneration off: the crash must produce a counterexample -------------

TEST(ExplorerFault, NeilsenTokenHolderCrashWithoutRegenerationStrandsWaiter) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(3);
  const ExplorerResult result =
      explore(crash_config(algo, tree, 1, 1, false));
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("waiting forever"), std::string::npos)
      << result.violation;
  ASSERT_FALSE(result.counterexample.empty());
  EXPECT_TRUE(has_action(result.counterexample, Action::Type::kCrash));
}

TEST(ExplorerFault, RaymondTokenHolderCrashWithoutRegenerationStrandsWaiter) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::line(3);
  const ExplorerResult result =
      explore(crash_config(algo, tree, 1, 1, false));
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("waiting forever"), std::string::npos)
      << result.violation;
  EXPECT_TRUE(has_action(result.counterexample, Action::Type::kCrash));
}

}  // namespace
}  // namespace dmx::modelcheck
