// Unit tests for the fault-substrate building blocks: FaultPlan schedules,
// compact survivor membership, and the quorum-consent regenerator
// election.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "fault/membership.hpp"
#include "quorum/election.hpp"

namespace dmx {
namespace {

TEST(FaultPlan, KeepsEventsSortedByTime) {
  fault::FaultPlan plan;
  plan.crash(50, 3).crash(10, 2).recover(40, 2);
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_EQ(plan.events()[0].at, 10);
  EXPECT_EQ(plan.events()[1].at, 40);
  EXPECT_EQ(plan.events()[2].at, 50);
  EXPECT_TRUE(plan.validate(5).empty());
}

TEST(FaultPlan, EqualTicksKeepInsertionOrder) {
  fault::FaultPlan plan;
  plan.crash(10, 1).crash(10, 2).recover(10, 1);
  EXPECT_EQ(plan.events()[0].node, 1);
  EXPECT_EQ(plan.events()[1].node, 2);
  EXPECT_EQ(plan.events()[2].node, 1);
  EXPECT_EQ(plan.events()[2].kind, fault::FaultEvent::Kind::kRecover);
}

TEST(FaultPlan, ValidateCatchesIllFormedPlans) {
  EXPECT_FALSE(fault::FaultPlan().crash(5, 9).validate(4).empty());
  EXPECT_FALSE(fault::FaultPlan().recover(5, 2).validate(4).empty());
  EXPECT_FALSE(
      fault::FaultPlan().crash(5, 2).crash(8, 2).validate(4).empty());
  EXPECT_TRUE(fault::FaultPlan()
                  .crash(5, 2)
                  .recover(8, 2)
                  .crash(9, 2)
                  .validate(4)
                  .empty());
}

TEST(FaultPlan, ValidateRejectsSameTickCrashAndRecovery) {
  // Same node, same tick: the stable (at, insertion order) sort would run
  // crash-then-recover or recover-then-crash depending on the order the
  // plan was BUILT in, not on anything the schedule expresses. Both
  // spellings are rejected so the ambiguity cannot reach a substrate.
  const std::string crash_first =
      fault::FaultPlan().crash(10, 2).recover(10, 2).validate(4);
  EXPECT_FALSE(crash_first.empty());
  EXPECT_NE(crash_first.find("same-tick"), std::string::npos);
  EXPECT_FALSE(
      fault::FaultPlan().recover(10, 2).crash(10, 2).validate(4).empty());
  // Different nodes on one tick stay legal...
  EXPECT_TRUE(
      fault::FaultPlan().crash(10, 1).crash(10, 2).validate(4).empty());
  // ...and the non-ambiguous spelling (recover strictly later) passes.
  EXPECT_TRUE(
      fault::FaultPlan().crash(10, 2).recover(11, 2).validate(4).empty());
}

TEST(FaultPlan, DescribeRendersOneLine) {
  EXPECT_EQ(fault::FaultPlan().describe(), "none");
  EXPECT_EQ(fault::FaultPlan().crash(50, 3).recover(400, 3).describe(),
            "crash 3@50 recover 3@400");
}

TEST(Membership, IdentityMapsEveryNodeToItself) {
  const auto m = fault::Membership::identity(4);
  EXPECT_EQ(m.size(), 4);
  for (NodeId v = 1; v <= 4; ++v) {
    EXPECT_TRUE(m.contains(v));
    EXPECT_EQ(m.rank_of(v), v);
    EXPECT_EQ(m.original_of(v), v);
  }
}

TEST(Membership, SurvivorsAreRenumberedDenselyAscending) {
  const std::vector<std::uint8_t> up = {0, 1, 0, 1, 0, 1};  // 1, 3, 5 alive
  const auto m = fault::Membership::survivors(5, up);
  EXPECT_EQ(m.size(), 3);
  EXPECT_EQ(m.rank_of(1), 1);
  EXPECT_EQ(m.rank_of(3), 2);
  EXPECT_EQ(m.rank_of(5), 3);
  EXPECT_EQ(m.original_of(2), 3);
  EXPECT_FALSE(m.contains(2));
  EXPECT_FALSE(m.contains(4));
}

TEST(Election, WinnerIsSmallestAliveNode) {
  std::vector<std::uint8_t> up = {0, 0, 1, 1, 1, 1, 1, 1};  // n=7, 1 down
  EXPECT_EQ(quorum::elect_regenerator(7, up), 2);
  up[2] = 0;
  EXPECT_EQ(quorum::elect_regenerator(7, up), 3);
}

TEST(Election, RequiresStrictMajorityAlive) {
  // n=4 with 2 alive: exactly half is NOT a majority — a symmetric
  // partition must never regenerate on both sides.
  std::vector<std::uint8_t> up = {0, 1, 1, 0, 0};
  EXPECT_EQ(quorum::elect_regenerator(4, up), kNilNode);
  up[3] = 1;
  EXPECT_EQ(quorum::elect_regenerator(4, up), 1);
}

TEST(Election, AllAliveElectsNodeOne) {
  const std::vector<std::uint8_t> up = {0, 1, 1, 1};
  EXPECT_EQ(quorum::elect_regenerator(3, up), 1);
}

}  // namespace
}  // namespace dmx
