// Crash-fault tolerance of the sim LockSpace: failure detection,
// quorum-elected token regeneration, epoch fencing of stale tokens, and
// structure repair over the compact survivor membership.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "baselines/registry.hpp"
#include "fault/fault_plan.hpp"
#include "service/lock_space.hpp"

namespace dmx::service {
namespace {

LockSpaceConfig fault_config(int n, const std::string& algorithm = "Neilsen") {
  LockSpaceConfig config;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name(algorithm);
  config.seed = 1;
  return config;
}

/// Smallest live node after `crashed` went down — the election winner, so
/// also the regenerated token's holder.
NodeId smallest_survivor(int n, NodeId crashed) {
  for (NodeId v = 1; v <= n; ++v) {
    if (v != crashed) return v;
  }
  return kNilNode;
}

TEST(LockSpaceFault, TokenHolderCrashRegeneratesAndServesWaiter) {
  LockSpaceConfig config = fault_config(5);
  LockSpace probe(fault_config(5));
  const NodeId home = probe.home_node(probe.open("shard"));
  config.fault_plan.crash(10, home);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");
  const NodeId waiter = home == 5 ? 4 : 5;

  Ticket ticket;
  space.simulator().schedule_at(20, [&] {
    ticket = space.acquire(r, waiter, [&](ResourceId rr, NodeId v) {
      space.simulator().schedule_after(3, [&, rr, v] { space.release(rr, v); });
    });
  });
  space.run_to_quiescence();

  ASSERT_TRUE(ticket != nullptr);
  EXPECT_TRUE(ticket->granted);
  EXPECT_EQ(space.entries(r), 1u);
  EXPECT_EQ(space.epoch(r), 1u);
  EXPECT_FALSE(space.is_degraded(r));
  EXPECT_EQ(space.membership(r).size(), 4);
  EXPECT_FALSE(space.membership(r).contains(home));
  space.check_all_invariants();
}

TEST(LockSpaceFault, EveryAlgorithmSurvivesHomeCrash) {
  for (const proto::Algorithm& algorithm : baselines::all_algorithms()) {
    LockSpaceConfig config = fault_config(5, algorithm.name);
    LockSpace probe(fault_config(5, algorithm.name));
    const NodeId home = probe.home_node(probe.open("shard"));
    // Singhal pins the initial token to node 1 regardless of home; crash
    // the actual holder so token algorithms all face regeneration.
    const NodeId victim = algorithm.name == "Singhal" ? 1 : home;
    config.fault_plan.crash(10, victim);
    LockSpace space(std::move(config));
    const ResourceId r = space.open("shard");
    const NodeId waiter = victim == 5 ? 4 : 5;

    Ticket ticket;
    space.simulator().schedule_at(20, [&] {
      ticket = space.acquire(r, waiter, [&](ResourceId rr, NodeId v) {
        space.simulator().schedule_after(3,
                                         [&, rr, v] { space.release(rr, v); });
      });
    });
    space.run_to_quiescence();

    ASSERT_TRUE(ticket != nullptr) << algorithm.name;
    EXPECT_TRUE(ticket->granted) << algorithm.name;
    EXPECT_EQ(space.entries(r), 1u) << algorithm.name;
    EXPECT_EQ(space.epoch(r), 1u) << algorithm.name;
    space.check_all_invariants();
  }
}

TEST(LockSpaceFault, TokenLossIsCaughtWhenRegenerationDisabled) {
  // The counterexample configuration: same crash, no repair. The
  // fault-aware uniqueness invariant must report the token as lost the
  // moment the holder dies instead of letting the space deadlock quietly.
  LockSpaceConfig config = fault_config(5);
  LockSpace probe(fault_config(5));
  const NodeId home = probe.home_node(probe.open("shard"));
  config.recovery_enabled = false;
  config.fault_plan.crash(10, home);
  LockSpace space(std::move(config));
  space.open("shard");
  try {
    space.run_to_quiescence();
    FAIL() << "token loss went undetected with regeneration off";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("token count is 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(LockSpaceFault, InFlightStaleTokenIsFencedAfterRepair) {
  // Arrange a PRIVILEGE to still be in flight between two survivors when
  // a crash-repair bumps the epoch: the regenerated token and the stale
  // one briefly coexist on the wire, and the stale one must be fenced at
  // delivery, never granted. Latency far above the detection timeout
  // makes the overlap deterministic.
  LockSpaceConfig config = fault_config(5);
  LockSpace probe(fault_config(5));
  const NodeId home = probe.home_node(probe.open("shard"));
  config.fixed_latency = 50;
  config.detect_after = 5;
  const NodeId bystander = [&] {
    for (NodeId v = 5; v >= 1; --v) {
      if (v != home) return v;
    }
    return kNilNode;
  }();
  config.fault_plan.crash(60, bystander);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");
  const NodeId requester = [&] {
    for (NodeId v = 1; v <= 5; ++v) {
      if (v != home && v != bystander) return v;
    }
    return kNilNode;
  }();

  // t=0: REQUEST requester->home (arrives 50); PRIVILEGE home->requester
  // departs at 50, due 100. The crash at 60 repairs at 65 — epoch 1 —
  // while the epoch-0 PRIVILEGE is mid-flight.
  Ticket ticket = space.acquire(r, requester, [&](ResourceId rr, NodeId v) {
    space.simulator().schedule_after(3, [&, rr, v] { space.release(rr, v); });
  });
  space.run_to_quiescence();

  EXPECT_TRUE(ticket->granted);
  EXPECT_EQ(space.epoch(r), 1u);
  EXPECT_GE(space.network().stats().total_fenced, 1u);
  EXPECT_EQ(space.entries(r), 1u);
  space.check_all_invariants();
}

TEST(LockSpaceFault, RecoveredNodeIsReintegratedAndCanLockAgain) {
  LockSpaceConfig config = fault_config(5);
  LockSpace probe(fault_config(5));
  const NodeId home = probe.home_node(probe.open("shard"));
  config.fault_plan.crash(10, home).recover(100, home);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");

  std::vector<std::pair<NodeId, bool>> transitions;
  space.set_membership_hook(
      [&](NodeId v, bool up) { transitions.emplace_back(v, up); });

  Ticket ticket;
  space.simulator().schedule_at(200, [&] {
    ticket = space.acquire(r, home, [&](ResourceId rr, NodeId v) {
      space.simulator().schedule_after(3, [&, rr, v] { space.release(rr, v); });
    });
  });
  space.run_to_quiescence();

  // Crash repair (epoch 1, 4 nodes) then rejoin repair (epoch 2, 5 nodes).
  EXPECT_EQ(space.epoch(r), 2u);
  EXPECT_EQ(space.membership(r).size(), 5);
  EXPECT_TRUE(space.membership(r).contains(home));
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0], std::make_pair(home, false));
  EXPECT_EQ(transitions[1], std::make_pair(home, true));
  ASSERT_TRUE(ticket != nullptr);
  EXPECT_TRUE(ticket->granted);
  EXPECT_EQ(space.entries(r), 1u);
  space.check_all_invariants();
}

TEST(LockSpaceFault, NoLiveMajorityMeansNoRegeneration) {
  // 2 of 4 alive is not a strict majority: the survivors must refuse to
  // mint a token (the other half could otherwise mint one too).
  LockSpaceConfig config = fault_config(4);
  config.fault_plan.crash(10, 3).crash(12, 4);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");
  space.run_to_quiescence();
  EXPECT_EQ(space.epoch(r), 0u);
  EXPECT_EQ(space.alive_count(), 2);

  // One node coming back restores the majority; the next repair runs.
  space.recover(4);
  space.run_to_quiescence();
  EXPECT_EQ(space.epoch(r), 1u);
  EXPECT_FALSE(space.is_degraded(r));
  EXPECT_EQ(space.membership(r).size(), 3);
  space.check_all_invariants();
}

TEST(LockSpaceFault, CrashInsideCriticalSectionFreesTheResource) {
  LockSpaceConfig config = fault_config(5);
  LockSpace probe(fault_config(5));
  const NodeId home = probe.home_node(probe.open("shard"));
  config.fault_plan.crash(10, home);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");

  // The home acquires instantly (it holds the token) and never releases —
  // it dies inside the CS at t=10.
  Ticket held = space.acquire(r, home);
  ASSERT_TRUE(held->granted);
  EXPECT_EQ(space.occupant(r), home);

  const NodeId waiter = home == 5 ? 4 : 5;
  Ticket ticket;
  space.simulator().schedule_at(20, [&] {
    ticket = space.acquire(r, waiter, [&](ResourceId rr, NodeId v) {
      space.simulator().schedule_after(3, [&, rr, v] { space.release(rr, v); });
    });
  });
  space.run_to_quiescence();

  EXPECT_EQ(space.occupant(r), kNilNode);
  ASSERT_TRUE(ticket != nullptr);
  EXPECT_TRUE(ticket->granted);
  EXPECT_EQ(space.epoch(r), 1u);
  space.check_all_invariants();
}

TEST(LockSpaceFault, RepairDefersWhileSurvivorHoldsTheLock) {
  // A survivor sits in the CS when the repair fires: the repair must wait
  // for its release instead of revoking a held lock.
  LockSpaceConfig config = fault_config(5);
  LockSpace probe(fault_config(5));
  const ResourceId pr = probe.open("shard");
  const NodeId home = probe.home_node(pr);
  const NodeId holder = smallest_survivor(5, home);
  config.fault_plan.crash(30, home);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");

  // Holder acquires early (token travels home -> holder) and holds the CS
  // far past crash + detection; its release triggers the deferred repair.
  Ticket ticket = space.acquire(r, holder, [&](ResourceId rr, NodeId v) {
    space.simulator().schedule_after(200,
                                     [&, rr, v] { space.release(rr, v); });
  });
  const NodeId waiter = [&] {
    for (NodeId v = 5; v >= 1; --v) {
      if (v != home && v != holder) return v;
    }
    return kNilNode;
  }();
  Ticket waiting;
  space.simulator().schedule_at(40, [&] {
    waiting = space.acquire(r, waiter, [&](ResourceId rr, NodeId v) {
      space.simulator().schedule_after(3, [&, rr, v] { space.release(rr, v); });
    });
  });
  space.run_to_quiescence();

  EXPECT_TRUE(ticket->granted);
  ASSERT_TRUE(waiting != nullptr);
  EXPECT_TRUE(waiting->granted);
  EXPECT_EQ(space.epoch(r), 1u);
  EXPECT_EQ(space.entries(r), 2u);
  space.check_all_invariants();
}

TEST(LockSpaceFault, AcquireOnDeadNodeReturnsDeadTicket) {
  LockSpaceConfig config = fault_config(4);
  config.fault_plan.crash(5, 2);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");
  Ticket ticket;
  space.simulator().schedule_at(10, [&] { ticket = space.acquire(r, 2); });
  space.run_to_quiescence();
  ASSERT_TRUE(ticket != nullptr);
  EXPECT_FALSE(ticket->granted);
  EXPECT_TRUE(space.is_idle(r, 2));
}

TEST(LockSpaceFault, WaitingNodeCrashVoidsItsTicket) {
  LockSpaceConfig config = fault_config(5);
  LockSpace probe(fault_config(5));
  const NodeId home = probe.home_node(probe.open("shard"));
  const NodeId doomed = smallest_survivor(5, home);
  config.fault_plan.crash(10, doomed);
  LockSpace space(std::move(config));
  const ResourceId r = space.open("shard");

  // Home holds the CS so `doomed`'s request parks in the queue until its
  // crash voids it; home's release then finds no waiter resurrected.
  Ticket held = space.acquire(r, home);
  ASSERT_TRUE(held->granted);
  Ticket doomed_ticket = space.acquire(r, doomed);
  space.simulator().schedule_at(50, [&] { space.release(r, home); });
  space.run_to_quiescence();

  EXPECT_FALSE(doomed_ticket->granted);
  EXPECT_EQ(space.occupant(r), kNilNode);
  space.check_all_invariants();
}

}  // namespace
}  // namespace dmx::service
