// Swarm testing under crash/recovery injection: every algorithm must run
// green through a crash + rejoin schedule with regeneration on, the same
// seed + plan must reproduce bit-identical traces, and with regeneration
// off a token-holder crash must end in a DETECTED token loss carrying a
// one-line repro.
#include <gtest/gtest.h>

#include <string>

#include "baselines/registry.hpp"
#include "modelcheck/swarm.hpp"
#include "service/lock_space.hpp"

namespace dmx::modelcheck {
namespace {

/// Home (= initial token holder) of the swarm's single resource for this
/// (n, seed): the swarm's LockSpace places "swarm/res-1" by consistent
/// hash, so a probe space with the same parameters sees the same home.
NodeId swarm_resource_home(int n, std::uint64_t seed) {
  service::LockSpaceConfig config;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  config.seed = seed;
  service::LockSpace probe(std::move(config));
  return probe.home_node(probe.open("swarm/res-1"));
}

TEST(SwarmFault, AllAlgorithmsSurviveCrashAndRejoinAcrossSeeds) {
  for (const proto::Algorithm& algorithm : baselines::all_algorithms()) {
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
      SwarmConfig config;
      config.algorithm = &algorithm;
      config.n = 6;
      config.seed = seed;
      config.target_entries = 25;
      config.latency_hi = 8;
      // Crash a seed-dependent node mid-run, bring it back later; the
      // repair machinery must keep the run green and drain every waiter.
      const NodeId victim = static_cast<NodeId>(seed % 6) + 1;
      config.fault_plan.crash(50, victim).recover(400, victim);
      const SwarmResult result = run_swarm(config);
      ASSERT_TRUE(result.ok)
          << algorithm.name << " seed " << seed << ": " << result.violation;
      EXPECT_GE(result.entries, config.target_entries) << result.repro;
    }
  }
}

TEST(SwarmFault, SameSeedAndPlanReproduceTheSameTrace) {
  for (std::uint64_t seed : {7u, 21u}) {
    SwarmConfig config;
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  config.algorithm = &algo;
    config.n = 6;
    config.seed = seed;
    config.target_entries = 30;
    config.latency_hi = 8;
    config.fault_plan.crash(40, 3).recover(300, 3);
    const SwarmResult first = run_swarm(config);
    const SwarmResult second = run_swarm(config);
    ASSERT_TRUE(first.ok) << first.violation;
    EXPECT_EQ(first.trace_hash, second.trace_hash);
    EXPECT_EQ(first.entries, second.entries);
    EXPECT_EQ(first.makespan, second.makespan);
  }
}

TEST(SwarmFault, CrashDeterminismGolden) {
  // Pinned end-to-end hash of one crash-repair schedule. A change here
  // means the fault substrate's event ordering changed — intentional
  // changes must re-pin, anything else is a determinism regression.
  SwarmConfig config;
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  config.algorithm = &algo;
  config.n = 6;
  config.seed = 11;
  config.target_entries = 30;
  config.latency_hi = 8;
  config.fault_plan.crash(40, 2).recover(300, 2);
  const SwarmResult result = run_swarm(config);
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_EQ(result.trace_hash, 0x71440bec5460d8dcULL)
      << "trace hash 0x" << std::hex << result.trace_hash;
}

TEST(SwarmFault, TokenLossIsDetectedWhenRegenerationIsOff) {
  // The counterexample configuration the invariant must catch: the token
  // holder dies at t=0 and nobody is allowed to regenerate.
  SwarmConfig config;
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  config.algorithm = &algo;
  config.n = 6;
  config.seed = 5;
  config.target_entries = 20;
  config.crash_recovery_enabled = false;
  config.fault_plan.crash(0, swarm_resource_home(6, 5));
  const SwarmResult result = run_swarm(config);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("token count is 0"), std::string::npos)
      << result.violation;
  // The failure carries a replayable one-line repro.
  EXPECT_NE(result.violation.find("repro: swarm algorithm=Neilsen"),
            std::string::npos)
      << result.violation;
  EXPECT_NE(result.repro.find("faults='crash"), std::string::npos)
      << result.repro;
  EXPECT_NE(result.repro.find("recovery=off"), std::string::npos);
}

TEST(SwarmFault, MultiResourceCrashRunStaysGreen) {
  // Crash repair is per resource over one shared network: every resource
  // must regenerate independently and drain.
  SwarmConfig config;
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  config.algorithm = &algo;
  config.n = 6;
  config.seed = 13;
  config.resources = 4;
  config.zipf_s = 0.8;
  config.target_entries = 60;
  config.latency_hi = 8;
  config.fault_plan.crash(60, 4).recover(500, 4);
  const SwarmResult result = run_swarm(config);
  ASSERT_TRUE(result.ok) << result.violation;
  EXPECT_GE(result.entries, config.target_entries);
}

}  // namespace
}  // namespace dmx::modelcheck
