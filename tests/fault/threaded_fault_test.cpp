// Crash-fault tests for the threaded substrate: strand quiescing via
// epoch fencing (the thread-kill equivalent), bounded-wait lock attempts
// on dead nodes/resources, and token regeneration with real threads.
// Suite name starts with "ThreadedLockSpace" so the tsan-fast preset's
// name filter picks these up.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "service/threaded_lock_space.hpp"

namespace dmx::service {
namespace {

using namespace std::chrono_literals;

ThreadedLockSpaceConfig fault_config(int n, const std::string& algorithm,
                                     bool recovery) {
  ThreadedLockSpaceConfig config;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name(algorithm);
  config.resources = {"res/0"};
  config.recovery_enabled = recovery;
  config.workers = 2;
  return config;
}

TEST(ThreadedLockSpaceFault, CrashedHomeMakesResourceUnavailable) {
  // Recovery off: killing the home (initial token holder) kills the
  // token, and try_lock_for must report that instead of blocking forever.
  ThreadedLockSpaceConfig config = fault_config(4, "Neilsen", false);
  ThreadedLockSpace space(std::move(config));
  const ResourceId r = space.lookup("res/0");
  const NodeId home = space.home_node(r);
  const NodeId other = home == 1 ? 2 : 1;

  // Sanity: the lock works before the crash.
  EXPECT_EQ(space.try_lock_for(r, other, 2000ms), LockError::kOk);
  space.unlock(r, other);

  space.crash(home);
  EXPECT_FALSE(space.is_node_up(home));
  EXPECT_EQ(space.try_lock_for(r, other, 100ms), LockError::kUnavailable);
  // A crashed caller is equally unavailable.
  EXPECT_EQ(space.try_lock_for(r, home, 100ms), LockError::kUnavailable);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpaceFault, RepairRegeneratesTokenAfterHomeCrash) {
  // Recovery on: the same home crash is repaired — survivors elect, the
  // token is re-minted, and a blocked waiter gets served.
  ThreadedLockSpaceConfig config = fault_config(4, "Neilsen", true);
  ThreadedLockSpace space(std::move(config));
  const ResourceId r = space.lookup("res/0");
  const NodeId home = space.home_node(r);
  const NodeId other = home == 1 ? 2 : 1;

  space.crash(home);
  EXPECT_EQ(space.try_lock_for(r, other, 5000ms), LockError::kOk);
  space.unlock(r, other);
  EXPECT_GE(space.epoch(r), Epoch{1});
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpaceFault, EveryAlgorithmSurvivesACrashUnderContention) {
  for (const proto::Algorithm& algorithm : baselines::all_algorithms()) {
    ThreadedLockSpaceConfig config;
    config.n = 4;
    config.algorithm = algorithm;
    config.resources = {"res/0"};
    config.workers = 2;
    ThreadedLockSpace space(std::move(config));
    const ResourceId r = space.lookup("res/0");
    // Singhal pins its token to node 1; crashing the smallest survivor
    // candidate is the harshest choice for every algorithm.
    const NodeId victim =
        algorithm.name == "Singhal" ? 1 : space.home_node(r);

    std::atomic<long long> counter{0};
    std::atomic<bool> crashed{false};
    std::vector<std::thread> threads;
    for (NodeId v = 1; v <= 4; ++v) {
      if (v == victim) continue;
      threads.emplace_back([&space, &counter, &crashed, r, v, victim] {
        for (int i = 0; i < 20; ++i) {
          if (i == 10 && !crashed.exchange(true)) space.crash(victim);
          const LockError error = space.try_lock_for(r, v, 10000ms);
          if (error != LockError::kOk) continue;  // mid-repair timeout
          counter.fetch_add(1, std::memory_order_relaxed);
          space.unlock(r, v);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_FALSE(space.first_error().has_value())
        << algorithm.name << ": " << *space.first_error();
    EXPECT_GT(counter.load(), 0) << algorithm.name;
    EXPECT_GE(space.epoch(r), Epoch{1}) << algorithm.name;
  }
}

TEST(ThreadedLockSpaceFault, RecoveredNodeRejoinsAndLocksAgain) {
  ThreadedLockSpaceConfig config = fault_config(4, "Raymond", true);
  ThreadedLockSpace space(std::move(config));
  const ResourceId r = space.lookup("res/0");
  const NodeId victim = 3;

  space.crash(victim);
  EXPECT_EQ(space.try_lock_for(r, victim, 100ms), LockError::kUnavailable);

  space.recover(victim);
  EXPECT_TRUE(space.is_node_up(victim));
  // Two repairs happened (crash + rejoin): the epoch moved at least twice.
  EXPECT_EQ(space.try_lock_for(r, victim, 5000ms), LockError::kOk);
  space.unlock(r, victim);
  EXPECT_GE(space.epoch(r), Epoch{2});
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpaceFault, CrashWhileHolderInCsDefersRepairUntilUnlock) {
  ThreadedLockSpaceConfig config = fault_config(4, "Neilsen", true);
  ThreadedLockSpace space(std::move(config));
  const ResourceId r = space.lookup("res/0");
  const NodeId home = space.home_node(r);
  NodeId holder = home == 1 ? 2 : 1;
  NodeId victim = kNilNode;
  for (NodeId v = 1; v <= 4; ++v) {
    if (v != home && v != holder) {
      victim = v;
      break;
    }
  }

  space.lock(r, holder);
  space.crash(victim);  // repair must wait: `holder` is inside its CS
  space.unlock(r, holder);  // completes the deferred repair
  // The survivor world is live again: everyone else can still lock.
  EXPECT_EQ(space.try_lock_for(r, home, 5000ms), LockError::kOk);
  space.unlock(r, home);
  EXPECT_GE(space.epoch(r), Epoch{1});
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpaceFault, TimeoutLeavesRequestConsumableByNextWaiter) {
  // No faults at all: a pure bounded-wait exercise. A waiter that times
  // out must not wedge the (resource, node) gate for later waiters.
  ThreadedLockSpaceConfig config = fault_config(2, "Neilsen", true);
  ThreadedLockSpace space(std::move(config));
  const ResourceId r = space.lookup("res/0");

  space.lock(r, 1);
  EXPECT_EQ(space.try_lock_for(r, 2, 20ms), LockError::kTimeout);
  space.unlock(r, 1);
  // The timed-out request's grant is auto-released; node 2 can lock anew.
  EXPECT_EQ(space.try_lock_for(r, 2, 5000ms), LockError::kOk);
  space.unlock(r, 2);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

}  // namespace
}  // namespace dmx::service
