// Deeper exhaustive configurations — the `slow` ctest tier. Everything
// here is the same generic explorer as tests/modelcheck_test.cpp, pushed
// to larger N / more entries per node. Broadcast algorithms with O(N)
// per-node state (Lamport, Ricart-Agrawala, Carvalho-Roucairol) exceed
// the 5M-state budget beyond N=3 / two entries; pushing them further
// needs state hashing or symmetry reduction (ROADMAP open item).
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "modelcheck/explorer.hpp"
#include "topology/tree.hpp"

namespace dmx::modelcheck {
namespace {

ExplorerResult check(const proto::Algorithm& algo, const topology::Tree& tree,
                     NodeId holder, int requests_per_node) {
  ExplorerConfig config;
  config.algorithm = &algo;
  config.n = tree.size();
  config.initial_token_holder = holder;
  config.tree = &tree;
  config.requests_per_node = requests_per_node;
  return explore(config);
}

TEST(DeepModelCheck, NeilsenStarOfSix) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::star(6, 1);
  const ExplorerResult result = check(algo, tree, 2, 1);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 100'000u);
}

TEST(DeepModelCheck, NeilsenLineOfFiveTwoEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(5);
  const ExplorerResult result = check(algo, tree, 1, 2);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(DeepModelCheck, NeilsenRandomTreesOfFiveTwoEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    const topology::Tree tree = topology::Tree::random_tree(5, seed);
    const ExplorerResult result = check(algo, tree, 1, 2);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  }
}

TEST(DeepModelCheck, RaymondStarOfSix) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::star(6, 1);
  const ExplorerResult result = check(algo, tree, 2, 1);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(DeepModelCheck, RaymondRandomTreesOfFiveTwoEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::random_tree(5, 1);
  const ExplorerResult result = check(algo, tree, 1, 2);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(DeepModelCheck, RegistryStarOfFour) {
  // The whole registry at N=4, minus the state-space-explosive broadcast
  // trio (see file comment).
  const topology::Tree tree = topology::Tree::star(4, 1);
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    if (algo.name == "Lamport" || algo.name == "Ricart-Agrawala" ||
        algo.name == "Carvalho-Roucairol") {
      continue;
    }
    const ExplorerResult result = check(algo, tree, 1, 1);
    EXPECT_TRUE(result.ok) << algo.name << ": " << result.violation;
  }
}

TEST(DeepModelCheck, SinghalThreeEntriesEach) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Singhal");
  const topology::Tree tree = topology::Tree::line(3);
  const ExplorerResult result = check(algo, tree, 1, 3);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 500'000u);
}

TEST(DeepModelCheck, SuzukiKasamiLineOfFourDuplicatedTokenCaught) {
  // Fault exploration at depth: every schedule with one duplicated TOKEN
  // delivery must end in a detected violation, never silent mis-running.
  const proto::Algorithm algo = baselines::algorithm_by_name("Suzuki-Kasami");
  ExplorerConfig config;
  config.algorithm = &algo;
  config.n = 4;
  config.requests_per_node = 1;
  config.duplicate_message_kinds = {"TOKEN"};
  const ExplorerResult result = explore(config);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.counterexample.empty());
}

}  // namespace
}  // namespace dmx::modelcheck
