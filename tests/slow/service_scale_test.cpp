// Acceptance-scale service run on the threaded substrate: 64 named
// resources over 8 nodes, Zipf-skewed access from 16 client threads, 10k
// total entries. Per-resource exclusivity is witnessed two ways — the
// space's occupancy counters (checked on every entry) and per-resource
// unsynchronized counters that would lose updates under any violation.
// The deterministic-sim counterpart lives in tests/service_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "common/rng.hpp"
#include "service/space_workload.hpp"
#include "service/threaded_lock_space.hpp"

namespace dmx::service {
namespace {

TEST(ServiceScale, SixtyFourResourcesTenThousandEntriesThreaded) {
  const int n = 8;
  const int m = 64;
  const int clients_per_node = 2;
  const std::uint64_t target_entries = 10000;

  ThreadedLockSpaceConfig config;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  for (int i = 0; i < m; ++i) {
    config.resources.push_back("shard/" + std::to_string(i));
  }
  ThreadedLockSpace space(std::move(config));

  const ZipfSampler zipf(m, 0.99);
  std::vector<long long> counters(static_cast<std::size_t>(m), 0);
  std::atomic<std::uint64_t> completed{0};

  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= n; ++v) {
    for (int c = 0; c < clients_per_node; ++c) {
      threads.emplace_back([&, v, c] {
        Rng rng(static_cast<std::uint64_t>(v) * 1000 +
                static_cast<std::uint64_t>(c) + 1);
        while (completed.fetch_add(1, std::memory_order_relaxed) <
               target_entries) {
          const auto r = static_cast<ResourceId>(zipf.sample(rng));
          ScopedLock guard(space, r, v);
          ++counters[static_cast<std::size_t>(r)];  // the critical section
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();

  // Exactly total_entries critical sections were served, and the
  // unsynchronized per-resource counters add up — no lost updates on any
  // resource.
  long long counted = 0;
  for (ResourceId r = 0; r < m; ++r) {
    counted += counters[static_cast<std::size_t>(r)];
    EXPECT_EQ(counters[static_cast<std::size_t>(r)],
              static_cast<long long>(space.entries(r)))
        << space.name(r);
  }
  EXPECT_GE(space.total_entries(), target_entries);
  EXPECT_EQ(counted, static_cast<long long>(space.total_entries()));
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

}  // namespace
}  // namespace dmx::service
