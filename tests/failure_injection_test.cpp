// Failure-injection tests.
//
// Chapter 2 assumes "the nodes are fully connected by a reliable
// network". These tests break that assumption deliberately and verify
// two things: (a) the assumption is load-bearing — a lost PRIVILEGE is a
// lost token, a lost REQUEST is a starved requester — and (b) the
// repository's invariant checking and stall detection actually catch the
// resulting damage instead of silently mis-running.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::harness {
namespace {

ClusterConfig line_config(int n, NodeId holder) {
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = holder;
  config.tree = topology::Tree::line(n);
  return config;
}

TEST(FailureInjection, DropCountingWorks) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  cluster.network().drop_next("REQUEST");
  cluster.request_cs(3);
  cluster.run_to_quiescence();
  EXPECT_EQ(cluster.network().stats().total_dropped, 1u);
  EXPECT_EQ(cluster.network().stats().sent("REQUEST"), 1u);  // counted sent
  EXPECT_TRUE(cluster.is_waiting(3));  // and the requester hangs
}

TEST(FailureInjection, LostPrivilegeIsDetectedAsTokenLoss) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  // Node 3 requests; node 1 holds the token and will answer with a
  // PRIVILEGE, which we destroy in flight.
  cluster.network().drop_next("PRIVILEGE");
  cluster.request_cs(3);
  // Deliveries run until the REQUEST reaches node 1, whose PRIVILEGE
  // evaporates. The token-uniqueness invariant must now fail loudly.
  try {
    cluster.run_to_quiescence();
    cluster.check_invariants();
    FAIL() << "token loss went undetected";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("token count is 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(FailureInjection, DuplicatedPrivilegeIsDetectedAsForgedToken) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  // Node 3 requests; node 1 answers with a PRIVILEGE, which the network
  // duplicates in flight. Two tokens now exist; the invariant checker
  // must refuse to let the run continue.
  cluster.network().duplicate_next("PRIVILEGE");
  cluster.request_cs(3);
  try {
    cluster.run_to_quiescence();
    FAIL() << "token duplication went undetected";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("token count is 2"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(cluster.network().stats().total_duplicated, 1u);
  // The duplicate is real traffic: both envelopes count as sent.
  EXPECT_EQ(cluster.network().stats().sent("PRIVILEGE"), 2u);
}

TEST(FailureInjection, DuplicatedRequestIsAbsorbedByRaymond) {
  // A duplicated REQUEST enqueues its sender twice at the receiver. The
  // stale entry acts as a phantom request — it costs an extra token
  // round-trip but never mints a second PRIVILEGE, so the run completes
  // with every invariant (checked after each event) intact. Contrast
  // with the duplicated-token cases, which must fail loudly.
  Cluster cluster(baselines::algorithm_by_name("Raymond"), line_config(3, 1));
  cluster.network().duplicate_next("REQUEST");
  workload::WorkloadConfig wl;
  wl.target_entries = 50;
  const workload::WorkloadResult result = workload::run_workload(cluster, wl);
  EXPECT_GE(result.entries, 50u);
  EXPECT_EQ(cluster.network().stats().total_duplicated, 1u);
}

TEST(FailureInjection, LostRequestStallsTheWorkload) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(5, 1));
  cluster.network().drop_next("REQUEST");
  workload::WorkloadConfig wl;
  wl.target_entries = 50;
  wl.participants = {5};  // its first REQUEST evaporates
  EXPECT_THROW(workload::run_workload(cluster, wl), std::logic_error);
}

TEST(FailureInjection, LossyNetworkEventuallyViolatesOrStalls) {
  // Under sustained loss, a token algorithm must end in one of the two
  // detectable failure modes: token loss (invariant failure) or a stalled
  // workload (liveness failure). Silent success would be a bug in the
  // failure injection or the checkers.
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(5, 1));
  cluster.network().set_drop_probability(0.3);
  workload::WorkloadConfig wl;
  wl.target_entries = 2000;
  wl.seed = 3;
  bool detected = false;
  try {
    workload::run_workload(cluster, wl);
  } catch (const std::logic_error&) {
    detected = true;
  }
  EXPECT_TRUE(detected);
}

TEST(FailureInjection, AssertionAlgorithmsStallRatherThanDoubleGrant) {
  // Ricart–Agrawala with a lost REPLY: the requester simply never
  // assembles N-1 replies. Mutual exclusion is never violated; the
  // workload stalls and the stall is detected.
  Cluster cluster(baselines::algorithm_by_name("Ricart-Agrawala"),
                  line_config(4, 1));
  cluster.network().drop_next("REPLY");
  workload::WorkloadConfig wl;
  wl.target_entries = 10;
  wl.participants = {2};
  EXPECT_THROW(workload::run_workload(cluster, wl), std::logic_error);
}

TEST(FailureInjection, ZeroDropProbabilityIsHarmless) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  cluster.network().set_drop_probability(0.0);
  workload::WorkloadConfig wl;
  wl.target_entries = 50;
  const workload::WorkloadResult result = workload::run_workload(cluster, wl);
  EXPECT_GE(result.entries, 50u);
  EXPECT_EQ(cluster.network().stats().total_dropped, 0u);
}

TEST(FailureInjection, InvalidDropProbabilityRejected) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(3, 1));
  EXPECT_THROW(cluster.network().set_drop_probability(-0.1),
               std::logic_error);
  EXPECT_THROW(cluster.network().set_drop_probability(1.5),
               std::logic_error);
}

}  // namespace
}  // namespace dmx::harness
