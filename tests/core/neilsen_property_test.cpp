// Property-based tests of the Neilsen algorithm over topology × size ×
// seed sweeps. Lemma 1/2 invariants are checked after EVERY simulator
// event; liveness, queue deduction, the D+1 message bound and the
// one-message synchronization delay are asserted per run.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "core/algorithm.hpp"
#include "core/implicit_queue.hpp"
#include "core/invariants.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "harness/delay_analysis.hpp"
#include "harness/probe.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::core {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

topology::Tree make_topology(const std::string& kind, int n,
                             std::uint64_t seed) {
  if (kind == "line") return topology::Tree::line(n);
  if (kind == "star") return topology::Tree::star(n, 1);
  if (kind == "kary") return topology::Tree::kary(n, 3);
  if (kind == "radiating") {
    return topology::Tree::radiating_star(n, std::max(2, n / 4));
  }
  return topology::Tree::random_tree(n, seed);
}

NodeView view(Cluster& cluster) {
  NodeView nodes;
  nodes.push_back(nullptr);
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    nodes.push_back(&cluster.node_as<NeilsenNode>(v));
  }
  return nodes;
}

void install_invariant_hook(Cluster& cluster) {
  cluster.set_post_event_hook([](Cluster& c) {
    const NodeView nodes = view(c);
    const InvariantReport report =
        check_all(nodes, c.network().in_flight_count("REQUEST"));
    ASSERT_TRUE(report.ok) << report.violation;
  });
}

using Params = std::tuple<std::string, int, std::uint64_t>;

class NeilsenStress : public ::testing::TestWithParam<Params> {};

TEST_P(NeilsenStress, InvariantsHoldUnderRandomWorkload) {
  const auto& [kind, n, seed] = GetParam();
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = static_cast<NodeId>(seed % n + 1);
  config.tree = make_topology(kind, n, seed);
  config.latency_model = std::make_unique<net::UniformLatency>(1, 5);
  config.seed = seed;
  Cluster cluster(make_neilsen_algorithm(), std::move(config));
  install_invariant_hook(cluster);

  workload::WorkloadConfig wl;
  wl.target_entries = 200;
  wl.mean_think_ticks = 10.0;
  wl.hold_lo = 0;
  wl.hold_hi = 7;
  wl.seed = seed * 977 + 1;
  const workload::WorkloadResult result = workload::run_workload(cluster, wl);

  EXPECT_GE(result.entries, wl.target_entries);  // liveness: all complete
  // Afterwards the token is at rest at exactly one node.
  const NodeView nodes = view(cluster);
  EXPECT_NE(find_token_holder(nodes), kNilNode);
  EXPECT_TRUE(deduce_waiting_queue(nodes, find_token_holder(nodes)).empty());
}

TEST_P(NeilsenStress, EveryNodeEntersUnderSaturation) {
  const auto& [kind, n, seed] = GetParam();
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = 1;
  config.tree = make_topology(kind, n, seed);
  config.seed = seed;
  Cluster cluster(make_neilsen_algorithm(), std::move(config));

  workload::WorkloadConfig wl;
  wl.target_entries = static_cast<std::uint64_t>(8 * n);
  wl.mean_think_ticks = 0.0;  // saturation
  wl.seed = seed;
  workload::run_workload(cluster, wl);

  std::map<NodeId, int> entries;
  for (const auto& event : cluster.events()) {
    if (event.kind == harness::CsEvent::Kind::kEnter) {
      entries[event.node] += 1;
    }
  }
  for (NodeId v = 1; v <= n; ++v) {
    EXPECT_GE(entries[v], 1) << "node " << v << " starved";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NeilsenStress,
    ::testing::Combine(::testing::Values("line", "star", "kary", "radiating",
                                         "random"),
                       ::testing::Values(2, 3, 5, 9, 16),
                       ::testing::Values(1u, 7u, 42u)));

TEST(NeilsenQueue, DeducedQueueMatchesGrantOrder) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const int n = 8;
    ClusterConfig config;
    config.n = n;
    config.initial_token_holder = 1;
    config.tree = topology::Tree::random_tree(n, seed);
    config.seed = seed;
    Cluster cluster(make_neilsen_algorithm(), std::move(config));
    install_invariant_hook(cluster);

    // Token holder occupies the CS while the others pile up behind it.
    cluster.request_cs(1);
    std::vector<NodeId> grant_order;
    for (NodeId v = 2; v <= n; ++v) {
      cluster.request_cs(v, [&](NodeId who) { grant_order.push_back(who); });
      cluster.simulator().run_until(cluster.simulator().now() +
                                    static_cast<Tick>(seed % 3));
    }
    // Absorb all requests into FOLLOW variables (token stays at node 1).
    while (cluster.network().in_flight_count("REQUEST") > 0) {
      cluster.simulator().step();
    }
    const std::vector<NodeId> deduced =
        deduce_waiting_queue(view(cluster), 1);
    EXPECT_EQ(deduced.size(), static_cast<std::size_t>(n - 1));

    // Now let the token walk the queue; the grant order must equal the
    // queue deduced from the FOLLOW chain.
    cluster.release_cs(1);
    for (int i = 0; i < n - 1; ++i) {
      cluster.run_to_quiescence();
      ASSERT_EQ(grant_order.size(), static_cast<std::size_t>(i + 1));
      cluster.release_cs(grant_order.back());
    }
    EXPECT_EQ(grant_order, deduced) << "seed " << seed;
  }
}

TEST(NeilsenBounds, MessagesPerEntryIsDistancePlusOne) {
  // §6.1: a single entry costs d REQUEST hops + 1 PRIVILEGE, where d is
  // the tree distance from requester to the current sink; hence <= D+1.
  for (const char* kind : {"line", "star", "kary", "random"}) {
    const int n = 9;
    const topology::Tree tree = make_topology(kind, n, 3);
    ClusterConfig config;
    config.n = n;
    config.initial_token_holder = 1;
    config.tree = tree;
    Cluster cluster(make_neilsen_algorithm(), std::move(config));
    install_invariant_hook(cluster);

    for (NodeId holder = 1; holder <= n; holder += 2) {
      harness::park_token_at(cluster, holder);
      for (NodeId requester = 1; requester <= n; requester += 3) {
        const harness::ProbeResult probe =
            harness::single_entry_probe(cluster, requester);
        const int d = tree.distance(requester, holder);
        if (requester == holder) {
          EXPECT_EQ(probe.messages_total, 0u);
        } else {
          EXPECT_EQ(probe.messages_total, static_cast<std::uint64_t>(d + 1))
              << kind << " holder=" << holder << " requester=" << requester;
        }
        EXPECT_LE(probe.messages_total,
                  static_cast<std::uint64_t>(tree.diameter() + 1));
        // The requester now holds the token; subsequent distances are
        // measured from it.
        harness::park_token_at(cluster, holder);
      }
    }
  }
}

TEST(NeilsenDelay, SynchronizationDelayIsOneMessage) {
  // §6.3: under contention the exiting node sends exactly one PRIVILEGE
  // to the next node — one hop with unit latency, beating the
  // centralized scheme's two (RELEASE + GRANT).
  for (const char* kind : {"line", "star", "random"}) {
    ClusterConfig config;
    config.n = 8;
    config.initial_token_holder = 1;
    config.tree = make_topology(kind, 8, 11);
    Cluster cluster(make_neilsen_algorithm(), std::move(config));

    workload::WorkloadConfig wl;
    wl.target_entries = 100;
    wl.mean_think_ticks = 0.0;  // saturation: someone is always waiting
    // Hold >= N ticks so requests in flight at entry are enqueued by exit
    // (the paper's measurement scenario: the successor is already blocked
    // with FOLLOW pointing at it).
    wl.hold_lo = 8;
    wl.hold_hi = 8;
    wl.seed = 5;
    const workload::WorkloadResult result =
        workload::run_workload(cluster, wl);
    ASSERT_GT(result.sync_delay_ticks.count(), 0u);
    EXPECT_EQ(result.sync_delay_ticks.max(), 1.0) << kind;
  }
}

TEST(NeilsenDeterminism, SameSeedSameTrace) {
  auto run_once = [](std::uint64_t seed) {
    ClusterConfig config;
    config.n = 7;
    config.initial_token_holder = 2;
    config.tree = topology::Tree::random_tree(7, 13);
    config.latency_model = std::make_unique<net::ExponentialLatency>(4.0);
    config.seed = seed;
    Cluster cluster(make_neilsen_algorithm(), std::move(config));
    workload::WorkloadConfig wl;
    wl.target_entries = 150;
    wl.mean_think_ticks = 6.0;
    wl.hold_hi = 3;
    wl.seed = 99;
    workload::run_workload(cluster, wl);
    std::vector<std::tuple<Tick, NodeId, int>> log;
    for (const auto& event : cluster.events()) {
      log.emplace_back(event.at, event.node, static_cast<int>(event.kind));
    }
    return log;
  };
  EXPECT_EQ(run_once(21), run_once(21));
  EXPECT_NE(run_once(21), run_once(22));
}

TEST(NeilsenInvariants, DetectorsActuallyDetect) {
  // White-box: feed corrupted states to the checkers to prove they fire.
  std::vector<std::unique_ptr<NeilsenNode>> owned;
  auto make = [&](NodeId next, bool holding) {
    owned.push_back(std::make_unique<NeilsenNode>(next, holding));
    return owned.back().get();
  };
  // NEXT cycle: 1 -> 2 -> 1 (undirected cycle between two nodes).
  {
    NodeView nodes{nullptr, make(2, false), make(1, false)};
    EXPECT_FALSE(check_next_forest(nodes).ok);
    EXPECT_FALSE(check_paths_reach_sink(nodes).ok);
  }
  owned.clear();
  // No sink at all.
  {
    NodeView nodes{nullptr, make(2, false), make(3, false), make(2, false)};
    EXPECT_FALSE(check_sink_count(nodes, 0).ok);
  }
  owned.clear();
  // Idle sink without the token (state N sink).
  {
    // Construct legally, then drive into the bad shape via messages is
    // impossible — so corrupt directly: a sink (NEXT=0) that is not
    // holding. The two-arg constructor forbids it, which is itself the
    // guarantee; verify the checker agrees with a hand-built view.
    owned.push_back(std::make_unique<NeilsenNode>(std::vector<NodeId>{2},
                                                  /*holder=*/false));
    // Uninitialized node: NEXT=0, not holding, idle -> "N"-labelled sink.
    NodeView nodes{nullptr, owned.back().get(),
                   (owned.push_back(std::make_unique<NeilsenNode>(
                        kNilNode, true)),
                    owned.back().get())};
    EXPECT_FALSE(check_sink_states(nodes).ok);
  }
  // Too many sinks for zero in-flight requests.
  {
    owned.clear();
    NodeView nodes{nullptr, make(kNilNode, true)};
    owned.push_back(std::make_unique<NeilsenNode>(std::vector<NodeId>{1},
                                                  false));
    nodes.push_back(owned.back().get());
    EXPECT_FALSE(check_sink_count(nodes, 0).ok);
    EXPECT_TRUE(check_sink_count(nodes, 1).ok);
  }
}

}  // namespace
}  // namespace dmx::core
