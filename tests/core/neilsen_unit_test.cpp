// Unit tests for NeilsenNode: construction contracts, the Figure 4 state
// transition graph, message handling preconditions, storage accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/messages.hpp"
#include "core/neilsen_node.hpp"

namespace dmx::core {
namespace {

/// Minimal test double capturing protocol outputs.
class FakeContext final : public proto::Context {
 public:
  FakeContext(NodeId self, int n) : self_(self), n_(n) {}

  NodeId self() const override { return self_; }
  int cluster_size() const override { return n_; }
  void send(NodeId to, net::MessagePtr message) override {
    sent.emplace_back(to, std::move(message));
  }
  void grant() override { ++grants; }

  std::vector<std::pair<NodeId, net::MessagePtr>> sent;
  int grants = 0;

 private:
  NodeId self_;
  int n_;
};

TEST(NeilsenNodeCtor, HolderMustBeSink) {
  EXPECT_THROW(NeilsenNode(2, /*holding=*/true), std::logic_error);
  EXPECT_THROW(NeilsenNode(kNilNode, /*holding=*/false), std::logic_error);
  EXPECT_NO_THROW(NeilsenNode(kNilNode, /*holding=*/true));
  EXPECT_NO_THROW(NeilsenNode(2, /*holding=*/false));
}

TEST(NeilsenNodeStates, HolderEntersImmediately) {
  NeilsenNode node(kNilNode, true);
  FakeContext ctx(1, 3);
  EXPECT_EQ(node.state_label(), "H");
  node.request_cs(ctx);
  EXPECT_EQ(ctx.grants, 1);
  EXPECT_TRUE(ctx.sent.empty());
  EXPECT_EQ(node.state_label(), "E");
  EXPECT_FALSE(node.holding());  // HOLDING := false before the CS
  EXPECT_TRUE(node.has_token());
}

TEST(NeilsenNodeStates, NonHolderSendsRequestAndBecomesSink) {
  NeilsenNode node(2, false);
  FakeContext ctx(1, 3);
  EXPECT_EQ(node.state_label(), "N");
  node.request_cs(ctx);
  EXPECT_EQ(node.state_label(), "R");
  EXPECT_TRUE(node.is_sink());
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].first, 2);
  const auto& req = dynamic_cast<const RequestMessage&>(*ctx.sent[0].second);
  EXPECT_EQ(req.hop(), 1);
  EXPECT_EQ(req.origin(), 1);
}

TEST(NeilsenNodeStates, Transition2_WaitingSinkSavesFollow) {
  NeilsenNode node(2, false);
  FakeContext ctx(1, 4);
  node.request_cs(ctx);  // R, sink
  node.on_message(ctx, 3, RequestMessage(3, 4));
  EXPECT_EQ(node.state_label(), "RF");
  EXPECT_EQ(node.follow(), 4);
  EXPECT_EQ(node.next(), 3);
  EXPECT_EQ(ctx.sent.size(), 1u);  // only the original request, no forward
}

TEST(NeilsenNodeStates, Transition3_NonSinkForwardsRewritingHop) {
  NeilsenNode node(2, false);  // N state, NEXT=2
  FakeContext ctx(1, 5);
  node.on_message(ctx, 3, RequestMessage(3, 5));
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].first, 2);
  const auto& fwd = dynamic_cast<const RequestMessage&>(*ctx.sent[0].second);
  EXPECT_EQ(fwd.hop(), 1);     // rewritten to the forwarder
  EXPECT_EQ(fwd.origin(), 5);  // origin preserved
  EXPECT_EQ(node.next(), 3);   // edge inverted toward requester
  EXPECT_EQ(node.state_label(), "N");
}

TEST(NeilsenNodeStates, Transition8_IdleHolderPassesTokenDirectly) {
  NeilsenNode node(kNilNode, true);  // H
  FakeContext ctx(1, 4);
  node.on_message(ctx, 2, RequestMessage(2, 4));
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].first, 4);  // straight to the origin
  EXPECT_EQ(ctx.sent[0].second->kind(), "PRIVILEGE");
  EXPECT_FALSE(node.holding());
  EXPECT_EQ(node.next(), 2);
  EXPECT_EQ(node.state_label(), "N");
  EXPECT_FALSE(node.has_token());
}

TEST(NeilsenNodeStates, Transition4_PrivilegeEntersCs) {
  NeilsenNode node(2, false);
  FakeContext ctx(1, 3);
  node.request_cs(ctx);
  node.on_message(ctx, 2, PrivilegeMessage());
  EXPECT_EQ(ctx.grants, 1);
  EXPECT_EQ(node.state_label(), "E");
  EXPECT_TRUE(node.has_token());
}

TEST(NeilsenNodeStates, Transition5_ReleaseWithoutFollowerKeepsToken) {
  NeilsenNode node(kNilNode, true);
  FakeContext ctx(1, 3);
  node.request_cs(ctx);
  node.release_cs(ctx);
  EXPECT_EQ(node.state_label(), "H");
  EXPECT_TRUE(node.holding());
  EXPECT_TRUE(ctx.sent.empty());
}

TEST(NeilsenNodeStates, Transition7_ReleaseWithFollowerPassesToken) {
  NeilsenNode node(kNilNode, true);
  FakeContext ctx(1, 3);
  node.request_cs(ctx);            // E
  node.on_message(ctx, 2, RequestMessage(2, 3));  // E -> EF
  EXPECT_EQ(node.state_label(), "EF");
  node.release_cs(ctx);            // EF -> N, token to FOLLOW
  EXPECT_EQ(node.state_label(), "N");
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].first, 3);
  EXPECT_EQ(ctx.sent[0].second->kind(), "PRIVILEGE");
  EXPECT_EQ(node.follow(), kNilNode);
}

TEST(NeilsenNodeStates, WaitingNonSinkForwardsLaterRequests) {
  NeilsenNode node(2, false);
  FakeContext ctx(1, 5);
  node.request_cs(ctx);                            // R (sink)
  node.on_message(ctx, 3, RequestMessage(3, 4));   // RF, FOLLOW=4, NEXT=3
  ctx.sent.clear();
  node.on_message(ctx, 5, RequestMessage(5, 5));   // forwards to NEXT=3
  ASSERT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.sent[0].first, 3);
  const auto& fwd = dynamic_cast<const RequestMessage&>(*ctx.sent[0].second);
  EXPECT_EQ(fwd.origin(), 5);
  EXPECT_EQ(node.next(), 5);
  EXPECT_EQ(node.follow(), 4);  // unchanged
}

TEST(NeilsenNodePreconditions, DoubleRequestRejected) {
  NeilsenNode node(kNilNode, true);
  FakeContext ctx(1, 2);
  node.request_cs(ctx);
  EXPECT_THROW(node.request_cs(ctx), std::logic_error);
}

TEST(NeilsenNodePreconditions, ReleaseOutsideCsRejected) {
  NeilsenNode node(2, false);
  FakeContext ctx(1, 2);
  EXPECT_THROW(node.release_cs(ctx), std::logic_error);
}

TEST(NeilsenNodePreconditions, UnexpectedPrivilegeRejected) {
  NeilsenNode node(2, false);  // idle, not waiting
  FakeContext ctx(1, 2);
  EXPECT_THROW(node.on_message(ctx, 2, PrivilegeMessage()),
               std::logic_error);
}

TEST(NeilsenNodePreconditions, RequestHopMismatchRejected) {
  NeilsenNode node(2, false);
  FakeContext ctx(1, 4);
  EXPECT_THROW(node.on_message(ctx, 3, RequestMessage(2, 4)),
               std::logic_error);
}

TEST(NeilsenNodeStorage, ThreeSimpleVariables) {
  // §6.4: each node maintains three simple variables, regardless of load.
  NeilsenNode node(2, false);
  EXPECT_EQ(node.state_bytes(), sizeof(bool) + 2 * sizeof(NodeId));
}

TEST(NeilsenNodeMessages, RequestCarriesTwoIntegers) {
  const RequestMessage req(3, 7);
  EXPECT_EQ(req.payload_bytes(), 2 * sizeof(NodeId));
  EXPECT_EQ(req.describe(), "REQUEST(3,7)");
}

TEST(NeilsenNodeMessages, PrivilegeCarriesNothing) {
  const PrivilegeMessage priv;
  EXPECT_EQ(priv.payload_bytes(), 0u);
}

TEST(NeilsenNodeDebug, StateRendering) {
  NeilsenNode node(2, false);
  EXPECT_EQ(node.debug_state(), "HOLDING=f NEXT=2 FOLLOW=0 [N]");
}

}  // namespace
}  // namespace dmx::core
