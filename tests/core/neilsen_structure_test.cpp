// Structural fidelity tests for Chapter 3's finer claims: the transient
// multi-sink window, edge-inversion bookkeeping, and the implicit-queue
// deduction utilities on their own.
#include <gtest/gtest.h>

#include "core/algorithm.hpp"
#include "core/implicit_queue.hpp"
#include "core/invariants.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"

namespace dmx::core {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

NodeView view(Cluster& cluster) {
  NodeView nodes;
  nodes.push_back(nullptr);
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    nodes.push_back(&cluster.node_as<NeilsenNode>(v));
  }
  return nodes;
}

std::size_t count_sinks(const NodeView& nodes) {
  std::size_t sinks = 0;
  for (std::size_t v = 1; v < nodes.size(); ++v) {
    if (nodes[v]->is_sink()) ++sinks;
  }
  return sinks;
}

TEST(NeilsenSinks, ExactlyOneSinkAtRest) {
  ClusterConfig config;
  config.n = 6;
  config.initial_token_holder = 3;
  config.tree = topology::Tree::line(6);
  Cluster cluster(make_neilsen_algorithm(), std::move(config));
  EXPECT_EQ(count_sinks(view(cluster)), 1u);
}

TEST(NeilsenSinks, ThreeSinksWhileTwoRequestsAreInTransit) {
  // Chapter 3: "Assume that node X and node Y initiate requests at about
  // the same time. There may be at most three sink nodes while the
  // requests are in transit: node X, node Y and the current sink."
  ClusterConfig config;
  config.n = 5;
  config.initial_token_holder = 3;
  config.tree = topology::Tree::line(5);
  Cluster cluster(make_neilsen_algorithm(), std::move(config));

  cluster.request_cs(1);
  cluster.request_cs(5);
  // Nothing delivered yet: 1 and 5 made themselves sinks; 3 still is one.
  EXPECT_EQ(count_sinks(view(cluster)), 3u);
  EXPECT_EQ(cluster.network().in_flight_count("REQUEST"), 2u);

  // As requests land, the sink count collapses back toward one.
  cluster.run_to_quiescence();
  // Token holder 3 is in... nobody was in CS: node 3 idle-holding handed
  // the token to whichever request arrived first.
  EXPECT_EQ(count_sinks(view(cluster)),
            1u + cluster.network().in_flight_count("REQUEST"));
}

TEST(NeilsenSinks, SinkCountNeverExceedsRequestsInFlightPlusOne) {
  ClusterConfig config;
  config.n = 7;
  config.initial_token_holder = 4;
  config.tree = topology::Tree::random_tree(7, 9);
  Cluster cluster(make_neilsen_algorithm(), std::move(config));
  cluster.set_post_event_hook([](Cluster& c) {
    NodeView nodes;
    nodes.push_back(nullptr);
    for (NodeId v = 1; v <= c.size(); ++v) {
      nodes.push_back(&c.node_as<NeilsenNode>(v));
    }
    ASSERT_LE(count_sinks(nodes),
              c.network().in_flight_count("REQUEST") + 1);
  });
  for (NodeId v = 1; v <= 7; ++v) {
    cluster.hold_and_release(v, 1);
  }
  cluster.run_to_quiescence();
}

TEST(ImplicitQueue, HolderWithEmptyChain) {
  ClusterConfig config;
  config.n = 4;
  config.initial_token_holder = 2;
  config.tree = topology::Tree::star(4, 1);
  Cluster cluster(make_neilsen_algorithm(), std::move(config));
  const NodeView nodes = view(cluster);
  EXPECT_EQ(find_token_holder(nodes), 2);
  EXPECT_TRUE(deduce_waiting_queue(nodes, 2).empty());
}

TEST(ImplicitQueue, HolderInCsStillFound) {
  ClusterConfig config;
  config.n = 3;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::line(3);
  Cluster cluster(make_neilsen_algorithm(), std::move(config));
  cluster.request_cs(1);
  EXPECT_EQ(find_token_holder(view(cluster)), 1);
  cluster.release_cs(1);
}

TEST(ImplicitQueue, NoHolderWhileTokenInFlight) {
  ClusterConfig config;
  config.n = 3;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::line(3);
  Cluster cluster(make_neilsen_algorithm(), std::move(config));
  cluster.request_cs(3);
  // Run until the idle holder has dispatched the PRIVILEGE but node 3
  // has not received it yet.
  while (cluster.network().in_flight_count("PRIVILEGE") == 0) {
    cluster.simulator().step();
  }
  EXPECT_EQ(find_token_holder(view(cluster)), kNilNode);
  cluster.run_to_quiescence();
  EXPECT_EQ(find_token_holder(view(cluster)), 3);
  cluster.release_cs(3);
}

TEST(ImplicitQueue, CorruptFollowCycleDetected) {
  const NeilsenNode a = NeilsenNode::restore(
      false, kNilNode, 2, NeilsenNode::CsStatus::kInCs);
  const NeilsenNode b = NeilsenNode::restore(
      false, 1, 1, NeilsenNode::CsStatus::kWaiting);  // FOLLOW back to 1!
  // 1 -> 2 -> 1 cycles; deduce_waiting_queue must throw, not hang.
  EXPECT_THROW(deduce_waiting_queue({nullptr, &a, &b}, 1),
               std::logic_error);
}

TEST(ImplicitQueue, TwoHoldersDetected) {
  const NeilsenNode a = NeilsenNode::restore(
      true, kNilNode, kNilNode, NeilsenNode::CsStatus::kIdle);
  const NeilsenNode b = NeilsenNode::restore(
      true, kNilNode, kNilNode, NeilsenNode::CsStatus::kIdle);
  EXPECT_THROW(find_token_holder({nullptr, &a, &b}), std::logic_error);
}

TEST(EdgeInversion, UndirectedTreeIsPreservedForever) {
  // Chapter 5 assumption 2: forwarding a REQUEST "simply changes the
  // direction of an edge", so the undirected edge multiset of the NEXT
  // graph (plus each sink's missing edge) stays within the original tree.
  ClusterConfig config;
  config.n = 8;
  config.initial_token_holder = 5;
  const topology::Tree tree = topology::Tree::random_tree(8, 31);
  config.tree = tree;
  Cluster cluster(make_neilsen_algorithm(), std::move(config));

  auto edges_are_tree_edges = [&](Cluster& c) {
    for (NodeId v = 1; v <= c.size(); ++v) {
      const NodeId next = c.node_as<NeilsenNode>(v).next();
      if (next == kNilNode) continue;
      const auto& nbrs = tree.neighbors(v);
      ASSERT_TRUE(std::find(nbrs.begin(), nbrs.end(), next) != nbrs.end())
          << "NEXT edge " << v << "->" << next
          << " is not an edge of the logical tree";
    }
  };
  cluster.set_post_event_hook(
      [&](Cluster& c) { edges_are_tree_edges(c); });
  for (int round = 0; round < 3; ++round) {
    for (NodeId v = 1; v <= 8; ++v) {
      cluster.hold_and_release(v, 2);
    }
    cluster.run_to_quiescence();
  }
  EXPECT_EQ(cluster.total_entries(), 24u);
}

}  // namespace
}  // namespace dmx::core
