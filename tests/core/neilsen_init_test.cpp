// Tests for the distributed initialization procedure (Figure 5): the
// token holder floods INITIALIZE; every other node orients NEXT toward
// the neighbour it first heard from. The resulting state must equal the
// precomputed orientation used by the registry factory.
#include <gtest/gtest.h>

#include <memory>

#include "core/messages.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"

namespace dmx::core {
namespace {

/// Algorithm descriptor whose nodes start *uninitialized*, with neighbour
/// lists, as Figure 5 assumes. token_based is false so the harness skips
/// the token-uniqueness check until initialization completes.
proto::Algorithm make_uninitialized_neilsen() {
  proto::Algorithm algo;
  algo.name = "Neilsen-uninit";
  algo.token_based = false;
  algo.needs_tree = true;
  algo.factory = [](const proto::ClusterSpec& spec) {
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] = std::make_unique<NeilsenNode>(
          spec.tree->neighbors(v), v == spec.initial_token_holder);
    }
    return nodes;
  };
  return algo;
}

class NeilsenInitTest : public ::testing::TestWithParam<int> {};

TEST_P(NeilsenInitTest, FloodMatchesPrecomputedOrientation) {
  const int n = 9;
  const NodeId holder = static_cast<NodeId>(GetParam());
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const topology::Tree tree = topology::Tree::random_tree(n, seed);
    harness::ClusterConfig config;
    config.n = n;
    config.initial_token_holder = holder;
    config.tree = tree;
    harness::Cluster cluster(make_uninitialized_neilsen(), std::move(config));

    for (NodeId v = 1; v <= n; ++v) {
      EXPECT_FALSE(cluster.node_as<NeilsenNode>(v).initialized());
    }
    cluster.node_as<NeilsenNode>(holder).start_init(cluster.context(holder));
    cluster.run_to_quiescence();

    const auto expected = tree.next_pointers_toward(holder);
    for (NodeId v = 1; v <= n; ++v) {
      const auto& node = cluster.node_as<NeilsenNode>(v);
      EXPECT_TRUE(node.initialized());
      EXPECT_EQ(node.next(), expected[static_cast<std::size_t>(v)])
          << "node " << v << " holder " << holder << " seed " << seed;
      EXPECT_EQ(node.follow(), kNilNode);
      EXPECT_EQ(node.holding(), v == holder);
    }
    // The flood sends exactly one INITIALIZE per tree edge.
    EXPECT_EQ(cluster.network().stats().sent("INITIALIZE"),
              static_cast<std::uint64_t>(n - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Holders, NeilsenInitTest,
                         ::testing::Values(1, 4, 9));

TEST(NeilsenInit, StartInitOnNonHolderRejected) {
  harness::ClusterConfig config;
  config.n = 3;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::line(3);
  harness::Cluster cluster(make_uninitialized_neilsen(), std::move(config));
  EXPECT_THROW(
      cluster.node_as<NeilsenNode>(2).start_init(cluster.context(2)),
      std::logic_error);
}

TEST(NeilsenInit, RequestBeforeInitializationRejected) {
  harness::ClusterConfig config;
  config.n = 3;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::line(3);
  harness::Cluster cluster(make_uninitialized_neilsen(), std::move(config));
  EXPECT_THROW(cluster.request_cs(2), std::logic_error);
}

TEST(NeilsenInit, ProtocolUsableImmediatelyAfterInit) {
  harness::ClusterConfig config;
  config.n = 5;
  config.initial_token_holder = 3;
  config.tree = topology::Tree::star(5, 2);
  harness::Cluster cluster(make_uninitialized_neilsen(), std::move(config));
  cluster.node_as<NeilsenNode>(3).start_init(cluster.context(3));
  cluster.run_to_quiescence();

  std::vector<NodeId> entered;
  for (NodeId v : {5, 1, 4}) {
    cluster.hold_and_release(v, 2);
  }
  cluster.run_to_quiescence();
  EXPECT_EQ(cluster.total_entries(), 3u);
}

}  // namespace
}  // namespace dmx::core
