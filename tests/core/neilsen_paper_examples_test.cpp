// Step-by-step reproduction of the paper's worked examples.
//
// Figure 2 ("Simple Example"): line topology, token at node 5, node 3
// requests through node 4.
//
// Figure 6 ("Complete Example"): the 6-node tree of Figure 6a with token
// at node 3; requests from nodes 2, 1 and 5 build the implicit queue
// [2, 1, 5], then the token walks it. Every intermediate variable table
// (6a–6k) is asserted verbatim.
#include <gtest/gtest.h>

#include "core/algorithm.hpp"
#include "core/implicit_queue.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"

namespace dmx::core {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

/// Gathers (HOLDING, NEXT, FOLLOW) for assertion against a paper table.
struct VarRow {
  std::vector<bool> holding;
  std::vector<NodeId> next;
  std::vector<NodeId> follow;
};

VarRow snapshot(Cluster& cluster) {
  VarRow row;
  row.holding.push_back(false);  // index 0 unused
  row.next.push_back(kNilNode);
  row.follow.push_back(kNilNode);
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    const auto& node = cluster.node_as<NeilsenNode>(v);
    row.holding.push_back(node.holding());
    row.next.push_back(node.next());
    row.follow.push_back(node.follow());
  }
  return row;
}

NodeView view(Cluster& cluster) {
  NodeView nodes;
  nodes.push_back(nullptr);
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    nodes.push_back(&cluster.node_as<NeilsenNode>(v));
  }
  return nodes;
}

TEST(PaperFigure2, SimpleExample) {
  // Line 1-2-3-4-5-6, node 5 holds the token (Figure 2a).
  ClusterConfig config;
  config.n = 6;
  config.initial_token_holder = 5;
  config.tree = topology::Tree::line(6);
  Cluster cluster(make_neilsen_algorithm(), std::move(config));

  auto& n3 = cluster.node_as<NeilsenNode>(3);
  auto& n4 = cluster.node_as<NeilsenNode>(4);
  auto& n5 = cluster.node_as<NeilsenNode>(5);
  EXPECT_TRUE(n5.holding());
  EXPECT_EQ(n5.next(), kNilNode);
  EXPECT_EQ(n3.next(), 4);
  EXPECT_EQ(n4.next(), 5);

  // Node 5 wants its CS: holds the token, enters immediately.
  bool entered5 = false;
  cluster.request_cs(5, [&](NodeId) { entered5 = true; });
  EXPECT_TRUE(entered5);
  EXPECT_FALSE(n5.holding());  // HOLDING := false upon entry

  // Figure 2b: node 3 requests; sends REQUEST to node 4, NEXT_3 = 0.
  bool entered3 = false;
  cluster.request_cs(3, [&](NodeId) { entered3 = true; });
  EXPECT_EQ(n3.next(), kNilNode);
  EXPECT_TRUE(n3.is_sink());

  // Figure 2c: node 4 forwards the request to node 5, NEXT_4 = 3.
  cluster.simulator().run(1);  // deliver REQUEST(3,3) at node 4
  EXPECT_EQ(n4.next(), 3);
  EXPECT_EQ(cluster.network().stats().sent("REQUEST"), 2u);

  // Figure 2d: node 5 receives it: FOLLOW_5 = 3, NEXT_5 = 4.
  cluster.simulator().run(1);
  EXPECT_EQ(n5.follow(), 3);
  EXPECT_EQ(n5.next(), 4);
  EXPECT_FALSE(n5.is_sink());

  // Node 5 leaves its CS: PRIVILEGE goes to node 3 (Figure 2e).
  cluster.release_cs(5);
  EXPECT_EQ(n5.follow(), kNilNode);
  EXPECT_EQ(cluster.network().stats().sent("PRIVILEGE"), 1u);
  cluster.run_to_quiescence();
  EXPECT_TRUE(entered3);
  EXPECT_TRUE(cluster.is_in_cs(3));
  cluster.release_cs(3);
  EXPECT_TRUE(n3.holding());  // nobody follows; node 3 keeps the token
}

class PaperFigure6 : public ::testing::Test {
 protected:
  // Figure 6a: edges {1-2, 2-3, 3-4, 2-5, 4-6}, token at node 3.
  // Initial NEXT: 1->2, 2->3, 3->0, 4->3, 5->2, 6->4.
  PaperFigure6() {
    ClusterConfig config;
    config.n = 6;
    config.initial_token_holder = 3;
    config.tree = topology::Tree::from_edges(
        6, {{1, 2}, {2, 3}, {3, 4}, {2, 5}, {4, 6}});
    cluster = std::make_unique<Cluster>(make_neilsen_algorithm(), std::move(config));
  }

  void expect_row(const std::vector<bool>& holding,
                  const std::vector<NodeId>& next,
                  const std::vector<NodeId>& follow, const char* figure) {
    const VarRow row = snapshot(*cluster);
    for (NodeId v = 1; v <= 6; ++v) {
      const auto i = static_cast<std::size_t>(v);
      EXPECT_EQ(row.holding[i], holding[i - 1])
          << figure << ": HOLDING_" << v;
      EXPECT_EQ(row.next[i], next[i - 1]) << figure << ": NEXT_" << v;
      EXPECT_EQ(row.follow[i], follow[i - 1]) << figure << ": FOLLOW_" << v;
    }
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<NodeId> entry_order;
};

TEST_F(PaperFigure6, CompleteExample) {
  const bool T = true;
  const bool F = false;

  // Figure 6a: node 3 holding.
  expect_row({F, F, T, F, F, F}, {2, 3, 0, 3, 2, 4}, {0, 0, 0, 0, 0, 0},
             "6a");

  // Step 2: node 3 enters its critical section.
  cluster->request_cs(3, [&](NodeId v) { entry_order.push_back(v); });
  EXPECT_EQ(entry_order, (std::vector<NodeId>{3}));

  // Step 3 (6b): node 2 requests; REQUEST(2,2) to 3; NEXT_2 = 0.
  cluster->request_cs(2, [&](NodeId v) { entry_order.push_back(v); });
  expect_row({F, F, F, F, F, F}, {2, 0, 0, 3, 2, 4}, {0, 0, 0, 0, 0, 0},
             "6b");

  // Step 4 (6c): node 3 receives it: FOLLOW_3 = 2, NEXT_3 = 2.
  cluster->simulator().run(1);
  expect_row({F, F, F, F, F, F}, {2, 0, 2, 3, 2, 4}, {0, 0, 2, 0, 0, 0},
             "6c");

  // Steps 5 & 6 (6d): nodes 1 and 5 request (in that order).
  cluster->request_cs(1, [&](NodeId v) { entry_order.push_back(v); });
  cluster->request_cs(5, [&](NodeId v) { entry_order.push_back(v); });
  expect_row({F, F, F, F, F, F}, {0, 0, 2, 3, 0, 4}, {0, 0, 2, 0, 0, 0},
             "6d");

  // Step 7 (6e): node 2 processes REQUEST(1,1): FOLLOW_2 = 1, NEXT_2 = 1.
  cluster->simulator().run(1);
  expect_row({F, F, F, F, F, F}, {0, 1, 2, 3, 0, 4}, {0, 1, 2, 0, 0, 0},
             "6e");

  // Step 8 (6f): node 2 processes REQUEST(5,5): forwards REQUEST(2,5) to
  // node 1 and sets NEXT_2 = 5.
  cluster->simulator().run(1);
  expect_row({F, F, F, F, F, F}, {0, 5, 2, 3, 0, 4}, {0, 1, 2, 0, 0, 0},
             "6f");

  // Step 9 (6g): node 1 processes REQUEST(2,5): FOLLOW_1 = 5, NEXT_1 = 2.
  cluster->simulator().run(1);
  expect_row({F, F, F, F, F, F}, {2, 5, 2, 3, 0, 4}, {5, 1, 2, 0, 0, 0},
             "6g");

  // The implicit global queue is now 2, 1, 5 — deduced by following
  // FOLLOW variables from the token holder (node 3).
  {
    NodeView nodes = view(*cluster);
    EXPECT_EQ(find_token_holder(nodes), 3);
    EXPECT_EQ(deduce_waiting_queue(nodes, 3),
              (std::vector<NodeId>{2, 1, 5}));
  }

  // Step 10 (6h): node 3 leaves; PRIVILEGE to node 2; FOLLOW_3 = 0.
  cluster->release_cs(3);
  expect_row({F, F, F, F, F, F}, {2, 5, 2, 3, 0, 4}, {5, 1, 0, 0, 0, 0},
             "6h");

  // Step 11 (6i): node 2 enters and leaves; PRIVILEGE to node 1.
  cluster->run_to_quiescence();  // grants are delivered; holds are zero →
                                 // but we drive releases explicitly below
  // With zero hold time the callbacks only record entries; releases are
  // manual so we can inspect each table.
  EXPECT_EQ(entry_order, (std::vector<NodeId>{3, 2}));
  cluster->release_cs(2);
  expect_row({F, F, F, F, F, F}, {2, 5, 2, 3, 0, 4}, {5, 0, 0, 0, 0, 0},
             "6i");

  // Step 12 (6j): node 1 enters and leaves; PRIVILEGE to node 5.
  cluster->run_to_quiescence();
  EXPECT_EQ(entry_order, (std::vector<NodeId>{3, 2, 1}));
  cluster->release_cs(1);
  expect_row({F, F, F, F, F, F}, {2, 5, 2, 3, 0, 4}, {0, 0, 0, 0, 0, 0},
             "6j");

  // Step 13 (6k): node 5 enters, leaves, and keeps the token: HOLDING_5.
  cluster->run_to_quiescence();
  EXPECT_EQ(entry_order, (std::vector<NodeId>{3, 2, 1, 5}));
  cluster->release_cs(5);
  expect_row({F, F, F, F, T, F}, {2, 5, 2, 3, 0, 4}, {0, 0, 0, 0, 0, 0},
             "6k");

  // Total traffic: 4 REQUESTs (2,2),(1,1),(5,5),(2,5) + 3 PRIVILEGEs.
  EXPECT_EQ(cluster->network().stats().sent("REQUEST"), 4u);
  EXPECT_EQ(cluster->network().stats().sent("PRIVILEGE"), 3u);
}

}  // namespace
}  // namespace dmx::core
