// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace dmx::sim {
namespace {

TEST(Simulator, StartsAtTimeZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Tick seen = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_after(7, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 17);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(5, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(5, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, RunWithLimitStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<Tick> fired;
  for (Tick t = 1; t <= 10; ++t) {
    sim.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  sim.run_until(5);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 5);
  sim.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Simulator, RunUntilAdvancesTimeEvenWhenEmpty) {
  Simulator sim;
  sim.run_until(42);
  EXPECT_EQ(sim.now(), 42);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) sim.schedule_after(1, step);
  };
  sim.schedule_at(0, step);
  sim.run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(sim.now(), 99);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  const EventId id = sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
}

// --- Regression coverage for exact accounting under cancellation ---------
// The original kernel computed pending() as queue size minus a lazy
// cancelled-set size, which drifted once entries were popped or an id was
// cancelled twice. The indexed kernel must keep these exact.

TEST(Simulator, CancelAfterFireFailsAndKeepsAccountingExact) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1, [&] { fired = true; });
  sim.schedule_at(2, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_TRUE(fired);
  // The event already ran: cancelling it must fail and must not disturb
  // the pending count of the remaining event.
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, CancelTwiceKeepsPendingExact) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  const EventId id = sim.schedule_at(2, [] {});
  sim.schedule_at(3, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 2u);
  // Double-cancel must not decrement pending() a second time.
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, StaleIdDoesNotCancelRecycledSlot) {
  Simulator sim;
  bool second_fired = false;
  const EventId first = sim.schedule_at(1, [] {});
  sim.run();
  // The slot is recycled for a new event; the stale id must not cancel it.
  sim.schedule_at(2, [&] { second_fired = true; });
  EXPECT_FALSE(sim.cancel(first));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, CancelInterleavedWithFiringStaysExact) {
  Simulator sim;
  std::vector<EventId> ids;
  for (Tick t = 1; t <= 20; ++t) {
    ids.push_back(sim.schedule_at(t, [] {}));
  }
  // Fire five, cancel five of the remainder, fire the rest.
  EXPECT_EQ(sim.run(5), 5u);
  EXPECT_EQ(sim.pending(), 15u);
  for (int i = 5; i < 10; ++i) {
    EXPECT_TRUE(sim.cancel(ids[static_cast<std::size_t>(i)]));
  }
  EXPECT_EQ(sim.pending(), 10u);
  EXPECT_EQ(sim.run(), 10u);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.events_executed(), 15u);
}

// --- Far-future events (the overflow tier behind the timing wheel) -------

TEST(Simulator, FarFutureEventsFireInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(500000, [&] { order.push_back(3); });
  sim.schedule_at(5, [&] { order.push_back(1); });
  sim.schedule_at(90000, [&] { order.push_back(2); });
  sim.schedule_at(500000, [&] { order.push_back(4); });  // FIFO at equal t
  EXPECT_EQ(sim.run(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), 500000);
}

TEST(Simulator, FarFutureEventsCanBeCancelled) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(1000000, [&] { fired = true; });
  sim.schedule_at(3, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 3);
}

TEST(Simulator, NearAndFarEventsAtSameTickKeepInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  // Scheduled while tick 2000 is beyond the wheel window (far tier)...
  sim.schedule_at(2000, [&] { order.push_back(1); });
  // ...then an event that drags virtual time forward...
  sim.schedule_at(1500, [&sim, &order] {
    // ...and now tick 2000 is near: this same-tick event must still fire
    // after the earlier-scheduled one.
    sim.schedule_at(2000, [&order] { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunUntilHandlesFarFutureBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(700000, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(699999), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 699999);
  EXPECT_EQ(sim.run_until(700000), 1u);
  EXPECT_EQ(fired, 2);
}

// ---- Configurable wheel span ------------------------------------------------
// The span only moves the wheel/overflow-heap boundary; the dispatch
// contract — (timestamp, insertion-sequence) order — is span-independent.

TEST(SimulatorWheelSpan, DefaultsTo1024) {
  Simulator sim;
  EXPECT_EQ(sim.wheel_span(), 1024u);
}

TEST(SimulatorWheelSpan, RejectsNonPowerOfTwoAndTooSmall) {
  EXPECT_THROW(Simulator(100), std::logic_error);
  EXPECT_THROW(Simulator(1000), std::logic_error);
  EXPECT_THROW(Simulator(32), std::logic_error);   // below one bitmap word
  EXPECT_THROW(Simulator(0), std::logic_error);
  EXPECT_NO_THROW(Simulator(64));
  EXPECT_NO_THROW(Simulator(1u << 16));
}

TEST(SimulatorWheelSpan, OrderingIsIdenticalAcrossSpans) {
  // The same schedule — a latency-model-like spread far beyond a small
  // span — must execute in the same order whether events sat in the wheel
  // or in the overflow heap.
  auto run_schedule = [](std::size_t span) {
    Simulator sim(span);
    std::vector<int> order;
    int tag = 0;
    for (const Tick at : {5000, 12, 5000, 700, 90, 63, 64, 4096, 65, 5000}) {
      sim.schedule_at(at, [&order, tag] { order.push_back(tag); });
      ++tag;
    }
    sim.run();
    return order;
  };
  const std::vector<int> small = run_schedule(64);
  const std::vector<int> large = run_schedule(1u << 14);
  EXPECT_EQ(small, run_schedule(1024));
  EXPECT_EQ(small, large);
  // Ties at 5000 preserve insertion order regardless of which structure
  // held them.
  EXPECT_EQ(small, (std::vector<int>{1, 5, 6, 8, 4, 3, 7, 0, 2, 9}));
}

TEST(SimulatorWheelSpan, TinySpanSurvivesCancellationAndCascades) {
  // Span 64 pushes nearly everything through the overflow heap: exercise
  // migration, cancellation in both structures, and events scheduling
  // events across the boundary.
  Simulator sim(64);
  std::vector<Tick> fired;
  const EventId doomed = sim.schedule_at(500, [&] { fired.push_back(-1); });
  sim.schedule_at(10, [&] {
    sim.schedule_at(300, [&] { fired.push_back(300); });
  });
  sim.schedule_at(200, [&] { fired.push_back(200); });
  sim.schedule_at(1000, [&] { fired.push_back(1000); });
  EXPECT_TRUE(sim.cancel(doomed));
  sim.run();
  EXPECT_EQ(fired, (std::vector<Tick>{200, 300, 1000}));
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorWheelSpan, LargeSpanKeepsLongLatenciesOnTheWheel) {
  // A span sized past the latency mean (the ROADMAP's long-latency case):
  // everything lands in wheel buckets, and order still holds.
  Simulator sim(1u << 13);  // 8192-tick window
  std::vector<Tick> fired;
  for (Tick at = 8000; at >= 1000; at -= 1000) {
    sim.schedule_at(at, [&fired, at] { fired.push_back(at); });
  }
  sim.run();
  EXPECT_EQ(fired,
            (std::vector<Tick>{1000, 2000, 3000, 4000, 5000, 6000, 7000,
                               8000}));
}

}  // namespace
}  // namespace dmx::sim
