// Tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace dmx::sim {
namespace {

TEST(Simulator, StartsAtTimeZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsFireInInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  Tick seen = -1;
  sim.schedule_at(10, [&] {
    sim.schedule_after(7, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 17);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::logic_error);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(5, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(5, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdFails) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));
  EXPECT_FALSE(sim.cancel(999));
}

TEST(Simulator, RunWithLimitStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i, [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending(), 6u);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  std::vector<Tick> fired;
  for (Tick t = 1; t <= 10; ++t) {
    sim.schedule_at(t, [&fired, t] { fired.push_back(t); });
  }
  sim.run_until(5);
  EXPECT_EQ(fired.size(), 5u);
  EXPECT_EQ(sim.now(), 5);
  sim.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Simulator, RunUntilAdvancesTimeEvenWhenEmpty) {
  Simulator sim;
  sim.run_until(42);
  EXPECT_EQ(sim.now(), 42);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 100) sim.schedule_after(1, step);
  };
  sim.schedule_at(0, step);
  sim.run();
  EXPECT_EQ(chain, 100);
  EXPECT_EQ(sim.now(), 99);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator sim;
  sim.schedule_at(1, [] {});
  const EventId id = sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.idle());
}

}  // namespace
}  // namespace dmx::sim
