// Tests for MessageKind interning: stable ids, name round-trips,
// unknown-kind lookup, and race-free concurrent registration.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/message_kind.hpp"

namespace dmx::net {
namespace {

TEST(MessageKind, InterningIsStable) {
  const MessageKind a = MessageKind::of("KINDTEST_ALPHA");
  const MessageKind b = MessageKind::of("KINDTEST_BETA");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
  // Re-interning returns the identical id.
  EXPECT_EQ(MessageKind::of("KINDTEST_ALPHA"), a);
  EXPECT_EQ(MessageKind::of("KINDTEST_BETA"), b);
}

TEST(MessageKind, NameRoundTrips) {
  const MessageKind kind = MessageKind::of("KINDTEST_NAME");
  EXPECT_EQ(kind.name(), "KINDTEST_NAME");
  EXPECT_EQ(MessageKind::from_id(kind.id()).name(), "KINDTEST_NAME");
}

TEST(MessageKind, LookupDoesNotRegister) {
  const std::size_t before = MessageKind::registered_count();
  const MessageKind unknown = MessageKind::lookup("KINDTEST_NEVER_INTERNED");
  EXPECT_FALSE(unknown.valid());
  EXPECT_EQ(unknown.name(), "?");
  EXPECT_EQ(MessageKind::registered_count(), before);
}

TEST(MessageKind, InvalidKindComparesUnequalToRegistered) {
  const MessageKind invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_NE(invalid, MessageKind::of("KINDTEST_ALPHA"));
  EXPECT_EQ(invalid, MessageKind());
}

TEST(MessageKind, IdsAreDense) {
  const MessageKind fresh = MessageKind::of("KINDTEST_DENSE");
  EXPECT_LT(fresh.id(), MessageKind::registered_count());
}

TEST(MessageKind, ConcurrentRegistrationIsConsistent) {
  // Many threads intern an overlapping set of names; every thread must
  // observe the same name -> id mapping with no duplicate ids.
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  std::vector<std::vector<std::uint32_t>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &seen] {
      for (int i = 0; i < kNames; ++i) {
        const std::string name =
            "KINDTEST_CONCURRENT_" + std::to_string(i);
        seen[static_cast<std::size_t>(t)].push_back(
            MessageKind::of(name).id());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
  const std::set<std::uint32_t> unique(seen[0].begin(), seen[0].end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kNames));
}

}  // namespace
}  // namespace dmx::net
