// Installs the flight-recorder failure dump for the transport tier
// (active when DMX_FLIGHT_DUMP is set; the transport ctest preset sets
// it).
#include "../support/flight_dump.hpp"

[[maybe_unused]] static const bool kFlightDumpInstalled =
    dmx::testsupport::install_flight_dump_listener();
