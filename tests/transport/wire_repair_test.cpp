// Wire-level membership repair under real SIGKILL: a five-process
// loopback-TCP mesh loses its token holder to kill -9 at every protocol
// phase (idle with the token, inside the critical section, with a remote
// waiter parked) and must regenerate the token, re-form the survivor
// membership behind a fresh epoch, and grant again — with zero witness
// violations. The transport analogue of the threaded substrate's
// crash-fault tests, except the crash is a real dead process and every
// repair message crosses a real socket.
//
// The parent process is the fault injector: it watches the shared-memory
// slots for the victim to reach the scripted phase, then delivers
// SIGKILL by pid (the ProcessHarness::Parent hook). The repair winner's
// on_repair callback retires the dead holder's shared-witness occupancy
// (shared.abandon) before the regenerated world can grant, so the
// witness stays a strict exclusivity check across the repair boundary.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "fault/membership.hpp"
#include "service/directory.hpp"
#include "transport/distributed_lock_space.hpp"
#include "transport/process_harness.hpp"

namespace dmx::transport {
namespace {

using namespace std::chrono_literals;

/// Shared-witness coordination slots (raw cross-process channels).
constexpr int kSlotReady = 0;    ///< nodes past mesh bring-up
constexpr int kSlotPhase = 1;    ///< victim is in the scripted position
constexpr int kSlotWaiter = 2;   ///< remote waiter has parked its request
constexpr int kSlotKilled = 3;   ///< parent has delivered SIGKILL
constexpr int kSlotDone = 4;     ///< survivors finished their workload

/// Where in the victim's lifecycle the SIGKILL lands.
enum class KillPhase {
  kIdleWithToken,   ///< holds the token, outside the critical section
  kInsideCs,        ///< inside the critical section (occupancy held)
  kRemoteWaiterParked,  ///< inside the CS with a survivor's request parked
};

DistributedLockSpaceConfig repair_config(NodeId self, int n,
                                         const std::string& algorithm,
                                         SharedWitness& shared) {
  DistributedLockSpaceConfig config;
  config.self = self;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name(algorithm);
  config.resources = {"res"};
  // Repair winner only: before the regenerated world can grant, retire
  // the shared-witness occupancy of every node the fresh membership
  // excludes — a SIGKILLed holder can never call exit() itself.
  config.on_repair = [&shared, n](Epoch, const fault::Membership& members) {
    for (NodeId v = 1; v <= n; ++v) {
      if (!members.contains(v)) shared.abandon(v);
    }
  };
  return config;
}

bool bring_up(DistributedLockSpace& space,
              const ProcessHarness::Rendezvous& rendezvous) {
  const std::uint16_t port = space.listen();
  std::vector<std::uint16_t> ports;
  try {
    ports = rendezvous(port);
  } catch (const std::exception&) {
    return false;
  }
  for (NodeId peer = 1; peer < space.self(); ++peer) {
    if (ports[static_cast<std::size_t>(peer)] == 0) return false;
    space.connect(peer, ports[static_cast<std::size_t>(peer)]);
  }
  space.start();
  return space.wait_connected(10000ms);
}

void wait_slot(SharedWitness& shared, int slot) {
  while (shared.slots[slot].load() == 0) {
    std::this_thread::sleep_for(1ms);
  }
}

/// Bounded post-crash acquisition: keep asking with a short wait until
/// the repaired world grants. Exit codes: 0 entered, 4 the resource went
/// unavailable (repair refused despite a live majority), 5 never granted.
int acquire_after_repair(DistributedLockSpace& space, SharedWitness& shared,
                         ResourceId r, NodeId self) {
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (std::chrono::steady_clock::now() < deadline) {
    const LockError error = space.try_lock_for(r, 250ms);
    if (error == LockError::kUnavailable) return 4;
    if (error != LockError::kOk) continue;
    shared.enter(r, self);
    for (volatile int spin = 0; spin < 500; ++spin) {
    }
    shared.exit(r);
    space.unlock(r);
    return 0;
  }
  return 5;
}

/// Victim pid is computed from the same directory parameters the space
/// uses, so parent and children agree on who holds the token at start.
NodeId token_holder(int n) {
  service::Directory directory(n, /*vnodes_per_node=*/16, /*seed=*/1);
  return directory.home_node(directory.open("res"));
}

/// One kill-the-token-holder scenario: bring up an n-process mesh, park
/// the victim at `phase`, SIGKILL it from the parent, and require every
/// survivor to enter the critical section afterwards.
HarnessResult run_kill_scenario(const std::string& algorithm, int n,
                                KillPhase phase) {
  const NodeId victim = token_holder(n);
  // The parked waiter (when the phase wants one) is the smallest
  // survivor id — deterministic for parent and children alike.
  const NodeId waiter = (victim == 1) ? 2 : 1;

  const ProcessHarness::Body body =
      [&, n, victim, waiter, phase](
          NodeId self, const ProcessHarness::Rendezvous& rendezvous,
          SharedWitness& shared) -> int {
    DistributedLockSpace space(repair_config(self, n, algorithm, shared));
    if (!bring_up(space, rendezvous)) return 2;
    const ResourceId r = space.lookup("res");
    if (space.home_node(r) != victim) return 6;  // placement drifted
    shared.slots[kSlotReady].fetch_add(1);
    while (shared.slots[kSlotReady].load() < n) {
      std::this_thread::sleep_for(1ms);
    }

    if (self == victim) {
      // Reach the scripted position, raise the phase flag, and park —
      // only the parent's SIGKILL ends this process.
      if (phase != KillPhase::kIdleWithToken) {
        space.lock(r);
        shared.enter(r, self);
      }
      shared.slots[kSlotPhase].store(1);
      for (;;) {
        std::this_thread::sleep_for(10ms);
      }
    }

    if (phase == KillPhase::kRemoteWaiterParked && self == waiter) {
      // Park a bounded-wait request behind the doomed holder BEFORE the
      // kill. The request is minted in the old world; repair must fence
      // it, re-request in the regenerated world, and still grant.
      wait_slot(shared, kSlotPhase);
      shared.slots[kSlotWaiter].store(1);
      const LockError error = space.try_lock_for(r, 15000ms);
      if (error == LockError::kUnavailable) return 4;
      if (error != LockError::kOk) return 5;
      shared.enter(r, self);
      shared.exit(r);
      space.unlock(r);
    } else {
      wait_slot(shared, kSlotKilled);
      const int code = acquire_after_repair(space, shared, r, self);
      if (code != 0) return code;
    }

    // Collective departure among the survivors.
    shared.slots[kSlotDone].fetch_add(1);
    while (shared.slots[kSlotDone].load() < n - 1) {
      std::this_thread::sleep_for(1ms);
    }
    if (space.first_error().has_value()) return 3;
    space.shutdown();
    return 0;
  };

  const ProcessHarness::Parent parent =
      [victim, phase](const std::vector<pid_t>& pids, SharedWitness& shared) {
        wait_slot(shared, kSlotPhase);
        if (phase == KillPhase::kRemoteWaiterParked) {
          wait_slot(shared, kSlotWaiter);
          // Let the waiter's request reach the holder and park.
          std::this_thread::sleep_for(200ms);
        }
        ::kill(pids[static_cast<std::size_t>(victim)], SIGKILL);
        shared.slots[kSlotKilled].store(1);
      };

  return ProcessHarness::run(n, body, parent);
}

void expect_survivors_ok(const HarnessResult& result, int n, NodeId victim,
                         std::uint64_t expected_entries) {
  for (NodeId v = 1; v <= n; ++v) {
    if (v == victim) {
      EXPECT_EQ(result.exit_codes[v], 128 + SIGKILL) << "victim " << v;
    } else {
      EXPECT_EQ(result.exit_codes[v], 0) << "survivor " << v;
    }
  }
  EXPECT_EQ(result.witness.violations, 0);
  EXPECT_EQ(result.witness.entries, expected_entries);
  for (int r = 0; r < SharedWitness::kMaxResources; ++r) {
    EXPECT_EQ(result.witness.occupancy[r], 0) << "resource " << r;
  }
}

TEST(WireRepair, NeilsenSurvivesKillOfIdleTokenHolder) {
  const int n = 5;
  const HarnessResult result =
      run_kill_scenario("Neilsen", n, KillPhase::kIdleWithToken);
  // The victim never entered; each of the four survivors entered once.
  expect_survivors_ok(result, n, token_holder(n),
                      static_cast<std::uint64_t>(n - 1));
}

TEST(WireRepair, NeilsenSurvivesKillInsideCriticalSection) {
  const int n = 5;
  const HarnessResult result =
      run_kill_scenario("Neilsen", n, KillPhase::kInsideCs);
  // The victim died holding the section (one entry, occupancy retired by
  // abandon); every survivor entered after the repair.
  expect_survivors_ok(result, n, token_holder(n),
                      static_cast<std::uint64_t>(n));
}

TEST(WireRepair, NeilsenRepairsAroundParkedRemoteWaiter) {
  const int n = 5;
  const HarnessResult result =
      run_kill_scenario("Neilsen", n, KillPhase::kRemoteWaiterParked);
  expect_survivors_ok(result, n, token_holder(n),
                      static_cast<std::uint64_t>(n));
}

TEST(WireRepair, RaymondSurvivesKillOfIdleTokenHolder) {
  const int n = 5;
  const HarnessResult result =
      run_kill_scenario("Raymond", n, KillPhase::kIdleWithToken);
  expect_survivors_ok(result, n, token_holder(n),
                      static_cast<std::uint64_t>(n - 1));
}

TEST(WireRepair, RaymondSurvivesKillInsideCriticalSection) {
  const int n = 5;
  const HarnessResult result =
      run_kill_scenario("Raymond", n, KillPhase::kInsideCs);
  expect_survivors_ok(result, n, token_holder(n),
                      static_cast<std::uint64_t>(n));
}

TEST(WireRepair, RaymondRepairsAroundParkedRemoteWaiter) {
  const int n = 5;
  const HarnessResult result =
      run_kill_scenario("Raymond", n, KillPhase::kRemoteWaiterParked);
  expect_survivors_ok(result, n, token_holder(n),
                      static_cast<std::uint64_t>(n));
}

TEST(WireRepair, BystanderHolderDefersInstallUntilUnlock) {
  // The CRASHED node is NOT the holder: a surviving bystander sits inside
  // the critical section when the REPAIR announcement lands. The install
  // (and on a non-winner, the ack) must defer until that holder's unlock
  // — the old-world critical section finishes undisturbed — and the mesh
  // must still converge and grant everyone afterwards.
  const int n = 5;
  const NodeId holder = token_holder(n);
  const NodeId victim = holder % n + 1;  // any node other than the holder

  const ProcessHarness::Body body =
      [&, n, holder, victim](NodeId self,
                             const ProcessHarness::Rendezvous& rendezvous,
                             SharedWitness& shared) -> int {
    DistributedLockSpace space(repair_config(self, n, "Neilsen", shared));
    if (!bring_up(space, rendezvous)) return 2;
    const ResourceId r = space.lookup("res");
    if (space.home_node(r) != holder) return 6;
    shared.slots[kSlotReady].fetch_add(1);
    while (shared.slots[kSlotReady].load() < n) {
      std::this_thread::sleep_for(1ms);
    }

    if (self == victim) {
      shared.slots[kSlotPhase].store(1);
      for (;;) {
        std::this_thread::sleep_for(10ms);
      }
    }

    if (self == holder) {
      // Inside the section across the whole crash + announcement window;
      // the repair may not install (or grant anyone) until this unlock.
      space.lock(r);
      shared.enter(r, self);
      wait_slot(shared, kSlotKilled);
      std::this_thread::sleep_for(300ms);
      shared.exit(r);
      space.unlock(r);
    } else {
      wait_slot(shared, kSlotKilled);
    }
    const int code = acquire_after_repair(space, shared, r, self);
    if (code != 0) return code;

    shared.slots[kSlotDone].fetch_add(1);
    while (shared.slots[kSlotDone].load() < n - 1) {
      std::this_thread::sleep_for(1ms);
    }
    if (space.first_error().has_value()) return 3;
    space.shutdown();
    return 0;
  };

  const ProcessHarness::Parent parent =
      [victim](const std::vector<pid_t>& pids, SharedWitness& shared) {
        wait_slot(shared, kSlotPhase);
        ::kill(pids[static_cast<std::size_t>(victim)], SIGKILL);
        shared.slots[kSlotKilled].store(1);
      };

  const HarnessResult result = ProcessHarness::run(n, body, parent);
  // The bystander entered once pre-crash and once post-repair; the other
  // three survivors once each: 1 + (n - 1) entries, victim none.
  expect_survivors_ok(result, n, victim, static_cast<std::uint64_t>(n));
}

TEST(WireRepair, NoMajorityAfterDoubleKillDrainsUnavailable) {
  // Kill two of three: the lone survivor is not a live strict majority,
  // so repair must refuse — every bounded wait drains kUnavailable, no
  // matter which intermediate repair the first kill managed to start.
  const int n = 3;

  const ProcessHarness::Body body =
      [n](NodeId self, const ProcessHarness::Rendezvous& rendezvous,
          SharedWitness& shared) -> int {
    DistributedLockSpace space(repair_config(self, n, "Neilsen", shared));
    if (!bring_up(space, rendezvous)) return 2;
    const ResourceId r = space.lookup("res");
    shared.slots[kSlotReady].fetch_add(1);
    while (shared.slots[kSlotReady].load() < n) {
      std::this_thread::sleep_for(1ms);
    }
    if (self != 3) {
      shared.slots[kSlotPhase].fetch_add(1);  // victims in position
      for (;;) {
        std::this_thread::sleep_for(10ms);
      }
    }
    wait_slot(shared, kSlotKilled);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      const LockError error = space.try_lock_for(r, 100ms);
      if (error == LockError::kUnavailable) return 0;
      if (error == LockError::kOk) space.unlock(r);
    }
    return 5;  // never surfaced
  };

  const ProcessHarness::Parent parent = [](const std::vector<pid_t>& pids,
                                           SharedWitness& shared) {
    while (shared.slots[kSlotPhase].load() < 2) {
      std::this_thread::sleep_for(1ms);
    }
    ::kill(pids[1], SIGKILL);
    // Let the two-of-three intermediate repair make whatever progress it
    // can before the second kill collapses the majority.
    std::this_thread::sleep_for(150ms);
    ::kill(pids[2], SIGKILL);
    shared.slots[kSlotKilled].store(1);
  };

  const HarnessResult result = ProcessHarness::run(n, body, parent);
  EXPECT_EQ(result.exit_codes[1], 128 + SIGKILL);
  EXPECT_EQ(result.exit_codes[2], 128 + SIGKILL);
  EXPECT_EQ(result.exit_codes[3], 0);
  EXPECT_EQ(result.witness.violations, 0);
}

}  // namespace
}  // namespace dmx::transport
