// EventLoop tests: two in-process loops rendezvous over loopback TCP and
// exchange protocol frames; a raw socket exercises partial-frame
// reassembly, the GOODBYE-vs-crash disconnect distinction, and corrupt
// stream rejection.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/messages.hpp"
#include "net/wire_format.hpp"
#include "transport/codec.hpp"
#include "transport/event_loop.hpp"

namespace dmx::transport {
namespace {

using namespace std::chrono_literals;

/// Frames and peer-down events collected from one loop's callbacks, with
/// a condition variable so tests can wait instead of sleeping.
struct Sink {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<FrameHeader, net::MessagePtr>> frames;
  std::vector<NodeId> downs;

  EventLoop::FrameHandler frame_handler() {
    return [this](const FrameHeader& header, net::MessagePtr message) {
      std::lock_guard<std::mutex> lock(mutex);
      frames.emplace_back(header, std::move(message));
      cv.notify_all();
    };
  }
  EventLoop::PeerDownHandler down_handler() {
    return [this](NodeId peer) {
      std::lock_guard<std::mutex> lock(mutex);
      downs.push_back(peer);
      cv.notify_all();
    };
  }
  bool wait_frames(std::size_t count, std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout,
                       [&] { return frames.size() >= count; });
  }
  bool wait_down(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return !downs.empty(); });
  }
};

/// Raw blocking loopback client for byte-level protocol tests.
class RawClient {
 public:
  explicit RawClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  }
  ~RawClient() { close(); }

  void write_all(const std::string& bytes) {
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + done, bytes.size() - done,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      done += static_cast<std::size_t>(n);
    }
  }

  /// Writes `bytes` in `chunk`-sized pieces with a small pause between
  /// each, forcing the receiving loop to buffer partial frames.
  void write_chunked(const std::string& bytes, std::size_t chunk) {
    for (std::size_t at = 0; at < bytes.size(); at += chunk) {
      write_all(bytes.substr(at, chunk));
      std::this_thread::sleep_for(2ms);
    }
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Hard close: SO_LINGER with zero timeout makes close() send RST, so
  /// the peer sees a connection reset instead of an orderly FIN.
  void reset_close() {
    if (fd_ < 0) return;
    struct linger lin;
    lin.l_onoff = 1;
    lin.l_linger = 0;
    EXPECT_EQ(::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin)),
              0);
    ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

TEST(EventLoop, TwoLoopsExchangeFramesBothWays) {
  Sink sink1;
  Sink sink2;
  EventLoop loop1({.self = 1}, sink1.frame_handler(), sink1.down_handler());
  EventLoop loop2({.self = 2}, sink2.frame_handler(), sink2.down_handler());

  const std::uint16_t port1 = loop1.listen();
  loop2.listen();
  loop2.connect(1, port1);  // mesh convention: 2 dials 1
  loop1.start();
  loop2.start();
  ASSERT_TRUE(loop1.wait_for_peers(1, 2000ms));
  ASSERT_TRUE(loop2.wait_for_peers(1, 2000ms));
  EXPECT_EQ(loop1.connected_peers(), 1);
  EXPECT_EQ(loop2.connected_peers(), 1);

  const core::RequestMessage request(2, 2);
  EXPECT_TRUE(loop2.send(1, /*epoch=*/3, /*resource=*/0, request));
  const core::PrivilegeMessage privilege;
  EXPECT_TRUE(loop1.send(2, /*epoch=*/3, /*resource=*/1, privilege));

  ASSERT_TRUE(sink1.wait_frames(1, 2000ms));
  ASSERT_TRUE(sink2.wait_frames(1, 2000ms));
  {
    std::lock_guard<std::mutex> lock(sink1.mutex);
    const auto& [header, message] = sink1.frames[0];
    EXPECT_EQ(header.from, 2);
    EXPECT_EQ(header.to, 1);
    EXPECT_EQ(header.epoch, 3u);
    EXPECT_EQ(header.resource, 0);
    EXPECT_EQ(message->encode(), request.encode());
  }
  {
    std::lock_guard<std::mutex> lock(sink2.mutex);
    const auto& [header, message] = sink2.frames[0];
    EXPECT_EQ(header.from, 1);
    EXPECT_EQ(header.resource, 1);
    EXPECT_EQ(message->encode(), privilege.encode());
  }

  // Protocol frame accounting excludes the HELLO/GOODBYE control frames.
  EXPECT_EQ(loop1.stats().frames_received.load(), 1u);
  EXPECT_EQ(loop2.stats().frames_received.load(), 1u);
  EXPECT_GT(loop1.stats().bytes_sent.load(), 0u);

  loop2.stop();
  loop1.stop();
  // Orderly shutdown on both sides: GOODBYE preceded both EOFs.
  EXPECT_TRUE(sink1.downs.empty());
  EXPECT_TRUE(sink2.downs.empty());
  EXPECT_FALSE(loop1.first_error().has_value());
  EXPECT_FALSE(loop2.first_error().has_value());
}

TEST(EventLoop, SendToUnknownPeerFails) {
  Sink sink;
  EventLoop loop({.self = 1}, sink.frame_handler(), sink.down_handler());
  loop.listen();
  loop.start();
  EXPECT_FALSE(loop.send(7, 0, 0, core::PrivilegeMessage()));
  loop.stop();
}

TEST(EventLoop, ReassemblesFramesSplitAcrossReads) {
  Sink sink;
  EventLoop loop({.self = 1}, sink.frame_handler(), sink.down_handler());
  const std::uint16_t port = loop.listen();
  loop.start();

  RawClient client(port);
  // HELLO as node 9, then two protocol frames, all dribbled 3 bytes at a
  // time so every frame arrives across several reads.
  std::string bytes;
  Codec::encode_control_frame(bytes, kHelloWireId, /*from=*/9);
  Codec::encode_frame(bytes, /*epoch=*/1, /*resource=*/2, /*from=*/9,
                      /*to=*/1, core::RequestMessage(9, 9));
  Codec::encode_frame(bytes, /*epoch=*/1, /*resource=*/2, /*from=*/9,
                      /*to=*/1, core::PrivilegeMessage());
  client.write_chunked(bytes, 3);

  ASSERT_TRUE(sink.wait_frames(2, 5000ms));
  {
    std::lock_guard<std::mutex> lock(sink.mutex);
    EXPECT_EQ(sink.frames[0].first.from, 9);
    EXPECT_EQ(sink.frames[0].second->encode(),
              core::RequestMessage(9, 9).encode());
    EXPECT_EQ(sink.frames[1].second->encode(),
              core::PrivilegeMessage().encode());
  }
  EXPECT_TRUE(loop.wait_for_peers(1, 1000ms));
  EXPECT_GT(loop.stats().partial_frames.load(), 0u);

  // Abrupt close without GOODBYE: the identified peer is reported down.
  client.close();
  ASSERT_TRUE(sink.wait_down(2000ms));
  EXPECT_EQ(sink.downs[0], 9);
  loop.stop();
}

TEST(EventLoop, GoodbyeThenCloseIsNotACrash) {
  Sink sink;
  EventLoop loop({.self = 1}, sink.frame_handler(), sink.down_handler());
  const std::uint16_t port = loop.listen();
  loop.start();

  RawClient client(port);
  std::string bytes;
  Codec::encode_control_frame(bytes, kHelloWireId, /*from=*/4);
  client.write_all(bytes);
  ASSERT_TRUE(loop.wait_for_peers(1, 2000ms));

  std::string goodbye;
  Codec::encode_control_frame(goodbye, kGoodbyeWireId, /*from=*/4);
  client.write_all(goodbye);
  client.close();

  // Give the loop ample time to process EOF; no peer-down may fire.
  EXPECT_FALSE(sink.wait_down(300ms));
  loop.stop();
  EXPECT_TRUE(sink.downs.empty());
  EXPECT_FALSE(loop.first_error().has_value());
}

TEST(EventLoop, GoodbyeBufferedBehindResetIsNotACrash) {
  // Regression for the GOODBYE-vs-EOF race: the peer's GOODBYE is still
  // in the reassembly buffer when the socket errors out. The loop's read
  // path must drain buffered frames BEFORE classifying the close, or an
  // orderly departure is misreported as a crash (and, in the lock space
  // above, needlessly fences the epoch).
  //
  // Deterministic construction: queue exactly one 64 KiB read chunk —
  // HELLO + 2 request frames + 2726 privilege frames + GOODBYE = 65536
  // bytes — then reset-close, all before the loop starts. The loop's
  // first recv() fills its whole chunk buffer (GOODBYE at the tail goes
  // into the reassembly buffer), the second recv() reports ECONNRESET
  // with the GOODBYE not yet processed.
  Sink sink;
  EventLoop loop({.self = 1}, sink.frame_handler(), sink.down_handler());
  const std::uint16_t port = loop.listen();

  std::string bytes;
  Codec::encode_control_frame(bytes, kHelloWireId, /*from=*/3);
  for (int i = 0; i < 2; ++i) {
    Codec::encode_frame(bytes, /*epoch=*/0, /*resource=*/0, /*from=*/3,
                        /*to=*/1, core::RequestMessage(3, 3));
  }
  for (int i = 0; i < 2726; ++i) {
    Codec::encode_frame(bytes, /*epoch=*/0, /*resource=*/0, /*from=*/3,
                        /*to=*/1, core::PrivilegeMessage());
  }
  Codec::encode_control_frame(bytes, kGoodbyeWireId, /*from=*/3);
  ASSERT_EQ(bytes.size(), 64u * 1024u);

  RawClient client(port);
  client.write_all(bytes);
  client.reset_close();
  loop.start();

  // Every protocol frame is delivered, and the buffered GOODBYE
  // classifies the reset as an orderly departure: no peer-down.
  ASSERT_TRUE(sink.wait_frames(2728, 5000ms));
  EXPECT_FALSE(sink.wait_down(300ms));
  loop.stop();
  EXPECT_TRUE(sink.downs.empty());
  EXPECT_FALSE(loop.first_error().has_value());
}

TEST(EventLoop, CorruptStreamTearsThePeerDown) {
  Sink sink;
  EventLoop loop({.self = 1}, sink.frame_handler(), sink.down_handler());
  const std::uint16_t port = loop.listen();
  loop.start();

  RawClient client(port);
  std::string bytes;
  Codec::encode_control_frame(bytes, kHelloWireId, /*from=*/5);
  // A length prefix far beyond kMaxFrameBytes: a desynchronized stream.
  net::WireWriter writer(bytes);
  writer.u32(kMaxFrameBytes + 1);
  client.write_all(bytes);

  ASSERT_TRUE(sink.wait_down(2000ms));
  EXPECT_EQ(sink.downs[0], 5);
  ASSERT_TRUE(loop.first_error().has_value());
  loop.stop();
}

TEST(EventLoop, UnknownWireIdIsRejectedNotDelivered) {
  Sink sink;
  EventLoop loop({.self = 1}, sink.frame_handler(), sink.down_handler());
  const std::uint16_t port = loop.listen();
  loop.start();

  RawClient client(port);
  std::string bytes;
  Codec::encode_control_frame(bytes, kHelloWireId, /*from=*/6);
  // A well-framed body whose wire id is unregistered (below the control
  // range, above every family).
  std::string body;
  net::WireWriter body_writer(body);
  body_writer.u32(0x00ffffffu);  // wire id
  body_writer.u32(0);            // epoch
  body_writer.i32(0);            // resource
  body_writer.i32(6);            // from
  body_writer.i32(1);            // to
  net::WireWriter frame_writer(bytes);
  frame_writer.u32(static_cast<std::uint32_t>(body.size()));
  bytes += body;
  client.write_all(bytes);

  ASSERT_TRUE(sink.wait_down(2000ms));
  EXPECT_EQ(sink.downs[0], 6);
  EXPECT_TRUE(sink.frames.empty());
  loop.stop();
}

}  // namespace
}  // namespace dmx::transport
