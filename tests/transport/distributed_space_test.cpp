// DistributedLockSpace over real processes: fork one process per node,
// rendezvous loopback ports through the harness pipes, and witness
// cross-process mutual exclusion through the MAP_SHARED occupancy
// counters. The registry sweep runs every implemented algorithm over
// loopback TCP — the transport-substrate leg of the DESIGN.md
// substitution argument.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "transport/distributed_lock_space.hpp"
#include "transport/process_harness.hpp"

namespace dmx::transport {
namespace {

using namespace std::chrono_literals;

/// Shared-witness coordination slots used as raw cross-process channels.
constexpr int kFlagSlot = 0;
constexpr int kBarrierSlot = 1;

/// Quiesce barrier before shutdown(): departure is collective — a node
/// that leaves the mesh while a sibling still wants locks strands that
/// sibling's requests (see distributed_lock_space.hpp), so every body
/// finishes its workload before anyone says GOODBYE.
void done_barrier(SharedWitness& shared, int n) {
  shared.slots[kBarrierSlot].fetch_add(1);
  while (shared.slots[kBarrierSlot].load() < n) {
    std::this_thread::sleep_for(1ms);
  }
}

DistributedLockSpaceConfig make_config(NodeId self, int n,
                                       const std::string& algorithm,
                                       std::vector<std::string> resources) {
  DistributedLockSpaceConfig config;
  config.self = self;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name(algorithm);
  config.resources = std::move(resources);
  return config;
}

/// Brings one node's space up through the harness rendezvous. Returns
/// false if the mesh never formed (a sibling died).
bool bring_up(DistributedLockSpace& space,
              const ProcessHarness::Rendezvous& rendezvous) {
  const std::uint16_t port = space.listen();
  std::vector<std::uint16_t> ports;
  try {
    ports = rendezvous(port);
  } catch (const std::exception&) {
    return false;
  }
  for (NodeId peer = 1; peer < space.self(); ++peer) {
    if (ports[static_cast<std::size_t>(peer)] == 0) return false;
    space.connect(peer, ports[static_cast<std::size_t>(peer)]);
  }
  space.start();
  return space.wait_connected(10000ms);
}

/// The standard workload body: every node hammers every resource
/// `iterations` times, bracketing each critical section with the shared
/// witness. Exit codes: 0 ok, 2 mesh never formed, 3 space error.
ProcessHarness::Body contention_body(int n, const std::string& algorithm,
                                     std::vector<std::string> resources,
                                     int iterations) {
  return [n, algorithm, resources, iterations](
             NodeId self, const ProcessHarness::Rendezvous& rendezvous,
             SharedWitness& shared) -> int {
    DistributedLockSpace space(make_config(self, n, algorithm, resources));
    if (!bring_up(space, rendezvous)) return 2;
    for (int iteration = 0; iteration < iterations; ++iteration) {
      for (const std::string& name : resources) {
        const ResourceId r = space.lookup(name);
        space.lock(r);
        shared.enter(r, self);
        // A few spins inside the section widen the overlap window any
        // exclusivity bug would need to hit.
        for (volatile int spin = 0; spin < 500; ++spin) {
        }
        shared.exit(r);
        space.unlock(r);
      }
    }
    done_barrier(shared, n);
    if (space.first_error().has_value()) return 3;
    space.shutdown();
    return 0;
  };
}

TEST(DistributedLockSpace, NeilsenExcludesAcrossThreeProcesses) {
  const int n = 3;
  const int iterations = 25;
  const std::vector<std::string> resources = {"alpha", "beta"};
  const HarnessResult result =
      ProcessHarness::run(n, contention_body(n, "Neilsen", resources,
                                             iterations));
  ASSERT_TRUE(result.all_ok())
      << "exit codes: " << result.exit_codes[1] << " "
      << result.exit_codes[2] << " " << result.exit_codes[3];
  EXPECT_EQ(result.witness.violations, 0);
  EXPECT_EQ(result.witness.entries,
            static_cast<std::uint64_t>(n * iterations * resources.size()));
  for (int r = 0; r < SharedWitness::kMaxResources; ++r) {
    EXPECT_EQ(result.witness.occupancy[r], 0) << "resource " << r;
  }
}

TEST(DistributedLockSpace, EveryAlgorithmExcludesOverLoopbackTcp) {
  // The full nine-algorithm registry, each over a real three-process
  // mesh. Iteration counts stay small: the point is green exclusivity
  // per algorithm, not throughput.
  const int n = 3;
  const int iterations = 6;
  for (const proto::Algorithm& algorithm : baselines::all_algorithms()) {
    const HarnessResult result = ProcessHarness::run(
        n, contention_body(n, algorithm.name, {"res"}, iterations));
    ASSERT_TRUE(result.all_ok())
        << algorithm.name << " exit codes: " << result.exit_codes[1] << " "
        << result.exit_codes[2] << " " << result.exit_codes[3];
    EXPECT_EQ(result.witness.violations, 0) << algorithm.name;
    EXPECT_EQ(result.witness.entries,
              static_cast<std::uint64_t>(n * iterations))
        << algorithm.name;
  }
}

TEST(DistributedLockSpace, TryLockTimesOutWhileHeldRemotely) {
  const int n = 2;
  const HarnessResult result = ProcessHarness::run(
      n,
      [n](NodeId self, const ProcessHarness::Rendezvous& rendezvous,
          SharedWitness& shared) -> int {
        DistributedLockSpace space(
            make_config(self, n, "Neilsen", {"res"}));
        if (!bring_up(space, rendezvous)) return 2;
        const ResourceId r = space.lookup("res");
        if (self == 1) {
          // Hold the section until node 2 reports its timeout through
          // the flag slot.
          space.lock(r);
          shared.enter(r, self);
          while (shared.slots[kFlagSlot].load() == 0) {
            std::this_thread::sleep_for(1ms);
          }
          shared.exit(r);
          space.unlock(r);
        } else {
          // Wait until node 1 is inside the section, then try with a
          // bounded wait: the grant cannot arrive, so this must time
          // out — and cleanly enough that a real lock works right after.
          while (shared.occupancy[r].load() == 0) {
            std::this_thread::sleep_for(1ms);
          }
          const LockError error = space.try_lock_for(r, 30ms);
          if (error != LockError::kTimeout) return 4;
          shared.slots[kFlagSlot].store(1);
          space.lock(r);
          shared.enter(r, self);
          shared.exit(r);
          space.unlock(r);
        }
        done_barrier(shared, n);
        if (space.first_error().has_value()) return 3;
        space.shutdown();
        return 0;
      });
  ASSERT_TRUE(result.all_ok()) << "exit codes: " << result.exit_codes[1]
                               << " " << result.exit_codes[2];
  EXPECT_EQ(result.witness.violations, 0);
  EXPECT_EQ(result.witness.entries, 2u);
}

TEST(DistributedLockSpace, PeerCrashSurfacesAsUnavailable) {
  // Node 2 dies without the GOODBYE handshake (_exit skips the orderly
  // shutdown). One survivor of two is NOT a live strict majority, so the
  // repair protocol must refuse to regenerate the token: node 1 observes
  // kUnavailable on a bounded wait rather than hanging — the transport
  // analogue of the in-process no-majority path. (Majority crashes that
  // DO repair live in wire_repair_test.cpp.)
  const int n = 2;
  const HarnessResult result = ProcessHarness::run(
      n,
      [n](NodeId self, const ProcessHarness::Rendezvous& rendezvous,
          SharedWitness& shared) -> int {
        DistributedLockSpace space(
            make_config(self, n, "Neilsen", {"res"}));
        if (!bring_up(space, rendezvous)) return 2;
        const ResourceId r = space.lookup("res");
        if (self == 2) {
          // One clean entry proves the mesh worked, then crash hard.
          space.lock(r);
          shared.enter(r, self);
          shared.exit(r);
          space.unlock(r);
          shared.slots[kFlagSlot].store(1);
          _exit(0);  // no GOODBYE, no destructors: a real crash
        }
        while (shared.slots[kFlagSlot].load() == 0) {
          std::this_thread::sleep_for(1ms);
        }
        // Keep asking with a bounded wait; once the loop notices the
        // dead socket every waiter must drain with kUnavailable.
        const auto deadline = std::chrono::steady_clock::now() + 10s;
        while (std::chrono::steady_clock::now() < deadline) {
          const LockError error = space.try_lock_for(r, 100ms);
          if (error == LockError::kUnavailable) return 0;
          if (error == LockError::kOk) space.unlock(r);
        }
        return 5;  // never surfaced
      });
  EXPECT_EQ(result.exit_codes[1], 0);
  EXPECT_EQ(result.exit_codes[2], 0);
  EXPECT_EQ(result.witness.violations, 0);
}

TEST(DistributedLockSpace, EpochBumpMidWaitKeepsDeadline) {
  // Regression: a repair's epoch bump wakes parked clients so they can
  // re-check their predicates. That wake must neither return early (the
  // waiter is not granted, not timed out, and the resource is still
  // available) nor re-park against a recomputed deadline. Single process:
  // the epoch bump comes from the debug fence, the exact stimulus the
  // repair path delivers, without needing a real crash.
  DistributedLockSpace space(make_config(1, 1, "Neilsen", {"res"}));
  space.listen();
  space.start();
  const ResourceId r = space.lookup("res");
  ASSERT_EQ(space.epoch(r), 0u);

  space.lock(r);  // park the second thread behind this hold
  LockError got = LockError::kOk;
  const auto wait_started = std::chrono::steady_clock::now();
  std::thread waiter([&space, r, &got] {
    got = space.try_lock_for(r, 400ms);
  });
  std::this_thread::sleep_for(100ms);
  space.debug_fence_epoch(r);  // wakes the waiter mid-wait
  EXPECT_EQ(space.epoch(r), 1u);
  std::this_thread::sleep_for(100ms);
  // The holder's world is fenced: its release drops itself, so no grant
  // (stale or fresh) can ever reach the waiter — the deadline governs.
  space.unlock(r);
  waiter.join();
  const auto waited = std::chrono::steady_clock::now() - wait_started;

  EXPECT_EQ(got, LockError::kTimeout);
  // Not early (the two wakes at ~100ms and ~200ms must not terminate the
  // wait) and not re-parked past the original deadline.
  EXPECT_GE(waited, 380ms);
  EXPECT_LT(waited, 1500ms);

  // A request minted after the fence is also fenced (no world exists at
  // the bumped epoch); a bounded wait still honors its deadline.
  EXPECT_EQ(space.try_lock_for(r, 50ms), LockError::kTimeout);
  space.shutdown();
}

}  // namespace
}  // namespace dmx::transport
