// ProcessHarness tests: rendezvous collapse when a child dies by signal
// before publishing its port (the reaping regression), the parent-side
// fault-injection hook, and the shared witness's holder/abandon
// bookkeeping that wire repair relies on.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>

#include <chrono>
#include <thread>

#include "transport/process_harness.hpp"

namespace dmx::transport {
namespace {

using namespace std::chrono_literals;

TEST(ProcessHarness, ChildKilledBeforeRendezvousCollapsesCleanly) {
  // Node 2 dies by signal before ever publishing a port. The parent must
  // not hang collecting ports; node 2 must surface as 128+SIGKILL; and
  // the siblings' rendezvous must throw (zero port in the map) instead
  // of dialing a port that never existed — the harness catch turns that
  // into exit 70.
  const int n = 3;
  const HarnessResult result = ProcessHarness::run(
      n,
      [](NodeId self, const ProcessHarness::Rendezvous& rendezvous,
         SharedWitness&) -> int {
        if (self == 2) {
          ::raise(SIGKILL);  // no port write, no pipe etiquette
        }
        (void)rendezvous(1000 + static_cast<std::uint16_t>(self));
        // A live sibling must never get here: the map has node 2's zero
        // port, so rendezvous throws.
        return 9;
      });
  EXPECT_EQ(result.exit_codes[1], 70);
  EXPECT_EQ(result.exit_codes[2], 128 + SIGKILL);
  EXPECT_EQ(result.exit_codes[3], 70);
}

TEST(ProcessHarness, ParentHookCanKillAChild) {
  // The parent hook runs between broadcast and reap; fault injection by
  // pid lives there. The child parks forever and only SIGKILL ends it.
  const HarnessResult result = ProcessHarness::run(
      1,
      [](NodeId, const ProcessHarness::Rendezvous& rendezvous,
         SharedWitness& shared) -> int {
        (void)rendezvous(1);
        shared.slots[0].store(1);
        for (;;) {
          std::this_thread::sleep_for(10ms);
        }
      },
      [](const std::vector<pid_t>& pids, SharedWitness& shared) {
        while (shared.slots[0].load() == 0) {
          std::this_thread::sleep_for(1ms);
        }
        ::kill(pids[1], SIGKILL);
      });
  EXPECT_EQ(result.exit_codes[1], 128 + SIGKILL);
}

TEST(SharedWitness, AbandonRetiresOnlyTheVictimsHold) {
  SharedWitness w;
  for (int r = 0; r < SharedWitness::kMaxResources; ++r) {
    w.occupancy[r].store(0);
    w.holder[r].store(kNilNode);
  }
  w.violations.store(0);
  w.entries.store(0);

  w.enter(3, /*self=*/2);
  EXPECT_EQ(w.occupancy[3].load(), 1);
  EXPECT_EQ(w.holder[3].load(), 2);

  // Abandoning a node that holds nothing is a no-op.
  w.abandon(5);
  EXPECT_EQ(w.occupancy[3].load(), 1);
  EXPECT_EQ(w.holder[3].load(), 2);

  // Abandoning the holder retires its occupancy; idempotently.
  w.abandon(2);
  EXPECT_EQ(w.occupancy[3].load(), 0);
  EXPECT_EQ(w.holder[3].load(), kNilNode);
  w.abandon(2);
  EXPECT_EQ(w.occupancy[3].load(), 0);

  // The normal exit path also clears the holder, so a later abandon of
  // the same node cannot double-retire.
  w.enter(7, /*self=*/4);
  w.exit(7);
  w.abandon(4);
  EXPECT_EQ(w.occupancy[7].load(), 0);
  EXPECT_EQ(w.violations.load(), 0);
  EXPECT_EQ(w.entries.load(), 2u);
}

}  // namespace
}  // namespace dmx::transport
