// Binary wire codec tests: round-trip fidelity for every registered
// message family, encode-uniqueness over generated corpora (the aliasing
// audit pin — two behaviorally different messages must never share a
// binary encoding OR an encode() string), frame header round-trips, and
// rejection of malformed input.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "baselines/carvalho_roucairol.hpp"
#include "baselines/central.hpp"
#include "baselines/lamport.hpp"
#include "baselines/maekawa.hpp"
#include "baselines/raymond.hpp"
#include "baselines/ricart_agrawala.hpp"
#include "baselines/singhal.hpp"
#include "baselines/suzuki_kasami.hpp"
#include "core/messages.hpp"
#include "net/wire_format.hpp"
#include "transport/codec.hpp"
#include "transport/repair_messages.hpp"

namespace dmx::transport {
namespace {

using baselines::CentralMessage;
using baselines::CrMessage;
using baselines::LamportMessage;
using baselines::MaekawaMessage;
using baselines::RaMessage;
using baselines::RaymondMessage;
using baselines::SinghalRequestMessage;
using baselines::SinghalState;
using baselines::SinghalToken;
using baselines::SinghalTokenMessage;
using baselines::SkRequestMessage;
using baselines::SkToken;
using baselines::SkTokenMessage;

/// A corpus of distinct messages per family: every pair of corpus entries
/// is behaviorally different, so encodings must differ pairwise.
std::vector<net::MessagePtr> corpus() {
  std::vector<net::MessagePtr> out;
  // Neilsen.
  out.push_back(std::make_unique<core::RequestMessage>(1, 1));
  out.push_back(std::make_unique<core::RequestMessage>(1, 2));
  out.push_back(std::make_unique<core::RequestMessage>(3, 2));
  out.push_back(std::make_unique<core::PrivilegeMessage>());
  out.push_back(std::make_unique<core::InitializeMessage>());
  // Raymond.
  out.push_back(
      std::make_unique<RaymondMessage>(RaymondMessage::Type::kRequest));
  out.push_back(
      std::make_unique<RaymondMessage>(RaymondMessage::Type::kPrivilege));
  // Suzuki–Kasami.
  out.push_back(std::make_unique<SkRequestMessage>(1));
  out.push_back(std::make_unique<SkRequestMessage>(7));
  {
    SkToken token;
    token.last_granted = {0, 1, 0, 2};
    token.queue = {3};
    out.push_back(std::make_unique<SkTokenMessage>(token));
    token.queue = {3, 2};
    out.push_back(std::make_unique<SkTokenMessage>(token));
    token.queue.clear();
    out.push_back(std::make_unique<SkTokenMessage>(token));
    token.last_granted = {0, 1, 1, 2};
    out.push_back(std::make_unique<SkTokenMessage>(token));
  }
  // Singhal.
  out.push_back(std::make_unique<SinghalRequestMessage>(2, 5));
  out.push_back(std::make_unique<SinghalRequestMessage>(2, 6));
  out.push_back(std::make_unique<SinghalRequestMessage>(3, 5));
  {
    SinghalToken token;
    token.tsv = {SinghalState::kNone, SinghalState::kHolding,
                 SinghalState::kRequesting};
    token.tsn = {0, 1, 2};
    out.push_back(std::make_unique<SinghalTokenMessage>(token));
    token.tsv[2] = SinghalState::kNone;
    out.push_back(std::make_unique<SinghalTokenMessage>(token));
    token.tsn[2] = 3;
    out.push_back(std::make_unique<SinghalTokenMessage>(token));
  }
  // Ricart–Agrawala.
  out.push_back(std::make_unique<RaMessage>(RaMessage::Type::kRequest, 4));
  out.push_back(std::make_unique<RaMessage>(RaMessage::Type::kRequest, 5));
  out.push_back(std::make_unique<RaMessage>(RaMessage::Type::kReply, 4));
  // Carvalho–Roucairol.
  out.push_back(std::make_unique<CrMessage>(CrMessage::Type::kRequest, 9));
  out.push_back(std::make_unique<CrMessage>(CrMessage::Type::kReply, 9));
  // Lamport.
  out.push_back(
      std::make_unique<LamportMessage>(LamportMessage::Type::kRequest, 2));
  out.push_back(
      std::make_unique<LamportMessage>(LamportMessage::Type::kAck, 2));
  out.push_back(
      std::make_unique<LamportMessage>(LamportMessage::Type::kRelease, 2));
  out.push_back(
      std::make_unique<LamportMessage>(LamportMessage::Type::kRequest, 3));
  // Maekawa — every type carries its sequence.
  out.push_back(
      std::make_unique<MaekawaMessage>(MaekawaMessage::Type::kRequest, 1));
  out.push_back(
      std::make_unique<MaekawaMessage>(MaekawaMessage::Type::kLocked, 1));
  out.push_back(
      std::make_unique<MaekawaMessage>(MaekawaMessage::Type::kRelease, 1));
  out.push_back(
      std::make_unique<MaekawaMessage>(MaekawaMessage::Type::kFail, 1));
  out.push_back(
      std::make_unique<MaekawaMessage>(MaekawaMessage::Type::kInquire, 1));
  out.push_back(
      std::make_unique<MaekawaMessage>(MaekawaMessage::Type::kRelinquish, 1));
  out.push_back(
      std::make_unique<MaekawaMessage>(MaekawaMessage::Type::kRequest, 2));
  // Central.
  out.push_back(
      std::make_unique<CentralMessage>(CentralMessage::Type::kRequest));
  out.push_back(
      std::make_unique<CentralMessage>(CentralMessage::Type::kGrant));
  out.push_back(
      std::make_unique<CentralMessage>(CentralMessage::Type::kRelease));
  // Membership repair.
  out.push_back(std::make_unique<RepairMessage>(
      7, 2, std::vector<NodeId>{2, 3, 5}));
  out.push_back(std::make_unique<RepairMessage>(
      8, 2, std::vector<NodeId>{2, 3, 5}));
  out.push_back(std::make_unique<RepairMessage>(
      7, 3, std::vector<NodeId>{3, 5}));
  out.push_back(std::make_unique<RepairMessage>(7, 2,
                                                std::vector<NodeId>{2}));
  out.push_back(std::make_unique<RepairAckMessage>(7));
  out.push_back(std::make_unique<RepairAckMessage>(8));
  return out;
}

TEST(WireCodec, RegistersEveryFamily) {
  Codec::ensure_registered();
  EXPECT_EQ(Codec::family_count(), 15u);
  // Wire ids are dense and self-consistent: each registered kind resolves
  // back to its own wire id through a message of that family.
  for (const net::MessagePtr& message : corpus()) {
    const std::uint32_t wire_id = Codec::wire_id_of(*message);
    EXPECT_LT(wire_id, Codec::family_count());
    EXPECT_EQ(Codec::kind_of(wire_id), message->wire_kind())
        << message->describe();
  }
}

TEST(WireCodec, RoundTripsEveryCorpusMessage) {
  for (const net::MessagePtr& message : corpus()) {
    std::string payload;
    message->encode_binary(payload);
    net::WireReader reader(payload);
    const net::MessagePtr decoded =
        Codec::decode(Codec::wire_id_of(*message), reader);
    ASSERT_NE(decoded, nullptr);
    // decode() reconstructs a behaviorally identical message: same
    // canonical encode() (the explorer's state identity), same kind, same
    // payload accounting, same wire re-encoding.
    EXPECT_EQ(decoded->encode(), message->encode());
    EXPECT_EQ(decoded->kind(), message->kind());
    EXPECT_EQ(decoded->payload_bytes(), message->payload_bytes());
    EXPECT_EQ(decoded->wire_kind(), message->wire_kind());
    std::string reencoded;
    decoded->encode_binary(reencoded);
    EXPECT_EQ(reencoded, payload) << message->describe();
  }
}

TEST(WireCodec, EncodingsAreUniqueAcrossTheCorpus) {
  // The aliasing audit, pinned: across every behaviorally-distinct corpus
  // message, (wire id, binary payload) pairs are unique, and so are the
  // canonical encode() strings — a family whose describe()/encode()
  // dropped a payload field (the bug class this PR audited for) would
  // collide here.
  const auto messages = corpus();
  std::set<std::string> binary;
  std::set<std::string> canonical;
  for (const net::MessagePtr& message : messages) {
    std::string key = std::to_string(Codec::wire_id_of(*message)) + "|";
    message->encode_binary(key);
    EXPECT_TRUE(binary.insert(key).second)
        << "binary encoding aliased: " << message->describe();
    const std::string canon =
        std::string(message->wire_kind().name()) + "|" + message->encode();
    EXPECT_TRUE(canonical.insert(canon).second)
        << "encode() aliased: " << message->describe();
  }
}

TEST(WireCodec, FrameHeaderRoundTrips) {
  std::string frame;
  const core::RequestMessage message(3, 7);
  Codec::encode_frame(frame, /*epoch=*/5, /*resource=*/9, /*from=*/2,
                      /*to=*/4, message);
  // Length prefix covers exactly the rest of the frame.
  net::WireReader length_reader(frame);
  const std::uint32_t length = length_reader.u32();
  ASSERT_EQ(frame.size(), 4u + length);

  net::WireReader reader(std::string_view(frame).substr(4));
  const FrameHeader header = Codec::decode_header(reader);
  EXPECT_EQ(header.wire_id, Codec::wire_id_of(message));
  EXPECT_EQ(header.epoch, 5u);
  EXPECT_EQ(header.resource, 9);
  EXPECT_EQ(header.from, 2);
  EXPECT_EQ(header.to, 4);
  const net::MessagePtr decoded = Codec::decode(header.wire_id, reader);
  EXPECT_EQ(decoded->encode(), message.encode());
}

TEST(WireCodec, RejectsMalformedInput) {
  // Unknown wire id.
  {
    net::WireReader reader(std::string_view(""));
    EXPECT_THROW(Codec::decode(9999, reader), net::WireError);
  }
  // Truncated payload.
  {
    const std::string half = "\x01\x00";  // REQUEST needs 8 bytes
    net::WireReader reader(half);
    const core::RequestMessage probe(1, 2);
    EXPECT_THROW(Codec::decode(Codec::wire_id_of(probe), reader),
                 net::WireError);
  }
  // Trailing bytes after a complete payload.
  {
    const core::RequestMessage message(1, 2);
    std::string payload;
    message.encode_binary(payload);
    payload.push_back('\0');
    net::WireReader reader(payload);
    EXPECT_THROW(Codec::decode(Codec::wire_id_of(message), reader),
                 net::WireError);
  }
  // Out-of-range enum discriminant.
  {
    const RaMessage probe(RaMessage::Type::kRequest, 1);
    std::string payload;
    payload.push_back('\x07');  // RA has types 0 and 1
    payload.append(4, '\0');
    net::WireReader reader(payload);
    EXPECT_THROW(Codec::decode(Codec::wire_id_of(probe), reader),
                 net::WireError);
  }
  // A vector count larger than the remaining buffer could hold (the
  // anti-allocation guard for corrupt token frames).
  {
    SkToken token;
    token.last_granted = {0, 1};
    const SkTokenMessage probe(token);
    std::string payload;
    net::WireWriter writer(payload);
    writer.u32(0x40000000u);  // one-billion-entry LN array, 4 bytes follow
    writer.i32(1);
    net::WireReader reader(payload);
    EXPECT_THROW(Codec::decode(Codec::wire_id_of(probe), reader),
                 net::WireError);
  }
  // A repair membership that is not strictly ascending cannot have come
  // from the repair protocol — corrupt frame, refused.
  {
    const RepairMessage probe(1, 2, {2, 3});
    std::string payload;
    net::WireWriter writer(payload);
    writer.u32(1);   // epoch
    writer.i32(2);   // winner
    writer.u32(3);   // member count
    writer.i32(2);
    writer.i32(5);
    writer.i32(3);   // out of order
    net::WireReader reader(payload);
    EXPECT_THROW(Codec::decode(Codec::wire_id_of(probe), reader),
                 net::WireError);
  }
}

TEST(WireCodec, MessageWithoutCodecIsRefused) {
  class BareMessage final : public net::Message {
   public:
    BareMessage() : net::Message(net::MessageKind::of("BARE_TEST")) {}
    std::size_t payload_bytes() const override { return 0; }
    net::MessagePtr clone() const override {
      return std::make_unique<BareMessage>();
    }
  };
  const BareMessage bare;
  EXPECT_FALSE(bare.wire_kind().valid());
  EXPECT_THROW(Codec::wire_id_of(bare), net::WireError);
}

}  // namespace
}  // namespace dmx::transport
