// Exhaustive model-checking tests: the Chapter 5 theorems verified over
// every interleaving of small configurations — for the Neilsen core, for
// Raymond (the head-to-head baseline), and for the whole registry through
// one generic explorer. Seeded-bug configurations (duplicated token
// messages, corrupted initial states) must be caught with counterexample
// traces.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "core/neilsen_node.hpp"
#include "modelcheck/explorer.hpp"
#include "topology/tree.hpp"

namespace dmx::modelcheck {
namespace {

ExplorerResult check(const proto::Algorithm& algorithm,
                     const topology::Tree& tree, NodeId holder,
                     int requests_per_node,
                     std::size_t max_states = 5'000'000) {
  ExplorerConfig config;
  config.algorithm = &algorithm;
  config.n = tree.size();
  config.initial_token_holder = holder;
  config.tree = &tree;
  config.requests_per_node = requests_per_node;
  config.max_states = max_states;
  return explore(config);
}

// ---- Neilsen: the original explorer's verdicts, reproduced -----------------

TEST(ModelCheck, TwoNodesManyEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(2);
  const ExplorerResult result = check(algo, tree, 1, 4);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 10u);
  EXPECT_GE(result.terminal_states, 1u);
  EXPECT_FALSE(result.truncated);
}

TEST(ModelCheck, LineOfThreeTwoEntriesEach) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(3);
  for (NodeId holder : {1, 2, 3}) {
    const ExplorerResult result = check(algo, tree, holder, 2);
    EXPECT_TRUE(result.ok) << "holder " << holder << ": " << result.violation;
    EXPECT_GT(result.states, 100u);
  }
}

TEST(ModelCheck, StarOfFourSingleEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::star(4, 1);
  for (NodeId holder : {1, 2}) {
    const ExplorerResult result = check(algo, tree, holder, 1);
    EXPECT_TRUE(result.ok) << result.violation;
  }
}

TEST(ModelCheck, StarOfFourTwoEntriesEach) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::star(4, 1);
  const ExplorerResult result = check(algo, tree, 2, 2);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 10'000u);
}

TEST(ModelCheck, LineOfFourSingleEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(4);
  const ExplorerResult result = check(algo, tree, 2, 1);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelCheck, BinaryTreeOfFive) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::kary(5, 2);
  const ExplorerResult result = check(algo, tree, 1, 1);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelCheck, StarOfFiveSingleEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::star(5, 1);
  for (NodeId holder : {1, 3}) {
    const ExplorerResult result = check(algo, tree, holder, 1);
    EXPECT_TRUE(result.ok) << result.violation;
  }
}

TEST(ModelCheck, RandomTreesOfFive) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const topology::Tree tree = topology::Tree::random_tree(5, seed);
    const ExplorerResult result = check(algo, tree, 3, 1);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  }
}

// ---- Raymond: the bespoke explorer's verdicts, reproduced ------------------

TEST(RaymondModelCheck, TwoNodesManyEntries) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::line(2);
  const ExplorerResult result = check(algo, tree, 1, 4);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 10u);
}

TEST(RaymondModelCheck, LineOfThreeTwoEntriesEach) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::line(3);
  for (NodeId holder : {1, 2}) {
    const ExplorerResult result = check(algo, tree, holder, 2);
    EXPECT_TRUE(result.ok) << "holder " << holder << ": " << result.violation;
    EXPECT_GT(result.states, 100u);
  }
}

TEST(RaymondModelCheck, StarOfFour) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::star(4, 1);
  for (int requests : {1, 2}) {
    const ExplorerResult result = check(algo, tree, 2, requests);
    EXPECT_TRUE(result.ok) << result.violation;
  }
}

TEST(RaymondModelCheck, BinaryTreeOfFive) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::kary(5, 2);
  const ExplorerResult result = check(algo, tree, 1, 1);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(RaymondModelCheck, RandomTreesOfFive) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const topology::Tree tree = topology::Tree::random_tree(5, seed);
    const ExplorerResult result = check(algo, tree, 2, 1);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  }
}

// ---- The whole registry through the one generic explorer -------------------

TEST(GenericModelCheck, EveryRegistryAlgorithmLineOfThree) {
  const topology::Tree tree = topology::Tree::line(3);
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    const ExplorerResult result = check(algo, tree, 1, 1);
    EXPECT_TRUE(result.ok) << algo.name << ": " << result.violation;
    EXPECT_GT(result.states, 3u) << algo.name;
    EXPECT_GE(result.terminal_states, 1u) << algo.name;
  }
}

TEST(GenericModelCheck, EveryRegistryAlgorithmTwoEntriesEach) {
  // Two entries per node exercises round boundaries (stale replies, token
  // re-requests) — the schedules where the explorer found real bugs in
  // the seeded Carvalho-Roucairol and Singhal implementations. Lamport's
  // replicated-queue state space explodes past the budget at two entries;
  // it is covered at one entry here and stays an open item for state
  // hashing (see ROADMAP).
  const topology::Tree tree = topology::Tree::line(3);
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    if (algo.name == "Lamport") continue;
    const ExplorerResult result = check(algo, tree, 1, 2);
    EXPECT_TRUE(result.ok) << algo.name << ": " << result.violation;
    EXPECT_GT(result.states, 100u) << algo.name;
  }
}

// ---- Seeded-bug configurations must be caught, with traces -----------------

TEST(SeededBug, DuplicatedNeilsenPrivilegeCaughtWithTrace) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(2);
  ExplorerConfig config;
  config.algorithm = &algo;
  config.n = 2;
  config.tree = &tree;
  config.requests_per_node = 1;
  config.duplicate_message_kinds = {"PRIVILEGE"};
  const ExplorerResult result = explore(config);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.violation.empty());
  ASSERT_FALSE(result.counterexample.empty());
  // The trace must actually exercise the duplication fault.
  bool has_dup = false;
  for (const Action& action : result.counterexample) {
    has_dup |= action.type == Action::Type::kDeliverDup;
  }
  EXPECT_TRUE(has_dup) << result.violation;
}

TEST(SeededBug, DuplicatedRaymondPrivilegeCaughtWithTrace) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  const topology::Tree tree = topology::Tree::line(3);
  ExplorerConfig config;
  config.algorithm = &algo;
  config.n = 3;
  config.tree = &tree;
  config.requests_per_node = 1;
  config.duplicate_message_kinds = {"PRIVILEGE"};
  const ExplorerResult result = explore(config);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.counterexample.empty());
}

TEST(SeededBug, DuplicatedSuzukiKasamiTokenCaughtWithTrace) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Suzuki-Kasami");
  ExplorerConfig config;
  config.algorithm = &algo;
  config.n = 3;
  config.requests_per_node = 1;
  config.duplicate_message_kinds = {"TOKEN"};
  const ExplorerResult result = explore(config);
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.counterexample.empty());
}

TEST(SeededBug, ForgedSecondTokenDetectedInInitialState) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(3);
  ExplorerConfig config;
  config.algorithm = &algo;
  config.n = 3;
  config.tree = &tree;
  config.requests_per_node = 1;
  config.mutate_initial =
      [](std::vector<std::unique_ptr<proto::MutexNode>>& nodes) {
        // Forge a second resident token at node 3.
        const core::NeilsenNode forged = core::NeilsenNode::restore(
            /*holding=*/true, kNilNode, kNilNode,
            core::NeilsenNode::CsStatus::kIdle);
        nodes[3]->restore(forged.snapshot());
      };
  const ExplorerResult result = explore(config);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.violation.find("token count 2"), std::string::npos)
      << result.violation;
  // Corrupt from the start: the counterexample is the empty trace.
  EXPECT_TRUE(result.counterexample.empty());
}

TEST(SeededBug, ExtraInvariantHookViolationCarriesTrace) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::line(2);
  ExplorerConfig config;
  config.algorithm = &algo;
  config.n = 2;
  config.tree = &tree;
  config.requests_per_node = 1;
  config.extra_invariant = [](const StateView& view) -> std::string {
    return view.phase(2) == CsPhase::kInCs ? "node 2 reached its CS" : "";
  };
  const ExplorerResult result = explore(config);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.violation, "node 2 reached its CS");
  // Node 2 must request, the request must reach node 1, and the PRIVILEGE
  // must come back: at least three actions.
  EXPECT_GE(result.counterexample.size(), 3u);
}

// ---- Mechanics -------------------------------------------------------------

TEST(ModelCheck, StateBudgetTruncationIsReported) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const topology::Tree tree = topology::Tree::star(4, 1);
  const ExplorerResult result = check(algo, tree, 1, 2, /*max_states=*/50);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.truncated);
  EXPECT_NE(result.violation.find("inconclusive"), std::string::npos);
}

TEST(ModelCheck, ActionRendering) {
  Action request{Action::Type::kRequest, 3, kNilNode};
  Action deliver{Action::Type::kDeliver, 2, 5};
  Action dup{Action::Type::kDeliverDup, 2, 5};
  EXPECT_EQ(request.to_string(), "request(3)");
  EXPECT_EQ(deliver.to_string(), "deliver(5 -> 2)");
  EXPECT_EQ(dup.to_string(), "deliver+dup(5 -> 2)");
}

TEST(ModelCheck, RejectsInvalidConfigurations) {
  ExplorerConfig config;  // algorithm missing
  EXPECT_THROW(explore(config), std::logic_error);

  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  config.algorithm = &algo;
  config.n = 3;
  config.tree = nullptr;  // tree required for Neilsen
  EXPECT_THROW(explore(config), std::logic_error);

  const topology::Tree tree = topology::Tree::line(3);
  config.tree = &tree;
  config.requests_per_node = 300;  // budget must fit a byte
  EXPECT_THROW(explore(config), std::logic_error);
}

}  // namespace
}  // namespace dmx::modelcheck
