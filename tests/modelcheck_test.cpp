// Exhaustive model-checking tests: the Chapter 5 theorems verified over
// every interleaving of small configurations.
#include <gtest/gtest.h>

#include "modelcheck/explorer.hpp"
#include "topology/tree.hpp"

namespace dmx::modelcheck {
namespace {

ExplorerResult check(const topology::Tree& tree, NodeId holder,
                     int requests_per_node,
                     std::size_t max_states = 5'000'000) {
  ExplorerConfig config;
  config.n = tree.size();
  config.initial_token_holder = holder;
  config.tree = &tree;
  config.requests_per_node = requests_per_node;
  config.max_states = max_states;
  return explore(config);
}

TEST(ModelCheck, TwoNodesManyEntries) {
  const topology::Tree tree = topology::Tree::line(2);
  const ExplorerResult result = check(tree, 1, 4);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 10u);
  EXPECT_GE(result.terminal_states, 1u);
  EXPECT_FALSE(result.truncated);
}

TEST(ModelCheck, LineOfThreeTwoEntriesEach) {
  const topology::Tree tree = topology::Tree::line(3);
  for (NodeId holder : {1, 2, 3}) {
    const ExplorerResult result = check(tree, holder, 2);
    EXPECT_TRUE(result.ok) << "holder " << holder << ": " << result.violation;
    EXPECT_GT(result.states, 100u);
  }
}

TEST(ModelCheck, StarOfFourSingleEntries) {
  const topology::Tree tree = topology::Tree::star(4, 1);
  for (NodeId holder : {1, 2}) {
    const ExplorerResult result = check(tree, holder, 1);
    EXPECT_TRUE(result.ok) << result.violation;
  }
}

TEST(ModelCheck, StarOfFourTwoEntriesEach) {
  const topology::Tree tree = topology::Tree::star(4, 1);
  const ExplorerResult result = check(tree, 2, 2);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 10'000u);
}

TEST(ModelCheck, LineOfFourSingleEntries) {
  const topology::Tree tree = topology::Tree::line(4);
  const ExplorerResult result = check(tree, 2, 1);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelCheck, RandomTreesOfFive) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const topology::Tree tree = topology::Tree::random_tree(5, seed);
    const ExplorerResult result = check(tree, 3, 1);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  }
}

TEST(ModelCheck, StateBudgetTruncationIsReported) {
  const topology::Tree tree = topology::Tree::star(4, 1);
  const ExplorerResult result = check(tree, 1, 2, /*max_states=*/50);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.truncated);
  EXPECT_NE(result.violation.find("inconclusive"), std::string::npos);
}

TEST(ModelCheck, ActionRendering) {
  Action request{Action::Type::kRequest, 3, kNilNode};
  Action deliver{Action::Type::kDeliver, 2, 5};
  EXPECT_EQ(request.to_string(), "request(3)");
  EXPECT_EQ(deliver.to_string(), "deliver(5 -> 2)");
}

TEST(ModelCheck, RejectsOversizedConfigurations) {
  const topology::Tree tree = topology::Tree::line(9);
  ExplorerConfig config;
  config.n = 9;
  config.tree = &tree;
  EXPECT_THROW(explore(config), std::logic_error);
}

}  // namespace
}  // namespace dmx::modelcheck

// ---- Raymond explorer ------------------------------------------------------
// (appended suite: the baseline verified with the same rigor as the core)

#include "modelcheck/raymond_explorer.hpp"

namespace dmx::modelcheck {
namespace {

ExplorerResult check_raymond(const topology::Tree& tree, NodeId holder,
                             int requests_per_node) {
  ExplorerConfig config;
  config.n = tree.size();
  config.initial_token_holder = holder;
  config.tree = &tree;
  config.requests_per_node = requests_per_node;
  return explore_raymond(config);
}

TEST(RaymondModelCheck, TwoNodesManyEntries) {
  const topology::Tree tree = topology::Tree::line(2);
  const ExplorerResult result = check_raymond(tree, 1, 4);
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_GT(result.states, 10u);
}

TEST(RaymondModelCheck, LineOfThreeTwoEntriesEach) {
  const topology::Tree tree = topology::Tree::line(3);
  for (NodeId holder : {1, 2}) {
    const ExplorerResult result = check_raymond(tree, holder, 2);
    EXPECT_TRUE(result.ok) << "holder " << holder << ": "
                           << result.violation;
    EXPECT_GT(result.states, 100u);
  }
}

TEST(RaymondModelCheck, StarOfFour) {
  const topology::Tree tree = topology::Tree::star(4, 1);
  for (int requests : {1, 2}) {
    const ExplorerResult result = check_raymond(tree, 2, requests);
    EXPECT_TRUE(result.ok) << result.violation;
  }
}

TEST(RaymondModelCheck, RandomTreesOfFive) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const topology::Tree tree = topology::Tree::random_tree(5, seed);
    const ExplorerResult result = check_raymond(tree, 2, 1);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.violation;
  }
}

}  // namespace
}  // namespace dmx::modelcheck

// ---- additional shapes -------------------------------------------------------

namespace dmx::modelcheck {
namespace {

TEST(ModelCheck, BinaryTreeOfFive) {
  const topology::Tree tree = topology::Tree::kary(5, 2);
  const ExplorerResult result = check(tree, 1, 1);
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(ModelCheck, StarOfFiveSingleEntries) {
  const topology::Tree tree = topology::Tree::star(5, 1);
  for (NodeId holder : {1, 3}) {
    const ExplorerResult result = check(tree, holder, 1);
    EXPECT_TRUE(result.ok) << result.violation;
  }
}

TEST(RaymondModelCheck, BinaryTreeOfFive) {
  const topology::Tree tree = topology::Tree::kary(5, 2);
  const ExplorerResult result = check_raymond(tree, 1, 1);
  EXPECT_TRUE(result.ok) << result.violation;
}

}  // namespace
}  // namespace dmx::modelcheck
