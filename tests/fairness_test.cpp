// Tests for the fairness analytics (Jain index, bypass counts) and the
// FIFO-by-queue-arrival property of the Neilsen algorithm.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "harness/delay_analysis.hpp"
#include "metrics/summary.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::harness {
namespace {

TEST(JainIndex, PerfectlyEvenIsOne) {
  EXPECT_DOUBLE_EQ(metrics::jain_fairness_index({5, 5, 5, 5}), 1.0);
}

TEST(JainIndex, SingleHogIsOneOverN) {
  EXPECT_DOUBLE_EQ(metrics::jain_fairness_index({10, 0, 0, 0}), 0.25);
}

TEST(JainIndex, EdgeCases) {
  EXPECT_DOUBLE_EQ(metrics::jain_fairness_index({}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness_index({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness_index({7}), 1.0);
}

TEST(BypassCounts, FifoOrderHasZeroBypasses) {
  std::vector<CsEvent> events{
      {0, 1, CsEvent::Kind::kRequest}, {1, 1, CsEvent::Kind::kEnter},
      {2, 2, CsEvent::Kind::kRequest}, {3, 1, CsEvent::Kind::kExit},
      {4, 2, CsEvent::Kind::kEnter},   {5, 2, CsEvent::Kind::kExit},
  };
  const metrics::Summary bypasses = bypass_counts(events);
  EXPECT_EQ(bypasses.count(), 2u);
  EXPECT_EQ(bypasses.max(), 0.0);
}

TEST(BypassCounts, OvertakeIsCounted) {
  // Node 3 requests first but node 2 (requesting later) enters first.
  std::vector<CsEvent> events{
      {0, 3, CsEvent::Kind::kRequest}, {1, 2, CsEvent::Kind::kRequest},
      {2, 2, CsEvent::Kind::kEnter},   {3, 2, CsEvent::Kind::kExit},
      {4, 3, CsEvent::Kind::kEnter},   {5, 3, CsEvent::Kind::kExit},
  };
  const metrics::Summary bypasses = bypass_counts(events);
  EXPECT_EQ(bypasses.count(), 2u);
  EXPECT_EQ(bypasses.max(), 1.0);  // node 3 was bypassed once
}

TEST(EntriesPerNode, CountsEnters) {
  std::vector<CsEvent> events{
      {0, 1, CsEvent::Kind::kEnter},
      {1, 1, CsEvent::Kind::kExit},
      {2, 3, CsEvent::Kind::kEnter},
  };
  const std::vector<double> counts = entries_per_node(events, 3);
  EXPECT_EQ(counts[1], 1.0);
  EXPECT_EQ(counts[2], 0.0);
  EXPECT_EQ(counts[3], 1.0);
}

TEST(NeilsenFairness, SaturatedRunIsNearlyEven) {
  harness::ClusterConfig config;
  config.n = 8;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::star(8, 1);
  Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                  std::move(config));
  workload::WorkloadConfig wl;
  wl.target_entries = 400;
  wl.mean_think_ticks = 0.0;
  wl.hold_lo = wl.hold_hi = 8;
  wl.seed = 5;
  workload::run_workload(cluster, wl);

  std::vector<double> counts = entries_per_node(cluster.events(), 8);
  counts.erase(counts.begin());  // drop unused slot 0
  EXPECT_GT(metrics::jain_fairness_index(counts), 0.95);
}

TEST(NeilsenFairness, BypassesAreBoundedUnderContention) {
  // The implicit queue serializes by arrival at the sink; overtakes can
  // only happen while a request is still travelling, so bypass counts
  // stay small compared to the number of nodes.
  harness::ClusterConfig config;
  config.n = 10;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::random_tree(10, 21);
  Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                  std::move(config));
  workload::WorkloadConfig wl;
  wl.target_entries = 300;
  wl.mean_think_ticks = 3.0;
  wl.hold_lo = wl.hold_hi = 10;
  wl.seed = 9;
  workload::run_workload(cluster, wl);

  const metrics::Summary bypasses = bypass_counts(cluster.events());
  ASSERT_GT(bypasses.count(), 0u);
  EXPECT_LE(bypasses.max(), 10.0);
  EXPECT_LT(bypasses.mean(), 3.0);
}

}  // namespace
}  // namespace dmx::harness
