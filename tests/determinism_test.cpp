// Determinism golden test: the simulation substrate must be a pure
// function of (code, seed). This test runs the Neilsen algorithm on fixed
// topologies/seeds, hashes the complete network trace (send and deliver
// events in the order the substrate emits them, with routes, ticks, and
// message descriptions), and pins the hash.
//
// The pinned values were captured from the original priority_queue +
// std::function kernel; the indexed-heap/zero-allocation kernel must
// reproduce them bit for bit. If a deliberate semantic change to the
// substrate ever alters event ordering, re-pin the constants in the same
// commit and call the change out in review.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "modelcheck/swarm.hpp"
#include "net/network.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx {
namespace {

/// FNV-1a 64-bit over the event stream.
class TraceHasher final : public net::NetworkObserver {
 public:
  void on_send(const net::Envelope& env) override { mix('S', env); }
  void on_deliver(const net::Envelope& env) override { mix('D', env); }

  std::uint64_t digest() const { return hash_; }

 private:
  void mix(char tag, const net::Envelope& env) {
    byte(static_cast<unsigned char>(tag));
    u64(env.id);
    u64(static_cast<std::uint64_t>(env.from));
    u64(static_cast<std::uint64_t>(env.to));
    u64(static_cast<std::uint64_t>(env.sent_at));
    u64(static_cast<std::uint64_t>(env.deliver_at));
    const std::string desc = env.message->describe();
    for (const char c : desc) byte(static_cast<unsigned char>(c));
  }
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }

  std::uint64_t hash_ = 14695981039346656037ULL;
};

std::uint64_t neilsen_trace_digest(topology::Tree tree, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = tree.size();
  config.initial_token_holder = 1;
  config.tree = std::move(tree);
  config.seed = seed;
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           std::move(config));
  TraceHasher hasher;
  cluster.network().set_observer(&hasher);

  workload::WorkloadConfig wl;
  wl.target_entries = 400;
  wl.mean_think_ticks = 3.0;
  wl.hold_lo = 0;
  wl.hold_hi = 2;
  wl.seed = seed;
  workload::run_workload(cluster, wl);
  return hasher.digest();
}

TEST(DeterminismGolden, SameSeedSameDigest) {
  const std::uint64_t a =
      neilsen_trace_digest(topology::Tree::random_tree(12, 7), 11);
  const std::uint64_t b =
      neilsen_trace_digest(topology::Tree::random_tree(12, 7), 11);
  EXPECT_EQ(a, b);
}

TEST(DeterminismGolden, DifferentSeedDifferentDigest) {
  const std::uint64_t a =
      neilsen_trace_digest(topology::Tree::random_tree(12, 7), 11);
  const std::uint64_t b =
      neilsen_trace_digest(topology::Tree::random_tree(12, 7), 12);
  EXPECT_NE(a, b);
}

// Golden digests pinned from the pre-refactor kernel (priority_queue +
// std::function + hash-map network). Any kernel swap must reproduce these.
TEST(DeterminismGolden, PinnedStarTopology) {
  EXPECT_EQ(neilsen_trace_digest(topology::Tree::star(8, 1), 5),
            0x472d9b15493288e5ULL)
      << "actual: 0x" << std::hex
      << neilsen_trace_digest(topology::Tree::star(8, 1), 5);
}

TEST(DeterminismGolden, PinnedRandomTreeJitteryLatency) {
  harness::ClusterConfig config;
  const topology::Tree tree = topology::Tree::random_tree(16, 3);
  config.n = tree.size();
  config.initial_token_holder = 1;
  config.tree = tree;
  config.latency_model = std::make_unique<net::UniformLatency>(1, 9);
  config.seed = 21;
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           std::move(config));
  TraceHasher hasher;
  cluster.network().set_observer(&hasher);

  workload::WorkloadConfig wl;
  wl.target_entries = 300;
  wl.mean_think_ticks = 1.0;
  wl.hold_lo = 0;
  wl.hold_hi = 3;
  wl.seed = 21;
  workload::run_workload(cluster, wl);
  EXPECT_EQ(hasher.digest(), 0x763e75d029bfa294ULL)
      << "actual: 0x" << std::hex << hasher.digest();
}

// ---- Swarm schedule goldens -------------------------------------------------
// One pinned seed per registry algorithm: the swarm tester's randomized
// delivery schedule (topology, adversarial latency, workload think/hold)
// must be a pure function of (code, seed). Re-pin in the same commit as
// any deliberate change to an algorithm's message behaviour or to the
// swarm's seed derivation, and call the change out in review.

struct SwarmGolden {
  const char* algorithm;
  std::uint64_t trace_hash;
};

TEST(DeterminismGolden, PinnedSwarmSeedPerAlgorithm) {
  const SwarmGolden goldens[] = {
      {"Neilsen", 0xf8b09871cb9e2c59ULL},
      {"Raymond", 0x6c0c077063145f21ULL},
      {"Central", 0xb8edf60567e5855eULL},
      {"Suzuki-Kasami", 0xca60fb715faaacfdULL},
      {"Singhal", 0xa0bcd4dc44eb00d6ULL},
      {"Lamport", 0x9b8a37849a1fdf4dULL},
      {"Ricart-Agrawala", 0x38de5d8f18409dafULL},
      {"Carvalho-Roucairol", 0x7dc604d3ac11a745ULL},
      {"Maekawa", 0xec3138e581cc494cULL},
  };
  for (const SwarmGolden& golden : goldens) {
    const proto::Algorithm algo =
        baselines::algorithm_by_name(golden.algorithm);
    modelcheck::SwarmConfig config;
    config.algorithm = &algo;
    config.n = 8;
    config.topology = modelcheck::SwarmConfig::Topology::kRandom;
    config.seed = 2026;
    config.target_entries = 50;
    config.latency_lo = 1;
    config.latency_hi = 9;
    config.mean_think_ticks = 1.5;
    config.hold_lo = 0;
    config.hold_hi = 2;
    const modelcheck::SwarmResult result = modelcheck::run_swarm(config);
    ASSERT_TRUE(result.ok) << golden.algorithm << ": " << result.violation;
    EXPECT_EQ(result.trace_hash, golden.trace_hash)
        << golden.algorithm << " actual: 0x" << std::hex << result.trace_hash;
  }
}

TEST(DeterminismGolden, PinnedChainingSwarmSeedPerAlgorithm) {
  // Same contract as above, but with queue_local chaining on: the lease
  // layer's local hand-offs suppress protocol traffic, so these hashes
  // also pin WHICH releases reach the wire. A change to the chaining
  // decision (cap, window, renewal) shows up here before anywhere else.
  const SwarmGolden goldens[] = {
      {"Neilsen", 0xaedd537279165dabULL},
      {"Raymond", 0xcc1f73172ea894e9ULL},
      {"Central", 0x7aa530f0fad13da9ULL},
      {"Suzuki-Kasami", 0xf1ec833a32ecce9dULL},
      {"Singhal", 0x026e9eafb6fbb53dULL},
      {"Lamport", 0x8d0ae2e56ad8af0fULL},
      {"Ricart-Agrawala", 0xec727a1a6831d305ULL},
      {"Carvalho-Roucairol", 0xf28de959832e10f5ULL},
      {"Maekawa", 0x8e05c896c764f322ULL},
  };
  for (const SwarmGolden& golden : goldens) {
    const proto::Algorithm algo =
        baselines::algorithm_by_name(golden.algorithm);
    modelcheck::SwarmConfig config;
    config.algorithm = &algo;
    config.n = 8;
    config.topology = modelcheck::SwarmConfig::Topology::kRandom;
    config.seed = 2026;
    config.target_entries = 50;
    config.latency_lo = 1;
    config.latency_hi = 9;
    config.mean_think_ticks = 1.5;
    config.hold_lo = 0;
    config.hold_hi = 2;
    config.resources = 4;
    config.zipf_s = 0.99;
    config.clients_per_node = 3;
    config.queue_local = true;
    const modelcheck::SwarmResult result = modelcheck::run_swarm(config);
    ASSERT_TRUE(result.ok) << golden.algorithm << ": " << result.violation;
    EXPECT_EQ(result.trace_hash, golden.trace_hash)
        << golden.algorithm << " actual: 0x" << std::hex << result.trace_hash;
  }
}

}  // namespace
}  // namespace dmx
