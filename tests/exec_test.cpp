// Tests for the execution substrate: the Chase–Lev deque, the
// work-stealing Executor, and Strand serialization.
//
// The strand property test is the load-bearing one: per-strand FIFO and
// no-concurrent-execution are exactly the guarantees the threaded lock
// service's protocol state machines rely on instead of locks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "exec/chase_lev_deque.hpp"
#include "exec/executor.hpp"
#include "exec/strand.hpp"

namespace dmx::exec {
namespace {

TEST(ChaseLevDeque, OwnerLifoThiefFifoSingleThread) {
  ChaseLevDeque<int> deque(4);  // forces growth
  std::vector<int> items(10);
  for (int i = 0; i < 10; ++i) {
    items[static_cast<std::size_t>(i)] = i;
    deque.push(&items[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(*deque.steal(), 0);  // oldest from the top
  EXPECT_EQ(*deque.steal(), 1);
  EXPECT_EQ(*deque.pop(), 9);  // newest from the bottom
  EXPECT_EQ(*deque.pop(), 8);
  int drained = 0;
  while (deque.pop() != nullptr) ++drained;
  EXPECT_EQ(drained, 6);
  EXPECT_EQ(deque.pop(), nullptr);
  EXPECT_EQ(deque.steal(), nullptr);
  EXPECT_TRUE(deque.empty_hint());
}

TEST(ChaseLevDeque, ConcurrentStealsLoseNothingAndDuplicateNothing) {
  // Owner pushes and pops while thieves hammer steal(): every pushed item
  // must be claimed exactly once across owner and thieves.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int> deque;
  std::vector<int> items(kItems);
  std::vector<std::atomic<int>> claimed(kItems);
  for (auto& c : claimed) c.store(0);

  std::atomic<bool> done{false};
  std::atomic<int> total_claimed{0};
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* item = deque.steal()) {
          claimed[static_cast<std::size_t>(*item)].fetch_add(1);
          total_claimed.fetch_add(1);
        }
      }
    });
  }

  for (int i = 0; i < kItems; ++i) {
    items[static_cast<std::size_t>(i)] = i;
    deque.push(&items[static_cast<std::size_t>(i)]);
    if (i % 3 == 0) {
      if (int* item = deque.pop()) {
        claimed[static_cast<std::size_t>(*item)].fetch_add(1);
        total_claimed.fetch_add(1);
      }
    }
  }
  while (int* item = deque.pop()) {
    claimed[static_cast<std::size_t>(*item)].fetch_add(1);
    total_claimed.fetch_add(1);
  }
  // Let the thieves drain any leftovers they raced us for.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (total_claimed.load() < kItems &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& thief : thieves) thief.join();

  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(claimed[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

TEST(ExecutorTest, RunsSubmittedTasksAndShutsDownIdempotently) {
  Executor executor(ExecutorConfig{4, 16});
  EXPECT_EQ(executor.workers(), 4);

  struct CountTask {
    PoolTask pool_task;
    std::atomic<int>* counter;
  };
  std::atomic<int> counter{0};
  std::vector<CountTask> tasks(100);
  for (auto& task : tasks) {
    task.counter = &counter;
    task.pool_task.context = &task;
    task.pool_task.run = [](void* context) {
      static_cast<CountTask*>(context)->counter->fetch_add(1);
    };
    executor.submit(&task.pool_task);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter.load() < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(counter.load(), 100);
  EXPECT_GE(executor.tasks_executed(), 100u);
  executor.shutdown();
  executor.shutdown();  // idempotent
}

TEST(ExecutorTest, WorkerLocalTasksAreStolenWhileTheOwnerIsBusy) {
  // A task running on worker A submits subtasks (they land on A's own
  // deque) and then blocks until one completes. Only a steal by another
  // worker can complete a subtask while A is still inside its task, so
  // observing a completion before A returns proves stealing works.
  Executor executor(ExecutorConfig{4, 256});

  std::mutex mutex;
  std::condition_variable cv;
  int completed = 0;
  std::thread::id owner_thread;
  std::set<std::thread::id> subtask_threads;

  struct SubTask {
    PoolTask pool_task;
    std::mutex* mutex;
    std::condition_variable* cv;
    int* completed;
    std::set<std::thread::id>* threads;
  };
  std::vector<SubTask> subtasks(4);

  struct RootTask {
    PoolTask pool_task;
    Executor* executor;
    std::vector<SubTask>* subtasks;
    std::mutex* mutex;
    std::condition_variable* cv;
    int* completed;
    std::thread::id* owner_thread;
    bool stolen_in_time = false;
    bool root_done = false;
  };
  RootTask root;
  root.executor = &executor;
  root.subtasks = &subtasks;
  root.mutex = &mutex;
  root.cv = &cv;
  root.completed = &completed;
  root.owner_thread = &owner_thread;
  root.pool_task.context = &root;
  root.pool_task.run = [](void* context) {
    auto& self = *static_cast<RootTask*>(context);
    *self.owner_thread = std::this_thread::get_id();
    for (auto& subtask : *self.subtasks) {
      self.executor->submit(&subtask.pool_task);  // lands on OUR deque
    }
    std::unique_lock<std::mutex> guard(*self.mutex);
    self.stolen_in_time = self.cv->wait_for(
        guard, std::chrono::seconds(30),
        [&self] { return *self.completed >= 1; });
    self.root_done = true;
    self.cv->notify_all();
  };
  for (auto& subtask : subtasks) {
    subtask.mutex = &mutex;
    subtask.cv = &cv;
    subtask.completed = &completed;
    subtask.threads = &subtask_threads;
    subtask.pool_task.context = &subtask;
    subtask.pool_task.run = [](void* context) {
      auto& self = *static_cast<SubTask*>(context);
      std::lock_guard<std::mutex> guard(*self.mutex);
      ++*self.completed;
      self.threads->insert(std::this_thread::get_id());
      self.cv->notify_all();
    };
  }

  executor.submit(&root.pool_task);
  {
    std::unique_lock<std::mutex> guard(mutex);
    ASSERT_TRUE(cv.wait_for(guard, std::chrono::seconds(60), [&] {
      return root.root_done && completed >= 4;
    }));
  }
  executor.shutdown();
  EXPECT_TRUE(root.stolen_in_time)
      << "no subtask was stolen while the submitting worker was blocked";
  EXPECT_GE(executor.steals(), 1u);
  // At least one subtask ran off the submitting worker's thread.
  bool other_thread = false;
  for (const auto& id : subtask_threads) {
    other_thread = other_thread || id != owner_thread;
  }
  EXPECT_TRUE(other_thread);
}

TEST(ExecutorTest, StatsSnapshotAggregatesWorkerCounters) {
  Executor executor(ExecutorConfig{2, 64});
  struct CountTask {
    PoolTask pool_task;
    std::atomic<int>* counter;
  };
  std::atomic<int> counter{0};
  std::vector<CountTask> tasks(200);
  for (auto& task : tasks) {
    task.counter = &counter;
    task.pool_task.context = &task;
    task.pool_task.run = [](void* context) {
      static_cast<CountTask*>(context)->counter->fetch_add(1);
    };
    executor.submit(&task.pool_task);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (counter.load() < 200 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_EQ(counter.load(), 200);
  executor.shutdown();
  const ExecutorStats stats = executor.stats();
  EXPECT_GE(stats.tasks_executed, 200u);
  // The legacy accessors are views over the same snapshot.
  EXPECT_EQ(stats.tasks_executed, executor.tasks_executed());
  EXPECT_EQ(stats.steals, executor.steals());
  EXPECT_EQ(stats.parks, executor.parks());
  // Every external submit passes through the injector, so the fairness
  // tick must have polled it at least once to drain 200 tasks.
  EXPECT_GE(stats.injector_polls, 1u);
}

TEST(StrandTest, TasksRunInPostOrderWithoutOverlapUnderEightWorkers) {
  // The property the lock service's state machines depend on: per-strand
  // FIFO and never two tasks of one strand at once. Each strand appends
  // sequence numbers to an unsynchronized vector (a lost or reordered
  // update would corrupt it) and an entry/exit flag catches any overlap.
  constexpr int kStrands = 12;
  constexpr int kTasksPerStrand = 400;
  Executor executor(ExecutorConfig{8, 16});

  struct StrandState {
    std::unique_ptr<Strand> strand;
    std::vector<int> order;          // written only by strand tasks
    std::atomic<int> in_flight{0};   // 1 while a task runs
    std::atomic<int> overlaps{0};
    std::atomic<int> executed{0};
  };
  std::vector<StrandState> strands(kStrands);
  for (auto& state : strands) {
    state.strand = std::make_unique<Strand>(executor);
    state.order.reserve(kTasksPerStrand);
  }

  // Posts come from several app threads, each owning a disjoint strand
  // subset so per-strand post order is well defined.
  std::vector<std::thread> posters;
  for (int p = 0; p < 4; ++p) {
    posters.emplace_back([&strands, p] {
      for (int i = 0; i < kTasksPerStrand; ++i) {
        for (int s = p; s < kStrands; s += 4) {
          StrandState& state = strands[static_cast<std::size_t>(s)];
          state.strand->post([&state, i] {
            if (state.in_flight.fetch_add(1) != 0) {
              state.overlaps.fetch_add(1);
            }
            state.order.push_back(i);
            state.in_flight.fetch_sub(1);
            state.executed.fetch_add(1);
          });
        }
      }
    });
  }
  for (auto& poster : posters) poster.join();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (auto& state : strands) {
    while (state.executed.load() < kTasksPerStrand &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  }
  executor.shutdown();

  for (int s = 0; s < kStrands; ++s) {
    StrandState& state = strands[static_cast<std::size_t>(s)];
    EXPECT_EQ(state.overlaps.load(), 0) << "strand " << s;
    ASSERT_EQ(state.order.size(), static_cast<std::size_t>(kTasksPerStrand))
        << "strand " << s;
    for (int i = 0; i < kTasksPerStrand; ++i) {
      ASSERT_EQ(state.order[static_cast<std::size_t>(i)], i)
          << "strand " << s << " position " << i;
    }
  }
}

TEST(StrandTest, HotStrandCannotStarveItsNeighbours) {
  // One strand receives far more tasks than the batch budget; tasks for
  // other strands posted afterwards must still complete promptly because
  // the hot strand requeues through the fair global queue.
  Executor executor(ExecutorConfig{1, 8});  // single worker: worst case
  Strand hot(executor);
  Strand cold(executor);

  std::atomic<int> hot_done{0};
  std::atomic<int> hot_seen_by_cold{-1};
  std::atomic<bool> cold_done{false};
  std::atomic<bool> gate_open{false};
  // Hold the only worker inside the hot strand's first task until every
  // post below has happened, so the drain order is deterministic.
  hot.post([&gate_open] {
    while (!gate_open.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 10000; ++i) {
    hot.post([&hot_done] { hot_done.fetch_add(1); });
  }
  cold.post([&] {
    hot_seen_by_cold.store(hot_done.load());
    cold_done.store(true);
  });
  gate_open.store(true);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!cold_done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(cold_done.load());
  // The cold task must not have had to wait for the entire hot backlog.
  EXPECT_LT(hot_seen_by_cold.load(), 10000);
  while (hot_done.load() < 10000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(hot_done.load(), 10000);
  executor.shutdown();
}

}  // namespace
}  // namespace dmx::exec
