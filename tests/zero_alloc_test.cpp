// Proof that the steady-state send/deliver path performs zero heap
// allocations once pools are warm.
//
// This test overrides the global operator new/delete with counting
// versions (which is why it lives in its own binary — see CMakeLists) and
// drives a simulator + network through repeated send/deliver bursts. The
// first burst warms every structure: event-slot chunks, envelope slots,
// the message pool, per-kind counters, and the channel table. Every
// subsequent burst must allocate nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "net/latency.hpp"
#include "net/message_pool.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_heap_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dmx {
namespace {

class PingMessage final : public net::Message {
 public:
  PingMessage() : net::Message(ping_kind()) {}
  std::size_t payload_bytes() const override { return 0; }
  net::MessagePtr clone() const override {
    return std::make_unique<PingMessage>(*this);
  }

 private:
  static net::MessageKind ping_kind() {
    static const net::MessageKind kind = net::MessageKind::of("PING");
    return kind;
  }
};

TEST(ZeroAlloc, SteadyStateSendDeliverDoesNotTouchTheHeap) {
  sim::Simulator sim;
  net::Network network(sim, 3, std::make_unique<net::FixedLatency>(2));
  std::uint64_t delivered = 0;
  network.set_delivery_handler(
      [&delivered](const net::Envelope&) { ++delivered; });

  const auto burst = [&] {
    for (int i = 0; i < 200; ++i) {
      network.send(1, 2, std::make_unique<PingMessage>());
      network.send(2, 3, std::make_unique<PingMessage>());
      network.send(3, 1, std::make_unique<PingMessage>());
    }
    sim.run();
  };

  burst();  // warm every pool and table
  const std::uint64_t heap_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  const net::MessagePool::Stats pool_before =
      net::MessagePool::local().stats();
  const std::uint64_t inline_fallbacks_before =
      sim::InlineCallback::heap_allocations();

  for (int round = 0; round < 5; ++round) {
    burst();
  }

  EXPECT_EQ(g_heap_allocations.load(std::memory_order_relaxed), heap_before)
      << "steady-state send/deliver allocated from the heap";
  const net::MessagePool::Stats pool_after =
      net::MessagePool::local().stats();
  EXPECT_EQ(pool_after.fresh_allocations, pool_before.fresh_allocations)
      << "message pool had to grow after warm-up";
  EXPECT_GT(pool_after.pool_hits, pool_before.pool_hits)
      << "messages were not actually recycled through the pool";
  EXPECT_EQ(pool_after.outstanding, 0u);
  EXPECT_EQ(sim::InlineCallback::heap_allocations(),
            inline_fallbacks_before)
      << "a scheduler callback outgrew its inline storage";
  EXPECT_EQ(delivered, 600u * 6u);
}

TEST(ZeroAlloc, CrossThreadFreeRecyclesThroughTheOwnerPool) {
  // The executor substrate's allocation pattern: a message allocated on
  // one thread is freed on another. Freed blocks return to the owner
  // pool's lock-free remote stack and are reclaimed on its next
  // allocation miss — after one warm-up round the producer/consumer cycle
  // must never touch the heap again.
  constexpr int kBatch = 100;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<net::MessagePtr> batch;
  batch.reserve(kBatch);
  bool ready = false;
  bool done = false;
  bool stop = false;

  std::thread consumer([&] {
    std::unique_lock<std::mutex> guard(mutex);
    for (;;) {
      cv.wait(guard, [&] { return ready || stop; });
      if (stop) return;
      batch.clear();  // frees on this thread -> owner's remote stack
      ready = false;
      done = true;
      cv.notify_all();
    }
  });

  const auto round = [&] {
    std::unique_lock<std::mutex> guard(mutex);
    for (int i = 0; i < kBatch; ++i) {
      batch.push_back(std::make_unique<PingMessage>());
    }
    ready = true;
    done = false;
    cv.notify_all();
    cv.wait(guard, [&] { return done; });
  };

  round();  // warm-up: fresh blocks enter the cycle
  round();  // first full recycle through the remote stack
  const std::uint64_t heap_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  const net::MessagePool::Stats pool_before =
      net::MessagePool::local().stats();

  for (int i = 0; i < 5; ++i) round();

  EXPECT_EQ(g_heap_allocations.load(std::memory_order_relaxed), heap_before)
      << "cross-thread alloc/free cycle touched the heap";
  const net::MessagePool::Stats pool_after =
      net::MessagePool::local().stats();
  EXPECT_EQ(pool_after.fresh_allocations, pool_before.fresh_allocations)
      << "owner pool had to grow after warm-up";
  EXPECT_GT(pool_after.pool_hits, pool_before.pool_hits);
  EXPECT_GT(pool_after.remote_frees, pool_before.remote_frees)
      << "frees did not actually take the cross-thread path";
  EXPECT_EQ(pool_after.outstanding, 0u);

  {
    std::lock_guard<std::mutex> guard(mutex);
    stop = true;
  }
  cv.notify_all();
  consumer.join();
}

TEST(ZeroAlloc, ScheduleCancelRecyclesSlots) {
  sim::Simulator sim;
  // Warm-up round growing the slot arena.
  for (int i = 0; i < 100; ++i) {
    const sim::EventId id = sim.schedule_after(5, [] {});
    ASSERT_TRUE(sim.cancel(id));
  }
  sim.run();
  const std::uint64_t heap_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      const sim::EventId id = sim.schedule_after(5, [] {});
      ASSERT_TRUE(sim.cancel(id));
    }
    sim.run();
  }
  EXPECT_EQ(g_heap_allocations.load(std::memory_order_relaxed), heap_before)
      << "steady-state schedule/cancel allocated from the heap";
  EXPECT_TRUE(sim.idle());
}

}  // namespace
}  // namespace dmx
