// Tests for summary statistics, histograms and table rendering.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/summary.hpp"
#include "metrics/table.hpp"

namespace dmx::metrics {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(Histogram, CountsAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.add(static_cast<double>(i % 10) + 0.5);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LE(h.quantile(0.0), 1.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 10.0, 1.0);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.buckets().front(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, EmptyQuantileIsLowerBound) {
  Histogram h(5.0, 10.0, 5);
  EXPECT_EQ(h.quantile(0.5), 5.0);
}

TEST(Summary, MergeMatchesSequentialAccumulation) {
  Summary sequential;
  Summary left;
  Summary right;
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  int i = 0;
  for (double v : values) {
    sequential.add(v);
    (i++ < 3 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), sequential.count());
  EXPECT_DOUBLE_EQ(left.mean(), sequential.mean());
  EXPECT_NEAR(left.variance(), sequential.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), sequential.min());
  EXPECT_DOUBLE_EQ(left.max(), sequential.max());
}

TEST(Summary, MergeWithEmptyIsIdentityBothWays) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  Summary empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 3.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"algo", "messages"});
  t.add_row({"Neilsen", "3"});
  t.add_row({"Raymond", "4"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| algo    | messages |"), std::string::npos);
  EXPECT_NE(out.find("| Neilsen | 3        |"), std::string::npos);
  EXPECT_NE(out.find("|---------|----------|"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
}

}  // namespace
}  // namespace dmx::metrics
