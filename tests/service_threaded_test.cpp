// Tests for the threaded multi-resource lock service: real threads, real
// blocking named locks, per-(resource, node) strands scheduled on one
// shared work-stealing pool. Per-resource unsynchronized counters are the
// mutual-exclusion witness — lost updates would make a final count fall
// short.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "common/rng.hpp"
#include "service/threaded_lock_space.hpp"

namespace dmx::service {
namespace {

std::vector<std::string> resource_names(int m) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) names.push_back("res/" + std::to_string(i));
  return names;
}

ThreadedLockSpaceConfig make_config(int n, int m,
                                    const std::string& algorithm = "Neilsen",
                                    unsigned jitter_us = 0) {
  ThreadedLockSpaceConfig config;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name(algorithm);
  config.resources = resource_names(m);
  config.jitter_us = jitter_us;
  return config;
}

TEST(ThreadedLockSpace, PerResourceCountersHaveNoLostUpdates) {
  const int n = 4;
  const int m = 6;
  const int rounds = 30;
  ThreadedLockSpace space(make_config(n, m));

  std::vector<long long> counters(static_cast<std::size_t>(m), 0);
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= n; ++v) {
    threads.emplace_back([&space, &counters, v] {
      // Every node walks every resource: cross-resource traffic shares
      // each node's one mailbox thread.
      for (int i = 0; i < rounds; ++i) {
        for (ResourceId r = 0; r < m; ++r) {
          ScopedLock guard(space, r, v);
          const long long read = counters[static_cast<std::size_t>(r)];
          std::this_thread::yield();  // widen the race window
          counters[static_cast<std::size_t>(r)] = read + 1;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (ResourceId r = 0; r < m; ++r) {
    EXPECT_EQ(counters[static_cast<std::size_t>(r)],
              static_cast<long long>(n) * rounds)
        << space.name(r);
    EXPECT_EQ(space.entries(r), static_cast<std::uint64_t>(n) * rounds);
  }
  EXPECT_EQ(space.total_entries(),
            static_cast<std::uint64_t>(n) * m * rounds);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, LocalWaitersQueueOnOneProtocolRequest) {
  // Several application threads on the SAME node contend for the same
  // resource: local hand-off must serialize them without double-posting
  // protocol requests (the paper allows one outstanding request per node).
  ThreadedLockSpace space(make_config(3, 2));
  const ResourceId r = 0;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&space, &counter] {
      for (int i = 0; i < 25; ++i) {
        ScopedLock guard(space, ResourceId{0}, NodeId{2});
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 100);
  EXPECT_EQ(space.entries(r), 100u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, HoldsTwoResourcesFromOneNodeConcurrently) {
  ThreadedLockSpace space(make_config(3, 2));
  ScopedLock a(space, ResourceId{0}, NodeId{1});
  ScopedLock b(space, ResourceId{1}, NodeId{1});  // must not deadlock
  EXPECT_FALSE(space.first_error().has_value());
}

TEST(ThreadedLockSpace, ScopedLockByNameAndDirectoryAgree) {
  ThreadedLockSpace space(make_config(4, 3));
  EXPECT_EQ(space.resource_count(), 3);
  const ResourceId r = space.lookup("res/1");
  ASSERT_NE(r, kNilResource);
  EXPECT_EQ(space.name(r), "res/1");
  EXPECT_GE(space.home_node(r), 1);
  EXPECT_LE(space.home_node(r), 4);
  {
    ScopedLock guard(space, "res/1", 3);
  }
  EXPECT_EQ(space.entries(r), 1u);
}

TEST(ThreadedLockSpace, BogusUnlockThrowsWithoutCorruptingTheWitness) {
  ThreadedLockSpace space(make_config(3, 2));
  // Unlocking a resource this node does not hold is rejected on the
  // calling thread, before the occupancy witness moves...
  EXPECT_THROW(space.unlock(ResourceId{0}, 2), std::logic_error);
  // ... so subsequent legitimate locking sees a clean counter and reports
  // no phantom exclusivity violation.
  for (NodeId v = 1; v <= 3; ++v) {
    ScopedLock guard(space, ResourceId{0}, v);
  }
  EXPECT_EQ(space.entries(0), 3u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, PerResourceAlgorithmSelectionMixesProtocols) {
  // Parity with the sim LockSpace: resources may run different protocols
  // in one space. Two Raymond shards ride alongside two Neilsen shards
  // and all four serve cross-node traffic on the shared pool.
  ThreadedLockSpaceConfig config = make_config(4, 4, "Neilsen");
  config.resource_algorithms.emplace_back(
      "res/1", baselines::algorithm_by_name("Raymond"));
  config.resource_algorithms.emplace_back(
      "res/3", baselines::algorithm_by_name("Raymond"));
  ThreadedLockSpace space(std::move(config));
  EXPECT_EQ(space.algorithm(space.lookup("res/0")).name, "Neilsen");
  EXPECT_EQ(space.algorithm(space.lookup("res/1")).name, "Raymond");
  EXPECT_EQ(space.algorithm(space.lookup("res/3")).name, "Raymond");

  std::vector<long long> counters(4, 0);
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= 4; ++v) {
    threads.emplace_back([&space, &counters, v] {
      for (int i = 0; i < 20; ++i) {
        for (ResourceId r = 0; r < 4; ++r) {
          ScopedLock guard(space, r, v);
          const long long read = counters[static_cast<std::size_t>(r)];
          std::this_thread::yield();
          counters[static_cast<std::size_t>(r)] = read + 1;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (ResourceId r = 0; r < 4; ++r) {
    EXPECT_EQ(counters[static_cast<std::size_t>(r)], 80) << space.name(r);
  }
  EXPECT_EQ(space.total_entries(), 320u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, UnknownResourceAlgorithmOverrideIsRejected) {
  ThreadedLockSpaceConfig config = make_config(2, 2);
  config.resource_algorithms.emplace_back(
      "res/404", baselines::algorithm_by_name("Raymond"));
  EXPECT_THROW(ThreadedLockSpace space(std::move(config)),
               std::logic_error);
}

TEST(ThreadedLockSpace, ExplicitWorkerAndSpinKnobsAreHonored) {
  ThreadedLockSpaceConfig config = make_config(3, 3);
  config.workers = 2;
  config.spin = 4;
  ThreadedLockSpace space(std::move(config));
  EXPECT_EQ(space.workers(), 2);
  for (NodeId v = 1; v <= 3; ++v) {
    ScopedLock guard(space, ResourceId{0}, v);
  }
  EXPECT_EQ(space.entries(0), 3u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, OversubscribedAppThreadsUnderJitterStayExclusive) {
  // More application threads than cores, more pool workers than cores,
  // and randomized delivery delays: the scheduler is free to interleave
  // strand activations across workers in ugly ways, and the witness
  // counters must still come out exact.
  const int n = 4;
  const int m = 8;
  const int threads_per_node = 3;
  const int rounds = 12;
  ThreadedLockSpaceConfig config = make_config(n, m, "Neilsen",
                                               /*jitter_us=*/200);
  config.workers = 8;
  config.spin = 8;  // park eagerly; the cores are oversubscribed
  ThreadedLockSpace space(std::move(config));

  std::vector<long long> counters(static_cast<std::size_t>(m), 0);
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= n; ++v) {
    for (int t = 0; t < threads_per_node; ++t) {
      threads.emplace_back([&space, &counters, v, t] {
        Rng rng(static_cast<std::uint64_t>(v) * 977 +
                static_cast<std::uint64_t>(t) * 131 + 1);
        for (int i = 0; i < rounds; ++i) {
          const auto r = static_cast<ResourceId>(
              rng.uniform_int(0, static_cast<std::int64_t>(m) - 1));
          ScopedLock guard(space, r, v);
          const long long read = counters[static_cast<std::size_t>(r)];
          std::this_thread::yield();
          counters[static_cast<std::size_t>(r)] = read + 1;
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();

  long long counted = 0;
  for (ResourceId r = 0; r < m; ++r) {
    counted += counters[static_cast<std::size_t>(r)];
    EXPECT_EQ(counters[static_cast<std::size_t>(r)],
              static_cast<long long>(space.entries(r)))
        << space.name(r);
  }
  EXPECT_EQ(counted, static_cast<long long>(n) * threads_per_node * rounds);
  EXPECT_EQ(space.total_entries(),
            static_cast<std::uint64_t>(counted));
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, JitteryDeliverySurvivesAcrossAlgorithms) {
  for (const char* algorithm : {"Neilsen", "Suzuki-Kasami"}) {
    ThreadedLockSpace space(make_config(3, 4, algorithm, /*jitter_us=*/100));
    std::vector<std::thread> threads;
    for (NodeId v = 1; v <= 3; ++v) {
      threads.emplace_back([&space, v] {
        Rng rng(static_cast<std::uint64_t>(v) * 131);
        for (int i = 0; i < 20; ++i) {
          const auto r = static_cast<ResourceId>(rng.uniform_int(0, 3));
          ScopedLock guard(space, r, v);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(space.total_entries(), 60u) << algorithm;
    EXPECT_FALSE(space.first_error().has_value())
        << algorithm << ": " << *space.first_error();
  }
}

TEST(ThreadedLockSpace, ZeroTimeoutConsumesAnAlreadyLatchedGrant) {
  // try_lock_for with an already-elapsed deadline must still consume a
  // grant that latched before (or while) the waiter parked: the pred-form
  // cv wait checks the predicate after its final wake, so a latched grant
  // yields kOk, never a kTimeout that strands the grant. On a one-node
  // space the protocol grants near-instantly, so hammering zero-timeout
  // attempts exercises both races — grant latched before the deadline
  // check (kOk) and after it (kTimeout, with on_grant handing the CS
  // back). Either way the bookkeeping must balance: every kOk is
  // unlockable, entries equal successes, and no grant stays latched.
  ThreadedLockSpace space(make_config(1, 1));
  const ResourceId r = 0;
  const NodeId v = 1;
  int ok = 0;
  int timeout = 0;
  for (int i = 0; i < 400; ++i) {
    const LockError error =
        space.try_lock_for(r, v, std::chrono::milliseconds(0));
    if (error == LockError::kOk) {
      ++ok;
      space.unlock(r, v);
    } else {
      EXPECT_EQ(error, LockError::kTimeout);
      ++timeout;
    }
  }
  EXPECT_EQ(space.entries(r), static_cast<std::uint64_t>(ok));
  // No grant may stay latched after a timeout: a subsequent blocking lock
  // must succeed (it would hang forever on a stranded handshake).
  space.lock(r, v);
  space.unlock(r, v);
  EXPECT_EQ(space.entries(r), static_cast<std::uint64_t>(ok) + 1);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, ZeroTimeoutWhileHeldLocallyTimesOutCleanly) {
  // Deterministic expired-deadline path: another thread of the SAME node
  // holds the resource, so the zero-timeout attempt can never be granted
  // and must return kTimeout without posting a duplicate protocol request
  // or corrupting the local hand-off state.
  ThreadedLockSpace space(make_config(2, 1));
  const ResourceId r = 0;
  const NodeId v = 1;
  space.lock(r, v);
  EXPECT_EQ(space.try_lock_for(r, v, std::chrono::milliseconds(0)),
            LockError::kTimeout);
  space.unlock(r, v);
  // The timed-out waiter left no residue: both nodes still make progress.
  space.lock(r, v);
  space.unlock(r, v);
  space.lock(r, 2);
  space.unlock(r, 2);
  EXPECT_EQ(space.entries(r), 3u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

// ---- Local grant chaining under the lease -----------------------------------

TEST(ThreadedLockSpace, LocalWaitersAreServedInArrivalOrder) {
  // FIFO hand-off pinned: with the holder parked on the resource, waiters
  // are admitted one at a time (each confirmed parked via local_waiters
  // before the next arrives), so the grant order is the arrival order —
  // both for chained grants and for a fresh protocol grant to the front.
  ThreadedLockSpace space(make_config(3, 1));
  const ResourceId r = 0;
  const NodeId v = 2;
  constexpr int kWaiters = 6;

  space.lock(r, v);
  std::vector<int> order;
  std::mutex order_mutex;
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&space, &order, &order_mutex, i] {
      space.lock(ResourceId{0}, NodeId{2});
      {
        std::lock_guard<std::mutex> guard(order_mutex);
        order.push_back(i);
      }
      space.unlock(ResourceId{0}, NodeId{2});
    });
    // Admission barrier: waiter i must be parked before i+1 may issue its
    // ticket, otherwise arrival order itself would be racy.
    while (space.local_waiters(r, v) < i + 1) std::this_thread::yield();
  }
  space.unlock(r, v);
  for (auto& thread : waiters) thread.join();

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "grant " << i;
  }
  // All six hand-offs rode the chain (default cap 16): zero protocol
  // rounds between co-located waiters.
  EXPECT_GE(space.chained_grants(), static_cast<std::uint64_t>(kWaiters));
  EXPECT_EQ(space.entries(r), static_cast<std::uint64_t>(kWaiters) + 1);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, ChainingSkipsProtocolRoundsForColocatedWaiters) {
  // Same workload, chaining on vs off, on Central so every protocol round
  // demonstrably costs coordinator messages: with the default lease the
  // co-located contention is served almost entirely by local hand-offs,
  // with it disabled every entry is a coordinator round-trip. (Neilsen
  // would hide the difference — a re-request from the DAG tail is already
  // message-free.)
  std::uint64_t chained[2] = {0, 0};
  std::uint64_t messages[2] = {0, 0};
  for (int mode = 0; mode < 2; ++mode) {
    ThreadedLockSpaceConfig config = make_config(3, 1, "Central");
    if (mode == 1) config.lease.max_chain = 0;  // disable chaining
    ThreadedLockSpace space(std::move(config));
    // Contend from a node that is NOT the coordinator, so un-chained
    // rounds must cross the wire.
    const NodeId client = space.home_node(0) == 2 ? 3 : 2;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&space, client] {
        for (int i = 0; i < 25; ++i) {
          ScopedLock guard(space, ResourceId{0}, client);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(space.entries(0), 100u);
    EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
    chained[mode] = space.chained_grants();
    messages[mode] = space.messages_sent();
  }
  EXPECT_GT(chained[0], 0u);
  EXPECT_EQ(chained[1], 0u);  // max_chain = 0 really disables the fast path
  EXPECT_LT(messages[0], messages[1])
      << "chaining should shed protocol traffic for co-located contention";
}

TEST(ThreadedLockSpace, LeaseCapYieldsTheTokenBackToTheProtocol) {
  // max_chain = 1 with renewal off: every second hand-off must go back
  // through the protocol even though only node 2's clients want the
  // resource — the unconditional bound that keeps remote waiting finite.
  ThreadedLockSpaceConfig config = make_config(3, 1);
  config.lease.max_chain = 1;
  config.lease.renew_when_no_remote = false;
  ThreadedLockSpace space(std::move(config));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&space] {
      for (int i = 0; i < 25; ++i) {
        ScopedLock guard(space, ResourceId{0}, NodeId{2});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(space.entries(0), 100u);
  EXPECT_GT(space.lease_yields(), 0u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, ExpiredHoldWindowClosesTheChain) {
  // A zero-length hold window (max_hold_ns = 1) fails the window check on
  // every release, and with renewal off no chain may form at all.
  ThreadedLockSpaceConfig config = make_config(3, 1);
  config.lease.max_hold_ns = 1;
  config.lease.renew_when_no_remote = false;
  ThreadedLockSpace space(std::move(config));
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&space] {
      for (int i = 0; i < 10; ++i) {
        ScopedLock guard(space, ResourceId{0}, NodeId{2});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(space.entries(0), 30u);
  EXPECT_EQ(space.chained_grants(), 0u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, ChainingSurvivesRemoteContentionExactly) {
  // Chaining must not cost exclusivity: co-located chains on every node
  // race with cross-node traffic on the same resource, and the
  // unsynchronized witness counter still comes out exact.
  const int n = 3;
  const int threads_per_node = 3;
  const int rounds = 15;
  ThreadedLockSpace space(make_config(n, 1));
  long long counter = 0;
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= n; ++v) {
    for (int t = 0; t < threads_per_node; ++t) {
      threads.emplace_back([&space, &counter, v] {
        for (int i = 0; i < rounds; ++i) {
          ScopedLock guard(space, ResourceId{0}, v);
          const long long read = counter;
          std::this_thread::yield();
          counter = read + 1;
        }
      });
    }
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, static_cast<long long>(n) * threads_per_node * rounds);
  EXPECT_GT(space.chained_grants(), 0u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

}  // namespace
}  // namespace dmx::service
