// Tests for the threaded multi-resource lock service: real threads, real
// blocking named locks, one mailbox set per node carrying every resource.
// Per-resource unsynchronized counters are the mutual-exclusion witness —
// lost updates would make a final count fall short.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "common/rng.hpp"
#include "service/threaded_lock_space.hpp"

namespace dmx::service {
namespace {

std::vector<std::string> resource_names(int m) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) names.push_back("res/" + std::to_string(i));
  return names;
}

ThreadedLockSpaceConfig make_config(int n, int m,
                                    const std::string& algorithm = "Neilsen",
                                    unsigned jitter_us = 0) {
  ThreadedLockSpaceConfig config;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name(algorithm);
  config.resources = resource_names(m);
  config.jitter_us = jitter_us;
  return config;
}

TEST(ThreadedLockSpace, PerResourceCountersHaveNoLostUpdates) {
  const int n = 4;
  const int m = 6;
  const int rounds = 30;
  ThreadedLockSpace space(make_config(n, m));

  std::vector<long long> counters(static_cast<std::size_t>(m), 0);
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= n; ++v) {
    threads.emplace_back([&space, &counters, v] {
      // Every node walks every resource: cross-resource traffic shares
      // each node's one mailbox thread.
      for (int i = 0; i < rounds; ++i) {
        for (ResourceId r = 0; r < m; ++r) {
          ScopedLock guard(space, r, v);
          const long long read = counters[static_cast<std::size_t>(r)];
          std::this_thread::yield();  // widen the race window
          counters[static_cast<std::size_t>(r)] = read + 1;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (ResourceId r = 0; r < m; ++r) {
    EXPECT_EQ(counters[static_cast<std::size_t>(r)],
              static_cast<long long>(n) * rounds)
        << space.name(r);
    EXPECT_EQ(space.entries(r), static_cast<std::uint64_t>(n) * rounds);
  }
  EXPECT_EQ(space.total_entries(),
            static_cast<std::uint64_t>(n) * m * rounds);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, LocalWaitersQueueOnOneProtocolRequest) {
  // Several application threads on the SAME node contend for the same
  // resource: local hand-off must serialize them without double-posting
  // protocol requests (the paper allows one outstanding request per node).
  ThreadedLockSpace space(make_config(3, 2));
  const ResourceId r = 0;
  long long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&space, &counter] {
      for (int i = 0; i < 25; ++i) {
        ScopedLock guard(space, ResourceId{0}, NodeId{2});
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 100);
  EXPECT_EQ(space.entries(r), 100u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, HoldsTwoResourcesFromOneNodeConcurrently) {
  ThreadedLockSpace space(make_config(3, 2));
  ScopedLock a(space, ResourceId{0}, NodeId{1});
  ScopedLock b(space, ResourceId{1}, NodeId{1});  // must not deadlock
  EXPECT_FALSE(space.first_error().has_value());
}

TEST(ThreadedLockSpace, ScopedLockByNameAndDirectoryAgree) {
  ThreadedLockSpace space(make_config(4, 3));
  EXPECT_EQ(space.resource_count(), 3);
  const ResourceId r = space.lookup("res/1");
  ASSERT_NE(r, kNilResource);
  EXPECT_EQ(space.name(r), "res/1");
  EXPECT_GE(space.home_node(r), 1);
  EXPECT_LE(space.home_node(r), 4);
  {
    ScopedLock guard(space, "res/1", 3);
  }
  EXPECT_EQ(space.entries(r), 1u);
}

TEST(ThreadedLockSpace, BogusUnlockThrowsWithoutCorruptingTheWitness) {
  ThreadedLockSpace space(make_config(3, 2));
  // Unlocking a resource this node does not hold is rejected on the
  // calling thread, before the occupancy witness moves...
  EXPECT_THROW(space.unlock(ResourceId{0}, 2), std::logic_error);
  // ... so subsequent legitimate locking sees a clean counter and reports
  // no phantom exclusivity violation.
  for (NodeId v = 1; v <= 3; ++v) {
    ScopedLock guard(space, ResourceId{0}, v);
  }
  EXPECT_EQ(space.entries(0), 3u);
  EXPECT_FALSE(space.first_error().has_value()) << *space.first_error();
}

TEST(ThreadedLockSpace, JitteryDeliverySurvivesAcrossAlgorithms) {
  for (const char* algorithm : {"Neilsen", "Suzuki-Kasami"}) {
    ThreadedLockSpace space(make_config(3, 4, algorithm, /*jitter_us=*/100));
    std::vector<std::thread> threads;
    for (NodeId v = 1; v <= 3; ++v) {
      threads.emplace_back([&space, v] {
        Rng rng(static_cast<std::uint64_t>(v) * 131);
        for (int i = 0; i < 20; ++i) {
          const auto r = static_cast<ResourceId>(rng.uniform_int(0, 3));
          ScopedLock guard(space, r, v);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(space.total_entries(), 60u) << algorithm;
    EXPECT_FALSE(space.first_error().has_value())
        << algorithm << ": " << *space.first_error();
  }
}

}  // namespace
}  // namespace dmx::service
