// Tests for the simulation harness: cluster lifecycle, grant/release
// bookkeeping, probes, and the delay analyses.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "harness/delay_analysis.hpp"
#include "harness/probe.hpp"
#include "topology/tree.hpp"

namespace dmx::harness {
namespace {

ClusterConfig line_config(int n, NodeId holder) {
  ClusterConfig config;
  config.n = n;
  config.initial_token_holder = holder;
  config.tree = topology::Tree::line(n);
  return config;
}

TEST(Cluster, GrantCallbackFiresOnEntry) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  bool entered = false;
  cluster.request_cs(1, [&](NodeId v) {
    EXPECT_EQ(v, 1);
    entered = true;
  });
  EXPECT_TRUE(entered);  // holder enters synchronously
  EXPECT_TRUE(cluster.is_in_cs(1));
  EXPECT_EQ(cluster.cs_occupant(), 1);
  cluster.release_cs(1);
  EXPECT_EQ(cluster.cs_occupant(), kNilNode);
}

TEST(Cluster, DoubleRequestRejected) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  cluster.request_cs(2);
  EXPECT_THROW(cluster.request_cs(2), std::logic_error);
}

TEST(Cluster, ReleaseByNonOccupantRejected) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  cluster.request_cs(1);
  EXPECT_THROW(cluster.release_cs(2), std::logic_error);
}

TEST(Cluster, WaitingStateVisible) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  cluster.request_cs(1);
  cluster.request_cs(3);
  EXPECT_TRUE(cluster.is_waiting(3));
  EXPECT_FALSE(cluster.is_in_cs(3));
  cluster.run_to_quiescence();
  EXPECT_TRUE(cluster.is_waiting(3));  // token still held by node 1
  cluster.release_cs(1);
  cluster.run_to_quiescence();
  EXPECT_TRUE(cluster.is_in_cs(3));
}

TEST(Cluster, HoldAndReleaseCompletesCycle) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(4, 1));
  bool released = false;
  cluster.hold_and_release(3, 5, [&](NodeId) { released = true; });
  cluster.run_to_quiescence();
  EXPECT_TRUE(released);
  EXPECT_EQ(cluster.total_entries(), 1u);
}

TEST(Cluster, EventLogRecordsLifecycle) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(3, 1));
  cluster.hold_and_release(2, 4);
  cluster.run_to_quiescence();
  const auto& events = cluster.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, CsEvent::Kind::kRequest);
  EXPECT_EQ(events[1].kind, CsEvent::Kind::kEnter);
  EXPECT_EQ(events[2].kind, CsEvent::Kind::kExit);
  EXPECT_EQ(events[2].at - events[1].at, 4);  // the hold duration
}

TEST(Cluster, EventLoggingCanBeDisabled) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(3, 1));
  cluster.set_event_logging(false);
  cluster.hold_and_release(2, 1);
  cluster.run_to_quiescence();
  EXPECT_TRUE(cluster.events().empty());
}

TEST(Cluster, TreeRequiredForTreeAlgorithms) {
  ClusterConfig config;
  config.n = 3;
  EXPECT_THROW(
      Cluster(baselines::algorithm_by_name("Neilsen"), std::move(config)),
      std::logic_error);
}

TEST(Probe, ParkTokenMovesToken) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(5, 1));
  park_token_at(cluster, 4);
  EXPECT_TRUE(cluster.node(4).has_token());
  EXPECT_FALSE(cluster.node(1).has_token());
}

TEST(Probe, SingleEntryMeasuresTicksAndMessages) {
  Cluster cluster(baselines::algorithm_by_name("Neilsen"), line_config(5, 1));
  const ProbeResult probe = single_entry_probe(cluster, 5, /*hold=*/3);
  // 4 REQUEST hops + 1 PRIVILEGE, all at unit latency.
  EXPECT_EQ(probe.messages_total, 5u);
  EXPECT_EQ(probe.messages_to_enter, 5u);
  EXPECT_EQ(probe.ticks_to_enter, 5);
}

TEST(DelayAnalysis, WaitingTimes) {
  std::vector<CsEvent> events{
      {0, 1, CsEvent::Kind::kRequest},  {2, 1, CsEvent::Kind::kEnter},
      {5, 1, CsEvent::Kind::kExit},     {4, 2, CsEvent::Kind::kRequest},
      {10, 2, CsEvent::Kind::kEnter},   {11, 2, CsEvent::Kind::kExit},
  };
  const metrics::Summary waits = waiting_times(events);
  EXPECT_EQ(waits.count(), 2u);
  EXPECT_EQ(waits.min(), 2.0);
  EXPECT_EQ(waits.max(), 6.0);
}

TEST(DelayAnalysis, SyncDelayOnlyCountsBlockedSuccessors) {
  std::vector<CsEvent> events{
      {0, 1, CsEvent::Kind::kRequest},  {0, 1, CsEvent::Kind::kEnter},
      {1, 2, CsEvent::Kind::kRequest},  // blocked before exit below
      {5, 1, CsEvent::Kind::kExit},     {6, 2, CsEvent::Kind::kEnter},
      {7, 2, CsEvent::Kind::kExit},
      // Node 3 requests only after node 2 exited: not a sync-delay sample.
      {9, 3, CsEvent::Kind::kRequest},  {12, 3, CsEvent::Kind::kEnter},
  };
  const metrics::Summary delays = synchronization_delays(events);
  EXPECT_EQ(delays.count(), 1u);
  EXPECT_EQ(delays.mean(), 1.0);
}

TEST(DelayAnalysis, EmptyLogGivesEmptySummaries) {
  EXPECT_EQ(waiting_times({}).count(), 0u);
  EXPECT_EQ(synchronization_delays({}).count(), 0u);
}

}  // namespace
}  // namespace dmx::harness
