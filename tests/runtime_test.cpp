// Tests for the multi-threaded runtime: real threads, real blocking locks,
// every algorithm. A shared unprotected counter is the canonical mutual-
// exclusion witness: lost updates would make the final count fall short.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "baselines/registry.hpp"
#include "runtime/lock_cluster.hpp"
#include "topology/tree.hpp"

namespace dmx::runtime {
namespace {

LockClusterConfig make_config(int n, unsigned jitter_us = 0) {
  LockClusterConfig config;
  config.n = n;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::random_tree(n, 17);
  config.jitter_us = jitter_us;
  return config;
}

class RuntimeAllAlgorithms
    : public ::testing::TestWithParam<std::string> {};

TEST_P(RuntimeAllAlgorithms, SharedCounterHasNoLostUpdates) {
  const proto::Algorithm algo =
      baselines::algorithm_by_name(GetParam());
  const int n = 5;
  const int increments_per_node = 40;
  LockCluster cluster(algo, make_config(n));

  long long counter = 0;  // deliberately unsynchronized
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (NodeId v = 1; v <= n; ++v) {
    threads.emplace_back([&cluster, &counter, v] {
      DistributedMutex mutex = cluster.mutex(v);
      for (int i = 0; i < increments_per_node; ++i) {
        std::lock_guard<DistributedMutex> guard(mutex);
        const long long read = counter;
        std::this_thread::yield();  // widen the race window
        counter = read + 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter, static_cast<long long>(n) * increments_per_node);
  EXPECT_EQ(cluster.total_entries(),
            static_cast<std::uint64_t>(n) * increments_per_node);
  EXPECT_FALSE(cluster.first_error().has_value())
      << *cluster.first_error();
}

TEST_P(RuntimeAllAlgorithms, JitteryDeliverySurvives) {
  const proto::Algorithm algo =
      baselines::algorithm_by_name(GetParam());
  const int n = 4;
  LockCluster cluster(algo, make_config(n, /*jitter_us=*/200));

  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= n; ++v) {
    threads.emplace_back([&cluster, v] {
      DistributedMutex mutex = cluster.mutex(v);
      for (int i = 0; i < 10; ++i) {
        mutex.lock();
        mutex.unlock();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cluster.total_entries(), 40u);
  EXPECT_FALSE(cluster.first_error().has_value())
      << *cluster.first_error();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RuntimeAllAlgorithms,
    ::testing::Values("Neilsen", "Raymond", "Central", "Suzuki-Kasami",
                      "Singhal", "Lamport", "Ricart-Agrawala",
                      "Carvalho-Roucairol", "Maekawa"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Runtime, UncontendedLockIsReentrantFree) {
  LockCluster cluster(baselines::algorithm_by_name("Neilsen"),
                      make_config(3));
  DistributedMutex mutex = cluster.mutex(1);
  for (int i = 0; i < 100; ++i) {
    mutex.lock();
    mutex.unlock();
  }
  EXPECT_EQ(cluster.total_entries(), 100u);
}

TEST(Runtime, TryLockForSucceedsQuickly) {
  LockCluster cluster(baselines::algorithm_by_name("Neilsen"),
                      make_config(3));
  DistributedMutex mutex = cluster.mutex(2);
  EXPECT_TRUE(mutex.try_lock_for(std::chrono::milliseconds(2000)));
  mutex.unlock();
}

TEST(Runtime, TryLockForTimesOutWhileBlocked) {
  LockCluster cluster(baselines::algorithm_by_name("Neilsen"),
                      make_config(3));
  DistributedMutex holder = cluster.mutex(1);
  holder.lock();
  DistributedMutex blocked = cluster.mutex(2);
  EXPECT_FALSE(blocked.try_lock_for(std::chrono::milliseconds(50)));
  holder.unlock();
  // The request is still outstanding and must eventually be granted.
  blocked.lock();  // completes the earlier request
  blocked.unlock();
  EXPECT_FALSE(cluster.first_error().has_value())
      << *cluster.first_error();
}

TEST(Runtime, TryLockForTimeoutThenLockCompletesSameRequest) {
  // Follow-up semantics of a timed-out try_lock_for: the protocol request
  // stays outstanding (requests cannot be cancelled), and a later lock()
  // must complete THAT request — exactly one entry, no double-posted
  // request, no lost wakeup even when the grant lands while no thread is
  // waiting on it.
  LockCluster cluster(baselines::algorithm_by_name("Neilsen"),
                      make_config(3));
  DistributedMutex holder = cluster.mutex(1);
  holder.lock();
  DistributedMutex blocked = cluster.mutex(2);
  EXPECT_FALSE(blocked.try_lock_for(std::chrono::milliseconds(50)));
  // Release while node 2 is NOT blocked in a wait: the grant must be
  // latched, not lost.
  holder.unlock();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  blocked.lock();  // completes the outstanding request (no new one posted)
  EXPECT_EQ(cluster.total_entries(), 2u);  // holder's + exactly one for 2
  blocked.unlock();
  // The outstanding-request bookkeeping is fully reset: a fresh cycle
  // issues a new request and completes.
  blocked.lock();
  blocked.unlock();
  EXPECT_EQ(cluster.total_entries(), 3u);
  // A double-posted request would trip the protocol's one-outstanding-
  // request precondition on the actor thread and surface here.
  EXPECT_FALSE(cluster.first_error().has_value())
      << *cluster.first_error();
}

TEST(Runtime, ManyNodesLineTopology) {
  LockClusterConfig config;
  config.n = 12;
  config.initial_token_holder = 6;
  config.tree = topology::Tree::line(12);
  LockCluster cluster(baselines::algorithm_by_name("Neilsen"),
                      std::move(config));
  std::vector<std::thread> threads;
  for (NodeId v = 1; v <= 12; ++v) {
    threads.emplace_back([&cluster, v] {
      DistributedMutex mutex = cluster.mutex(v);
      for (int i = 0; i < 5; ++i) {
        std::lock_guard<DistributedMutex> guard(mutex);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(cluster.total_entries(), 60u);
}

}  // namespace
}  // namespace dmx::runtime

// ---- message accounting ----------------------------------------------------

namespace dmx::runtime {
namespace {

TEST(Runtime, MessageCountingMatchesProtocolCost) {
  // Star topology, token at the hub: locking from the hub is free;
  // locking from a leaf costs exactly REQUEST + PRIVILEGE.
  LockClusterConfig config;
  config.n = 4;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::star(4, 1);
  LockCluster cluster(baselines::algorithm_by_name("Neilsen"),
                      std::move(config));

  DistributedMutex hub = cluster.mutex(1);
  hub.lock();
  hub.unlock();
  EXPECT_EQ(cluster.messages_sent(), 0u);

  DistributedMutex leaf = cluster.mutex(2);
  leaf.lock();
  leaf.unlock();
  EXPECT_EQ(cluster.messages_sent(), 2u);  // REQUEST(2,2) + PRIVILEGE
}

}  // namespace
}  // namespace dmx::runtime
