// Registry-wide swarm regression suite: every algorithm × line/star/random
// trees × 64 fixed seeds of randomized delivery schedules, with safety
// invariants checked after every event and bounded waiting asserted at the
// end of each run. Complements the exhaustive explorer: the explorer
// proves small configurations completely, the swarm shakes larger ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "baselines/registry.hpp"
#include "modelcheck/swarm.hpp"

namespace dmx::modelcheck {
namespace {

constexpr std::uint64_t kSeedsPerTopology = 64;

SwarmConfig base_config(const proto::Algorithm& algo,
                        SwarmConfig::Topology topology, std::uint64_t seed) {
  SwarmConfig config;
  config.algorithm = &algo;
  config.n = 6;
  config.topology = topology;
  config.seed = seed;
  config.target_entries = 24;
  config.latency_lo = 1;
  config.latency_hi = 12;
  config.mean_think_ticks = 2.0;
  config.hold_lo = 0;
  config.hold_hi = 2;
  return config;
}

TEST(Swarm, RegistrySweepSixtyFourSeedsPerTopology) {
  const SwarmConfig::Topology topologies[] = {SwarmConfig::Topology::kLine,
                                              SwarmConfig::Topology::kStar,
                                              SwarmConfig::Topology::kRandom};
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    std::uint64_t runs = 0;
    for (std::size_t t = 0; t < 3; ++t) {
      for (std::uint64_t seed = 1; seed <= kSeedsPerTopology; ++seed) {
        // Distinct seed per (topology, seed) pair so tree-less algorithms
        // still get three independent schedule batches.
        const SwarmConfig config =
            base_config(algo, topologies[t], 1000 * (t + 1) + seed);
        const SwarmResult result = run_swarm(config);
        ASSERT_TRUE(result.ok)
            << algo.name << " topology " << t << " seed " << config.seed
            << ": " << result.violation;
        EXPECT_GE(result.entries, config.target_entries) << algo.name;
        // Bounded waiting: every request was granted (checked inside
        // run_swarm) and the longest wait is finite and recorded.
        EXPECT_GT(result.max_wait_ticks, 0) << algo.name;
        ++runs;
      }
    }
    EXPECT_EQ(runs, 3 * kSeedsPerTopology);
  }
}

TEST(Swarm, SameSeedSameTraceHash) {
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    const SwarmConfig config =
        base_config(algo, SwarmConfig::Topology::kRandom, 77);
    const SwarmResult a = run_swarm(config);
    const SwarmResult b = run_swarm(config);
    ASSERT_TRUE(a.ok) << algo.name << ": " << a.violation;
    EXPECT_EQ(a.trace_hash, b.trace_hash) << algo.name;
    EXPECT_EQ(a.entries, b.entries) << algo.name;
    EXPECT_EQ(a.messages, b.messages) << algo.name;
  }
}

TEST(Swarm, DifferentSeedDifferentSchedule) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const SwarmResult a =
      run_swarm(base_config(algo, SwarmConfig::Topology::kStar, 5));
  const SwarmResult b =
      run_swarm(base_config(algo, SwarmConfig::Topology::kStar, 6));
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(Swarm, DuplicatedTokenMessageIsDetected) {
  // Satellite of the failure-injection suite: a duplicated PRIVILEGE/TOKEN
  // is a forged second token; the per-event invariant checker must catch
  // it rather than let the run mis-execute silently.
  const struct {
    const char* algorithm;
    const char* kind;
  } cases[] = {{"Neilsen", "PRIVILEGE"},
               {"Raymond", "PRIVILEGE"},
               {"Suzuki-Kasami", "TOKEN"},
               {"Singhal", "TOKEN"}};
  for (const auto& c : cases) {
    const proto::Algorithm algo = baselines::algorithm_by_name(c.algorithm);
    SwarmConfig config = base_config(algo, SwarmConfig::Topology::kLine, 9);
    config.duplicate_next_kind = c.kind;
    const SwarmResult result = run_swarm(config);
    EXPECT_FALSE(result.ok) << c.algorithm;
    EXPECT_FALSE(result.violation.empty()) << c.algorithm;
  }
}

TEST(Swarm, SustainedDropInjectionIsDetected) {
  for (const char* name : {"Neilsen", "Raymond"}) {
    const proto::Algorithm algo = baselines::algorithm_by_name(name);
    SwarmConfig config = base_config(algo, SwarmConfig::Topology::kLine, 13);
    config.drop_probability = 0.3;
    config.target_entries = 500;
    const SwarmResult result = run_swarm(config);
    EXPECT_FALSE(result.ok) << name;
  }
}

TEST(Swarm, RejectsMissingAlgorithm) {
  SwarmConfig config;
  EXPECT_THROW(run_swarm(config), std::logic_error);
}

// ---- Multi-resource mode ----------------------------------------------------
// resources > 1 runs the seeded schedule against a service::LockSpace:
// envelopes of many resources race on the same channels, and CS
// exclusivity, token uniqueness, and the per-algorithm structural hooks
// are all checked PER RESOURCE after every event.

SwarmConfig space_config(const proto::Algorithm& algo, std::uint64_t seed) {
  SwarmConfig config = base_config(algo, SwarmConfig::Topology::kRandom, seed);
  config.resources = 6;
  config.zipf_s = 0.9;
  config.clients_per_node = 2;
  config.target_entries = 60;
  return config;
}

TEST(Swarm, MultiResourceSweepAllAlgorithms) {
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const SwarmResult result = run_swarm(space_config(algo, 7000 + seed));
      ASSERT_TRUE(result.ok)
          << algo.name << " seed " << 7000 + seed << ": " << result.violation;
      EXPECT_GE(result.entries, 60u) << algo.name;
    }
  }
}

TEST(Swarm, MultiResourceSameSeedSameTraceHash) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const SwarmResult a = run_swarm(space_config(algo, 41));
  const SwarmResult b = run_swarm(space_config(algo, 41));
  ASSERT_TRUE(a.ok) << a.violation;
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.messages, b.messages);
  const SwarmResult c = run_swarm(space_config(algo, 42));
  ASSERT_TRUE(c.ok) << c.violation;
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

TEST(Swarm, MultiResourceDuplicatedTokenIsDetected) {
  // One forged token on ONE of six resources must be caught by that
  // resource's uniqueness check while the other five keep running.
  const struct {
    const char* algorithm;
    const char* kind;
  } cases[] = {{"Neilsen", "PRIVILEGE"}, {"Suzuki-Kasami", "TOKEN"}};
  for (const auto& c : cases) {
    const proto::Algorithm algo = baselines::algorithm_by_name(c.algorithm);
    SwarmConfig config = space_config(algo, 19);
    config.duplicate_next_kind = c.kind;
    const SwarmResult result = run_swarm(config);
    EXPECT_FALSE(result.ok) << c.algorithm;
    EXPECT_FALSE(result.violation.empty()) << c.algorithm;
  }
}

// ---- Local grant chaining (queue_local + lease) -----------------------------
// queue_local keeps each client's Zipf draw even when its node already has
// that resource outstanding, so co-located waiter chains form and the
// lease policy decides when the token is handed on locally (zero protocol
// messages) versus offered back to the protocol. Safety invariants are
// still checked after every event, and max_wait_bound turns the
// bounded-waiting witness into a hard per-run assertion.

// Longest request→grant wait (virtual ticks) observed anywhere in the
// 9-algorithm × 64-seed chaining sweep with the DEFAULT lease cap was 155
// (Maekawa); pinned here with ~2x headroom as a hard per-run bound.
constexpr Tick kChainedWaitBound = 320;

SwarmConfig chaining_config(const proto::Algorithm& algo, std::uint64_t seed) {
  SwarmConfig config = base_config(algo, SwarmConfig::Topology::kRandom, seed);
  config.resources = 4;
  config.zipf_s = 0.99;  // hot-shard skew: most draws hit resource 1
  config.clients_per_node = 3;
  config.target_entries = 60;
  config.queue_local = true;  // default LeaseConfig: chain up to 16, renew
  return config;
}

TEST(Swarm, ChainingSweepSixtyFourSeedsAllAlgorithms) {
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    for (std::uint64_t seed = 1; seed <= kSeedsPerTopology; ++seed) {
      SwarmConfig config = chaining_config(algo, 9000 + seed);
      config.max_wait_bound = kChainedWaitBound;
      const SwarmResult result = run_swarm(config);
      ASSERT_TRUE(result.ok)
          << algo.name << " seed " << 9000 + seed << ": " << result.violation;
      EXPECT_GE(result.entries, config.target_entries) << algo.name;
    }
  }
}

TEST(Swarm, ChainingSameSeedSameTraceHash) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const SwarmResult a = run_swarm(chaining_config(algo, 33));
  const SwarmResult b = run_swarm(chaining_config(algo, 33));
  ASSERT_TRUE(a.ok) << a.violation;
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(Swarm, ChainingBoundedWaitingWitness) {
  // With the default finite cap every algorithm's longest wait stays
  // comfortably under the pinned bound — print the per-registry maximum
  // so drift is visible in the log before it becomes a failure.
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    Tick worst = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      SwarmConfig config = chaining_config(algo, 9100 + seed);
      config.max_wait_bound = kChainedWaitBound;
      const SwarmResult result = run_swarm(config);
      ASSERT_TRUE(result.ok)
          << algo.name << " seed " << 9100 + seed << ": " << result.violation;
      worst = std::max(worst, result.max_wait_ticks);
    }
    RecordProperty((std::string(algo.name) + "_max_wait").c_str(),
                   static_cast<int>(worst));
    EXPECT_LT(worst, kChainedWaitBound) << algo.name;
    EXPECT_GT(worst, 0) << algo.name;
  }
}

TEST(Swarm, UnboundedLeaseStarvesRemoteRequesters) {
  // The counterexample that justifies the cap. A saturated hot shard —
  // six zero-think clients per node hammering one Zipf-4 resource — keeps
  // the holder node's local queue permanently non-empty, so with
  // max_chain < 0 the chain never breaks and a remote requester waits
  // until the workload itself winds down: its max wait tracks the
  // MAKESPAN (calibrated ~1100 ticks at 720 entries, and growing linearly
  // with the target), which is unbounded waiting in the only sense a
  // finite run can witness. The identical workload under the default cap
  // keeps the longest wait flat (~190-270 ticks, run-length independent).
  // One bound between the two regimes must hold capped and trip uncapped
  // for ALL NINE algorithms.
  constexpr Tick kStarvationBound = 600;
  const auto saturated = [](const proto::Algorithm& algo) {
    SwarmConfig config = base_config(algo, SwarmConfig::Topology::kRandom,
                                     9200);
    config.resources = 2;
    config.zipf_s = 4.0;           // effectively one hot resource
    config.clients_per_node = 6;   // the local queue never drains
    config.mean_think_ticks = 0.0; // clients re-queue the instant they leave
    config.hold_lo = 1;
    config.hold_hi = 2;
    config.target_entries = 720;
    config.queue_local = true;
    config.max_wait_bound = kStarvationBound;
    return config;
  };
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    SwarmConfig capped = saturated(algo);
    const SwarmResult control = run_swarm(capped);
    EXPECT_TRUE(control.ok)
        << algo.name << " (default cap): " << control.violation;

    SwarmConfig uncapped = saturated(algo);
    uncapped.lease.max_chain = -1;  // never yield while local demand exists
    const SwarmResult result = run_swarm(uncapped);
    ASSERT_FALSE(result.ok)
        << algo.name << ": unbounded chaining failed to starve anyone "
        << "(max wait " << result.max_wait_ticks << ")";
    EXPECT_NE(result.violation.find("bounded waiting violated"),
              std::string::npos)
        << algo.name << ": " << result.violation;
  }
}

}  // namespace
}  // namespace dmx::modelcheck
