// Registry-wide swarm regression suite: every algorithm × line/star/random
// trees × 64 fixed seeds of randomized delivery schedules, with safety
// invariants checked after every event and bounded waiting asserted at the
// end of each run. Complements the exhaustive explorer: the explorer
// proves small configurations completely, the swarm shakes larger ones.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "modelcheck/swarm.hpp"

namespace dmx::modelcheck {
namespace {

constexpr std::uint64_t kSeedsPerTopology = 64;

SwarmConfig base_config(const proto::Algorithm& algo,
                        SwarmConfig::Topology topology, std::uint64_t seed) {
  SwarmConfig config;
  config.algorithm = &algo;
  config.n = 6;
  config.topology = topology;
  config.seed = seed;
  config.target_entries = 24;
  config.latency_lo = 1;
  config.latency_hi = 12;
  config.mean_think_ticks = 2.0;
  config.hold_lo = 0;
  config.hold_hi = 2;
  return config;
}

TEST(Swarm, RegistrySweepSixtyFourSeedsPerTopology) {
  const SwarmConfig::Topology topologies[] = {SwarmConfig::Topology::kLine,
                                              SwarmConfig::Topology::kStar,
                                              SwarmConfig::Topology::kRandom};
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    std::uint64_t runs = 0;
    for (std::size_t t = 0; t < 3; ++t) {
      for (std::uint64_t seed = 1; seed <= kSeedsPerTopology; ++seed) {
        // Distinct seed per (topology, seed) pair so tree-less algorithms
        // still get three independent schedule batches.
        const SwarmConfig config =
            base_config(algo, topologies[t], 1000 * (t + 1) + seed);
        const SwarmResult result = run_swarm(config);
        ASSERT_TRUE(result.ok)
            << algo.name << " topology " << t << " seed " << config.seed
            << ": " << result.violation;
        EXPECT_GE(result.entries, config.target_entries) << algo.name;
        // Bounded waiting: every request was granted (checked inside
        // run_swarm) and the longest wait is finite and recorded.
        EXPECT_GT(result.max_wait_ticks, 0) << algo.name;
        ++runs;
      }
    }
    EXPECT_EQ(runs, 3 * kSeedsPerTopology);
  }
}

TEST(Swarm, SameSeedSameTraceHash) {
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    const SwarmConfig config =
        base_config(algo, SwarmConfig::Topology::kRandom, 77);
    const SwarmResult a = run_swarm(config);
    const SwarmResult b = run_swarm(config);
    ASSERT_TRUE(a.ok) << algo.name << ": " << a.violation;
    EXPECT_EQ(a.trace_hash, b.trace_hash) << algo.name;
    EXPECT_EQ(a.entries, b.entries) << algo.name;
    EXPECT_EQ(a.messages, b.messages) << algo.name;
  }
}

TEST(Swarm, DifferentSeedDifferentSchedule) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const SwarmResult a =
      run_swarm(base_config(algo, SwarmConfig::Topology::kStar, 5));
  const SwarmResult b =
      run_swarm(base_config(algo, SwarmConfig::Topology::kStar, 6));
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(Swarm, DuplicatedTokenMessageIsDetected) {
  // Satellite of the failure-injection suite: a duplicated PRIVILEGE/TOKEN
  // is a forged second token; the per-event invariant checker must catch
  // it rather than let the run mis-execute silently.
  const struct {
    const char* algorithm;
    const char* kind;
  } cases[] = {{"Neilsen", "PRIVILEGE"},
               {"Raymond", "PRIVILEGE"},
               {"Suzuki-Kasami", "TOKEN"},
               {"Singhal", "TOKEN"}};
  for (const auto& c : cases) {
    const proto::Algorithm algo = baselines::algorithm_by_name(c.algorithm);
    SwarmConfig config = base_config(algo, SwarmConfig::Topology::kLine, 9);
    config.duplicate_next_kind = c.kind;
    const SwarmResult result = run_swarm(config);
    EXPECT_FALSE(result.ok) << c.algorithm;
    EXPECT_FALSE(result.violation.empty()) << c.algorithm;
  }
}

TEST(Swarm, SustainedDropInjectionIsDetected) {
  for (const char* name : {"Neilsen", "Raymond"}) {
    const proto::Algorithm algo = baselines::algorithm_by_name(name);
    SwarmConfig config = base_config(algo, SwarmConfig::Topology::kLine, 13);
    config.drop_probability = 0.3;
    config.target_entries = 500;
    const SwarmResult result = run_swarm(config);
    EXPECT_FALSE(result.ok) << name;
  }
}

TEST(Swarm, RejectsMissingAlgorithm) {
  SwarmConfig config;
  EXPECT_THROW(run_swarm(config), std::logic_error);
}

// ---- Multi-resource mode ----------------------------------------------------
// resources > 1 runs the seeded schedule against a service::LockSpace:
// envelopes of many resources race on the same channels, and CS
// exclusivity, token uniqueness, and the per-algorithm structural hooks
// are all checked PER RESOURCE after every event.

SwarmConfig space_config(const proto::Algorithm& algo, std::uint64_t seed) {
  SwarmConfig config = base_config(algo, SwarmConfig::Topology::kRandom, seed);
  config.resources = 6;
  config.zipf_s = 0.9;
  config.clients_per_node = 2;
  config.target_entries = 60;
  return config;
}

TEST(Swarm, MultiResourceSweepAllAlgorithms) {
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const SwarmResult result = run_swarm(space_config(algo, 7000 + seed));
      ASSERT_TRUE(result.ok)
          << algo.name << " seed " << 7000 + seed << ": " << result.violation;
      EXPECT_GE(result.entries, 60u) << algo.name;
    }
  }
}

TEST(Swarm, MultiResourceSameSeedSameTraceHash) {
  const proto::Algorithm algo = baselines::algorithm_by_name("Neilsen");
  const SwarmResult a = run_swarm(space_config(algo, 41));
  const SwarmResult b = run_swarm(space_config(algo, 41));
  ASSERT_TRUE(a.ok) << a.violation;
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.entries, b.entries);
  EXPECT_EQ(a.messages, b.messages);
  const SwarmResult c = run_swarm(space_config(algo, 42));
  ASSERT_TRUE(c.ok) << c.violation;
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

TEST(Swarm, MultiResourceDuplicatedTokenIsDetected) {
  // One forged token on ONE of six resources must be caught by that
  // resource's uniqueness check while the other five keep running.
  const struct {
    const char* algorithm;
    const char* kind;
  } cases[] = {{"Neilsen", "PRIVILEGE"}, {"Suzuki-Kasami", "TOKEN"}};
  for (const auto& c : cases) {
    const proto::Algorithm algo = baselines::algorithm_by_name(c.algorithm);
    SwarmConfig config = space_config(algo, 19);
    config.duplicate_next_kind = c.kind;
    const SwarmResult result = run_swarm(config);
    EXPECT_FALSE(result.ok) << c.algorithm;
    EXPECT_FALSE(result.violation.empty()) << c.algorithm;
  }
}

}  // namespace
}  // namespace dmx::modelcheck
