// snapshot()/restore() round-trip coverage for every registry algorithm.
//
// The schedule explorer's soundness rests on two properties of the node
// serialization: (a) restore(snapshot()) reproduces the exact protocol
// state (same snapshot, same debug rendering, same token possession), and
// (b) snapshots are canonical — equal states produce byte-identical
// blobs, including "valid only while held" members like token payloads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx {
namespace {

harness::ClusterConfig make_config(const proto::Algorithm& algo, int n) {
  harness::ClusterConfig config;
  config.n = n;
  config.initial_token_holder = 1;
  if (algo.needs_tree) config.tree = topology::Tree::line(n);
  config.seed = 9;
  return config;
}

/// Fresh factory-built nodes for `algo`, for restoring snapshots into.
std::vector<std::unique_ptr<proto::MutexNode>> fresh_nodes(
    const proto::Algorithm& algo, const topology::Tree& tree, int n) {
  proto::ClusterSpec spec;
  spec.n = n;
  spec.initial_token_holder = 1;
  spec.tree = algo.needs_tree ? &tree : nullptr;
  return algo.factory(spec);
}

void roundtrip_all_nodes(harness::Cluster& cluster,
                         const proto::Algorithm& algo,
                         const topology::Tree& tree, const char* when) {
  auto fresh = fresh_nodes(algo, tree, cluster.size());
  for (NodeId v = 1; v <= cluster.size(); ++v) {
    const std::string blob = cluster.node(v).snapshot();
    EXPECT_EQ(blob, cluster.node(v).snapshot())
        << algo.name << " node " << v << " " << when
        << ": snapshot not deterministic";
    proto::MutexNode& target = *fresh[static_cast<std::size_t>(v)];
    target.restore(blob);
    EXPECT_EQ(target.snapshot(), blob)
        << algo.name << " node " << v << " " << when
        << ": restore(snapshot()) not a fixpoint";
    EXPECT_EQ(target.debug_state(), cluster.node(v).debug_state())
        << algo.name << " node " << v << " " << when;
    EXPECT_EQ(target.has_token(), cluster.node(v).has_token())
        << algo.name << " node " << v << " " << when;
    EXPECT_EQ(target.state_bytes(), cluster.node(v).state_bytes())
        << algo.name << " node " << v << " " << when;
  }
}

TEST(Snapshot, RoundTripsMidProtocolAndQuiescentForEveryAlgorithm) {
  const int n = 5;
  const topology::Tree tree = topology::Tree::line(n);
  for (const proto::Algorithm& algo : baselines::all_algorithms()) {
    harness::Cluster cluster(algo, make_config(algo, n));

    // Initial state.
    roundtrip_all_nodes(cluster, algo, tree, "initially");

    // Mid-protocol: several contending requests, partially delivered.
    cluster.request_cs(3);
    cluster.request_cs(5);
    cluster.request_cs(2);
    cluster.simulator().run_until(2);
    roundtrip_all_nodes(cluster, algo, tree, "mid-protocol");

    // Drain, release everyone, drive a small randomized workload, then
    // check the quiescent state too.
    cluster.run_to_quiescence();
    while (cluster.cs_occupant() != kNilNode) {
      cluster.release_cs(cluster.cs_occupant());
      cluster.run_to_quiescence();
    }
    workload::WorkloadConfig wl;
    wl.target_entries = 30;
    wl.mean_think_ticks = 1.0;
    wl.hold_lo = 0;
    wl.hold_hi = 2;
    workload::run_workload(cluster, wl);
    roundtrip_all_nodes(cluster, algo, tree, "after workload");
  }
}

TEST(Snapshot, RestoreRejectsForeignAndTruncatedBlobs) {
  const int n = 4;
  const topology::Tree tree = topology::Tree::line(n);
  const proto::Algorithm algo = baselines::algorithm_by_name("Raymond");
  auto nodes = fresh_nodes(algo, tree, n);
  const std::string blob = nodes[2]->snapshot();
  // Identity check: node 3 must refuse node 2's state.
  EXPECT_THROW(nodes[3]->restore(blob), std::logic_error);
  // Truncation check: schema drift or corruption must not pass silently.
  EXPECT_THROW(nodes[2]->restore(blob.substr(0, blob.size() - 1)),
               std::logic_error);
  EXPECT_THROW(nodes[2]->restore(blob + "x"), std::logic_error);
  // The rejected restores must not have poisoned the good path.
  nodes[2]->restore(blob);
  EXPECT_EQ(nodes[2]->snapshot(), blob);
}

}  // namespace
}  // namespace dmx
