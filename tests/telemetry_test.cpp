// Tests for the runtime telemetry substrate: shard-per-thread counters
// and histograms merged through the global registry, the flight
// recorder's ring semantics, and the exported text/JSON renderings.
//
// The registry is process-global and shared with every other test in
// this binary, so each test uses metric names unique to itself and the
// flight-recorder tests clear the rings first.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/telemetry.hpp"

namespace dmx::telemetry {
namespace {

// --- Minimal JSON well-formedness checker ----------------------------------
// Recursive descent over the full grammar; good enough to prove an export
// would load in chrome://tracing without shipping a JSON library.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!peek(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!peek(',')) return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!peek(',')) return false;
    }
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- Snapshot types (compiled in both modes) -------------------------------

TEST(Telemetry, EmptyHistogramSnapshotQuantileIsZero) {
  HistogramSnapshot hist;
  EXPECT_EQ(hist.count, 0u);
  EXPECT_EQ(hist.quantile(0.0), 0u);
  EXPECT_EQ(hist.quantile(0.5), 0u);
  EXPECT_EQ(hist.quantile(1.0), 0u);
  EXPECT_EQ(hist.max_bound(), 0u);
  EXPECT_EQ(hist.mean(), 0.0);
}

TEST(Telemetry, HistogramSnapshotMergeAddsBucketsCountAndSum) {
  HistogramSnapshot a;
  a.buckets[3] = 5;  // five samples in [4, 7]
  a.count = 5;
  a.sum = 25;
  HistogramSnapshot b;
  b.buckets[3] = 1;
  b.buckets[10] = 2;  // two samples in [512, 1023]
  b.count = 3;
  b.sum = 1100;
  a.merge(b);
  EXPECT_EQ(a.buckets[3], 6u);
  EXPECT_EQ(a.buckets[10], 2u);
  EXPECT_EQ(a.count, 8u);
  EXPECT_EQ(a.sum, 1125u);
  EXPECT_EQ(a.max_bound(), 1023u);
  EXPECT_EQ(a.quantile(0.5), 7u);   // 6 of 8 samples in bucket 3
  EXPECT_EQ(a.quantile(0.99), 1023u);
}

TEST(Telemetry, MetricsSnapshotMergeAndSetCounter) {
  MetricsSnapshot a;
  a.set_counter("x", 2);
  a.set_counter("y", 3);
  MetricsSnapshot b;
  b.set_counter("x", 10);
  b.set_counter("z", 1);
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 12u);
  EXPECT_EQ(a.counter("y"), 3u);
  EXPECT_EQ(a.counter("z"), 1u);
  EXPECT_EQ(a.counter("missing"), 0u);
  a.set_counter("x", 7);  // overwrite, not add
  EXPECT_EQ(a.counter("x"), 7u);
}

#if DMX_TELEMETRY

// --- Registry: interning, recording, shard merge ---------------------------

TEST(Telemetry, RegistryInternsSameNameToSameId) {
  auto& registry = Registry::global();
  const CounterId a = registry.counter("telemetry_test.intern");
  const CounterId b = registry.counter("telemetry_test.intern");
  EXPECT_EQ(a.index, b.index);
  EXPECT_GE(a.index, 0);
  const HistogramId ha = registry.histogram("telemetry_test.intern_h");
  const HistogramId hb = registry.histogram("telemetry_test.intern_h");
  EXPECT_EQ(ha.index, hb.index);
  EXPECT_GE(ha.index, 0);
}

TEST(Telemetry, CounterShardMergeIsExactUnderEightConcurrentWriters) {
  auto& registry = Registry::global();
  const CounterId id = registry.counter("telemetry_test.conc_counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) registry.add(id);
    });
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("telemetry_test.conc_counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Telemetry, HistogramShardMergeIsExactUnderEightConcurrentWriters) {
  auto& registry = Registry::global();
  const HistogramId id = registry.histogram("telemetry_test.conc_hist");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t v = 1; v <= kPerThread; ++v) {
        registry.record(id, v);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snap = registry.snapshot();
  const HistogramSnapshot* hist = snap.histogram("telemetry_test.conc_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
  // sum(1..1000) per thread.
  EXPECT_EQ(hist->sum, kThreads * (kPerThread * (kPerThread + 1) / 2));
  // 1000 has bit_width 10, so the top bucket's bound is 2^10 - 1.
  EXPECT_EQ(hist->max_bound(), 1023u);
  EXPECT_LE(hist->quantile(0.5), 1023u);
}

TEST(Telemetry, SnapshotIsConsistentWhileWritersAreRunning) {
  auto& registry = Registry::global();
  const CounterId id = registry.counter("telemetry_test.live_counter");
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) registry.add(id);
    });
  }
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t now =
        registry.snapshot().counter("telemetry_test.live_counter");
    EXPECT_GE(now, last);  // monotone under concurrent writers
    last = now;
  }
  stop.store(true);
  for (auto& thread : threads) thread.join();
}

TEST(Telemetry, KillSwitchDropsRecordingAndDroppedIdsAreSafe) {
  auto& registry = Registry::global();
  const CounterId id = registry.counter("telemetry_test.kill_switch");
  registry.add(id);
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
  registry.add(id, 100);
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
  EXPECT_EQ(registry.snapshot().counter("telemetry_test.kill_switch"), 1u);
  // A dropped id (capacity overflow / compiled out) records nowhere and
  // must not crash.
  registry.add(CounterId{}, 5);
  registry.record(HistogramId{}, 5);
}

TEST(Telemetry, TextAndJsonExportsRenderRecordedMetrics) {
  auto& registry = Registry::global();
  registry.add(registry.counter("telemetry_test.export_counter"), 42);
  registry.record(registry.histogram("telemetry_test.export_hist"), 9);
  const MetricsSnapshot snap = registry.snapshot();
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("telemetry_test.export_counter"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("telemetry_test.export_hist"), std::string::npos);
  const std::string json = snap.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"telemetry_test.export_counter\": 42"),
            std::string::npos);
}

// --- Flight recorder -------------------------------------------------------

TEST(TelemetryFlight, RingWraparoundKeepsTheMostRecentEvents) {
  FlightRecorder::clear();
  const int total = kFlightRingCapacity + 1000;
  for (int i = 0; i < total; ++i) {
    FlightRecorder::record(FlightEvent::kRequest, /*resource=*/1,
                           /*node=*/2, /*arg=*/i);
  }
  const std::vector<FlightRecord> tail = FlightRecorder::tail(100);
  ASSERT_EQ(tail.size(), 100u);
  // Oldest-first; the last record is the last one written, and the window
  // covers exactly the 100 most recent args.
  EXPECT_EQ(tail.back().arg, total - 1);
  EXPECT_EQ(tail.front().arg, total - 100);
  for (std::size_t i = 1; i < tail.size(); ++i) {
    EXPECT_LE(tail[i - 1].t_ns, tail[i].t_ns);
  }
}

TEST(TelemetryFlight, TailMergesThreadsByTimestamp) {
  FlightRecorder::clear();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        FlightRecorder::record(FlightEvent::kGrant, /*resource=*/t,
                               /*node=*/1, /*arg=*/i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::vector<FlightRecord> all = FlightRecorder::tail(1000);
  EXPECT_EQ(all.size(), 200u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].t_ns, all[i].t_ns);
  }
}

TEST(TelemetryFlight, DumpTailRendersEventFields) {
  FlightRecorder::clear();
  FlightRecorder::record(FlightEvent::kRepairDone, /*resource=*/2,
                         /*node=*/4, /*arg=*/7);
  const std::string dump = FlightRecorder::dump_tail(10);
  EXPECT_NE(dump.find("fault.repair_done"), std::string::npos) << dump;
  EXPECT_NE(dump.find("r=2 node=4 arg=7"), std::string::npos) << dump;
}

TEST(TelemetryFlight, ChromeTraceJsonIsWellFormedWithAllFourCategories) {
  FlightRecorder::clear();
  FlightRecorder::record(FlightEvent::kRequest, 1, 1);     // client
  FlightRecorder::record(FlightEvent::kSteal, 0, 0, 3);    // strand
  FlightRecorder::record(FlightEvent::kFrameSend, 1, 2);   // wire
  FlightRecorder::record(FlightEvent::kPeerDown, 0, 2);    // fault
  const std::string json = FlightRecorder::chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  for (const char* cat :
       {"\"cat\": \"client\"", "\"cat\": \"strand\"", "\"cat\": \"wire\"",
        "\"cat\": \"fault\""}) {
    EXPECT_NE(json.find(cat), std::string::npos) << "missing " << cat;
  }
}

TEST(TelemetryFlight, EventNamesCoverEveryCategoryPrefix) {
  EXPECT_EQ(flight_event_category(FlightEvent::kRequest), "client");
  EXPECT_EQ(flight_event_category(FlightEvent::kTokenForward), "strand");
  EXPECT_EQ(flight_event_category(FlightEvent::kBackpressure), "wire");
  EXPECT_EQ(flight_event_category(FlightEvent::kRepairStart), "fault");
  EXPECT_EQ(flight_event_name(FlightEvent::kGoodbye), "fault.goodbye");
}

TEST(TelemetryFlight, ClearEmptiesEveryRing) {
  FlightRecorder::record(FlightEvent::kRelease, 1, 1);
  FlightRecorder::clear();
  EXPECT_TRUE(FlightRecorder::tail(100).empty());
}

#else  // !DMX_TELEMETRY

TEST(Telemetry, CompiledOutRegistryIsInert) {
  auto& registry = Registry::global();
  registry.add(registry.counter("x"), 5);
  registry.record(registry.histogram("y"), 5);
  EXPECT_TRUE(registry.snapshot().counters.empty());
  FlightRecorder::record(FlightEvent::kRequest, 1, 1);
  EXPECT_TRUE(FlightRecorder::tail(10).empty());
}

#endif  // DMX_TELEMETRY

}  // namespace
}  // namespace dmx::telemetry
