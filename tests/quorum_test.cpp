// Tests for Maekawa quorum constructions.
#include <gtest/gtest.h>

#include <cmath>

#include "quorum/quorum.hpp"

namespace dmx::quorum {
namespace {

TEST(GridQuorums, ValidForManySizes) {
  for (int n : {1, 2, 3, 4, 5, 7, 9, 10, 13, 16, 20, 25, 30, 50}) {
    const QuorumSet q = grid_quorums(n);
    EXPECT_TRUE(quorums_valid(q)) << "n=" << n;
  }
}

TEST(GridQuorums, SizeIsOrderSqrtN) {
  for (int n : {16, 25, 49, 100}) {
    const QuorumSet q = grid_quorums(n);
    const auto bound =
        static_cast<std::size_t>(2 * std::ceil(std::sqrt(n)) + 1);
    for (int v = 1; v <= n; ++v) {
      EXPECT_LE(q[static_cast<std::size_t>(v)].size(), bound);
    }
  }
}

TEST(GridQuorums, PerfectSquareHasExactSize) {
  const QuorumSet q = grid_quorums(25);
  for (int v = 1; v <= 25; ++v) {
    // Full row (5) + column minus own cell (4).
    EXPECT_EQ(q[static_cast<std::size_t>(v)].size(), 9u);
  }
}

TEST(ProjectivePlane, ExistsForProjectiveOrders) {
  for (int n : {7, 13, 21, 31}) {
    const auto q = projective_plane_quorums(n);
    ASSERT_TRUE(q.has_value()) << "n=" << n;
    EXPECT_TRUE(quorums_valid(*q)) << "n=" << n;
  }
}

TEST(ProjectivePlane, QuorumSizeIsK) {
  // n = k(k-1)+1: k = 3 for n=7, k = 4 for n=13, k = 5 for n=21.
  const std::pair<int, std::size_t> cases[] = {{7, 3}, {13, 4}, {21, 5}};
  for (const auto& [n, k] : cases) {
    const auto q = projective_plane_quorums(n);
    ASSERT_TRUE(q.has_value());
    for (int v = 1; v <= n; ++v) {
      EXPECT_EQ((*q)[static_cast<std::size_t>(v)].size(), k) << "n=" << n;
    }
  }
}

TEST(ProjectivePlane, AnyTwoCommitteesShareExactlyOneNode) {
  const auto q = projective_plane_quorums(13);
  ASSERT_TRUE(q.has_value());
  for (NodeId a = 1; a <= 13; ++a) {
    for (NodeId b = a + 1; b <= 13; ++b) {
      std::vector<NodeId> common;
      std::set_intersection((*q)[static_cast<std::size_t>(a)].begin(),
                            (*q)[static_cast<std::size_t>(a)].end(),
                            (*q)[static_cast<std::size_t>(b)].begin(),
                            (*q)[static_cast<std::size_t>(b)].end(),
                            std::back_inserter(common));
      EXPECT_EQ(common.size(), 1u) << "pair " << a << "," << b;
    }
  }
}

TEST(ProjectivePlane, RejectsNonProjectiveOrders) {
  EXPECT_FALSE(projective_plane_quorums(8).has_value());
  EXPECT_FALSE(projective_plane_quorums(10).has_value());
  EXPECT_FALSE(projective_plane_quorums(12).has_value());
}

TEST(MaekawaQuorums, PrefersProjectivePlane) {
  const QuorumSet q = maekawa_quorums(13);
  for (int v = 1; v <= 13; ++v) {
    EXPECT_EQ(q[static_cast<std::size_t>(v)].size(), 4u);
  }
}

TEST(MaekawaQuorums, FallsBackToGrid) {
  const QuorumSet q = maekawa_quorums(10);
  EXPECT_TRUE(quorums_valid(q));
}

TEST(QuorumsValid, DetectsMissingSelf) {
  QuorumSet bad(3);
  bad[1] = {2};
  bad[2] = {1, 2};
  EXPECT_FALSE(quorums_valid(bad));
}

TEST(QuorumsValid, DetectsDisjointPair) {
  QuorumSet bad(3);
  bad[1] = {1};
  bad[2] = {2};
  EXPECT_FALSE(quorums_valid(bad));
}

}  // namespace
}  // namespace dmx::quorum
