// Flight-recorder dump on test failure.
//
// A gtest listener that prints the flight recorder's tail to stderr when
// a test fails, so the repro line a failing fault/transport test already
// emits is followed by the last structured runtime events that led up to
// it. Gated at runtime by DMX_FLIGHT_DUMP (the fault and transport ctest
// presets set it); a no-op when the telemetry layer is compiled out.
//
// Header-only by design: the test binaries are assembled by globbing
// tests/ (with tests/fault and tests/transport carved out into their own
// binaries), so a .cpp here would be pulled into the main binary. Each
// tier that wants the listener instead carries a one-line installer TU.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>

#include "telemetry/flight_recorder.hpp"

namespace dmx::testsupport {

class FlightDumpListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (!info.result()->Failed()) return;
    if (!telemetry::FlightRecorder::dump_on_failure_enabled()) return;
    std::fprintf(stderr, "[  FLIGHT  ] %s.%s failed; %s", info.test_suite_name(),
                 info.name(),
                 telemetry::FlightRecorder::dump_tail(64).c_str());
    std::fflush(stderr);
  }
};

/// Appends the listener to the global gtest registry. Call once per
/// binary from a TU-level initializer:
///   [[maybe_unused]] static const bool installed =
///       dmx::testsupport::install_flight_dump_listener();
inline bool install_flight_dump_listener() {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new FlightDumpListener);
  return true;
}

}  // namespace dmx::testsupport
