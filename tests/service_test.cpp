// Tests for the sharded multi-resource lock service (src/service): the
// consistent-hash directory, the deterministic-sim LockSpace, and the
// Zipf-skewed multi-resource workload driver.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "baselines/registry.hpp"
#include "service/directory.hpp"
#include "service/lock_space.hpp"
#include "service/space_workload.hpp"
#include "topology/tree.hpp"

namespace dmx::service {
namespace {

LockSpaceConfig space_config(int n, std::uint64_t seed = 1) {
  LockSpaceConfig config;
  config.n = n;
  config.algorithm = baselines::algorithm_by_name("Neilsen");
  config.seed = seed;
  return config;
}

// ---- Directory --------------------------------------------------------------

TEST(Directory, PlacementIsDeterministic) {
  const Directory a(8, 16, 42);
  const Directory b(8, 16, 42);
  for (const char* name : {"users/alice", "users/bob", "orders/1", "x"}) {
    EXPECT_EQ(a.place(name), b.place(name)) << name;
  }
}

TEST(Directory, OpenAssignsDenseIdsAndStableHomes) {
  Directory dir(8);
  const ResourceId r0 = dir.open("a");
  const ResourceId r1 = dir.open("b");
  EXPECT_EQ(r0, 0);
  EXPECT_EQ(r1, 1);
  EXPECT_EQ(dir.open("a"), r0);  // re-open returns the original id
  EXPECT_EQ(dir.resource_count(), 2);
  EXPECT_EQ(dir.name(r1), "b");
  EXPECT_EQ(dir.lookup("b"), r1);
  EXPECT_EQ(dir.lookup("missing"), kNilResource);

  // Opening more resources never moves existing ones.
  const NodeId home_a = dir.home_node(r0);
  for (int i = 0; i < 100; ++i) dir.open("extra-" + std::to_string(i));
  EXPECT_EQ(dir.home_node(r0), home_a);
}

TEST(Directory, GrowingNodeSetMovesFewNames) {
  // The consistent-hashing guarantee: going from 8 to 9 nodes relocates
  // roughly 1/9 of the names, not all of them.
  const Directory small(8, 32, 7);
  const Directory large(9, 32, 7);
  int moved = 0;
  const int kNames = 400;
  for (int i = 0; i < kNames; ++i) {
    const std::string name = "lock-" + std::to_string(i);
    if (small.place(name) != large.place(name)) ++moved;
  }
  EXPECT_GT(moved, 0);            // the new node does take ownership
  EXPECT_LT(moved, kNames / 3);   // ... of a minority of names
}

TEST(Directory, SpreadsNamesAcrossNodes) {
  Directory dir(8, 32, 3);
  std::vector<int> per_node(9, 0);
  for (int i = 0; i < 512; ++i) {
    const ResourceId r = dir.open("k" + std::to_string(i));
    ++per_node[static_cast<std::size_t>(dir.home_node(r))];
  }
  // Every node owns some names, and no node owns a majority (512 names
  // over 8 nodes with 32 vnodes each lands well within these bounds).
  for (NodeId v = 1; v <= 8; ++v) {
    EXPECT_GT(per_node[static_cast<std::size_t>(v)], 0) << "node " << v;
    EXPECT_LT(per_node[static_cast<std::size_t>(v)], 256) << "node " << v;
  }
}

// ---- LockSpace --------------------------------------------------------------

TEST(LockSpace, UncontendedAcquireAtHomeIsSynchronousAndFree) {
  LockSpace space(space_config(4));
  const ResourceId r = space.open("alpha");
  const NodeId home = space.home_node(r);
  const Ticket ticket = space.acquire(r, home);
  EXPECT_TRUE(ticket->granted);  // token already resident: no messages
  EXPECT_EQ(space.network().stats().total_sent, 0u);
  space.release(r, home);
  EXPECT_EQ(space.entries(r), 1u);
}

TEST(LockSpace, RemoteAcquireCompletesThroughTheNetwork) {
  LockSpace space(space_config(4));
  const ResourceId r = space.open("alpha");
  const NodeId home = space.home_node(r);
  const NodeId remote = home == 1 ? 2 : 1;
  const Ticket ticket = space.acquire(r, remote);
  EXPECT_FALSE(ticket->granted);
  space.run_to_quiescence();
  EXPECT_TRUE(ticket->granted);
  EXPECT_TRUE(space.is_in_cs(r, remote));
  space.release(r, remote);
  EXPECT_GT(space.network().stats(r).total_sent, 0u);
}

TEST(LockSpace, DistinctResourcesAdmitConcurrentCriticalSections) {
  LockSpace space(space_config(6));
  const ResourceId a = space.open("a");
  const ResourceId b = space.open("b");
  // Park both CSs at their home nodes simultaneously: per-resource
  // exclusivity is independent across resources (and one node may hold
  // several resources at once when the homes coincide).
  const NodeId ha = space.home_node(a);
  const NodeId hb = space.home_node(b);
  space.acquire(a, ha);
  space.acquire(b, hb);
  space.run_to_quiescence();
  EXPECT_EQ(space.occupant(a), ha);
  EXPECT_EQ(space.occupant(b), hb);
  EXPECT_EQ(space.total_entries(), 2u);
  space.release(a, ha);
  space.release(b, hb);
  space.run_to_quiescence();
}

TEST(LockSpace, DoubleAcquireFromOneNodeThrows) {
  LockSpace space(space_config(4));
  const ResourceId r = space.open("solo");
  const NodeId home = space.home_node(r);
  space.acquire(r, home);
  EXPECT_THROW(space.acquire(r, home), std::logic_error);
  space.release(r, home);
}

TEST(LockSpace, PerResourceAlgorithmSelection) {
  LockSpaceConfig config = space_config(5);
  config.tree = topology::Tree::star(5, 1);
  LockSpace space(std::move(config));
  const ResourceId neilsen = space.open("by-default");
  const ResourceId raymond =
      space.open("by-raymond", baselines::algorithm_by_name("Raymond"));
  const ResourceId suzuki =
      space.open("by-suzuki", baselines::algorithm_by_name("Suzuki-Kasami"));
  EXPECT_EQ(space.algorithm(neilsen).name, "Neilsen");
  EXPECT_EQ(space.algorithm(raymond).name, "Raymond");
  EXPECT_EQ(space.algorithm(suzuki).name, "Suzuki-Kasami");
  // Re-opening under a different algorithm is a caller bug...
  EXPECT_THROW(
      space.open("by-raymond", baselines::algorithm_by_name("Neilsen")),
      std::logic_error);
  // ... but name-based acquire of an existing resource reuses it as-is,
  // whatever algorithm it was opened with.
  const Ticket ticket = space.acquire("by-raymond", space.home_node(raymond));
  EXPECT_TRUE(ticket->granted);
  space.release(raymond, space.home_node(raymond));

  // All three protocols serve their resources over the one network.
  for (const ResourceId r : {neilsen, raymond, suzuki}) {
    for (NodeId v = 1; v <= 5; ++v) {
      space.acquire(r, v, [&space](ResourceId res, NodeId entered) {
        space.release(res, entered);
      });
    }
  }
  space.run_to_quiescence();
  EXPECT_EQ(space.total_entries(), 16u);  // 3 resources x 5 nodes + reuse
  space.check_all_invariants();
}

TEST(LockSpace, AcquireByNameOpensOnDemand) {
  LockSpace space(space_config(4));
  const Ticket ticket = space.acquire("lazy/lock", 2);
  space.run_to_quiescence();
  EXPECT_TRUE(ticket->granted);
  const ResourceId r = space.lookup("lazy/lock");
  ASSERT_NE(r, kNilResource);
  space.release(r, 2);
  EXPECT_EQ(space.entries(r), 1u);
}

TEST(LockSpace, ContendedResourceSerializesWhileOthersProceed) {
  LockSpace space(space_config(6));
  const ResourceId hot = space.open("hot");
  const ResourceId cold = space.open("cold");
  std::vector<std::pair<ResourceId, NodeId>> grants;
  const auto log_and_hold = [&](ResourceId r, NodeId v) {
    grants.emplace_back(r, v);
    space.simulator().schedule_after(
        3, [&space, r, v] { space.release(r, v); });
  };
  for (NodeId v = 1; v <= 6; ++v) space.acquire(hot, v, log_and_hold);
  space.acquire(cold, 3, log_and_hold);
  space.run_to_quiescence();
  EXPECT_EQ(grants.size(), 7u);
  EXPECT_EQ(space.entries(hot), 6u);
  EXPECT_EQ(space.entries(cold), 1u);
  space.check_all_invariants();
}

TEST(LockSpace, DuplicatedTokenOnOneResourceIsDetectedPerResource) {
  // A forged second PRIVILEGE for one resource must trip that resource's
  // token-uniqueness check (counted via the network's per-resource
  // in-flight counters) even while 7 other resources run cleanly.
  LockSpace space(space_config(4));
  for (int i = 0; i < 8; ++i) space.open("res-" + std::to_string(i));
  space.network().duplicate_next("PRIVILEGE");
  bool detected = false;
  try {
    SpaceWorkloadConfig wl;
    wl.target_entries = 200;
    wl.clients_per_node = 2;
    wl.seed = 5;
    run_space_workload(space, wl);
  } catch (const std::logic_error& e) {
    detected = true;
    EXPECT_NE(std::string(e.what()).find("token count"), std::string::npos)
        << e.what();
  }
  EXPECT_TRUE(detected);
}

TEST(LockSpace, ResidentTokenCounterMatchesScanOnEveryEvent) {
  // check_invariants() now reads a harness-maintained per-resource
  // resident-token counter instead of scanning all N nodes. Cross-check
  // the counter against an explicit has_token() scan after every single
  // event of a busy mixed-algorithm workload.
  LockSpace space(space_config(5, /*seed=*/11));
  space.open("tok/neilsen-0");
  space.open("tok/raymond", baselines::algorithm_by_name("Raymond"));
  space.open("tok/suzuki", baselines::algorithm_by_name("Suzuki-Kasami"));
  space.open("tok/neilsen-1");
  std::uint64_t checked = 0;
  space.set_post_event_hook([&checked](LockSpace& s, ResourceId r) {
    int scanned = 0;
    for (NodeId v = 1; v <= s.nodes(); ++v) {
      if (s.node(r, v).has_token()) ++scanned;
    }
    ASSERT_EQ(s.resident_tokens(r), scanned) << s.name(r);
    ++checked;
  });
  SpaceWorkloadConfig wl;
  wl.target_entries = 400;
  wl.clients_per_node = 2;
  wl.zipf_s = 0.5;
  wl.seed = 11;
  run_space_workload(space, wl);
  EXPECT_GT(checked, 400u);
  // Quiescent: every resource's token is resident somewhere, exactly once.
  for (ResourceId r = 0; r < space.resource_count(); ++r) {
    EXPECT_EQ(space.resident_tokens(r), 1) << space.name(r);
  }
}

TEST(LockSpace, ResidentTokenCounterStaysZeroForNonTokenAlgorithms) {
  LockSpaceConfig config = space_config(3);
  config.algorithm = baselines::algorithm_by_name("Ricart-Agrawala");
  LockSpace space(std::move(config));
  const ResourceId r = space.open("quorumless");
  const Ticket ticket = space.acquire(r, 2);
  space.run_to_quiescence();
  EXPECT_TRUE(ticket->granted);
  space.release(r, 2);
  space.run_to_quiescence();
  EXPECT_EQ(space.resident_tokens(r), 0);
}

// ---- Local grant chaining (queue_local + lease) -----------------------------

TEST(LockSpace, QueueLocalHandsOffToColocatedWaiterWithoutMessages) {
  LockSpaceConfig config = space_config(4);
  config.queue_local = true;
  LockSpace space(std::move(config));
  const ResourceId r = space.open("hot");
  const NodeId home = space.home_node(r);

  const Ticket holder = space.acquire(r, home);
  EXPECT_TRUE(holder->granted);
  // Second acquire from the same node queues locally instead of throwing.
  const Ticket waiter = space.acquire(r, home);
  EXPECT_FALSE(waiter->granted);
  EXPECT_EQ(space.local_queue_depth(r, home), 1u);

  const std::uint64_t sent_before = space.network().stats().total_sent;
  space.release(r, home);
  // The release handed the CS straight to the waiter: no protocol traffic.
  EXPECT_TRUE(waiter->granted);
  EXPECT_EQ(space.occupant(r), home);
  EXPECT_EQ(space.network().stats().total_sent, sent_before);
  EXPECT_EQ(space.chained_grants(), 1u);
  EXPECT_EQ(space.local_queue_depth(r, home), 0u);
  space.release(r, home);
  EXPECT_EQ(space.entries(r), 2u);
  space.check_all_invariants();
}

TEST(LockSpace, LeaseCapYieldsAndPromotesWaitersInFifoOrder) {
  // max_chain = 1 with renewal off: grant A chains, B must go back
  // through the protocol (a lease yield), C chains again off B's fresh
  // window — and the service order is strictly the local arrival order.
  LockSpaceConfig config = space_config(4);
  config.queue_local = true;
  config.lease.max_chain = 1;
  config.lease.renew_when_no_remote = false;
  LockSpace space(std::move(config));
  const ResourceId r = space.open("hot");
  const NodeId home = space.home_node(r);

  std::vector<int> order;
  space.acquire(r, home);
  space.acquire(r, home, [&order](ResourceId, NodeId) { order.push_back(0); });
  space.acquire(r, home, [&order](ResourceId, NodeId) { order.push_back(1); });
  space.acquire(r, home, [&order](ResourceId, NodeId) { order.push_back(2); });
  EXPECT_EQ(space.local_queue_depth(r, home), 3u);

  for (int i = 0; i < 4; ++i) {
    space.run_to_quiescence();
    space.release(r, home);
  }
  space.run_to_quiescence();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(space.chained_grants(), 2u);  // grants 0 and 2 rode the chain
  EXPECT_EQ(space.lease_yields(), 1u);    // grant 1 went via the protocol
  EXPECT_EQ(space.entries(r), 4u);
  space.check_all_invariants();
}

TEST(LockSpace, LeaseRenewsAtCapWhenHolderSeesNoRemoteDemand) {
  // Neilsen's holder observes remote interest, and there is none: at the
  // cap the lease renews in place, so every hand-off still chains and no
  // pointless protocol round is paid.
  LockSpaceConfig config = space_config(4);
  config.queue_local = true;
  config.lease.max_chain = 1;  // renewal on (default)
  LockSpace space(std::move(config));
  const ResourceId r = space.open("hot");
  const NodeId home = space.home_node(r);

  space.acquire(r, home);
  for (int i = 0; i < 3; ++i) space.acquire(r, home);
  for (int i = 0; i < 4; ++i) space.release(r, home);
  EXPECT_EQ(space.chained_grants(), 3u);
  EXPECT_EQ(space.lease_yields(), 0u);
  EXPECT_EQ(space.entries(r), 4u);
  space.check_all_invariants();
}

TEST(LockSpace, BlindAlgorithmAlwaysYieldsAtTheCap) {
  // Central's client nodes cannot see remote demand, so renewal is never
  // sound and the cap is unconditional — the property the nine-algorithm
  // bounded-waiting witness rests on.
  LockSpaceConfig config = space_config(4);
  config.algorithm = baselines::algorithm_by_name("Central");
  config.queue_local = true;
  config.lease.max_chain = 1;  // renewal on, but must not apply
  LockSpace space(std::move(config));
  const ResourceId r = space.open("hot");
  const NodeId home = space.home_node(r);

  space.acquire(r, home);
  space.run_to_quiescence();
  for (int i = 0; i < 2; ++i) space.acquire(r, home);
  for (int i = 0; i < 3; ++i) {
    space.run_to_quiescence();
    space.release(r, home);
  }
  space.run_to_quiescence();
  EXPECT_EQ(space.chained_grants(), 1u);
  EXPECT_EQ(space.lease_yields(), 1u);
  EXPECT_EQ(space.entries(r), 3u);
  space.check_all_invariants();
}

TEST(LockSpace, RemoteRequesterBreaksTheChainAtTheCap) {
  // With a remote requester visible at the holder, renewal is off the
  // table at the cap: the token must leave the node, the remote side gets
  // its turn, and the remaining local waiter is served afterwards.
  LockSpaceConfig config = space_config(4);
  config.queue_local = true;
  config.lease.max_chain = 1;
  LockSpace space(std::move(config));
  const ResourceId r = space.open("hot");
  const NodeId home = space.home_node(r);
  const NodeId remote = home == 1 ? 2 : 1;

  space.acquire(r, home);
  for (int i = 0; i < 2; ++i) space.acquire(r, home);
  std::vector<NodeId> grants;
  const Ticket remote_ticket =
      space.acquire(r, remote, [&grants](ResourceId, NodeId v) {
        grants.push_back(v);
      });
  space.run_to_quiescence();  // the remote REQUEST reaches the holder

  space.release(r, home);  // chain 1: still within the lease
  EXPECT_EQ(space.chained_grants(), 1u);
  space.run_to_quiescence();
  space.release(r, home);  // at the cap, remote visible: must yield
  space.run_to_quiescence();
  EXPECT_TRUE(remote_ticket->granted);
  EXPECT_EQ(grants, (std::vector<NodeId>{remote}));
  EXPECT_EQ(space.occupant(r), remote);
  space.release(r, remote);
  space.run_to_quiescence();
  // The last local waiter was promoted into the protocol and served after
  // the remote requester.
  EXPECT_EQ(space.occupant(r), home);
  space.release(r, home);
  space.run_to_quiescence();
  EXPECT_EQ(space.entries(r), 4u);
  EXPECT_EQ(space.local_queue_depth(r, home), 0u);
  space.check_all_invariants();
}

TEST(LockSpace, DoubleAcquireStillThrowsWithoutQueueLocal) {
  // The historical contract is untouched by default: queue_local is the
  // explicit opt-in, not a behavior change.
  LockSpace space(space_config(4));
  const ResourceId r = space.open("strict");
  const NodeId home = space.home_node(r);
  space.acquire(r, home);
  EXPECT_THROW(space.acquire(r, home), std::logic_error);
  EXPECT_EQ(space.chained_grants(), 0u);
  space.release(r, home);
}

// ---- Space workload ---------------------------------------------------------

TEST(SpaceWorkload, CompletesTargetAcrossResources) {
  LockSpace space(space_config(6));
  for (int i = 0; i < 12; ++i) space.open("r" + std::to_string(i));
  SpaceWorkloadConfig wl;
  wl.target_entries = 600;
  wl.clients_per_node = 2;
  wl.mean_think_ticks = 2.0;
  wl.hold_lo = 0;
  wl.hold_hi = 2;
  const SpaceWorkloadResult result = run_space_workload(space, wl);
  EXPECT_GE(result.entries, 600u);
  EXPECT_GT(result.makespan, 0);
  std::uint64_t by_resource = 0;
  for (const std::uint64_t e : result.entries_by_resource) by_resource += e;
  EXPECT_EQ(by_resource, result.entries);
}

TEST(SpaceWorkload, ZipfSkewConcentratesOnHotResources) {
  LockSpace space(space_config(8));
  const int m = 32;
  for (int i = 0; i < m; ++i) space.open("r" + std::to_string(i));
  SpaceWorkloadConfig wl;
  wl.target_entries = 3000;
  wl.clients_per_node = 2;
  wl.zipf_s = 1.2;
  wl.mean_think_ticks = 1.0;
  wl.seed = 11;
  const SpaceWorkloadResult result = run_space_workload(space, wl);
  // Rank 0 is the hottest name; the top 4 ranks must dominate the tail
  // (with s=1.2 they carry ~60% of the probability mass).
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  for (int i = 0; i < m; ++i) {
    (i < 4 ? head : tail) += result.entries_by_resource[
        static_cast<std::size_t>(i)];
  }
  EXPECT_GT(head, tail);
  EXPECT_GT(result.entries_by_resource[0], result.entries_by_resource[m - 1]);
}

TEST(SpaceWorkload, DeterministicGivenSeed) {
  const auto run_once = [] {
    LockSpace space(space_config(6, /*seed=*/9));
    for (int i = 0; i < 8; ++i) space.open("r" + std::to_string(i));
    SpaceWorkloadConfig wl;
    wl.target_entries = 400;
    wl.clients_per_node = 2;
    wl.zipf_s = 0.9;
    wl.mean_think_ticks = 2.0;
    wl.hold_lo = 0;
    wl.hold_hi = 3;
    wl.seed = 17;
    const SpaceWorkloadResult result = run_space_workload(space, wl);
    return std::tuple{result.entries, result.messages, result.makespan};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SpaceWorkload, MoreClientsThanResourcesStillCompletes) {
  LockSpace space(space_config(3));
  space.open("only");
  SpaceWorkloadConfig wl;
  wl.target_entries = 60;
  wl.clients_per_node = 4;  // 12 clients all fighting over one resource
  wl.seed = 3;
  const SpaceWorkloadResult result = run_space_workload(space, wl);
  EXPECT_GE(result.entries, 60u);
}

// ---- Acceptance: 64 resources x 8 nodes, Zipf, 10k entries ------------------

TEST(SpaceWorkload, SixtyFourResourcesTenThousandEntriesOnSim) {
  LockSpace space(space_config(8, /*seed=*/2026));
  for (int i = 0; i < 64; ++i) space.open("shard/" + std::to_string(i));
  SpaceWorkloadConfig wl;
  wl.target_entries = 10000;
  wl.clients_per_node = 4;
  wl.zipf_s = 0.99;
  wl.mean_think_ticks = 0.0;  // saturation
  wl.hold_lo = 0;
  wl.hold_hi = 2;
  wl.seed = 2026;
  // Per-resource CS exclusivity and token uniqueness are re-checked by the
  // LockSpace after every one of the ~hundred-thousand events this run
  // executes; a violation throws and fails the test.
  const SpaceWorkloadResult result = run_space_workload(space, wl);
  EXPECT_GE(result.entries, 10000u);
  EXPECT_EQ(space.resource_count(), 64);
  space.check_all_invariants();
  // Every node went home with no waiter stranded.
  for (ResourceId r = 0; r < 64; ++r) {
    for (NodeId v = 1; v <= 8; ++v) {
      EXPECT_FALSE(space.is_waiting(r, v));
    }
  }
}

TEST(SpaceWorkload, ThroughputScalesWithResourceCount) {
  // The saturation regime of bench_service, asserted as a regression
  // floor: 64 independent resources must admit >= 3x the aggregate
  // virtual-time throughput of a single serialized resource.
  const auto throughput = [](int resources) {
    LockSpace space(space_config(8, /*seed=*/5));
    for (int i = 0; i < resources; ++i) {
      space.open("s/" + std::to_string(i));
    }
    SpaceWorkloadConfig wl;
    wl.target_entries = 4000;
    wl.clients_per_node = 4;
    wl.zipf_s = 0.0;
    wl.mean_think_ticks = 0.0;
    wl.seed = 5;
    return run_space_workload(space, wl).entries_per_kilotick;
  };
  const double single = throughput(1);
  const double sharded = throughput(64);
  EXPECT_GE(sharded, 3.0 * single)
      << "single=" << single << " sharded=" << sharded;
}

}  // namespace
}  // namespace dmx::service
