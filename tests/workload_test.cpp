// Tests for the workload generator.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::workload {
namespace {

harness::ClusterConfig star_config(int n) {
  harness::ClusterConfig config;
  config.n = n;
  config.initial_token_holder = 1;
  config.tree = topology::Tree::star(n, 1);
  return config;
}

TEST(Workload, CompletesTargetEntries) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           star_config(6));
  WorkloadConfig wl;
  wl.target_entries = 100;
  wl.mean_think_ticks = 5.0;
  const WorkloadResult result = run_workload(cluster, wl);
  EXPECT_GE(result.entries, 100u);
  EXPECT_GT(result.makespan, 0);
}

TEST(Workload, MessagesPerEntryConsistent) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           star_config(6));
  WorkloadConfig wl;
  wl.target_entries = 50;
  const WorkloadResult result = run_workload(cluster, wl);
  EXPECT_NEAR(result.messages_per_entry,
              static_cast<double>(result.messages) /
                  static_cast<double>(result.entries),
              1e-9);
}

TEST(Workload, ParticipantsSubsetOnlyThoseEnter) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           star_config(6));
  WorkloadConfig wl;
  wl.target_entries = 40;
  wl.participants = {2, 5};
  run_workload(cluster, wl);
  for (const auto& event : cluster.events()) {
    EXPECT_TRUE(event.node == 2 || event.node == 5);
  }
}

TEST(Workload, HoldTimesRespected) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           star_config(4));
  WorkloadConfig wl;
  wl.target_entries = 30;
  wl.hold_lo = 3;
  wl.hold_hi = 9;
  run_workload(cluster, wl);
  Tick enter_at = -1;
  NodeId who = kNilNode;
  for (const auto& event : cluster.events()) {
    if (event.kind == harness::CsEvent::Kind::kEnter) {
      enter_at = event.at;
      who = event.node;
    } else if (event.kind == harness::CsEvent::Kind::kExit) {
      ASSERT_EQ(event.node, who);
      const Tick held = event.at - enter_at;
      EXPECT_GE(held, 3);
      EXPECT_LE(held, 9);
    }
  }
}

TEST(Workload, NonParticipantsStillRelayOnPathTopologies) {
  // Participants at the two ends of a line: every request and every
  // PRIVILEGE hand-off must be relayed through the four silent middle
  // nodes. Completion proves the relays run the protocol; the message
  // bill shows the 5-hop path cost against the star's 1-hop cost for the
  // same two participants.
  const auto run_ends = [](topology::Tree tree) {
    harness::ClusterConfig config;
    config.n = 6;
    config.initial_token_holder = 1;
    config.tree = std::move(tree);
    harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                             std::move(config));
    WorkloadConfig wl;
    wl.target_entries = 40;
    wl.participants = {1, 6};
    // Light load (think >> path delay): the §6.2 regime where at most one
    // request is outstanding, so nearly every entry pays the full
    // requester->token->requester path.
    wl.mean_think_ticks = 40.0;
    const WorkloadResult result = run_workload(cluster, wl);
    for (const auto& event : cluster.events()) {
      EXPECT_TRUE(event.node == 1 || event.node == 6);
    }
    return result;
  };
  const WorkloadResult line = run_ends(topology::Tree::line(6));
  const WorkloadResult star = run_ends(topology::Tree::star(6, 1));
  EXPECT_GE(line.entries, 40u);
  EXPECT_GE(star.entries, 40u);
  // End-to-end on the line is 5 hops per REQUEST and per PRIVILEGE; a
  // topology where the participants were adjacent could never exceed 2
  // messages per entry, so anything above that proves middle-node relays.
  EXPECT_GT(line.messages_per_entry, 2.5);
  EXPECT_GT(line.messages_per_entry, star.messages_per_entry);
}

TEST(Workload, HoldWindowWidensHoldsWithoutBreakingSyncDelay) {
  // hold_lo < hold_hi draws per-entry holds uniformly from the window.
  // With every hold >= N under saturation the implicit queue stays
  // primed, so each hand-off remains exactly one PRIVILEGE hop while the
  // makespan stretches with the (deterministic per seed) longer holds.
  const auto run_with_window = [](Tick lo, Tick hi) {
    harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                             star_config(5));
    WorkloadConfig wl;
    wl.target_entries = 80;
    wl.mean_think_ticks = 0.0;
    wl.hold_lo = lo;
    wl.hold_hi = hi;
    wl.seed = 13;
    return run_workload(cluster, wl);
  };
  const WorkloadResult fixed = run_with_window(5, 5);
  const WorkloadResult window = run_with_window(5, 13);
  ASSERT_GT(window.sync_delay_ticks.count(), 0u);
  EXPECT_EQ(window.sync_delay_ticks.mean(), 1.0);
  EXPECT_EQ(window.sync_delay_ticks.max(), 1.0);
  // Mean hold 9 vs 5: the same entry count takes measurably longer.
  EXPECT_GT(window.makespan, fixed.makespan);
}

TEST(Workload, DeterministicGivenSeed) {
  auto run_once = [] {
    harness::Cluster cluster(baselines::algorithm_by_name("Suzuki-Kasami"),
                             star_config(5));
    WorkloadConfig wl;
    wl.target_entries = 60;
    wl.mean_think_ticks = 4.0;
    wl.seed = 7;
    const WorkloadResult result = run_workload(cluster, wl);
    return std::tuple{result.entries, result.messages, result.makespan};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Workload, SaturationKeepsPipelineBusy) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           star_config(5));
  WorkloadConfig wl;
  wl.target_entries = 80;
  wl.mean_think_ticks = 0.0;
  // Hold each CS for >= N ticks so every in-flight request is absorbed
  // into the implicit queue before the holder exits — the scenario §6.3
  // defines synchronization delay for (successor already blocked).
  wl.hold_lo = 5;
  wl.hold_hi = 5;
  const WorkloadResult result = run_workload(cluster, wl);
  // Every hand-off is then exactly one PRIVILEGE hop.
  ASSERT_GT(result.sync_delay_ticks.count(), 0u);
  EXPECT_EQ(result.sync_delay_ticks.mean(), 1.0);
  EXPECT_EQ(result.sync_delay_ticks.max(), 1.0);
}

}  // namespace
}  // namespace dmx::workload
