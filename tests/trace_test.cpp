// Tests for the tracing module.
#include <gtest/gtest.h>

#include "baselines/registry.hpp"
#include "core/neilsen_node.hpp"
#include "harness/cluster.hpp"
#include "topology/tree.hpp"
#include "trace/trace.hpp"

namespace dmx::trace {
namespace {

harness::ClusterConfig line_config(int n, NodeId holder) {
  harness::ClusterConfig config;
  config.n = n;
  config.initial_token_holder = holder;
  config.tree = topology::Tree::line(n);
  return config;
}

TEST(MessageTrace, RecordsSendsAndDeliveries) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           line_config(4, 1));
  MessageTrace trace;
  cluster.network().set_observer(&trace);

  cluster.hold_and_release(3, 2);
  cluster.run_to_quiescence();

  // 2 REQUEST hops + 1 PRIVILEGE.
  ASSERT_EQ(trace.records().size(), 3u);
  for (const TraceRecord& record : trace.records()) {
    EXPECT_TRUE(record.delivered());
    EXPECT_GT(record.delivered_at, record.sent_at);
  }
  EXPECT_EQ(trace.count_matching("REQUEST"), 2u);
  EXPECT_EQ(trace.count_matching("PRIVILEGE"), 1u);
  // Hop rewriting is visible in the descriptions.
  EXPECT_EQ(trace.records()[0].description, "REQUEST(3,3)");
  EXPECT_EQ(trace.records()[1].description, "REQUEST(2,3)");
}

TEST(MessageTrace, DumpContainsRoutes) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           line_config(3, 1));
  MessageTrace trace;
  cluster.network().set_observer(&trace);
  cluster.hold_and_release(2, 0);
  cluster.run_to_quiescence();
  const std::string dump = trace.dump();
  EXPECT_NE(dump.find("2 -> 1"), std::string::npos);
  EXPECT_NE(dump.find("REQUEST(2,2)"), std::string::npos);
}

TEST(MessageTrace, RecordsResourceLaneAndDumpsIt) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           line_config(3, 1));
  MessageTrace trace;
  cluster.network().set_observer(&trace);
  cluster.hold_and_release(2, 0);
  cluster.run_to_quiescence();
  ASSERT_FALSE(trace.records().empty());
  // Pre-service cores send on the default lane (resource 0); the field
  // still travels through every envelope and lands in the dump.
  for (const TraceRecord& record : trace.records()) {
    EXPECT_EQ(record.resource, 0);
  }
  const std::string dump = trace.dump();
  EXPECT_NE(dump.find("r0  2 -> 1"), std::string::npos);
}

TEST(MessageTrace, ClearEmptiesRecords) {
  MessageTrace trace;
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           line_config(3, 1));
  cluster.network().set_observer(&trace);
  cluster.hold_and_release(3, 0);
  cluster.run_to_quiescence();
  EXPECT_FALSE(trace.records().empty());
  trace.clear();
  EXPECT_TRUE(trace.records().empty());
}

TEST(MessageTrace, LostMessageStaysUndelivered) {
  harness::Cluster cluster(baselines::algorithm_by_name("Neilsen"),
                           line_config(3, 1));
  MessageTrace trace;
  cluster.network().set_observer(&trace);
  cluster.network().drop_next("REQUEST");
  cluster.request_cs(3);
  cluster.run_to_quiescence();
  // The drop happens before scheduling, so the observer never sees it; a
  // REQUEST that was sent but never delivered would show delivered_at=-1.
  for (const TraceRecord& record : trace.records()) {
    EXPECT_TRUE(record.delivered());
  }
}

TEST(RenderDag, ShowsEdgesSinksAndFollow) {
  const core::NeilsenNode n1 = core::NeilsenNode::restore(
      false, 2, kNilNode, core::NeilsenNode::CsStatus::kIdle);
  const core::NeilsenNode n2 = core::NeilsenNode::restore(
      true, kNilNode, kNilNode, core::NeilsenNode::CsStatus::kIdle);
  const core::NeilsenNode n3 = core::NeilsenNode::restore(
      false, kNilNode, 1, core::NeilsenNode::CsStatus::kWaiting);
  const std::string rendered = render_dag({nullptr, &n1, &n2, &n3});
  EXPECT_NE(rendered.find("1->2"), std::string::npos);
  EXPECT_NE(rendered.find("2:sink[H]"), std::string::npos);
  EXPECT_NE(rendered.find("3:sink[RF](follow 1)"), std::string::npos);
}

}  // namespace
}  // namespace dmx::trace
