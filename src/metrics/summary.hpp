// Streaming summary statistics (Welford) and fixed-bucket histograms.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dmx::metrics {

/// Numerically stable streaming mean/variance/min/max.
class Summary {
 public:
  void add(double x);

  /// Folds `other` into this summary as if every sample had been add()ed
  /// here — the shard-combine step for per-thread summaries. Uses Chan's
  /// parallel Welford update, so variance stays numerically stable.
  void merge(const Summary& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const;
  double stddev() const;

  /// "mean=1.23 min=1 max=2 n=42"
  std::string to_string() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Jain's fairness index over per-participant allocation counts:
/// (sum x)^2 / (n * sum x^2). 1.0 = perfectly even, 1/n = one participant
/// got everything. Returns 1.0 for empty input.
double jain_fairness_index(const std::vector<double>& allocations);

/// Histogram with equal-width buckets over [lo, hi); out-of-range samples
/// clamp into the edge buckets. Supports quantile queries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::uint64_t count() const { return total_; }

  /// Quantile q in [0,1]; returns the upper edge of the bucket containing
  /// the q-th sample. Exact for integer-valued samples with unit buckets.
  /// Pinned behavior on an empty histogram: returns `lo` for every q —
  /// never an uninitialised or out-of-range value.
  double quantile(double q) const;

  const std::vector<std::uint64_t>& buckets() const { return counts_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dmx::metrics
