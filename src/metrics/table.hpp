// Fixed-width text tables; every bench uses this to print paper-claim vs
// measured rows in a uniform format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dmx::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders with column alignment, a header separator and a trailing
  /// newline.
  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmx::metrics
