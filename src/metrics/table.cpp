#include "metrics/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace dmx::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DMX_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DMX_CHECK_MSG(cells.size() == headers_.size(),
                "row has " << cells.size() << " cells, expected "
                           << headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace dmx::metrics
