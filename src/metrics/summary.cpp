#include "metrics/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace dmx::metrics {

void Summary::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(count_);
  const double n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n_a + n_b;
  mean_ += delta * n_b / n;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::to_string() const {
  std::ostringstream oss;
  oss << "mean=" << mean() << " min=" << min() << " max=" << max()
      << " n=" << count();
  return oss.str();
}

double jain_fairness_index(const std::vector<double>& allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) /
         (static_cast<double>(allocations.size()) * sum_sq);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  DMX_CHECK(hi > lo);
  DMX_CHECK(buckets >= 1);
}

void Histogram::add(double x) {
  auto idx = static_cast<std::int64_t>((x - lo_) / width_);
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += 1;
  ++total_;
}

double Histogram::quantile(double q) const {
  DMX_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      return lo_ + width_ * static_cast<double>(i + 1);
    }
  }
  return lo_ + width_ * static_cast<double>(counts_.size());
}

}  // namespace dmx::metrics
