// Strand: a serialized FIFO task queue scheduled on a shared Executor.
//
// A strand is the concurrency unit of one state machine: tasks posted to
// it run one at a time, in post order, on whichever pool worker picks the
// strand up — never two tasks of the same strand concurrently, so the
// state the tasks touch needs no locking of its own. Independent strands
// run in parallel across the pool; this is how the threaded lock service
// keeps the paper's one-event-at-a-time semantics per (resource, node)
// state machine while independent resources use every core.
//
// Implementation: an internal ring of InlineCallback tasks guarded by a
// short mutex, plus an `active` flag that guarantees at most one pool
// activation of the strand exists at any time (posting to an idle strand
// schedules it; posting to an active one just enqueues). An activation
// drains up to kBatch tasks, then yields the worker and requeues itself
// through the executor's fair global queue so one hot strand cannot
// monopolize a worker or starve its deque neighbours.
//
// The serialization guarantee doubles as the memory fence: task i's
// effects are published to task i+1 (possibly on another worker) through
// the queue mutex, so strand-confined state is race-free by construction.
//
// Lifetime: destroy a strand only after the executor is shut down or the
// strand is known idle with no queued tasks; queued tasks are destroyed
// unrun (their captures release normally).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>

#include "common/check.hpp"
#include "exec/executor.hpp"
#include "sim/inline_function.hpp"
#include "telemetry/telemetry.hpp"

namespace dmx::exec {

namespace detail {
/// Shared across every strand in the process: activations (pool pickups)
/// and the distribution of tasks drained per activation — the batching
/// evidence behind the kBatch=32 choice.
inline telemetry::CounterId strand_activations_counter() {
  static const telemetry::CounterId id =
      telemetry::Registry::global().counter("exec.strand_activations");
  return id;
}
inline telemetry::HistogramId strand_batch_hist() {
  static const telemetry::HistogramId id =
      telemetry::Registry::global().histogram("exec.strand_batch");
  return id;
}
}  // namespace detail

class Strand {
 public:
  /// Move-only type-erased task; keep captures within the 48-byte inline
  /// budget (six pointers) to stay off the heap.
  using Task = sim::InlineCallback;

  /// Tasks drained per activation before the strand yields its worker and
  /// requeues fairly.
  static constexpr int kBatch = 32;

  explicit Strand(Executor& executor) : executor_(executor) {
    pool_task_.run = &Strand::run_activation;
    pool_task_.context = this;
  }

  Strand(const Strand&) = delete;
  Strand& operator=(const Strand&) = delete;

  ~Strand() = default;

  /// Enqueues `task`; schedules the strand on the pool iff it was idle.
  void post(Task task) {
    bool activate = false;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      queue_.push(std::move(task));
      if (!active_) {
        active_ = true;
        activate = true;
      }
    }
    if (activate) executor_.submit(&pool_task_);
  }

  /// Tasks executed over the strand's lifetime (test introspection; only
  /// meaningful once the strand is quiescent).
  std::uint64_t executed() const { return executed_; }

 private:
  /// Grow-by-doubling ring of tasks; steady state recycles slots and
  /// never allocates.
  class TaskRing {
   public:
    bool empty() const { return size_ == 0; }

    void push(Task task) {
      if (size_ == capacity_) grow();
      slots_[(head_ + size_) & (capacity_ - 1)] = std::move(task);
      ++size_;
    }

    Task pop() {
      DMX_CHECK(size_ > 0);
      Task task = std::move(slots_[head_]);
      slots_[head_] = nullptr;
      head_ = (head_ + 1) & (capacity_ - 1);
      --size_;
      return task;
    }

   private:
    void grow() {
      const std::size_t fresh_capacity = capacity_ == 0 ? 8 : capacity_ * 2;
      auto fresh = std::make_unique<Task[]>(fresh_capacity);
      for (std::size_t i = 0; i < size_; ++i) {
        fresh[i] = std::move(slots_[(head_ + i) & (capacity_ - 1)]);
      }
      slots_ = std::move(fresh);
      capacity_ = fresh_capacity;
      head_ = 0;
    }

    std::unique_ptr<Task[]> slots_;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
  };

  static void run_activation(void* context) {
    static_cast<Strand*>(context)->run();
  }

  void run() {
    int drained = 0;
    bool requeue = false;
    for (;;) {
      Task task;
      {
        std::lock_guard<std::mutex> guard(mutex_);
        if (queue_.empty()) {
          active_ = false;
          break;
        }
        if (drained >= kBatch) {  // stay active, yield the worker
          requeue = true;
          break;
        }
        task = queue_.pop();
      }
      task();
      ++executed_;
      ++drained;
    }
    telemetry::count(detail::strand_activations_counter());
    // Activation counter exact; batch histogram is shape-only, sampled.
    if (telemetry::sample_1_in_8()) {
      telemetry::observe(detail::strand_batch_hist(),
                         static_cast<std::uint64_t>(drained));
    }
    if (requeue) executor_.submit_fair(&pool_task_);
  }

  Executor& executor_;
  PoolTask pool_task_;
  std::mutex mutex_;
  TaskRing queue_;
  bool active_ = false;
  std::uint64_t executed_ = 0;  // strand-confined
};

}  // namespace dmx::exec
