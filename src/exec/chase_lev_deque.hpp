// Chase–Lev work-stealing deque (dynamic circular array).
//
// One owner thread pushes and pops at the bottom (LIFO); any number of
// thief threads steal from the top (FIFO). The only cross-thread
// contention is the single compare-exchange on `top` when the deque is
// down to its last element or a steal races another thief.
//
// Memory-order notes: this is the C11 formulation of Lê, Pop, Cohen &
// Zappa Nardelli, "Correct and Efficient Work-Stealing for Weakly Ordered
// Memory Models" (PPoPP 2013), with one deliberate strengthening — the
// owner's store-to-bottom / load-from-top conflict in pop() uses seq_cst
// *operations* instead of relaxed accesses around a seq_cst fence.
// ThreadSanitizer does not model standalone fences, so the fence-based
// variant reports false races; the operation-based variant is tsan-clean
// and costs one xchg on x86 (which the fence needed anyway).
//
// Elements are raw pointers; the deque never owns them. Buffer growth
// retires old arrays to a list freed on destruction, because a concurrent
// thief may still be reading a retired array's slots (its CAS on `top`
// decides whether that read is used).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"

namespace dmx::exec {

template <typename T>
class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64)
      : buffer_(new Buffer(checked_capacity(initial_capacity))) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() { delete buffer_.load(std::memory_order_relaxed); }

  /// Owner only: pushes at the bottom, growing the array if full.
  void push(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pops the most recently pushed element, or nullptr.
  T* pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    T* item = nullptr;
    if (t <= b) {
      item = buf->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);  // was empty
    }
    return item;
  }

  /// Any thread: steals the oldest element, or returns nullptr when the
  /// deque looks empty or the steal lost a race (caller just moves on).
  T* steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    // Read the element before claiming it: after a successful CAS the
    // owner may immediately reuse the slot.
    T* item = buf->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;
    }
    return item;
  }

  /// Approximate; safe from any thread.
  bool empty_hint() const {
    return bottom_.load(std::memory_order_relaxed) <=
           top_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t checked_capacity(std::size_t capacity) {
    DMX_CHECK(capacity >= 1 && (capacity & (capacity - 1)) == 0);
    return capacity;
  }

  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<T*>[]>(cap)) {}
    std::atomic<T*>& slot(std::int64_t index) {
      return slots[static_cast<std::size_t>(index) & mask];
    }
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      fresh->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    Buffer* raw = fresh.get();
    buffer_.store(raw, std::memory_order_release);
    // A thief that loaded `old` before the swap may still read its slots;
    // keep it alive until the deque dies.
    retired_.emplace_back(old);
    fresh.release();
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only
};

}  // namespace dmx::exec
