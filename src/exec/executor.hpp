// Shared work-stealing worker pool — the execution substrate under the
// threaded lock service.
//
// Each worker owns a Chase–Lev deque: tasks submitted from a worker go to
// its own deque (LIFO for cache warmth, stealable FIFO from the top);
// tasks submitted from application threads go through a global FIFO
// injector. An idle worker probes its deque, then the injector, then
// steals from the other workers in rotation; after `spin` empty probe
// rounds it parks on a condition variable and is woken by the next
// submission. Every 61st dispatch polls the injector first so external
// work cannot be starved by a long local chain (the usual runqueue
// fairness trick).
//
// The pool schedules intrusive PoolTask records and never owns them: a
// submitted task must stay alive until it runs or the executor shuts
// down. shutdown() stops workers after their current task and drops
// still-queued tasks unrun — submitters keep ownership, so nothing leaks.
// Higher layers build serialized queues on top (see exec::Strand); the
// pool itself makes no ordering promise beyond injector FIFO.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/chase_lev_deque.hpp"

namespace dmx::exec {

/// Point-in-time view of the pool's internal counters (relaxed sums over
/// per-worker cells — consistent enough for dashboards and benches, not
/// a linearizable snapshot). The stable introspection surface: tests,
/// telemetry_snapshot(), and benches all read this rather than poking at
/// worker internals.
struct ExecutorStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t steals = 0;
  std::uint64_t parks = 0;
  /// Fairness-tick polls of the global injector (every 61st dispatch),
  /// whether or not they found work.
  std::uint64_t injector_polls = 0;
};

/// A schedulable unit. Embed one in the owning object and point `run` at
/// a trampoline; `context` is handed back verbatim. No allocation, no
/// virtual dispatch.
struct PoolTask {
  void (*run)(void* context) = nullptr;
  void* context = nullptr;
};

struct ExecutorConfig {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  int workers = 0;
  /// Empty probe rounds an idle worker makes over every queue before it
  /// parks. Small values park eagerly (good when oversubscribed); larger
  /// values keep workers hot under bursty hand-offs.
  int spin = 64;
};

class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int workers() const { return static_cast<int>(workers_.size()); }

  /// Schedules `task`: onto the calling worker's own deque when invoked
  /// from inside this executor, otherwise onto the global injector.
  void submit(PoolTask* task);

  /// Schedules `task` through the global FIFO injector regardless of the
  /// calling thread. Self-resubmitting tasks (strand batches) use this so
  /// a busy strand cannot starve its worker's other local tasks behind a
  /// LIFO pop loop.
  void submit_fair(PoolTask* task);

  /// Stops workers after their current task; queued tasks are dropped
  /// unrun and remain owned by their submitters. Idempotent. Called by
  /// the destructor.
  void shutdown();

  /// True when called from one of this executor's worker threads.
  bool on_worker_thread() const;

  // --- Introspection (tests and benches; relaxed counters) -----------------
  /// All internal counters in one read.
  ExecutorStats stats() const;
  std::uint64_t tasks_executed() const { return stats().tasks_executed; }
  std::uint64_t steals() const { return stats().steals; }
  std::uint64_t parks() const { return stats().parks; }

 private:
  struct Worker {
    ChaseLevDeque<PoolTask> deque;
    std::thread thread;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> injector_polls{0};
  };

  void worker_loop(int index);
  PoolTask* find_work(int index, std::uint64_t& dispatches);
  PoolTask* pop_injector();
  void wake_one();

  std::vector<std::unique_ptr<Worker>> workers_;
  int spin_;

  std::mutex injector_mutex_;
  std::deque<PoolTask*> injector_;

  // Parking: submissions bump the epoch; a worker re-checks every queue,
  // snapshots the epoch, checks once more, and only then waits for the
  // epoch to move (so a submission between its last probe and the wait
  // cannot be lost).
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<std::uint64_t> submit_epoch_{0};
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace dmx::exec
