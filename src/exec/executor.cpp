#include "exec/executor.hpp"

#include <chrono>

#include "common/check.hpp"
#include "telemetry/telemetry.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace dmx::exec {

namespace {

/// Identifies the worker a thread belongs to (nullptr on app threads), so
/// submit() can take the local-deque fast path only for its own executor.
struct WorkerIdentity {
  const Executor* executor = nullptr;
  int index = -1;
};
thread_local WorkerIdentity tl_worker;

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Depth of the global injector observed at each external submission —
/// the queueing-delay evidence the executor scale-out roadmap item needs.
telemetry::HistogramId injector_depth_hist() {
  static const telemetry::HistogramId id =
      telemetry::Registry::global().histogram("exec.injector_depth");
  return id;
}

}  // namespace

Executor::Executor(ExecutorConfig config) : spin_(config.spin) {
  int n = config.workers;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  DMX_CHECK(spin_ >= 0);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (int i = 0; i < n; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() { shutdown(); }

void Executor::shutdown() {
  if (stopping_.exchange(true)) {
    // Second call: threads are joined (or being joined) already.
    for (auto& worker : workers_) {
      if (worker->thread.joinable()) worker->thread.join();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> guard(park_mutex_);
    submit_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool Executor::on_worker_thread() const { return tl_worker.executor == this; }

void Executor::submit(PoolTask* task) {
  DMX_CHECK(task != nullptr && task->run != nullptr);
  if (tl_worker.executor == this) {
    workers_[static_cast<std::size_t>(tl_worker.index)]->deque.push(task);
  } else {
    std::size_t depth;
    {
      std::lock_guard<std::mutex> guard(injector_mutex_);
      injector_.push_back(task);
      depth = injector_.size();
    }
    if (telemetry::sample_1_in_8()) {
      telemetry::observe(injector_depth_hist(), depth);
    }
  }
  wake_one();
}

void Executor::submit_fair(PoolTask* task) {
  DMX_CHECK(task != nullptr && task->run != nullptr);
  std::size_t depth;
  {
    std::lock_guard<std::mutex> guard(injector_mutex_);
    injector_.push_back(task);
    depth = injector_.size();
  }
  if (telemetry::sample_1_in_8()) {
    telemetry::observe(injector_depth_hist(), depth);
  }
  wake_one();
}

void Executor::wake_one() {
  submit_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    // Lock/unlock pairs with the sleeper's predicate check under the same
    // mutex, so the notify cannot slip between its check and its wait.
    { std::lock_guard<std::mutex> guard(park_mutex_); }
    park_cv_.notify_one();
  }
}

PoolTask* Executor::pop_injector() {
  std::lock_guard<std::mutex> guard(injector_mutex_);
  if (injector_.empty()) return nullptr;
  PoolTask* task = injector_.front();
  injector_.pop_front();
  return task;
}

PoolTask* Executor::find_work(int index, std::uint64_t& dispatches) {
  Worker& self = *workers_[static_cast<std::size_t>(index)];
  // Fairness tick: poll the global queue first now and then, or external
  // submissions starve behind a worker that keeps feeding its own deque.
  if (++dispatches % 61 == 0) {
    self.injector_polls.fetch_add(1, std::memory_order_relaxed);
    if (PoolTask* task = pop_injector()) return task;
  }
  if (PoolTask* task = self.deque.pop()) return task;
  if (PoolTask* task = pop_injector()) return task;
  const int n = static_cast<int>(workers_.size());
  for (int hop = 1; hop < n; ++hop) {
    Worker& victim = *workers_[static_cast<std::size_t>((index + hop) % n)];
    if (PoolTask* task = victim.deque.steal()) {
      // Steals and parks are counters only, not flight events: on a
      // saturated pool they fire per scheduling decision, and a flight
      // record per decision is the difference between ~1% and ~30%
      // telemetry overhead at saturation.
      self.steals.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return nullptr;
}

void Executor::worker_loop(int index) {
  tl_worker.executor = this;
  tl_worker.index = index;
  Worker& self = *workers_[static_cast<std::size_t>(index)];
  std::uint64_t dispatches = 0;
  int idle_rounds = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (PoolTask* task = find_work(index, dispatches)) {
      idle_rounds = 0;
      task->run(task->context);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (idle_rounds < spin_) {
      // Bounded spin: cheap pauses first, then yield the core — on an
      // oversubscribed machine the producer likely needs our timeslice.
      if (idle_rounds < spin_ / 4) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
      ++idle_rounds;
      continue;
    }
    idle_rounds = 0;
    // Park. Snapshot the epoch, probe once more, then sleep until a
    // submission moves the epoch (checked under park_mutex_, which every
    // wake takes, so the hand-off cannot be lost).
    const std::uint64_t epoch =
        submit_epoch_.load(std::memory_order_seq_cst);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (PoolTask* task = find_work(index, dispatches)) {
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      task->run(task->context);
      self.executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    {
      std::unique_lock<std::mutex> guard(park_mutex_);
      self.parks.fetch_add(1, std::memory_order_relaxed);
      // Bounded wait: the epoch/sleepers hand-off covers every wake-up in
      // practice, but a deque push is a release store outside that seq_cst
      // protocol, so a missed edge is made harmless by re-probing at 1ms.
      park_cv_.wait_for(guard, std::chrono::milliseconds(1), [this, epoch] {
        return stopping_.load(std::memory_order_relaxed) ||
               submit_epoch_.load(std::memory_order_relaxed) != epoch;
      });
    }
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  }
  tl_worker = WorkerIdentity{};
}

ExecutorStats Executor::stats() const {
  ExecutorStats stats;
  for (const auto& worker : workers_) {
    stats.tasks_executed += worker->executed.load(std::memory_order_relaxed);
    stats.steals += worker->steals.load(std::memory_order_relaxed);
    stats.parks += worker->parks.load(std::memory_order_relaxed);
    stats.injector_polls +=
        worker->injector_polls.load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace dmx::exec
