#include "runtime/lock_cluster.hpp"

#include <atomic>
#include <chrono>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dmx::runtime {

/// One node: a mailbox, an event-loop thread, and the protocol state
/// machine. The loop is the paper's "local mutual exclusion": every
/// handler of this node runs on this thread, one at a time.
class LockCluster::NodeActor final : public proto::Context {
 public:
  NodeActor(LockCluster& cluster, NodeId self, int n,
            std::unique_ptr<proto::MutexNode> node, unsigned jitter_us,
            std::uint64_t seed)
      : cluster_(cluster), self_(self), n_(n), node_(std::move(node)),
        jitter_us_(jitter_us), rng_(seed) {}

  ~NodeActor() { stop_and_join(); }

  void start() {
    thread_ = std::thread([this] { run_loop(); });
  }

  void stop_and_join() {
    {
      std::lock_guard<std::mutex> guard(mailbox_mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    mailbox_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  // --- proto::Context (called only from this actor's loop thread) -------
  NodeId self() const override { return self_; }
  int cluster_size() const override { return n_; }
  void send(NodeId to, net::MessagePtr message) override {
    cluster_.route(self_, to, std::move(message));
  }
  void grant() override {
    {
      std::lock_guard<std::mutex> guard(grant_mutex_);
      granted_ = true;
    }
    grant_cv_.notify_all();
  }

  // --- Mailbox items -----------------------------------------------------
  void post_message(NodeId from, net::MessagePtr message) {
    post(Item{ItemKind::kDeliver, from, std::move(message)});
  }
  /// Posts a protocol request unless one is already outstanding (a lock()
  /// retry after a timed-out try_lock_for must not double-request: the
  /// paper allows one outstanding request per node and the protocol
  /// asserts it).
  void post_request() {
    {
      std::lock_guard<std::mutex> guard(grant_mutex_);
      if (request_outstanding_) return;
      request_outstanding_ = true;
    }
    post(Item{ItemKind::kRequest, kNilNode, nullptr});
  }
  void post_release() { post(Item{ItemKind::kRelease, kNilNode, nullptr}); }

  /// Blocks the calling (application) thread until the protocol grants.
  void await_grant() {
    std::unique_lock<std::mutex> guard(grant_mutex_);
    grant_cv_.wait(guard, [this] { return granted_; });
    granted_ = false;
    request_outstanding_ = false;
  }

  bool await_grant_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> guard(grant_mutex_);
    if (!grant_cv_.wait_for(guard, timeout, [this] { return granted_; })) {
      return false;  // request stays outstanding
    }
    granted_ = false;
    request_outstanding_ = false;
    return true;
  }

  std::uint64_t entries() const { return entries_.load(); }
  void count_entry() { entries_.fetch_add(1); }

 private:
  enum class ItemKind { kDeliver, kRequest, kRelease };
  struct Item {
    ItemKind kind;
    NodeId from;
    net::MessagePtr message;
  };

  void post(Item item) {
    {
      std::lock_guard<std::mutex> guard(mailbox_mutex_);
      mailbox_.push_back(std::move(item));
    }
    mailbox_cv_.notify_all();
  }

  void run_loop() {
    for (;;) {
      Item item{ItemKind::kDeliver, kNilNode, nullptr};
      {
        std::unique_lock<std::mutex> guard(mailbox_mutex_);
        mailbox_cv_.wait(guard,
                         [this] { return stopping_ || !mailbox_.empty(); });
        if (stopping_ && mailbox_.empty()) return;
        item = std::move(mailbox_.front());
        mailbox_.pop_front();
      }
      try {
        switch (item.kind) {
          case ItemKind::kDeliver:
            maybe_jitter();
            node_->on_message(*this, item.from, *item.message);
            break;
          case ItemKind::kRequest:
            node_->request_cs(*this);
            break;
          case ItemKind::kRelease:
            node_->release_cs(*this);
            break;
        }
      } catch (const std::exception& e) {
        cluster_.record_error(e.what());
        return;
      }
    }
  }

  void maybe_jitter() {
    if (jitter_us_ == 0) return;
    const auto us = static_cast<unsigned>(
        rng_.uniform_int(0, static_cast<std::int64_t>(jitter_us_)));
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }

  LockCluster& cluster_;
  NodeId self_;
  int n_;
  std::unique_ptr<proto::MutexNode> node_;
  unsigned jitter_us_;
  Rng rng_;  // only touched from the loop thread

  std::thread thread_;
  std::mutex mailbox_mutex_;
  std::condition_variable mailbox_cv_;
  std::deque<Item> mailbox_;
  bool stopping_ = false;

  std::mutex grant_mutex_;
  std::condition_variable grant_cv_;
  bool granted_ = false;
  bool request_outstanding_ = false;

  std::atomic<std::uint64_t> entries_{0};
};

LockCluster::LockCluster(const proto::Algorithm& algorithm,
                         LockClusterConfig config)
    : algorithm_(algorithm), config_(std::move(config)) {
  DMX_CHECK(config_.n >= 1);
  if (algorithm_.needs_tree) {
    DMX_CHECK_MSG(config_.tree.has_value(),
                  algorithm_.name << " requires a logical tree");
  }
  proto::ClusterSpec spec;
  spec.n = config_.n;
  spec.initial_token_holder = config_.initial_token_holder;
  spec.tree = config_.tree.has_value() ? &*config_.tree : nullptr;
  spec.seed = config_.seed;
  auto nodes = algorithm_.factory(spec);
  DMX_CHECK(nodes.size() == static_cast<std::size_t>(config_.n) + 1);

  actors_.resize(static_cast<std::size_t>(config_.n) + 1);
  Rng seeder(config_.seed);
  for (NodeId v = 1; v <= config_.n; ++v) {
    actors_[static_cast<std::size_t>(v)] = std::make_unique<NodeActor>(
        *this, v, config_.n, std::move(nodes[static_cast<std::size_t>(v)]),
        config_.jitter_us, seeder.next());
  }
  for (NodeId v = 1; v <= config_.n; ++v) {
    actors_[static_cast<std::size_t>(v)]->start();
  }
}

LockCluster::~LockCluster() {
  for (auto& actor : actors_) {
    if (actor) actor->stop_and_join();
  }
}

DistributedMutex LockCluster::mutex(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  return DistributedMutex(*this, v);
}

std::uint64_t LockCluster::total_entries() const {
  std::uint64_t sum = 0;
  for (NodeId v = 1; v <= config_.n; ++v) {
    sum += actors_[static_cast<std::size_t>(v)]->entries();
  }
  return sum;
}

std::optional<std::string> LockCluster::first_error() const {
  std::lock_guard<std::mutex> guard(error_mutex_);
  return first_error_;
}

void LockCluster::lock(NodeId v) {
  auto& actor = *actors_[static_cast<std::size_t>(v)];
  actor.post_request();
  actor.await_grant();
  actor.count_entry();
}

bool LockCluster::lock_with_timeout(NodeId v,
                                    std::chrono::milliseconds timeout) {
  auto& actor = *actors_[static_cast<std::size_t>(v)];
  actor.post_request();
  if (!actor.await_grant_for(timeout)) return false;
  actor.count_entry();
  return true;
}

void LockCluster::unlock(NodeId v) {
  actors_[static_cast<std::size_t>(v)]->post_release();
}

void LockCluster::route(NodeId from, NodeId to, net::MessagePtr message) {
  DMX_CHECK(to >= 1 && to <= config_.n && to != from);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  actors_[static_cast<std::size_t>(to)]->post_message(from,
                                                      std::move(message));
}

void LockCluster::record_error(const std::string& what) {
  std::lock_guard<std::mutex> guard(error_mutex_);
  if (!first_error_.has_value()) first_error_ = what;
}

void DistributedMutex::lock() { cluster_->lock(node_); }
void DistributedMutex::unlock() { cluster_->unlock(node_); }
bool DistributedMutex::try_lock_for(std::chrono::milliseconds timeout) {
  return cluster_->lock_with_timeout(node_, timeout);
}

}  // namespace dmx::runtime
