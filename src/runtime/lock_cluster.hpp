// Multi-threaded in-process runtime.
//
// This is the library a downstream user adopts: a LockCluster spawns one
// mailbox-driven event-loop thread per node (giving each protocol node the
// paper's "local mutual exclusion" execution model) and exposes a blocking
// DistributedMutex per node. Any algorithm from the registry runs here
// unchanged — the protocol code is identical to what the deterministic
// simulator executes; only the substrate differs.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"
#include "topology/tree.hpp"

namespace dmx::runtime {

struct LockClusterConfig {
  int n = 0;
  NodeId initial_token_holder = 1;
  std::optional<topology::Tree> tree;
  /// Artificial per-message delivery delay bound in microseconds (0 = no
  /// delay). A uniformly random delay in [0, jitter_us] is injected per
  /// message to shake out schedule-dependent bugs in stress tests.
  unsigned jitter_us = 0;
  std::uint64_t seed = 1;
};

class LockCluster;

/// Blocking mutual-exclusion handle for one node. Satisfies BasicLockable,
/// so std::lock_guard/std::unique_lock work directly.
class DistributedMutex {
 public:
  /// Blocks until this node holds the (distributed) critical section.
  void lock();
  /// Leaves the critical section. Must be called by the lock holder.
  void unlock();
  /// lock() with a deadline; returns false on timeout (the request is
  /// still outstanding — the caller must eventually complete the lock with
  /// lock() since protocol requests cannot be cancelled).
  bool try_lock_for(std::chrono::milliseconds timeout);

  NodeId node() const { return node_; }

 private:
  friend class LockCluster;
  DistributedMutex(LockCluster& cluster, NodeId node)
      : cluster_(&cluster), node_(node) {}
  LockCluster* cluster_;
  NodeId node_;
};

class LockCluster {
 public:
  explicit LockCluster(const proto::Algorithm& algorithm,
                       LockClusterConfig config);
  ~LockCluster();

  LockCluster(const LockCluster&) = delete;
  LockCluster& operator=(const LockCluster&) = delete;

  int size() const { return config_.n; }

  /// Handle for node `v`. Handles are value types; any number may exist.
  DistributedMutex mutex(NodeId v);

  /// Total completed critical sections across the cluster.
  std::uint64_t total_entries() const;

  /// Total protocol messages routed between nodes (cross-node only; the
  /// counterpart of the simulator's network counters).
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  /// First protocol error (DMX_CHECK failure on a worker thread), if any.
  std::optional<std::string> first_error() const;

 private:
  friend class DistributedMutex;
  class NodeActor;

  void lock(NodeId v);
  bool lock_with_timeout(NodeId v, std::chrono::milliseconds timeout);
  void unlock(NodeId v);
  void route(NodeId from, NodeId to, net::MessagePtr message);
  void record_error(const std::string& what);

  proto::Algorithm algorithm_;
  LockClusterConfig config_;
  std::vector<std::unique_ptr<NodeActor>> actors_;  // index 0 unused
  std::atomic<std::uint64_t> messages_sent_{0};

  mutable std::mutex error_mutex_;
  std::optional<std::string> first_error_;
};

}  // namespace dmx::runtime
