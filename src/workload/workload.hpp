// Closed-loop workload generator.
//
// Each participant cycles request → hold CS → release → think → repeat.
// Think time 0 (with a 1-tick floor to let virtual time advance) gives the
// paper's "heavy demand" regime; large think times give light load where
// at most one request is typically outstanding (the regime of the §6.2
// average-bound analysis).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "harness/cluster.hpp"
#include "metrics/summary.hpp"

namespace dmx::workload {

struct WorkloadConfig {
  /// Total CS entries to complete across all participants.
  std::uint64_t target_entries = 1000;
  /// Mean of the exponential think time between release and the next
  /// request; 0 means immediate re-request (saturation).
  double mean_think_ticks = 0.0;
  /// CS hold time drawn uniformly from [hold_lo, hold_hi].
  Tick hold_lo = 0;
  Tick hold_hi = 0;
  /// Nodes that issue requests; empty means every node.
  std::vector<NodeId> participants;
  std::uint64_t seed = 42;
};

struct WorkloadResult {
  std::uint64_t entries = 0;
  std::uint64_t messages = 0;
  double messages_per_entry = 0.0;
  metrics::Summary waiting_ticks;
  metrics::Summary sync_delay_ticks;
  Tick makespan = 0;
};

/// Drives `cluster` until `target_entries` complete, then drains. Resets
/// network counters at the start so the result covers only this workload.
WorkloadResult run_workload(harness::Cluster& cluster,
                            const WorkloadConfig& config);

}  // namespace dmx::workload
