#include "workload/workload.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "harness/delay_analysis.hpp"

namespace dmx::workload {
namespace {

/// Shared driver state across all participant loops.
struct Driver {
  harness::Cluster& cluster;
  WorkloadConfig config;
  Rng rng;
  std::uint64_t completed = 0;
  bool stopped = false;

  Driver(harness::Cluster& c, const WorkloadConfig& cfg)
      : cluster(c), config(cfg), rng(cfg.seed) {}

  Tick sample_hold() {
    if (config.hold_hi <= config.hold_lo) return config.hold_lo;
    return rng.uniform_int(config.hold_lo, config.hold_hi);
  }

  Tick sample_think() {
    if (config.mean_think_ticks <= 0.0) return 1;
    const auto t = static_cast<Tick>(rng.exponential(config.mean_think_ticks));
    return std::max<Tick>(t, 1);
  }

  void issue(NodeId v) {
    if (stopped) return;
    cluster.request_cs(v, [this](NodeId entered) {
      cluster.simulator().schedule_after(sample_hold(), [this, entered] {
        cluster.release_cs(entered);
        ++completed;
        if (completed >= config.target_entries) {
          stopped = true;
          return;
        }
        cluster.simulator().schedule_after(sample_think(),
                                           [this, entered] { issue(entered); });
      });
    });
  }
};

}  // namespace

WorkloadResult run_workload(harness::Cluster& cluster,
                            const WorkloadConfig& config) {
  DMX_CHECK(config.target_entries >= 1);
  cluster.run_to_quiescence();
  cluster.network().reset_stats();

  std::vector<NodeId> participants = config.participants;
  if (participants.empty()) {
    for (NodeId v = 1; v <= cluster.size(); ++v) participants.push_back(v);
  }

  auto driver = std::make_unique<Driver>(cluster, config);
  const Tick started_at = cluster.simulator().now();
  const std::uint64_t entries_before = cluster.total_entries();
  const std::size_t events_before = cluster.events().size();

  // Stagger initial arrivals by the think-time distribution so the run
  // does not start with an artificial thundering herd (except under
  // saturation, where the herd is the point).
  for (NodeId v : participants) {
    const Tick offset =
        config.mean_think_ticks > 0.0 ? driver->sample_think() : 0;
    cluster.simulator().schedule_after(offset,
                                       [d = driver.get(), v] { d->issue(v); });
  }
  cluster.run_to_quiescence();
  DMX_CHECK_MSG(driver->completed >= config.target_entries,
                "workload stalled at " << driver->completed << " of "
                                       << config.target_entries
                                       << " entries (liveness bug?)");

  WorkloadResult result;
  result.entries = cluster.total_entries() - entries_before;
  result.messages = cluster.network().stats().total_sent;
  result.messages_per_entry =
      static_cast<double>(result.messages) /
      static_cast<double>(std::max<std::uint64_t>(result.entries, 1));
  result.makespan = cluster.simulator().now() - started_at;

  const std::vector<harness::CsEvent> run_events(
      cluster.events().begin() +
          static_cast<std::ptrdiff_t>(events_before),
      cluster.events().end());
  result.waiting_ticks = harness::waiting_times(run_events);
  result.sync_delay_ticks = harness::synchronization_delays(run_events);
  return result;
}

}  // namespace dmx::workload
