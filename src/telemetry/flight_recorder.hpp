// Flight recorder: fixed-size per-thread ring buffers of compact
// structured events, for post-hoc reconstruction of "what just happened"
// when a hardware-substrate test fails or a bench run needs a timeline.
//
// Metrics (telemetry.hpp) answer "how much / how fast"; the flight
// recorder answers "in what order". Each thread appends 32-byte records
// to its own shard's ring (overwriting the oldest once full, like a
// cockpit recorder), so steady-state recording is lock-free and
// allocation-free. On demand the rings are merged by timestamp into:
//
//  * tail(k)        — the last k events across all threads, oldest first;
//  * dump_tail(k)   — the same, rendered one line per event:
//                       [+1.234567s] t03 fault.repair_done r=2 node=4 arg=1
//  * chrome_trace_json() — a chrome://tracing / Perfetto "traceEvents"
//                     instant-event dump, one tid per recording thread,
//                     categorised client / strand / wire / fault.
//
// Fault- and transport-tier test binaries install a gtest failure
// listener (tests/support/flight_dump.hpp) that prints dump_tail next to
// the seed repro line when DMX_FLIGHT_DUMP=1 — the env var the fault and
// transport ctest presets set.
//
// Recording shares the Registry kill switch and the DMX_TELEMETRY
// compile-out gate with the metrics layer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "telemetry/telemetry.hpp"

namespace dmx::telemetry {

/// Every recordable event, grouped by Chrome-trace category.
enum class FlightEvent : std::uint8_t {
  // client: the lock()/unlock() gate.
  kRequest,
  kGrant,
  kRelease,
  kTimeout,
  kUnavailable,
  /// Lease chaining: a release handed the CS straight to a co-located
  /// waiter (arg = chain length so far) / offered the token back to the
  /// protocol with local waiters still queued (arg = chain length ended).
  kChainGrant,
  kLeaseYield,
  // strand: executor scheduling.
  kTokenForward,
  kPark,
  kSteal,
  // wire: transport event loop.
  kFrameSend,
  kFrameRecv,
  kBackpressure,
  // fault: membership, crash, repair. This block must stay the trailing
  // block of the enum — record routing tests `event >= kPeerUp` to send
  // fault events to the dedicated side ring.
  kPeerUp,
  kPeerDown,
  kGoodbye,
  kCrash,
  kRecover,
  kRepairStart,
  kRepairDone,
  kResourceUnavailable,
};

/// Short dotted name, e.g. "fault.repair_done".
std::string_view flight_event_name(FlightEvent event);
/// Chrome-trace category: "client", "strand", "wire", or "fault".
std::string_view flight_event_category(FlightEvent event);

/// One ring slot. `resource`/`node` are kNilResource-ish 0 / kNilNode
/// when not applicable; `arg` is event-specific (epoch for repair_done,
/// byte count for frames, peer id for peer events...).
struct FlightRecord {
  std::uint64_t t_ns = 0;
  std::uint32_t thread = 0;  // recording thread's shard-stable index
  FlightEvent event = FlightEvent::kRequest;
  ResourceId resource = 0;
  NodeId node = 0;
  std::int64_t arg = 0;
};

/// Capacity of each per-thread ring, in records. Sized so a ring stays
/// cache-resident (512 x 32B = 16KB): recording streams through the
/// ring, and a larger ring turns every append into a cache miss on the
/// saturated path while buying tail depth nobody reads — failure dumps
/// show the last ~64 events, and with one ring per thread the process
/// retains thousands.
inline constexpr int kFlightRingCapacity = 512;

/// Capacity of each per-thread FAULT side ring. Fault-category events
/// (membership, crash, repair) are the rarest and most valuable
/// post-mortem evidence; in the shared ring a saturated wire or client
/// path would evict the crash that happened seconds before the failure
/// being diagnosed, so they keep their own small ring.
inline constexpr int kFlightFaultRingCapacity = 64;

#if DMX_TELEMETRY

/// Static facade over the per-thread rings owned by Registry's shards.
class FlightRecorder {
 public:
  /// Appends to this thread's ring: a handful of relaxed atomic stores
  /// into a fixed single-writer ring — no lock, no allocation. No-op
  /// while the registry is disabled.
  static void record(FlightEvent event, ResourceId resource = 0,
                     NodeId node = 0, std::int64_t arg = 0);

  /// record() with a caller-supplied now_ns() timestamp. Instrumented
  /// paths that already read the clock (to feed a latency histogram)
  /// pass that reading instead of paying a second clock call — the
  /// difference between ~50ns and ~25ns per event on the hot path.
  static void record_at(std::uint64_t t_ns, FlightEvent event,
                        ResourceId resource = 0, NodeId node = 0,
                        std::int64_t arg = 0);

  /// The most recent `k` events across every thread, merged by
  /// timestamp, oldest first.
  static std::vector<FlightRecord> tail(int k);

  /// tail(k) rendered one line per event (see header comment).
  static std::string dump_tail(int k);

  /// Full contents of every ring as a Chrome-trace JSON document:
  /// {"traceEvents":[{"name","cat","ph":"i","ts",...},...]}. Load in
  /// chrome://tracing or ui.perfetto.dev.
  static std::string chrome_trace_json();

  /// Clears every ring (Registry::reset() also does this).
  static void clear();

  /// True when the DMX_FLIGHT_DUMP environment variable is set to a
  /// non-empty, non-"0" value — the failure-listener gate.
  static bool dump_on_failure_enabled();

 private:
  /// Every ring's contents, merged and timestamp-sorted.
  static std::vector<FlightRecord> collect_all();
};

#else  // !DMX_TELEMETRY

class FlightRecorder {
 public:
  static void record(FlightEvent, ResourceId = 0, NodeId = 0,
                     std::int64_t = 0) {}
  static void record_at(std::uint64_t, FlightEvent, ResourceId = 0,
                        NodeId = 0, std::int64_t = 0) {}
  static std::vector<FlightRecord> tail(int) { return {}; }
  static std::string dump_tail(int) { return "(telemetry compiled out)\n"; }
  static std::string chrome_trace_json() { return "{\"traceEvents\":[]}"; }
  static void clear() {}
  static bool dump_on_failure_enabled() { return false; }
};

#endif  // DMX_TELEMETRY

}  // namespace dmx::telemetry
