// Always-on runtime telemetry for the hardware substrates (threaded lock
// service, strand executor, TCP transport).
//
// The sim substrate observes itself for free — virtual time, per-event
// invariant hooks, deterministic traces. The substrates that run on real
// threads and sockets need the opposite discipline: measurement that is
// cheap enough to never turn off. This layer provides it:
//
//  * Counters and log-bucket latency histograms live in SHARD-PER-THREAD
//    storage: a writer touches only its own thread's cache lines with
//    relaxed atomics, so the hot path is one TLS load plus one
//    uncontended fetch_add and steady state allocates nothing. Shards
//    are leased from a registry free list and returned on thread exit,
//    so memory is bounded by the peak number of concurrent threads, not
//    the total number ever started (counts survive recycling — the
//    snapshot sums across shards, so totals stay exact).
//  * Metrics are interned by name in a global Registry (the Prometheus
//    default-registry model: instrumentation points resolve their ids
//    once, in cold code). snapshot() merges every shard on demand and
//    renders as aligned text or JSON.
//  * A process-wide kill switch (set_enabled(false)) reduces every
//    recording call to one relaxed load — the overhead bench compares
//    enabled vs disabled to prove the instrumentation can stay on.
//  * Building with -DDAGMX_TELEMETRY=OFF (DMX_TELEMETRY=0) compiles the
//    whole layer out: every call site still compiles, recording functions
//    become empty inlines, snapshots come back empty.
//
// The flight recorder (telemetry/flight_recorder.hpp) shares the same
// per-thread shard infrastructure.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef DMX_TELEMETRY
#define DMX_TELEMETRY 1
#endif

#if DMX_TELEMETRY && (defined(__x86_64__) || defined(__i386__))
#include <x86intrin.h>
#define DMX_TELEMETRY_TSC 1
#else
#define DMX_TELEMETRY_TSC 0
#endif

namespace dmx::telemetry {

/// Handle of an interned counter. index < 0 means "dropped" (registry
/// capacity exhausted or telemetry compiled out); recording through it is
/// a safe no-op.
struct CounterId {
  std::int32_t index = -1;
};

/// Handle of an interned histogram; same dropped-id convention.
struct HistogramId {
  std::int32_t index = -1;
};

/// Capacity of the per-thread shards. Fixed so a shard is one flat block
/// of atomics that never reallocates (writers race with snapshot readers;
/// growth would invalidate their pointers).
inline constexpr int kMaxCounters = 512;
inline constexpr int kMaxHistograms = 192;

/// Histogram buckets are value bit-widths: bucket b counts samples x with
/// bit_width(x) == b, i.e. [2^(b-1), 2^b). Bucket 0 counts exact zeros.
/// ~2x resolution over the full uint64 range in 65 counters — the right
/// shape for latencies spanning nanoseconds to seconds.
inline constexpr int kHistogramBuckets = 65;

/// Merged view of one histogram across all shards.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Upper bound of the bucket holding the q-th sample (q in [0,1]).
  /// Pinned to 0 on an empty histogram — never garbage.
  std::uint64_t quantile(double q) const;
  /// Upper bound of the highest non-empty bucket (0 when empty).
  std::uint64_t max_bound() const;

  void merge(const HistogramSnapshot& other);
};

/// Point-in-time merged view of every registered metric. Plain data:
/// usable (and returned, empty) even when telemetry is compiled out.
struct MetricsSnapshot {
  /// Name -> merged value, in registration order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Value of one counter (0 if absent).
  std::uint64_t counter(std::string_view name) const;
  /// One histogram (nullptr if absent).
  const HistogramSnapshot* histogram(std::string_view name) const;
  /// Adds or overwrites a counter — used to fold externally maintained
  /// stats (executor, event loop) into one exported view.
  void set_counter(std::string_view name, std::uint64_t value);

  /// Sums `other` into this snapshot (counters add, histograms merge).
  void merge(const MetricsSnapshot& other);

  /// Merges every histogram named `parent` + "." + <suffix> into the
  /// histogram named `parent` (created if absent). Lets hot paths record
  /// only the per-resource lane and still export the process-wide
  /// roll-up, at snapshot cost instead of a second record per event.
  void roll_up(const std::string& parent);

  /// Aligned human-readable rendering; zero-count metrics are omitted.
  std::string to_text() const;
  /// Machine-readable rendering: {"counters": {...}, "histograms": {...}}
  /// with count/sum/mean/p50/p95/p99/max per histogram.
  std::string to_json() const;
};

#if DMX_TELEMETRY

class Registry {
 public:
  /// The process-wide registry (never destroyed: instrumentation may fire
  /// from detached threads during static teardown).
  static Registry& global();

  /// Interns `name`, returning the existing id if already registered.
  /// When capacity is exhausted the returned id is dropped (index -1) and
  /// recording through it is a no-op — instrumentation never throws.
  CounterId counter(std::string_view name);
  HistogramId histogram(std::string_view name);

  /// Hot path: one TLS load + one relaxed fetch_add on this thread's
  /// shard. Safe with a dropped id.
  void add(CounterId id, std::uint64_t delta = 1);
  /// Hot path: buckets the value by bit width into this thread's shard.
  void record(HistogramId id, std::uint64_t value);

  /// Merges every shard (live and leased-back) into one snapshot.
  MetricsSnapshot snapshot() const;

  /// Process-wide kill switch (also gates the flight recorder). Recording
  /// while disabled costs one relaxed load. On by default.
  void set_enabled(bool on);
  bool enabled() const;

  /// Zeroes every counter, histogram, and flight ring in every shard.
  /// For tests and benches that measure deltas; not thread-safe against
  /// concurrent writers losing *exactly* their in-flight increment, but
  /// safe (no torn state) at any time.
  void reset();

 private:
  friend class FlightRecorder;
  friend struct ShardLease;
  struct Shard;
  struct Impl;

  Registry();
  ~Registry() = delete;  // leaked singleton

  Shard* this_thread_shard();
  Shard* acquire_shard();
  void release_shard(Shard* shard);

  Impl* impl_;
};

/// now_ns() fallback: steady_clock against a process-start anchor.
std::uint64_t steady_now_ns();

#if DMX_TELEMETRY_TSC
namespace detail {
/// Calibrated TSC reader. On every x86 this code will meet, the TSC is
/// constant-rate and synchronized across cores, and reading it costs
/// ~7ns where clock_gettime costs ~27ns — the difference shows up
/// directly in saturated lock-service throughput, which pays several
/// reads per entry. Calibrated once against the steady clock over a
/// short spin; the resulting scale error (<0.1%) is far below
/// histogram bucket resolution.
struct TscClock {
  std::uint64_t anchor = 0;
  double ns_per_tick = 0.0;  // 0 => calibration failed, fall back

  TscClock() {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = __rdtsc();
    auto t1 = t0;
    do {
      t1 = std::chrono::steady_clock::now();
    } while (t1 - t0 < std::chrono::milliseconds(2));
    const std::uint64_t c1 = __rdtsc();
    if (c1 > c0) {
      ns_per_tick =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(c1 - c0);
      anchor = c0;
    }
  }
};

inline const TscClock& tsc_clock() {
  static const TscClock clock;
  return clock;
}
}  // namespace detail
#endif  // DMX_TELEMETRY_TSC

/// Nanoseconds since a process-start anchor; the shared timebase of
/// histograms and flight-recorder events. Inline because instrumented
/// hot paths read it up to three times per lock-service entry.
inline std::uint64_t now_ns() {
#if DMX_TELEMETRY_TSC
  const detail::TscClock& clock = detail::tsc_clock();
  if (clock.ns_per_tick > 0.0) {
    return static_cast<std::uint64_t>(
        static_cast<double>(__rdtsc() - clock.anchor) * clock.ns_per_tick);
  }
#endif
  return steady_now_ns();
}

#else  // !DMX_TELEMETRY — compiled out: same API, empty inlines.

class Registry {
 public:
  static Registry& global() {
    static Registry registry;
    return registry;
  }
  CounterId counter(std::string_view) { return {}; }
  HistogramId histogram(std::string_view) { return {}; }
  void add(CounterId, std::uint64_t = 1) {}
  void record(HistogramId, std::uint64_t) {}
  MetricsSnapshot snapshot() const { return {}; }
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void reset() {}
};

inline std::uint64_t now_ns() { return 0; }

#endif  // DMX_TELEMETRY

/// Convenience wrappers over the global registry.
inline void count(CounterId id, std::uint64_t delta = 1) {
  Registry::global().add(id, delta);
}
inline void observe(HistogramId id, std::uint64_t value) {
  Registry::global().record(id, value);
}

#if DMX_TELEMETRY
/// 1-in-8 sampling gate for distribution-shape histograms on per-event
/// hot paths (client wait/hold, strand batch, injector depth). Counters
/// and flight events stay exact; a histogram only needs enough samples
/// for a stable shape, and at saturation every event would pay for it —
/// on an oversubscribed box the per-thread shard arrays don't fit in
/// cache, so each skipped observe also skips a likely cache miss.
inline bool sample_1_in_8() {
  thread_local std::uint32_t tick = 0;
  return (++tick & 7u) == 0;
}
#else
inline bool sample_1_in_8() { return false; }
#endif

}  // namespace dmx::telemetry
