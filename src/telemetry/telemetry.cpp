#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "telemetry/flight_recorder.hpp"

namespace dmx::telemetry {

namespace {

/// Upper inclusive bound of bit-width bucket b: 0, 1, 3, 7, ... 2^b - 1.
std::uint64_t bucket_upper_bound(int b) {
  if (b <= 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

void json_escape(std::ostringstream& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default: out << c; break;
    }
  }
}

}  // namespace

// --- Snapshot types (compiled in both modes) -------------------------------

std::uint64_t HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen > rank || (seen == count && seen != 0)) {
      return bucket_upper_bound(b);
    }
  }
  return bucket_upper_bound(kHistogramBuckets - 1);
}

std::uint64_t HistogramSnapshot::max_bound() const {
  for (int b = kHistogramBuckets - 1; b >= 0; --b) {
    if (buckets[static_cast<std::size_t>(b)] != 0) return bucket_upper_bound(b);
  }
  return 0;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (int b = 0; b < kHistogramBuckets; ++b) {
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
  }
  count += other.count;
  sum += other.sum;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

void MetricsSnapshot::set_counter(std::string_view name, std::uint64_t value) {
  for (auto& [n, v] : counters) {
    if (n == name) {
      v = value;
      return;
    }
  }
  counters.emplace_back(std::string(name), value);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    bool found = false;
    for (auto& [n, v] : counters) {
      if (n == name) {
        v += value;
        found = true;
        break;
      }
    }
    if (!found) counters.emplace_back(name, value);
  }
  for (const auto& [name, hist] : other.histograms) {
    bool found = false;
    for (auto& [n, h] : histograms) {
      if (n == name) {
        h.merge(hist);
        found = true;
        break;
      }
    }
    if (!found) histograms.emplace_back(name, hist);
  }
}

void MetricsSnapshot::roll_up(const std::string& parent) {
  const std::string prefix = parent + ".";
  HistogramSnapshot folded;
  for (const auto& [name, hist] : histograms) {
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0) {
      folded.merge(hist);
    }
  }
  for (auto& [name, hist] : histograms) {
    if (name == parent) {
      hist.merge(folded);
      return;
    }
  }
  histograms.emplace_back(parent, folded);
}

std::string MetricsSnapshot::to_text() const {
  std::ostringstream out;
  std::size_t width = 0;
  for (const auto& [name, value] : counters) {
    if (value != 0) width = std::max(width, name.size());
  }
  for (const auto& [name, hist] : histograms) {
    if (hist.count != 0) width = std::max(width, name.size());
  }
  char line[256];
  for (const auto& [name, value] : counters) {
    if (value == 0) continue;
    std::snprintf(line, sizeof(line), "%-*s %llu\n", static_cast<int>(width),
                  name.c_str(), static_cast<unsigned long long>(value));
    out << line;
  }
  for (const auto& [name, hist] : histograms) {
    if (hist.count == 0) continue;
    std::snprintf(
        line, sizeof(line),
        "%-*s count=%llu mean=%.0f p50<=%llu p95<=%llu p99<=%llu max<=%llu\n",
        static_cast<int>(width), name.c_str(),
        static_cast<unsigned long long>(hist.count), hist.mean(),
        static_cast<unsigned long long>(hist.quantile(0.50)),
        static_cast<unsigned long long>(hist.quantile(0.95)),
        static_cast<unsigned long long>(hist.quantile(0.99)),
        static_cast<unsigned long long>(hist.max_bound()));
    out << line;
  }
  return out.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ", ";
    first = false;
    out << "\"";
    json_escape(out, name);
    out << "\": " << value;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    if (!first) out << ", ";
    first = false;
    out << "\"";
    json_escape(out, name);
    out << "\": {\"count\": " << hist.count << ", \"sum\": " << hist.sum
        << ", \"mean\": " << hist.mean() << ", \"p50\": " << hist.quantile(0.50)
        << ", \"p95\": " << hist.quantile(0.95)
        << ", \"p99\": " << hist.quantile(0.99)
        << ", \"max\": " << hist.max_bound() << "}";
  }
  out << "}}";
  return out.str();
}

#if DMX_TELEMETRY

// --- Registry internals ----------------------------------------------------

/// One thread's private slice of every metric plus its flight ring.
/// Fixed-size so writer pointers stay valid forever; leased to exactly
/// one thread at a time and recycled through a free list afterwards.
struct Registry::Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};
  struct HistCells {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
    std::atomic<std::uint64_t> sum{0};
  };
  HistCells histograms[kMaxHistograms] = {};

  /// Flight ring: single-writer (the owning thread), lock-free. Every
  /// slot field is a relaxed atomic, so dumpers on other threads read
  /// without stopping the writer and without formal data races. A slot
  /// being overwritten mid-read can come back torn (fields from two
  /// events) — harmless in a diagnostic recorder, and the reads that
  /// matter (failure dumps, tests) happen after writers quiesce.
  /// The recording thread is implicit (it's the shard), so slots carry
  /// no thread field — collect_all() stamps shard->index on the way out.
  struct FlightSlot {
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::int64_t> arg{0};
    std::atomic<ResourceId> resource{0};
    std::atomic<NodeId> node{0};
    std::atomic<std::uint8_t> event{0};
  };
  FlightSlot ring[kFlightRingCapacity] = {};
  /// Total records ever; slot = next % cap. Written by the owner with a
  /// release store (publishes the slot), read by dumpers with acquire.
  std::atomic<std::uint64_t> ring_next{0};

  /// Fault-category events land here instead, so high-rate client/wire
  /// traffic cannot evict them (see kFlightFaultRingCapacity).
  FlightSlot fault_ring[kFlightFaultRingCapacity] = {};
  std::atomic<std::uint64_t> fault_ring_next{0};

  /// Stable label for flight records ("t03"); identifies the shard, so
  /// successive threads reusing a shard share a lane — acceptable for a
  /// peak-bounded recorder.
  std::uint32_t index = 0;
};

struct Registry::Impl {
  std::atomic<bool> enabled{true};

  mutable std::mutex mutex;
  std::vector<std::string> counter_names;
  std::vector<std::string> histogram_names;
  /// Every shard ever allocated (snapshot iterates these; never shrinks).
  std::vector<std::unique_ptr<Shard>> shards;
  /// Shards whose owning thread has exited, ready for reuse.
  std::vector<Shard*> free_shards;
};

/// RAII lease binding one shard to one thread; the thread_local's
/// destructor returns the shard to the free list on thread exit.
/// Friend of Registry (see header) so it can name the private Shard.
struct ShardLease {
  Registry::Shard* shard = nullptr;
  ~ShardLease() {
    if (shard != nullptr) Registry::global().release_shard(shard);
  }
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // leaked: see header
  return *registry;
}

Registry::Shard* Registry::acquire_shard() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (!impl_->free_shards.empty()) {
    Shard* shard = impl_->free_shards.back();
    impl_->free_shards.pop_back();
    return shard;
  }
  auto shard = std::make_unique<Shard>();
  shard->index = static_cast<std::uint32_t>(impl_->shards.size());
  Shard* raw = shard.get();
  impl_->shards.push_back(std::move(shard));
  return raw;
}

void Registry::release_shard(Shard* shard) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->free_shards.push_back(shard);
}

Registry::Shard* Registry::this_thread_shard() {
  thread_local ShardLease lease;
  if (lease.shard == nullptr) lease.shard = acquire_shard();
  return lease.shard;
}

CounterId Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (std::size_t i = 0; i < impl_->counter_names.size(); ++i) {
    if (impl_->counter_names[i] == name) {
      return {static_cast<std::int32_t>(i)};
    }
  }
  if (impl_->counter_names.size() >= kMaxCounters) return {};  // dropped
  impl_->counter_names.emplace_back(name);
  return {static_cast<std::int32_t>(impl_->counter_names.size() - 1)};
}

HistogramId Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (std::size_t i = 0; i < impl_->histogram_names.size(); ++i) {
    if (impl_->histogram_names[i] == name) {
      return {static_cast<std::int32_t>(i)};
    }
  }
  if (impl_->histogram_names.size() >= kMaxHistograms) return {};  // dropped
  impl_->histogram_names.emplace_back(name);
  return {static_cast<std::int32_t>(impl_->histogram_names.size() - 1)};
}

void Registry::add(CounterId id, std::uint64_t delta) {
  if (id.index < 0) return;
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  this_thread_shard()->counters[id.index].fetch_add(
      delta, std::memory_order_relaxed);
}

void Registry::record(HistogramId id, std::uint64_t value) {
  if (id.index < 0) return;
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  Shard* shard = this_thread_shard();
  auto& cells = shard->histograms[id.index];
  cells.buckets[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  cells.sum.fetch_add(value, std::memory_order_relaxed);
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mutex);
  snap.counters.reserve(impl_->counter_names.size());
  snap.histograms.reserve(impl_->histogram_names.size());
  for (const auto& name : impl_->counter_names) {
    snap.counters.emplace_back(name, 0);
  }
  for (const auto& name : impl_->histogram_names) {
    snap.histograms.emplace_back(name, HistogramSnapshot{});
  }
  for (const auto& shard : impl_->shards) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].second +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      HistogramSnapshot& hist = snap.histograms[i].second;
      const auto& cells = shard->histograms[i];
      for (int b = 0; b < kHistogramBuckets; ++b) {
        const std::uint64_t n =
            cells.buckets[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
        hist.buckets[static_cast<std::size_t>(b)] += n;
        hist.count += n;
      }
      hist.sum += cells.sum.load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Registry::set_enabled(bool on) {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

bool Registry::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& shard : impl_->shards) {
    for (auto& counter : shard->counters) {
      counter.store(0, std::memory_order_relaxed);
    }
    for (auto& cells : shard->histograms) {
      for (auto& bucket : cells.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      cells.sum.store(0, std::memory_order_relaxed);
    }
    shard->ring_next.store(0, std::memory_order_relaxed);
    shard->fault_ring_next.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t steady_now_ns() {
  static const auto anchor = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

// --- Flight recorder -------------------------------------------------------

std::string_view flight_event_name(FlightEvent event) {
  switch (event) {
    case FlightEvent::kRequest: return "client.request";
    case FlightEvent::kGrant: return "client.grant";
    case FlightEvent::kRelease: return "client.release";
    case FlightEvent::kTimeout: return "client.timeout";
    case FlightEvent::kUnavailable: return "client.unavailable";
    case FlightEvent::kChainGrant: return "client.chain_grant";
    case FlightEvent::kLeaseYield: return "client.lease_yield";
    case FlightEvent::kTokenForward: return "strand.token_forward";
    case FlightEvent::kPark: return "strand.park";
    case FlightEvent::kSteal: return "strand.steal";
    case FlightEvent::kFrameSend: return "wire.frame_send";
    case FlightEvent::kFrameRecv: return "wire.frame_recv";
    case FlightEvent::kBackpressure: return "wire.backpressure";
    case FlightEvent::kPeerUp: return "fault.peer_up";
    case FlightEvent::kPeerDown: return "fault.peer_down";
    case FlightEvent::kGoodbye: return "fault.goodbye";
    case FlightEvent::kCrash: return "fault.crash";
    case FlightEvent::kRecover: return "fault.recover";
    case FlightEvent::kRepairStart: return "fault.repair_start";
    case FlightEvent::kRepairDone: return "fault.repair_done";
    case FlightEvent::kResourceUnavailable: return "fault.unavailable";
  }
  return "unknown";
}

std::string_view flight_event_category(FlightEvent event) {
  const std::string_view name = flight_event_name(event);
  return name.substr(0, name.find('.'));
}

void FlightRecorder::record(FlightEvent event, ResourceId resource,
                            NodeId node, std::int64_t arg) {
  if (!Registry::global().enabled()) return;
  record_at(now_ns(), event, resource, node, arg);
}

void FlightRecorder::record_at(std::uint64_t t_ns, FlightEvent event,
                               ResourceId resource, NodeId node,
                               std::int64_t arg) {
  Registry& registry = Registry::global();
  if (!registry.enabled()) return;
  Registry::Shard* shard = registry.this_thread_shard();
  // Fault events are the trailing enum block (asserted in the enum's
  // comment); they go to the eviction-protected side ring.
  const bool fault = event >= FlightEvent::kPeerUp;
  auto& next = fault ? shard->fault_ring_next : shard->ring_next;
  const std::uint64_t cap =
      fault ? kFlightFaultRingCapacity : kFlightRingCapacity;
  const std::uint64_t seq = next.load(std::memory_order_relaxed);
  auto& slot = fault ? shard->fault_ring[seq % cap] : shard->ring[seq % cap];
  slot.t_ns.store(t_ns, std::memory_order_relaxed);
  slot.event.store(static_cast<std::uint8_t>(event),
                   std::memory_order_relaxed);
  slot.resource.store(resource, std::memory_order_relaxed);
  slot.node.store(node, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  next.store(seq + 1, std::memory_order_release);
}

std::vector<FlightRecord> FlightRecorder::collect_all() {
  Registry& registry = Registry::global();
  std::vector<FlightRecord> records;
  // Touch this thread's shard first so the lease exists before we take
  // the registry mutex (avoids self-deadlock ordering surprises).
  (void)registry.this_thread_shard();
  std::lock_guard<std::mutex> lock(registry.impl_->mutex);
  for (const auto& shard : registry.impl_->shards) {
    const auto drain = [&](const auto& ring, const auto& next,
                           std::uint64_t cap) {
      const std::uint64_t total = next.load(std::memory_order_acquire);
      const std::uint64_t kept = std::min<std::uint64_t>(total, cap);
      for (std::uint64_t i = total - kept; i < total; ++i) {
        const auto& slot = ring[i % cap];
        FlightRecord record;
        record.t_ns = slot.t_ns.load(std::memory_order_relaxed);
        record.thread = shard->index;
        record.event = static_cast<FlightEvent>(
            slot.event.load(std::memory_order_relaxed));
        record.resource = slot.resource.load(std::memory_order_relaxed);
        record.node = slot.node.load(std::memory_order_relaxed);
        record.arg = slot.arg.load(std::memory_order_relaxed);
        records.push_back(record);
      }
    };
    drain(shard->ring, shard->ring_next, kFlightRingCapacity);
    drain(shard->fault_ring, shard->fault_ring_next,
          kFlightFaultRingCapacity);
  }
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.t_ns < b.t_ns;
            });
  return records;
}

std::vector<FlightRecord> FlightRecorder::tail(int k) {
  std::vector<FlightRecord> records = collect_all();
  if (k >= 0 && records.size() > static_cast<std::size_t>(k)) {
    records.erase(records.begin(),
                  records.end() - static_cast<std::ptrdiff_t>(k));
  }
  return records;
}

std::string FlightRecorder::dump_tail(int k) {
  const std::vector<FlightRecord> records = tail(k);
  std::ostringstream out;
  out << "flight recorder tail (" << records.size() << " events):\n";
  char line[160];
  for (const FlightRecord& record : records) {
    const std::string_view name = flight_event_name(record.event);
    std::snprintf(line, sizeof(line), "  [+%.6fs] t%02u %.*s",
                  static_cast<double>(record.t_ns) * 1e-9, record.thread,
                  static_cast<int>(name.size()), name.data());
    out << line;
    if (record.resource != 0 || record.node != 0 || record.arg != 0) {
      std::snprintf(line, sizeof(line), " r=%d node=%d arg=%lld",
                    record.resource, record.node,
                    static_cast<long long>(record.arg));
      out << line;
    }
    out << "\n";
  }
  return out.str();
}

std::string FlightRecorder::chrome_trace_json() {
  const std::vector<FlightRecord> records = collect_all();
  std::ostringstream out;
  out << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const FlightRecord& record = records[i];
    if (i != 0) out << ",";
    out << "\n  {\"name\": \"" << flight_event_name(record.event)
        << "\", \"cat\": \"" << flight_event_category(record.event)
        << "\", \"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": "
        << record.thread
        << ", \"ts\": " << static_cast<double>(record.t_ns) / 1000.0
        << ", \"args\": {\"resource\": " << record.resource
        << ", \"node\": " << record.node << ", \"arg\": " << record.arg
        << "}}";
  }
  out << "\n]}";
  return out.str();
}

void FlightRecorder::clear() {
  Registry& registry = Registry::global();
  std::lock_guard<std::mutex> lock(registry.impl_->mutex);
  for (const auto& shard : registry.impl_->shards) {
    shard->ring_next.store(0, std::memory_order_relaxed);
    shard->fault_ring_next.store(0, std::memory_order_relaxed);
  }
}

bool FlightRecorder::dump_on_failure_enabled() {
  const char* value = std::getenv("DMX_FLIGHT_DUMP");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

#endif  // DMX_TELEMETRY

}  // namespace dmx::telemetry
