#include "modelcheck/raymond_explorer.hpp"

#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>

#include "baselines/raymond.hpp"
#include "common/check.hpp"

namespace dmx::modelcheck {
namespace {

using baselines::RaymondMessage;
using baselines::RaymondNode;

/// Raymond messages carry no payload; only the kind matters.
enum class RMsg : char { kRequest = 'Q', kPrivilege = 'P' };

struct NodeS {
  NodeId holder = kNilNode;
  bool using_cs = false;
  bool asked = false;
  bool waiting = false;
  std::deque<NodeId> queue;
  int budget = 0;
  bool operator==(const NodeS&) const = default;
};

struct SysState {
  std::vector<NodeS> nodes;  // index 1..n
  std::map<std::pair<NodeId, NodeId>, std::vector<RMsg>> channels;

  std::string encode() const {
    std::string out;
    for (std::size_t v = 1; v < nodes.size(); ++v) {
      const NodeS& node = nodes[v];
      out.push_back(static_cast<char>('0' + node.holder));
      out.push_back(node.using_cs ? 'U' : 'u');
      out.push_back(node.asked ? 'A' : 'a');
      out.push_back(node.waiting ? 'W' : 'w');
      out.push_back(static_cast<char>('0' + node.budget));
      out.push_back('[');
      for (NodeId q : node.queue) {
        out.push_back(static_cast<char>('0' + q));
      }
      out.push_back(']');
    }
    for (const auto& [key, fifo] : channels) {
      if (fifo.empty()) continue;
      out.push_back('|');
      out.push_back(static_cast<char>('0' + key.first));
      out.push_back(static_cast<char>('0' + key.second));
      for (RMsg msg : fifo) {
        out.push_back(static_cast<char>(msg));
      }
    }
    return out;
  }
};

class CaptureContext final : public proto::Context {
 public:
  CaptureContext(NodeId self, int n, SysState& state)
      : self_(self), n_(n), state_(state) {}

  NodeId self() const override { return self_; }
  int cluster_size() const override { return n_; }
  void send(NodeId to, net::MessagePtr message) override {
    const auto* msg = dynamic_cast<const RaymondMessage*>(message.get());
    DMX_CHECK(msg != nullptr);
    state_.channels[{self_, to}].push_back(
        msg->type() == RaymondMessage::Type::kRequest ? RMsg::kRequest
                                                      : RMsg::kPrivilege);
  }
  void grant() override {}  // visible via using_cs()

 private:
  NodeId self_;
  int n_;
  SysState& state_;
};

class RaymondExplorer {
 public:
  explicit RaymondExplorer(const ExplorerConfig& config) : config_(config) {
    DMX_CHECK(config.tree != nullptr);
    DMX_CHECK(config.tree->size() == config.n);
    DMX_CHECK_MSG(config.n <= 8 && config.requests_per_node <= 9,
                  "state encoding supports n <= 8, budgets <= 9");
  }

  ExplorerResult run() {
    SysState initial = initial_state();
    std::deque<std::string> frontier;
    const std::string initial_key = initial.encode();
    states_.emplace(initial_key, initial);
    predecessor_.emplace(initial_key,
                         std::pair<std::string, Action>{"", Action{}});
    frontier.push_back(initial_key);
    if (!check_state(initial, initial_key)) return finish();

    while (!frontier.empty()) {
      if (states_.size() > config_.max_states) {
        result_.truncated = true;
        result_.violation = "state budget exhausted (inconclusive)";
        return finish();
      }
      const std::string key = std::move(frontier.front());
      frontier.pop_front();
      const SysState& state = states_.at(key);

      const std::vector<Action> actions = enabled_actions(state);
      if (actions.empty()) {
        ++result_.terminal_states;
        for (std::size_t v = 1; v < state.nodes.size(); ++v) {
          if (state.nodes[v].waiting) {
            std::ostringstream oss;
            oss << "terminal state leaves node " << v << " waiting forever";
            record_violation(oss.str(), key);
            return finish();
          }
        }
        continue;
      }
      for (const Action& action : actions) {
        SysState next = apply(state, action);
        ++result_.transitions;
        std::string next_key = next.encode();
        if (states_.find(next_key) != states_.end()) continue;
        predecessor_.emplace(next_key,
                             std::pair<std::string, Action>{key, action});
        const bool ok = check_state(next, next_key);
        states_.emplace(next_key, std::move(next));
        if (!ok) return finish();
        frontier.push_back(std::move(next_key));
      }
    }
    return finish();
  }

 private:
  SysState initial_state() const {
    SysState state;
    state.nodes.resize(static_cast<std::size_t>(config_.n) + 1);
    const std::vector<NodeId> toward =
        config_.tree->next_pointers_toward(config_.initial_token_holder);
    for (NodeId v = 1; v <= config_.n; ++v) {
      NodeS& node = state.nodes[static_cast<std::size_t>(v)];
      node.holder = v == config_.initial_token_holder
                        ? v
                        : toward[static_cast<std::size_t>(v)];
      node.budget = config_.requests_per_node;
    }
    return state;
  }

  std::vector<Action> enabled_actions(const SysState& state) const {
    std::vector<Action> actions;
    for (NodeId v = 1; v <= config_.n; ++v) {
      const NodeS& node = state.nodes[static_cast<std::size_t>(v)];
      if (!node.waiting && !node.using_cs && node.budget > 0) {
        actions.push_back({Action::Type::kRequest, v, kNilNode});
      }
      if (node.using_cs) {
        actions.push_back({Action::Type::kRelease, v, kNilNode});
      }
    }
    for (const auto& [key, fifo] : state.channels) {
      if (!fifo.empty()) {
        actions.push_back({Action::Type::kDeliver, key.second, key.first});
      }
    }
    return actions;
  }

  SysState apply(const SysState& state, const Action& action) const {
    SysState next = state;
    NodeS& slot = next.nodes[static_cast<std::size_t>(action.node)];
    RaymondNode node =
        RaymondNode::restore(action.node, slot.holder, slot.using_cs,
                             slot.asked, slot.waiting, slot.queue);
    CaptureContext ctx(action.node, config_.n, next);
    switch (action.type) {
      case Action::Type::kRequest:
        DMX_CHECK(slot.budget > 0);
        slot.budget -= 1;
        node.request_cs(ctx);
        break;
      case Action::Type::kRelease:
        node.release_cs(ctx);
        break;
      case Action::Type::kDeliver: {
        auto it = next.channels.find({action.from, action.node});
        DMX_CHECK(it != next.channels.end() && !it->second.empty());
        const RMsg msg = it->second.front();
        it->second.erase(it->second.begin());
        if (it->second.empty()) next.channels.erase(it);
        node.on_message(ctx, action.from,
                        RaymondMessage(msg == RMsg::kRequest
                                           ? RaymondMessage::Type::kRequest
                                           : RaymondMessage::Type::kPrivilege));
        break;
      }
    }
    slot.holder = node.holder();
    slot.using_cs = node.using_cs();
    slot.asked = node.asked();
    slot.waiting = node.waiting();
    slot.queue = node.queue();
    return next;
  }

  bool check_state(const SysState& state, const std::string& key) {
    int tokens = 0;
    int occupants = 0;
    for (std::size_t v = 1; v < state.nodes.size(); ++v) {
      const NodeS& node = state.nodes[v];
      if (node.holder == static_cast<NodeId>(v)) ++tokens;
      if (node.using_cs) ++occupants;
    }
    NodeId privilege_target = kNilNode;
    for (const auto& [channel, fifo] : state.channels) {
      for (RMsg msg : fifo) {
        if (msg == RMsg::kPrivilege) {
          ++tokens;
          privilege_target = channel.second;
        }
      }
    }
    if (occupants > 1) {
      record_violation("two nodes inside the critical section", key);
      return false;
    }
    if (tokens != 1) {
      std::ostringstream oss;
      oss << "token count " << tokens << " (must be 1)";
      record_violation(oss.str(), key);
      return false;
    }
    // HOLDER pointers must lead every node to the token within n hops.
    // While a PRIVILEGE is in flight from u to w, u.holder==w and
    // w.holder==u form an expected transient 2-cycle; the walk then
    // terminates at the in-flight recipient instead.
    for (NodeId v = 1; v <= config_.n; ++v) {
      NodeId cur = v;
      int steps = 0;
      while (state.nodes[static_cast<std::size_t>(cur)].holder != cur &&
             cur != privilege_target) {
        cur = state.nodes[static_cast<std::size_t>(cur)].holder;
        if (++steps > config_.n) {
          record_violation("HOLDER pointers cycle", key);
          return false;
        }
      }
    }
    return true;
  }

  void record_violation(const std::string& what, const std::string& key) {
    result_.violation = what;
    std::vector<Action> trace;
    std::string cur = key;
    while (true) {
      const auto& [pred, action] = predecessor_.at(cur);
      if (pred.empty()) break;
      trace.push_back(action);
      cur = pred;
    }
    result_.counterexample.assign(trace.rbegin(), trace.rend());
  }

  ExplorerResult finish() {
    result_.states = states_.size();
    result_.ok = result_.violation.empty() && !result_.truncated;
    return result_;
  }

  ExplorerConfig config_;
  ExplorerResult result_;
  std::unordered_map<std::string, SysState> states_;
  std::unordered_map<std::string, std::pair<std::string, Action>>
      predecessor_;
};

}  // namespace

ExplorerResult explore_raymond(const ExplorerConfig& config) {
  return RaymondExplorer(config).run();
}

}  // namespace dmx::modelcheck
