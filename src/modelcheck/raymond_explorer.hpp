// Exhaustive explicit-state model checker for Raymond's tree algorithm —
// the baseline Neilsen is compared against head-to-head. Same design as
// the Neilsen explorer (src/modelcheck/explorer.hpp): bounded request
// budgets make the space finite; transitions run the production
// RaymondNode handlers; every reachable state is checked for
//   * token uniqueness (exactly one HOLDER==self or in-flight PRIVILEGE),
//   * at most one node in its critical section,
//   * HOLDER pointers acyclic and leading to the token,
//   * no terminal state leaving a waiter stuck.
#pragma once

#include "modelcheck/explorer.hpp"

namespace dmx::modelcheck {

/// Runs the exhaustive search for Raymond's algorithm. Reuses
/// ExplorerConfig/ExplorerResult from the Neilsen explorer.
ExplorerResult explore_raymond(const ExplorerConfig& config);

}  // namespace dmx::modelcheck
