#include "modelcheck/swarm.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"
#include "harness/cluster.hpp"
#include "modelcheck/invariants.hpp"
#include "net/latency.hpp"
#include "net/network.hpp"
#include "service/lock_space.hpp"
#include "service/space_workload.hpp"
#include "topology/tree.hpp"
#include "workload/workload.hpp"

namespace dmx::modelcheck {
namespace {

/// FNV-1a 64-bit over the network event stream, mirroring the determinism
/// golden tests: tag, envelope id, route, ticks, message description.
class SwarmTraceHasher final : public net::NetworkObserver {
 public:
  void on_send(const net::Envelope& env) override { mix('S', env); }
  void on_deliver(const net::Envelope& env) override { mix('D', env); }
  std::uint64_t digest() const { return hash_; }

 private:
  void mix(char tag, const net::Envelope& env) {
    byte(static_cast<unsigned char>(tag));
    u64(env.id);
    u64(static_cast<std::uint64_t>(env.from));
    u64(static_cast<std::uint64_t>(env.to));
    u64(static_cast<std::uint64_t>(env.sent_at));
    u64(static_cast<std::uint64_t>(env.deliver_at));
    for (const char c : env.message->describe()) {
      byte(static_cast<unsigned char>(c));
    }
  }
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }

  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// Multi-resource variant: the resource id joins the hash (two runs that
/// route the same bytes to different resources must differ). Kept separate
/// from SwarmTraceHasher so the single-resource pinned goldens are
/// untouched.
class SpaceTraceHasher final : public net::NetworkObserver {
 public:
  void on_send(const net::Envelope& env) override { mix('S', env); }
  void on_deliver(const net::Envelope& env) override { mix('D', env); }
  std::uint64_t digest() const { return hash_; }

 private:
  void mix(char tag, const net::Envelope& env) {
    byte(static_cast<unsigned char>(tag));
    u64(env.id);
    u64(static_cast<std::uint64_t>(env.resource));
    u64(static_cast<std::uint64_t>(env.from));
    u64(static_cast<std::uint64_t>(env.to));
    u64(static_cast<std::uint64_t>(env.sent_at));
    u64(static_cast<std::uint64_t>(env.deliver_at));
    for (const char c : env.message->describe()) {
      byte(static_cast<unsigned char>(c));
    }
  }
  void byte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 1099511628211ULL;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<unsigned char>(v >> (8 * i)));
  }

  std::uint64_t hash_ = 14695981039346656037ULL;
};

std::string topology_name(const SwarmConfig& config) {
  switch (config.topology) {
    case SwarmConfig::Topology::kLine:
      return "line";
    case SwarmConfig::Topology::kStar:
      return "star";
    case SwarmConfig::Topology::kRandom:
      break;
  }
  return "random";
}

/// One-line repro: everything that determines the run, in a form that can
/// be copied out of a failing test log straight into a SwarmConfig.
std::string make_repro(const SwarmConfig& config) {
  std::string repro = "swarm algorithm=" + config.algorithm->name +
                      " n=" + std::to_string(config.n) +
                      " seed=" + std::to_string(config.seed) +
                      " topology=" + topology_name(config) +
                      " resources=" + std::to_string(config.resources);
  if (!config.fault_plan.empty()) {
    repro += " faults='" + config.fault_plan.describe() + "'";
    repro += config.crash_recovery_enabled ? " recovery=on" : " recovery=off";
  }
  if (config.queue_local) {
    repro += " queue_local=on lease.max_chain=" +
             std::to_string(config.lease.max_chain);
  }
  return repro;
}

topology::Tree make_tree(const SwarmConfig& config) {
  switch (config.topology) {
    case SwarmConfig::Topology::kLine:
      return topology::Tree::line(config.n);
    case SwarmConfig::Topology::kStar:
      return topology::Tree::star(config.n, 1);
    case SwarmConfig::Topology::kRandom:
      break;
  }
  return topology::Tree::random_tree(config.n, config.seed);
}

StateView make_view(harness::Cluster& cluster) {
  StateView view;
  view.n = cluster.size();
  view.node = [&cluster](NodeId v) -> const proto::MutexNode& {
    return cluster.node(v);
  };
  view.phase = [&cluster](NodeId v) {
    if (cluster.is_in_cs(v)) return CsPhase::kInCs;
    return cluster.is_waiting(v) ? CsPhase::kWaiting : CsPhase::kIdle;
  };
  view.for_each_in_flight =
      [&cluster](const std::function<void(NodeId, NodeId,
                                          const net::Message&)>& fn) {
        cluster.network().for_each_in_flight(
            [&fn](const net::Envelope& env) {
              fn(env.from, env.to, *env.message);
            });
      };
  return view;
}

/// StateView of one resource of a LockSpace: the per-algorithm structural
/// hooks (NEXT forest, HOLDER walk, ...) run unchanged against each
/// resource's protocol instances, with in-flight traffic filtered to that
/// resource. After a crash repair the structure lives in the compact
/// survivor world, so the view is built over the current epoch's
/// membership: node ids are ranks, in-flight endpoints are translated,
/// and stale-epoch envelopes (already fenced, structurally meaningless)
/// are excluded.
StateView make_space_view(service::LockSpace& space, ResourceId r) {
  const fault::Membership* m = &space.membership(r);
  const Epoch epoch = space.epoch(r);
  StateView view;
  view.n = m->size();
  view.node = [&space, r, m](NodeId v) -> const proto::MutexNode& {
    return space.node(r, m->original_of(v));
  };
  view.phase = [&space, r, m](NodeId v) {
    const NodeId original = m->original_of(v);
    if (space.is_in_cs(r, original)) return CsPhase::kInCs;
    return space.is_waiting(r, original) ? CsPhase::kWaiting : CsPhase::kIdle;
  };
  view.for_each_in_flight =
      [&space, r, m, epoch](const std::function<void(NodeId, NodeId,
                                                     const net::Message&)>& fn) {
        space.network().for_each_in_flight(
            [&fn, r, m, epoch](const net::Envelope& env) {
              if (env.resource != r || env.epoch != epoch) return;
              fn(m->rank_of(env.from), m->rank_of(env.to), *env.message);
            });
      };
  return view;
}

/// Multi-resource swarm schedule: one LockSpace, `config.resources` named
/// resources, a Zipf-skewed workload, and the full per-event invariant
/// stack applied to the resource each event touched.
SwarmResult run_swarm_space(const SwarmConfig& config) {
  service::LockSpaceConfig space_config;
  space_config.n = config.n;
  space_config.algorithm = *config.algorithm;
  if (config.algorithm->needs_tree) {
    space_config.tree = make_tree(config);
  }
  space_config.latency_model =
      std::make_unique<net::UniformLatency>(config.latency_lo,
                                            config.latency_hi);
  space_config.seed = config.seed;
  space_config.fault_plan = config.fault_plan;
  space_config.recovery_enabled = config.crash_recovery_enabled;
  space_config.detect_after = config.detect_after;
  space_config.queue_local = config.queue_local;
  space_config.lease = config.lease;

  SwarmResult result;
  result.repro = make_repro(config);
  service::LockSpace space(std::move(space_config));

  SpaceTraceHasher hasher;
  space.network().set_observer(&hasher);

  const InvariantHook hook = invariant_hook_for(*config.algorithm);
  if (hook != nullptr) {
    space.set_post_event_hook([hook](service::LockSpace& s, ResourceId r) {
      // Between a fault and its repair the structure is legitimately
      // broken (paths lead into the crashed node); structural checks
      // resume on the repaired compact world.
      if (s.is_degraded(r)) return;
      const std::string violation = hook(make_space_view(s, r));
      if (!violation.empty()) throw std::logic_error(violation);
    });
  }

  for (int i = 1; i <= config.resources; ++i) {
    space.open("swarm/res-" + std::to_string(i));
  }

  if (config.drop_probability > 0.0) {
    space.network().set_drop_probability(config.drop_probability);
  }
  if (!config.duplicate_next_kind.empty()) {
    space.network().duplicate_next(config.duplicate_next_kind);
  }

  service::SpaceWorkloadConfig wl;
  wl.target_entries = config.target_entries;
  wl.clients_per_node = config.clients_per_node;
  wl.zipf_s = config.zipf_s;
  wl.mean_think_ticks = config.mean_think_ticks;
  wl.hold_lo = config.hold_lo;
  wl.hold_hi = config.hold_hi;
  wl.seed = config.seed * 0x9e3779b97f4a7c15ULL + 1;
  wl.queue_local = config.queue_local;

  try {
    const service::SpaceWorkloadResult run =
        service::run_space_workload(space, wl);
    result.entries = run.entries;
    result.makespan = run.makespan;
    result.max_wait_ticks = run.max_wait_ticks;
  } catch (const std::logic_error& error) {
    result.violation = error.what();
  }
  result.messages = space.network().stats().total_sent;
  result.trace_hash = hasher.digest();

  if (result.violation.empty()) {
    for (ResourceId r = 0; r < space.resource_count(); ++r) {
      // A resource left degraded (no live majority, or recovery off) may
      // legitimately strand waiters; anything else must have drained —
      // including every node's local waiter queue.
      if (space.is_degraded(r)) continue;
      for (NodeId v = 1; v <= config.n && result.violation.empty(); ++v) {
        if (space.is_waiting(r, v)) {
          result.violation = "node " + std::to_string(v) +
                             " still waiting on " + space.name(r) +
                             " after quiescence";
        } else if (space.local_queue_depth(r, v) != 0) {
          result.violation = "node " + std::to_string(v) + " still has " +
                             std::to_string(space.local_queue_depth(r, v)) +
                             " queued local waiters on " + space.name(r) +
                             " after quiescence";
        }
      }
    }
  }
  if (result.violation.empty() && config.max_wait_bound > 0 &&
      result.max_wait_ticks > config.max_wait_bound) {
    result.violation = "bounded waiting violated: max request->grant wait " +
                       std::to_string(result.max_wait_ticks) +
                       " ticks exceeds bound " +
                       std::to_string(config.max_wait_bound);
  }
  result.ok = result.violation.empty();
  if (!result.ok) result.violation += "\nrepro: " + result.repro;
  space.network().set_observer(nullptr);
  return result;
}

}  // namespace

SwarmResult run_swarm(const SwarmConfig& config) {
  DMX_CHECK_MSG(config.algorithm != nullptr,
                "SwarmConfig::algorithm is required");
  DMX_CHECK(config.n >= 2);
  DMX_CHECK(config.latency_lo >= 1 && config.latency_lo <= config.latency_hi);
  DMX_CHECK(config.resources >= 1);
  if (config.resources > 1 || !config.fault_plan.empty()) {
    // Crash faults always run on the LockSpace substrate — that is where
    // the detection/election/regeneration machinery lives.
    return run_swarm_space(config);
  }

  harness::ClusterConfig cluster_config;
  cluster_config.n = config.n;
  cluster_config.initial_token_holder = config.initial_token_holder;
  if (config.algorithm->needs_tree) {
    cluster_config.tree = make_tree(config);
  }
  cluster_config.latency_model =
      std::make_unique<net::UniformLatency>(config.latency_lo,
                                            config.latency_hi);
  cluster_config.seed = config.seed;

  SwarmResult result;
  result.repro = make_repro(config);
  harness::Cluster cluster(*config.algorithm, std::move(cluster_config));

  SwarmTraceHasher hasher;
  cluster.network().set_observer(&hasher);

  // Re-check the algorithm's structural invariants after every event, on
  // top of the cluster's built-in CS-exclusivity and token-uniqueness
  // checks.
  const InvariantHook hook = invariant_hook_for(*config.algorithm);
  if (hook != nullptr) {
    cluster.set_post_event_hook([hook](harness::Cluster& c) {
      const std::string violation = hook(make_view(c));
      if (!violation.empty()) throw std::logic_error(violation);
    });
  }

  if (config.drop_probability > 0.0) {
    cluster.network().set_drop_probability(config.drop_probability);
  }
  if (!config.duplicate_next_kind.empty()) {
    cluster.network().duplicate_next(config.duplicate_next_kind);
  }

  workload::WorkloadConfig wl;
  wl.target_entries = config.target_entries;
  wl.mean_think_ticks = config.mean_think_ticks;
  wl.hold_lo = config.hold_lo;
  wl.hold_hi = config.hold_hi;
  // Decouple the workload's RNG stream from the network's (both descend
  // from the master seed, deterministically).
  wl.seed = config.seed * 0x9e3779b97f4a7c15ULL + 1;

  try {
    const workload::WorkloadResult run = workload::run_workload(cluster, wl);
    result.entries = run.entries;
    result.makespan = run.makespan;
  } catch (const std::logic_error& error) {
    result.violation = error.what();
  }
  result.messages = cluster.network().stats().total_sent;
  result.trace_hash = hasher.digest();

  if (result.violation.empty()) {
    // Bounded waiting: every request must have been granted (the drain in
    // run_workload leaves no waiter behind in a live algorithm), and the
    // longest request→grant wait is reported as the witness.
    std::vector<Tick> requested_at(static_cast<std::size_t>(config.n) + 1,
                                   -1);
    for (const harness::CsEvent& event : cluster.events()) {
      const auto v = static_cast<std::size_t>(event.node);
      switch (event.kind) {
        case harness::CsEvent::Kind::kRequest:
          requested_at[v] = event.at;
          break;
        case harness::CsEvent::Kind::kEnter:
          if (requested_at[v] >= 0) {
            result.max_wait_ticks =
                std::max(result.max_wait_ticks, event.at - requested_at[v]);
            requested_at[v] = -1;
          }
          break;
        case harness::CsEvent::Kind::kExit:
          break;
      }
    }
    for (NodeId v = 1; v <= config.n; ++v) {
      if (cluster.is_waiting(v)) {
        result.violation = "node " + std::to_string(v) +
                           " still waiting after quiescence";
        break;
      }
    }
  }
  result.ok = result.violation.empty();
  if (!result.ok) result.violation += "\nrepro: " + result.repro;
  cluster.network().set_observer(nullptr);
  return result;
}

}  // namespace dmx::modelcheck
