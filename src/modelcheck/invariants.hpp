// Per-algorithm structural invariant hooks shared by the exhaustive
// explorer and the seeded swarm tester.
//
// The generic engines check the universal properties themselves (at most
// one node in its critical section; exactly one token counting in-flight
// token messages). Everything an algorithm guarantees beyond that — the
// Neilsen NEXT-forest acyclicity and sink census of Chapter 3, Raymond's
// HOLDER pointers leading to the token — lives here, keyed by the
// algorithm's registry name, expressed over a substrate-independent
// StateView so the same predicate runs on restored snapshots (explorer)
// and on a live cluster (swarm).
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "net/message.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::modelcheck {

/// Application-level view of one node's critical-section progress, as the
/// driving engine tracks it (request issued / grant received / released).
enum class CsPhase : std::uint8_t { kIdle, kWaiting, kInCs };

/// Substrate-independent view of one system state.
struct StateView {
  int n = 0;
  /// Node `v` (1..n), reflecting the state under inspection.
  std::function<const proto::MutexNode&(NodeId)> node;
  /// The engine's application phase for node `v`.
  std::function<CsPhase(NodeId)> phase;
  /// Visits every in-flight message as (from, to, message).
  std::function<void(
      const std::function<void(NodeId, NodeId, const net::Message&)>&)>
      for_each_in_flight;

  /// Number of in-flight messages of `kind` (walks for_each_in_flight).
  std::size_t count_in_flight(std::string_view kind) const;
  /// Total number of in-flight messages.
  std::size_t count_in_flight_total() const;
};

/// Returns the first violated invariant as a human-readable description,
/// or an empty string when the state is clean.
using InvariantHook = std::function<std::string(const StateView&)>;

/// The structural hook registered for `algorithm` (by registry name), or
/// a null function when the algorithm has none beyond the generic checks.
InvariantHook invariant_hook_for(const proto::Algorithm& algorithm);

}  // namespace dmx::modelcheck
