// Deterministic seeded swarm tester — randomized schedule exploration for
// system sizes the exhaustive explorer cannot reach.
//
// One seed fully determines one run: topology (for tree algorithms),
// per-message adversarial latency (uniform in a configurable band, which
// permutes delivery order across channels), workload think/hold times,
// and any fault injection. The same universal and per-algorithm
// invariants the explorer checks (modelcheck/invariants.hpp) are
// re-checked after EVERY simulator event, and the full network event
// stream is folded into a trace hash so regressions in schedule
// randomization are detectable: same seed ⇒ same hash, bit for bit.
//
// With fault injection off, a run must complete cleanly and every request
// must be granted (bounded waiting is witnessed by max_wait_ticks). With
// drop/duplicate injection on, the run must instead END IN A DETECTED
// failure — a token-uniqueness violation, a protocol assertion, or a
// stalled workload — never in silent mis-execution.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "proto/algorithm.hpp"
#include "service/lease.hpp"

namespace dmx::modelcheck {

struct SwarmConfig {
  /// The algorithm under test (must outlive the run).
  const proto::Algorithm* algorithm = nullptr;
  int n = 8;
  /// Master seed: everything random in the run derives from it.
  std::uint64_t seed = 1;
  /// Topology family for tree algorithms (ignored otherwise). kRandom
  /// draws a fresh labelled tree from the seed.
  enum class Topology { kLine, kStar, kRandom } topology = Topology::kRandom;
  NodeId initial_token_holder = 1;
  /// Total CS entries to complete across all nodes.
  std::uint64_t target_entries = 40;
  /// Adversarial latency band: each message's latency is uniform in
  /// [latency_lo, latency_hi], reshuffling cross-channel delivery order.
  Tick latency_lo = 1;
  Tick latency_hi = 16;
  /// Workload shape (exponential think, uniform hold).
  double mean_think_ticks = 2.0;
  Tick hold_lo = 0;
  Tick hold_hi = 3;
  /// Fault injection (defaults off). With either enabled the run is
  /// expected to fail detectably.
  double drop_probability = 0.0;
  /// One-shot duplication of the next message of this kind ("" = off).
  std::string duplicate_next_kind;
  /// Crash/recovery schedule in virtual time. A non-empty plan routes the
  /// run through the LockSpace substrate (even single-resource) so the
  /// crash-repair machinery — detection, election, regeneration, epoch
  /// fencing — is under the swarm's per-event invariant microscope. With
  /// `crash_recovery_enabled` the run must still complete green; with it
  /// off, a token-holder crash must end in a DETECTED token loss.
  fault::FaultPlan fault_plan;
  bool crash_recovery_enabled = true;
  /// Failure-detection timeout for crash repairs (virtual ticks).
  Tick detect_after = 25;
  /// Multi-resource mode: > 1 runs the schedule against a service::
  /// LockSpace serving this many named resources over one network, with
  /// CS exclusivity and token uniqueness checked PER RESOURCE (plus the
  /// per-algorithm structural hooks, per resource) after every event.
  /// Cross-resource interleavings — envelopes of many resources racing on
  /// the same channels — are exactly what single-resource swarms can
  /// never explore.
  int resources = 1;
  /// Zipf skew of resource popularity in multi-resource mode (0=uniform).
  double zipf_s = 0.0;
  /// Client loops per node in multi-resource mode.
  int clients_per_node = 1;
  /// Multi-resource mode: clients keep their Zipf draw even when the node
  /// already has that resource outstanding, so acquires queue locally and
  /// co-located waiter chains form — the precondition for lease chaining.
  bool queue_local = false;
  /// Local grant-chaining lease policy applied when queue_local is on.
  service::LeaseConfig lease;
  /// When > 0, the run fails if any request→grant wait exceeds this many
  /// virtual ticks — the bounded-waiting check under chaining (0 = off).
  /// With the default finite lease cap every algorithm must pass; with an
  /// unbounded lease (max_chain < 0) a hot-shard workload must trip it —
  /// the starvation counterexample.
  Tick max_wait_bound = 0;
};

struct SwarmResult {
  /// True iff the run completed with every invariant holding and every
  /// request granted.
  bool ok = false;
  /// Empty when ok; otherwise what was detected (invariant violation,
  /// protocol assertion, or workload stall).
  std::string violation;
  std::uint64_t entries = 0;
  std::uint64_t messages = 0;
  /// FNV-1a over the network event stream (sends and deliveries with
  /// routes, ticks and message descriptions). Deterministic per seed.
  std::uint64_t trace_hash = 0;
  /// Longest request→grant wait observed — the bounded-waiting witness.
  Tick max_wait_ticks = 0;
  Tick makespan = 0;
  /// One-line repro of this run (algorithm, n, seed, topology, fault
  /// plan). Appended to `violation` on failure so a red swarm seed can be
  /// replayed from the test log alone.
  std::string repro;
};

/// Runs one seeded swarm schedule.
SwarmResult run_swarm(const SwarmConfig& config);

}  // namespace dmx::modelcheck
