#include "modelcheck/explorer.hpp"

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "fault/membership.hpp"
#include "net/message.hpp"
#include "net/message_kind.hpp"
#include "proto/mutex_node.hpp"
#include "proto/snapshot.hpp"
#include "quorum/election.hpp"

namespace dmx::modelcheck {
namespace {

/// Messages in flight are immutable once sent, so explored states share
/// them; copying a system state copies pointers, not payloads.
using SharedMessage = std::shared_ptr<const net::Message>;

/// Full system state: per-node protocol snapshots plus the engine's own
/// bookkeeping (application phase, remaining request budget) plus the
/// FIFO channel contents. The std::map keeps a canonical channel order
/// for encoding.
struct SysState {
  std::vector<std::string> node_blob;   // index 1..n
  std::vector<std::uint8_t> phase;      // index 1..n, CsPhase
  std::vector<std::uint8_t> budget;     // index 1..n
  std::map<std::pair<NodeId, NodeId>, std::vector<SharedMessage>> channels;
  /// Crash epoch flags: the configured victim has crashed / the survivors
  /// have regenerated. Post-regeneration, node_blob holds COMPACT-world
  /// snapshots at the survivors' original indices.
  std::uint8_t crashed = 0;
  std::uint8_t regenerated = 0;

  std::string encode() const {
    proto::SnapshotWriter w;
    w.u8(crashed);
    w.u8(regenerated);
    for (std::size_t v = 1; v < node_blob.size(); ++v) {
      w.str(node_blob[v]);
      w.u8(phase[v]);
      w.u8(budget[v]);
    }
    for (const auto& [channel, fifo] : channels) {
      if (fifo.empty()) continue;
      w.i32(channel.first);
      w.i32(channel.second);
      w.i32(static_cast<std::int32_t>(fifo.size()));
      for (const SharedMessage& message : fifo) {
        w.str(message->encode());
      }
    }
    return w.take();
  }
};

/// Context adapter capturing handler outputs into the successor state.
class CaptureContext final : public proto::Context {
 public:
  /// `self` is always an ORIGINAL node id. With a `membership`, the
  /// handler lives in the regenerated compact world: self()/send() speak
  /// ranks to it while channels stay keyed by original ids. `drop_to`
  /// models the network discarding traffic to a dead node.
  CaptureContext(NodeId self, int n, SysState& state,
                 const fault::Membership* membership = nullptr,
                 NodeId drop_to = kNilNode)
      : self_(self), n_(n), state_(state), membership_(membership),
        drop_to_(drop_to) {}

  NodeId self() const override {
    return membership_ != nullptr ? membership_->rank_of(self_) : self_;
  }
  int cluster_size() const override {
    return membership_ != nullptr ? membership_->size() : n_;
  }
  void send(NodeId to, net::MessagePtr message) override {
    const NodeId to_orig =
        membership_ != nullptr ? membership_->original_of(to) : to;
    DMX_CHECK(to_orig >= 1 && to_orig <= n_ && to_orig != self_);
    if (to_orig == drop_to_) return;  // dead destination: network drops it
    state_.channels[{self_, to_orig}].emplace_back(std::move(message));
  }
  void grant() override {
    const auto v = static_cast<std::size_t>(self_);
    if (state_.phase[v] != static_cast<std::uint8_t>(CsPhase::kWaiting)) {
      throw std::logic_error("grant() for node " + std::to_string(self_) +
                             " which has no pending request");
    }
    state_.phase[v] = static_cast<std::uint8_t>(CsPhase::kInCs);
  }

 private:
  NodeId self_;
  int n_;
  SysState& state_;
  const fault::Membership* membership_;
  NodeId drop_to_;
};

class Explorer {
 public:
  explicit Explorer(const ExplorerConfig& config) : config_(config) {
    DMX_CHECK_MSG(config.algorithm != nullptr,
                  "ExplorerConfig::algorithm is required");
    DMX_CHECK(config.n >= 1);
    DMX_CHECK(config.requests_per_node >= 1 &&
              config.requests_per_node <= 255);
    DMX_CHECK(config.initial_token_holder >= 1 &&
              config.initial_token_holder <= config.n);
    if (config.algorithm->needs_tree) {
      DMX_CHECK_MSG(config.tree != nullptr,
                    config.algorithm->name << " requires a logical tree");
      DMX_CHECK(config.tree->size() == config.n);
    }
    for (const std::string& kind : config.algorithm->token_message_kinds) {
      token_kinds_.push_back(net::MessageKind::of(kind));
    }
    for (const std::string& kind : config.duplicate_message_kinds) {
      duplicate_kinds_.push_back(net::MessageKind::of(kind));
    }
    hook_ = invariant_hook_for(*config.algorithm);

    proto::ClusterSpec spec;
    spec.n = config_.n;
    spec.initial_token_holder = config_.initial_token_holder;
    spec.tree = config_.tree;
    nodes_ = config_.algorithm->factory(spec);
    DMX_CHECK(nodes_.size() == static_cast<std::size_t>(config_.n) + 1);
    if (config_.mutate_initial) config_.mutate_initial(nodes_);

    if (config_.crash_node != kNilNode) {
      DMX_CHECK(config_.crash_node >= 1 && config_.crash_node <= config_.n);
      // The post-crash world is fully determined by (n, victim): survivors
      // membership, quorum-elected regenerator and the fresh compact
      // protocol instances can all be built once up front.
      std::vector<std::uint8_t> up(static_cast<std::size_t>(config_.n) + 1,
                                   1);
      up[static_cast<std::size_t>(config_.crash_node)] = 0;
      membership_ = fault::Membership::survivors(config_.n, up);
      regen_winner_ = quorum::elect_regenerator(config_.n, up);
      regen_enabled_ = config_.regeneration && regen_winner_ != kNilNode;
      if (regen_enabled_) {
        proto::ClusterSpec regen_spec;
        regen_spec.n = membership_.size();
        regen_spec.initial_token_holder = membership_.rank_of(regen_winner_);
        regen_spec.epoch = 1;
        if (config_.algorithm->needs_tree) {
          regen_tree_ = topology::Tree::star(
              regen_spec.n, regen_spec.initial_token_holder);
          regen_spec.tree = &*regen_tree_;
        }
        regen_nodes_ = config_.algorithm->factory(regen_spec);
        regen_init_blob_.assign(1, "");
        for (NodeId r = 1; r <= membership_.size(); ++r) {
          regen_init_blob_.push_back(
              regen_nodes_[static_cast<std::size_t>(r)]->snapshot());
        }
      }
    }
  }

  ExplorerResult run() {
    SysState initial;
    initial.node_blob.resize(static_cast<std::size_t>(config_.n) + 1);
    initial.phase.assign(static_cast<std::size_t>(config_.n) + 1,
                         static_cast<std::uint8_t>(CsPhase::kIdle));
    initial.budget.assign(
        static_cast<std::size_t>(config_.n) + 1,
        static_cast<std::uint8_t>(config_.requests_per_node));
    for (NodeId v = 1; v <= config_.n; ++v) {
      initial.node_blob[static_cast<std::size_t>(v)] =
          nodes_[static_cast<std::size_t>(v)]->snapshot();
    }

    std::deque<std::string> frontier;
    const std::string initial_key = initial.encode();
    states_by_key_.emplace(initial_key, initial);
    predecessor_.emplace(initial_key,
                         std::pair<std::string, Action>{"", Action{}});
    frontier.push_back(initial_key);
    if (!check_state(initial, initial_key)) {
      dump_node_states(initial);
      return finish();
    }

    while (!frontier.empty()) {
      if (states_by_key_.size() > config_.max_states) {
        result_.truncated = true;
        result_.violation = "state budget exhausted (inconclusive)";
        return finish();
      }
      const std::string key = std::move(frontier.front());
      frontier.pop_front();
      const SysState& state = states_by_key_.at(key);

      const std::vector<Action> actions = enabled_actions(state);
      if (actions.empty()) {
        ++result_.terminal_states;
        // Terminal: channels drained, nobody in CS. A waiter here would
        // wait forever — deadlock/starvation (Theorems 1 and 2).
        for (NodeId v = 1; v <= config_.n; ++v) {
          if (state.phase[static_cast<std::size_t>(v)] !=
              static_cast<std::uint8_t>(CsPhase::kIdle)) {
            record_violation("terminal state leaves node " +
                                 std::to_string(v) + " waiting forever",
                             key);
            dump_node_states(state);
            return finish();
          }
        }
        continue;
      }
      for (const Action& action : actions) {
        SysState next;
        try {
          next = apply(state, action);
        } catch (const std::logic_error& error) {
          // A handler precondition fired (e.g. a duplicated token message
          // delivered to a node that is not waiting): the production code
          // itself detected the corruption. Report it with its trace.
          result_.violation =
              std::string("protocol assertion: ") + error.what();
          result_.counterexample = trace_to(key);
          result_.counterexample.push_back(action);
          return finish();
        }
        ++result_.transitions;
        std::string next_key = next.encode();
        if (states_by_key_.find(next_key) != states_by_key_.end()) {
          continue;
        }
        predecessor_.emplace(next_key,
                             std::pair<std::string, Action>{key, action});
        const bool ok = check_state(next, next_key);
        if (!ok) dump_node_states(next);
        states_by_key_.emplace(next_key, std::move(next));
        if (!ok) return finish();
        frontier.push_back(std::move(next_key));
      }
    }
    return finish();
  }

 private:
  std::vector<Action> enabled_actions(const SysState& state) const {
    std::vector<Action> actions;
    for (NodeId v = 1; v <= config_.n; ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (state.phase[i] == static_cast<std::uint8_t>(CsPhase::kIdle) &&
          state.budget[i] > 0) {
        actions.push_back({Action::Type::kRequest, v, kNilNode});
      }
      if (state.phase[i] == static_cast<std::uint8_t>(CsPhase::kInCs)) {
        actions.push_back({Action::Type::kRelease, v, kNilNode});
      }
    }
    for (const auto& [channel, fifo] : state.channels) {
      if (fifo.empty()) continue;
      actions.push_back({Action::Type::kDeliver, channel.second,
                         channel.first});
      if (is_duplicate_kind(fifo.front()->kind_id())) {
        actions.push_back({Action::Type::kDeliverDup, channel.second,
                           channel.first});
      }
    }
    if (config_.crash_node != kNilNode && !state.crashed) {
      actions.push_back({Action::Type::kCrash, config_.crash_node, kNilNode});
    }
    if (state.crashed && !state.regenerated && regen_enabled_) {
      // Repair defers while a survivor is inside its CS (the LockSpace
      // semantics): regeneration only fires on an unoccupied resource.
      bool occupied = false;
      for (NodeId v = 1; v <= config_.n; ++v) {
        occupied |= state.phase[static_cast<std::size_t>(v)] ==
                    static_cast<std::uint8_t>(CsPhase::kInCs);
      }
      if (!occupied) {
        actions.push_back({Action::Type::kRegenerate, regen_winner_,
                           kNilNode});
      }
    }
    return actions;
  }

  bool is_duplicate_kind(net::MessageKind kind) const {
    for (const net::MessageKind candidate : duplicate_kinds_) {
      if (candidate == kind) return true;
    }
    return false;
  }

  SysState apply(const SysState& state, const Action& action) {
    SysState next = state;
    if (action.type == Action::Type::kCrash) {
      apply_crash(next);
      return next;
    }
    if (action.type == Action::Type::kRegenerate) {
      apply_regenerate(next);
      return next;
    }
    const auto i = static_cast<std::size_t>(action.node);
    proto::MutexNode& node = state.regenerated
                                 ? *regen_nodes_[static_cast<std::size_t>(
                                       membership_.rank_of(action.node))]
                                 : *nodes_[i];
    node.restore(state.node_blob[i]);
    CaptureContext ctx(action.node, config_.n, next,
                       state.regenerated ? &membership_ : nullptr,
                       state.crashed ? config_.crash_node : kNilNode);
    switch (action.type) {
      case Action::Type::kRequest:
        DMX_CHECK(next.budget[i] > 0);
        next.budget[i] -= 1;
        next.phase[i] = static_cast<std::uint8_t>(CsPhase::kWaiting);
        node.request_cs(ctx);
        break;
      case Action::Type::kRelease:
        next.phase[i] = static_cast<std::uint8_t>(CsPhase::kIdle);
        node.release_cs(ctx);
        break;
      case Action::Type::kDeliver:
      case Action::Type::kDeliverDup: {
        auto it = next.channels.find({action.from, action.node});
        DMX_CHECK(it != next.channels.end() && !it->second.empty());
        const SharedMessage message = it->second.front();
        if (action.type == Action::Type::kDeliver) {
          it->second.erase(it->second.begin());
          if (it->second.empty()) next.channels.erase(it);
        }
        node.on_message(ctx,
                        state.regenerated ? membership_.rank_of(action.from)
                                          : action.from,
                        *message);
        break;
      }
      case Action::Type::kCrash:
      case Action::Type::kRegenerate:
        DMX_CHECK(false);  // handled above
    }
    next.node_blob[i] = node.snapshot();
    return next;
  }

  /// The victim dies in place: its CS (if any) is silently vacated, its
  /// request budget voided, its state discarded and every message
  /// addressed to it dropped (the network's dead-destination discard).
  /// Messages it already sent stay in flight — survivors may still act on
  /// a dead node's last words until the epoch fence.
  void apply_crash(SysState& next) const {
    const auto c = static_cast<std::size_t>(config_.crash_node);
    next.crashed = 1;
    next.phase[c] = static_cast<std::uint8_t>(CsPhase::kIdle);
    next.budget[c] = 0;
    next.node_blob[c].clear();
    for (auto it = next.channels.begin(); it != next.channels.end();) {
      it = it->first.second == config_.crash_node ? next.channels.erase(it)
                                                  : std::next(it);
    }
  }

  /// The elected winner regenerates: every pre-crash in-flight message is
  /// fenced (the epoch bump makes them all stale), the survivors restart
  /// from fresh compact-world instances with the token minted at the
  /// winner, and every survivor still waiting re-issues its request in
  /// ascending id order (the LockSpace repair semantics).
  void apply_regenerate(SysState& next) {
    next.regenerated = 1;
    next.channels.clear();
    for (NodeId r = 1; r <= membership_.size(); ++r) {
      next.node_blob[static_cast<std::size_t>(membership_.original_of(r))] =
          regen_init_blob_[static_cast<std::size_t>(r)];
    }
    for (NodeId v = 1; v <= config_.n; ++v) {
      const auto i = static_cast<std::size_t>(v);
      if (!membership_.contains(v)) continue;
      if (next.phase[i] != static_cast<std::uint8_t>(CsPhase::kWaiting)) {
        continue;
      }
      proto::MutexNode& node =
          *regen_nodes_[static_cast<std::size_t>(membership_.rank_of(v))];
      node.restore(next.node_blob[i]);
      CaptureContext ctx(v, config_.n, next, &membership_,
                         config_.crash_node);
      node.request_cs(ctx);
      next.node_blob[i] = node.snapshot();
    }
  }

  /// All safety checks; returns false (and records) on violation.
  bool check_state(const SysState& state, const std::string& key) {
    int occupants = 0;
    for (NodeId v = 1; v <= config_.n; ++v) {
      if (state.phase[static_cast<std::size_t>(v)] ==
          static_cast<std::uint8_t>(CsPhase::kInCs)) {
        ++occupants;
      }
    }
    if (occupants > 1) {
      record_violation("two nodes inside the critical section", key);
      return false;
    }
    const bool needs_nodes = config_.algorithm->token_based ||
                             hook_ != nullptr ||
                             config_.extra_invariant != nullptr;
    if (!needs_nodes) return true;

    // Restore the live workers to this state for has_token()/hook queries.
    // Post-regeneration the survivors' blobs are compact-world snapshots
    // and live in regen_nodes_; a crashed node's blob is empty and dead.
    restore_workers(state);
    if (config_.algorithm->token_based) {
      std::size_t tokens = 0;
      for (NodeId v = 1; v <= config_.n; ++v) {
        const proto::MutexNode* node = worker(state, v);
        if (node != nullptr && node->has_token()) ++tokens;
      }
      for (const auto& [channel, fifo] : state.channels) {
        for (const SharedMessage& message : fifo) {
          for (const net::MessageKind kind : token_kinds_) {
            if (message->kind_id() == kind) ++tokens;
          }
        }
      }
      const bool degraded = state.crashed && !state.regenerated;
      if (degraded) {
        // The token may have died with the victim (count 0, the loss the
        // regeneration exists to repair) but must never be duplicated —
        // and once regenerated, exactly one token must exist again, with
        // every old-epoch token fenced out of existence.
        if (tokens > 1) {
          record_violation("token count " + std::to_string(tokens) +
                               " (must be <= 1 while degraded)",
                           key);
          return false;
        }
      } else if (tokens != 1) {
        record_violation("token count " + std::to_string(tokens) +
                             " (must be 1)",
                         key);
        return false;
      }
    }
    // Structural invariants are meaningless mid-degradation (the crash
    // broke the structure by definition); they resume over the compact
    // survivor world after regeneration.
    if (state.crashed && !state.regenerated) return true;
    if (hook_ != nullptr || config_.extra_invariant != nullptr) {
      const StateView view = make_view(state);
      if (hook_ != nullptr) {
        const std::string violation = hook_(view);
        if (!violation.empty()) {
          record_violation(violation, key);
          return false;
        }
      }
      if (config_.extra_invariant != nullptr) {
        const std::string violation = config_.extra_invariant(view);
        if (!violation.empty()) {
          record_violation(violation, key);
          return false;
        }
      }
    }
    return true;
  }

  /// Restores every live worker to `state` (no-op for the crashed node).
  void restore_workers(const SysState& state) {
    for (NodeId v = 1; v <= config_.n; ++v) {
      proto::MutexNode* node = worker(state, v);
      if (node == nullptr) continue;
      node->restore(state.node_blob[static_cast<std::size_t>(v)]);
    }
  }

  /// The worker instance carrying original node `v` in `state`'s world:
  /// the pre-crash instance, the compact regenerated instance, or nullptr
  /// for a dead node.
  proto::MutexNode* worker(const SysState& state, NodeId v) const {
    if (state.crashed && v == config_.crash_node) return nullptr;
    if (state.regenerated) {
      return regen_nodes_[static_cast<std::size_t>(membership_.rank_of(v))]
          .get();
    }
    return nodes_[static_cast<std::size_t>(v)].get();
  }

  StateView make_view(const SysState& state) {
    StateView view;
    if (state.regenerated) {
      // Compact survivor view: structural hooks (NEXT forest, HOLDER
      // walk) run over ranks 1..k exactly as the fresh instances see the
      // world.
      view.n = membership_.size();
      view.node = [this](NodeId r) -> const proto::MutexNode& {
        return *regen_nodes_[static_cast<std::size_t>(r)];
      };
      view.phase = [this, &state](NodeId r) {
        return static_cast<CsPhase>(state.phase[static_cast<std::size_t>(
            membership_.original_of(r))]);
      };
      view.for_each_in_flight =
          [this, &state](const std::function<void(NodeId, NodeId,
                                                  const net::Message&)>& fn) {
            for (const auto& [channel, fifo] : state.channels) {
              for (const SharedMessage& message : fifo) {
                fn(membership_.rank_of(channel.first),
                   membership_.rank_of(channel.second), *message);
              }
            }
          };
      return view;
    }
    view.n = config_.n;
    view.node = [this](NodeId v) -> const proto::MutexNode& {
      return *nodes_[static_cast<std::size_t>(v)];
    };
    view.phase = [&state](NodeId v) {
      return static_cast<CsPhase>(state.phase[static_cast<std::size_t>(v)]);
    };
    view.for_each_in_flight =
        [&state](const std::function<void(NodeId, NodeId,
                                          const net::Message&)>& fn) {
          for (const auto& [channel, fifo] : state.channels) {
            for (const SharedMessage& message : fifo) {
              fn(channel.first, channel.second, *message);
            }
          }
        };
    return view;
  }

  std::vector<Action> trace_to(const std::string& key) const {
    std::vector<Action> trace;
    std::string cur = key;
    while (true) {
      const auto& [pred, action] = predecessor_.at(cur);
      if (pred.empty()) break;
      trace.push_back(action);
      cur = pred;
    }
    return {trace.rbegin(), trace.rend()};
  }

  void record_violation(const std::string& what, const std::string& key) {
    result_.violation = what;
    result_.counterexample = trace_to(key);
  }

  /// Renders every node of `state` into the result, for diagnostics.
  void dump_node_states(const SysState& state) {
    result_.violating_node_states.assign(1, "");
    for (NodeId v = 1; v <= config_.n; ++v) {
      proto::MutexNode* node = worker(state, v);
      if (node == nullptr) {
        result_.violating_node_states.push_back("(crashed)");
        continue;
      }
      node->restore(state.node_blob[static_cast<std::size_t>(v)]);
      result_.violating_node_states.push_back(node->debug_state());
    }
  }

  ExplorerResult finish() {
    result_.states = states_by_key_.size();
    result_.ok = result_.violation.empty() && !result_.truncated;
    return result_;
  }

  ExplorerConfig config_;
  ExplorerResult result_;
  std::vector<net::MessageKind> token_kinds_;
  std::vector<net::MessageKind> duplicate_kinds_;
  InvariantHook hook_;
  /// Precomputed post-crash world (crash_node configured): survivor
  /// renumbering, quorum-elected winner, fresh compact instances and
  /// their initial snapshots (by rank).
  fault::Membership membership_;
  NodeId regen_winner_ = kNilNode;
  bool regen_enabled_ = false;
  std::optional<topology::Tree> regen_tree_;
  std::vector<std::unique_ptr<proto::MutexNode>> regen_nodes_;
  std::vector<std::string> regen_init_blob_;
  /// Live worker nodes, restored to whichever state is being expanded or
  /// checked; handlers only ever mutate the acting node.
  std::vector<std::unique_ptr<proto::MutexNode>> nodes_;
  std::unordered_map<std::string, SysState> states_by_key_;
  std::unordered_map<std::string, std::pair<std::string, Action>>
      predecessor_;
};

}  // namespace

std::string Action::to_string() const {
  switch (type) {
    case Type::kRequest:
      return "request(" + std::to_string(node) + ")";
    case Type::kRelease:
      return "release(" + std::to_string(node) + ")";
    case Type::kDeliver:
      return "deliver(" + std::to_string(from) + " -> " +
             std::to_string(node) + ")";
    case Type::kDeliverDup:
      return "deliver+dup(" + std::to_string(from) + " -> " +
             std::to_string(node) + ")";
    case Type::kCrash:
      return "crash(" + std::to_string(node) + ")";
    case Type::kRegenerate:
      return "regenerate(winner=" + std::to_string(node) + ")";
  }
  return "?";
}

ExplorerResult explore(const ExplorerConfig& config) {
  return Explorer(config).run();
}

}  // namespace dmx::modelcheck
