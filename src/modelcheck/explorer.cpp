#include "modelcheck/explorer.hpp"

#include <deque>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "core/messages.hpp"
#include "core/neilsen_node.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::modelcheck {
namespace {

using core::NeilsenNode;

/// In-flight message, compactly.
struct Msg {
  bool is_privilege = false;
  NodeId origin = kNilNode;  // REQUEST only
  bool operator==(const Msg&) const = default;
};

/// Compact per-node protocol state + remaining request budget.
struct NodeS {
  bool holding = false;
  NodeId next = kNilNode;
  NodeId follow = kNilNode;
  NeilsenNode::CsStatus cs = NeilsenNode::CsStatus::kIdle;
  int budget = 0;
  bool operator==(const NodeS&) const = default;
};

/// Full system state. Channels are FIFO per ordered pair; the std::map
/// keeps a canonical iteration order for encoding.
struct SysState {
  std::vector<NodeS> nodes;  // index 1..n
  std::map<std::pair<NodeId, NodeId>, std::vector<Msg>> channels;

  std::string encode() const {
    std::string out;
    out.reserve(nodes.size() * 5 + channels.size() * 8);
    for (std::size_t v = 1; v < nodes.size(); ++v) {
      const NodeS& node = nodes[v];
      out.push_back(node.holding ? 'H' : 'h');
      out.push_back(static_cast<char>('0' + node.next));
      out.push_back(static_cast<char>('0' + node.follow));
      out.push_back(static_cast<char>('0' + static_cast<int>(node.cs)));
      out.push_back(static_cast<char>('0' + node.budget));
    }
    for (const auto& [key, fifo] : channels) {
      if (fifo.empty()) continue;
      out.push_back('|');
      out.push_back(static_cast<char>('0' + key.first));
      out.push_back(static_cast<char>('0' + key.second));
      for (const Msg& msg : fifo) {
        out.push_back(msg.is_privilege
                          ? 'P'
                          : static_cast<char>('A' + msg.origin));
      }
    }
    return out;
  }
};

/// Context adapter capturing handler outputs into the successor state.
class CaptureContext final : public proto::Context {
 public:
  CaptureContext(NodeId self, int n, SysState& state)
      : self_(self), n_(n), state_(state) {}

  NodeId self() const override { return self_; }
  int cluster_size() const override { return n_; }
  void send(NodeId to, net::MessagePtr message) override {
    Msg msg;
    if (const auto* req =
            dynamic_cast<const core::RequestMessage*>(message.get())) {
      DMX_CHECK(req->hop() == self_);
      msg.origin = req->origin();
    } else {
      DMX_CHECK(dynamic_cast<const core::PrivilegeMessage*>(message.get()) !=
                nullptr);
      msg.is_privilege = true;
    }
    state_.channels[{self_, to}].push_back(msg);
  }
  void grant() override {}  // entry is visible via the node's CsStatus

 private:
  NodeId self_;
  int n_;
  SysState& state_;
};

class Explorer {
 public:
  explicit Explorer(const ExplorerConfig& config) : config_(config) {
    DMX_CHECK(config.tree != nullptr);
    DMX_CHECK(config.tree->size() == config.n);
    DMX_CHECK(config.requests_per_node >= 1);
    DMX_CHECK_MSG(config.n <= 8 && config.requests_per_node <= 9,
                  "state encoding supports n <= 8, budgets <= 9");
  }

  ExplorerResult run() {
    SysState initial = initial_state();
    result_.states = 0;

    std::deque<std::string> frontier;
    const std::string initial_key = initial.encode();
    states_by_key_.emplace(initial_key, initial);
    predecessor_.emplace(initial_key,
                         std::pair<std::string, Action>{"", Action{}});
    frontier.push_back(initial_key);

    if (!check_state(initial, initial_key)) {
      return finish();
    }

    while (!frontier.empty()) {
      if (states_by_key_.size() > config_.max_states) {
        result_.truncated = true;
        result_.violation = "state budget exhausted (inconclusive)";
        return finish();
      }
      const std::string key = std::move(frontier.front());
      frontier.pop_front();
      const SysState& state = states_by_key_.at(key);

      const std::vector<Action> actions = enabled_actions(state);
      if (actions.empty()) {
        ++result_.terminal_states;
        // Terminal: channels drained, nobody in CS. A waiter here would
        // wait forever — deadlock/starvation (Theorems 1 and 2).
        for (std::size_t v = 1; v < state.nodes.size(); ++v) {
          if (state.nodes[v].cs == NeilsenNode::CsStatus::kWaiting) {
            std::ostringstream oss;
            oss << "terminal state leaves node " << v << " waiting forever";
            record_violation(oss.str(), key);
            return finish();
          }
        }
        continue;
      }
      for (const Action& action : actions) {
        SysState next = apply(state, action);
        ++result_.transitions;
        std::string next_key = next.encode();
        if (states_by_key_.find(next_key) != states_by_key_.end()) {
          continue;
        }
        predecessor_.emplace(next_key, std::pair<std::string, Action>{
                                           key, action});
        const bool ok = check_state(next, next_key);
        states_by_key_.emplace(next_key, std::move(next));
        if (!ok) {
          return finish();
        }
        frontier.push_back(std::move(next_key));
      }
    }
    result_.ok = result_.violation.empty();
    return finish();
  }

 private:
  SysState initial_state() const {
    SysState state;
    state.nodes.resize(static_cast<std::size_t>(config_.n) + 1);
    const std::vector<NodeId> next =
        config_.tree->next_pointers_toward(config_.initial_token_holder);
    for (NodeId v = 1; v <= config_.n; ++v) {
      NodeS& node = state.nodes[static_cast<std::size_t>(v)];
      node.holding = v == config_.initial_token_holder;
      node.next = next[static_cast<std::size_t>(v)];
      node.budget = config_.requests_per_node;
    }
    return state;
  }

  std::vector<Action> enabled_actions(const SysState& state) const {
    std::vector<Action> actions;
    for (NodeId v = 1; v <= config_.n; ++v) {
      const NodeS& node = state.nodes[static_cast<std::size_t>(v)];
      if (node.cs == NeilsenNode::CsStatus::kIdle && node.budget > 0) {
        actions.push_back({Action::Type::kRequest, v, kNilNode});
      }
      if (node.cs == NeilsenNode::CsStatus::kInCs) {
        actions.push_back({Action::Type::kRelease, v, kNilNode});
      }
    }
    for (const auto& [key, fifo] : state.channels) {
      if (!fifo.empty()) {
        actions.push_back({Action::Type::kDeliver, key.second, key.first});
      }
    }
    return actions;
  }

  SysState apply(const SysState& state, const Action& action) const {
    SysState next = state;
    NodeS& slot = next.nodes[static_cast<std::size_t>(action.node)];
    NeilsenNode node =
        NeilsenNode::restore(slot.holding, slot.next, slot.follow, slot.cs);
    CaptureContext ctx(action.node, config_.n, next);
    switch (action.type) {
      case Action::Type::kRequest:
        DMX_CHECK(slot.budget > 0);
        slot.budget -= 1;
        node.request_cs(ctx);
        break;
      case Action::Type::kRelease:
        node.release_cs(ctx);
        break;
      case Action::Type::kDeliver: {
        auto it = next.channels.find({action.from, action.node});
        DMX_CHECK(it != next.channels.end() && !it->second.empty());
        const Msg msg = it->second.front();
        it->second.erase(it->second.begin());
        if (it->second.empty()) next.channels.erase(it);
        if (msg.is_privilege) {
          node.on_message(ctx, action.from, core::PrivilegeMessage());
        } else {
          node.on_message(ctx, action.from,
                          core::RequestMessage(action.from, msg.origin));
        }
        break;
      }
    }
    slot.holding = node.holding();
    slot.next = node.next();
    slot.follow = node.follow();
    slot.cs = node.cs_status();
    return next;
  }

  /// All safety checks; returns false (and records) on violation.
  bool check_state(const SysState& state, const std::string& key) {
    // Token uniqueness, counting in-flight PRIVILEGEs.
    int tokens = 0;
    int occupants = 0;
    for (std::size_t v = 1; v < state.nodes.size(); ++v) {
      const NodeS& node = state.nodes[v];
      if (node.holding || node.cs == NeilsenNode::CsStatus::kInCs) ++tokens;
      if (node.cs == NeilsenNode::CsStatus::kInCs) ++occupants;
    }
    std::size_t in_flight_requests = 0;
    for (const auto& [channel, fifo] : state.channels) {
      for (const Msg& msg : fifo) {
        if (msg.is_privilege) {
          ++tokens;
        } else {
          ++in_flight_requests;
        }
      }
    }
    if (occupants > 1) {
      record_violation("two nodes inside the critical section", key);
      return false;
    }
    if (tokens != 1) {
      std::ostringstream oss;
      oss << "token count " << tokens << " (must be 1)";
      record_violation(oss.str(), key);
      return false;
    }
    // NEXT structure: out-degree <= 1 by construction; forest + paths.
    const int n = config_.n;
    for (NodeId v = 1; v <= n; ++v) {
      NodeId cur = v;
      int steps = 0;
      while (state.nodes[static_cast<std::size_t>(cur)].next != kNilNode) {
        cur = state.nodes[static_cast<std::size_t>(cur)].next;
        if (++steps >= n) {
          record_violation("NEXT path does not reach a sink (Lemma 2)", key);
          return false;
        }
      }
    }
    // Sink census (Chapter 3): at most in-flight requests + 1 sinks, and
    // no idle token-less sink.
    std::size_t sinks = 0;
    for (NodeId v = 1; v <= n; ++v) {
      const NodeS& node = state.nodes[static_cast<std::size_t>(v)];
      if (node.next != kNilNode) continue;
      ++sinks;
      if (!node.holding && node.cs == NeilsenNode::CsStatus::kIdle) {
        record_violation("idle sink without the token", key);
        return false;
      }
    }
    if (sinks < 1 || sinks > in_flight_requests + 1) {
      std::ostringstream oss;
      oss << sinks << " sinks with " << in_flight_requests
          << " requests in flight";
      record_violation(oss.str(), key);
      return false;
    }
    // Implicit-queue completeness (the Abstract's claim, quiescent form):
    // with no message in flight, the FOLLOW chain from the token holder
    // must enumerate exactly the waiting nodes, each exactly once.
    if (state.channels.empty()) {
      NodeId holder = kNilNode;
      std::size_t waiting = 0;
      for (NodeId v = 1; v <= n; ++v) {
        const NodeS& node = state.nodes[static_cast<std::size_t>(v)];
        if (node.holding || node.cs == NeilsenNode::CsStatus::kInCs) {
          holder = v;
        }
        if (node.cs == NeilsenNode::CsStatus::kWaiting) ++waiting;
      }
      DMX_CHECK(holder != kNilNode);  // token not in flight here
      std::vector<bool> seen(static_cast<std::size_t>(n) + 1, false);
      std::size_t chain_length = 0;
      NodeId cur = state.nodes[static_cast<std::size_t>(holder)].follow;
      while (cur != kNilNode) {
        if (seen[static_cast<std::size_t>(cur)] ||
            state.nodes[static_cast<std::size_t>(cur)].cs !=
                NeilsenNode::CsStatus::kWaiting) {
          record_violation("FOLLOW chain corrupt (cycle or non-waiter)",
                           key);
          return false;
        }
        seen[static_cast<std::size_t>(cur)] = true;
        ++chain_length;
        cur = state.nodes[static_cast<std::size_t>(cur)].follow;
      }
      if (chain_length != waiting) {
        std::ostringstream oss;
        oss << "FOLLOW chain covers " << chain_length << " of " << waiting
            << " waiting nodes";
        record_violation(oss.str(), key);
        return false;
      }
    }
    return true;
  }

  void record_violation(const std::string& what, const std::string& key) {
    result_.violation = what;
    // Walk the predecessor chain for the counterexample.
    std::vector<Action> trace;
    std::string cur = key;
    while (true) {
      const auto& [pred, action] = predecessor_.at(cur);
      if (pred.empty()) break;
      trace.push_back(action);
      cur = pred;
    }
    result_.counterexample.assign(trace.rbegin(), trace.rend());
  }

  ExplorerResult finish() {
    result_.states = states_by_key_.size();
    result_.ok = result_.violation.empty() && !result_.truncated;
    return result_;
  }

  ExplorerConfig config_;
  ExplorerResult result_;
  std::unordered_map<std::string, SysState> states_by_key_;
  std::unordered_map<std::string, std::pair<std::string, Action>>
      predecessor_;
};

}  // namespace

std::string Action::to_string() const {
  std::ostringstream oss;
  switch (type) {
    case Type::kRequest:
      oss << "request(" << node << ")";
      break;
    case Type::kRelease:
      oss << "release(" << node << ")";
      break;
    case Type::kDeliver:
      oss << "deliver(" << from << " -> " << node << ")";
      break;
  }
  return oss.str();
}

ExplorerResult explore(const ExplorerConfig& config) {
  return Explorer(config).run();
}

}  // namespace dmx::modelcheck
