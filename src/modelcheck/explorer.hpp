// Algorithm-generic exhaustive explicit-state model checker.
//
// Chapter 5 proves mutual exclusion, deadlock freedom and starvation
// freedom by hand; this module makes those proofs executable for EVERY
// algorithm in the proto::Algorithm registry. For a small system (N
// nodes, each allowed a bounded number of CS entries) it explores every
// reachable interleaving of the nondeterministic actions
//   * a node issues a request,
//   * a node in its critical section releases,
//   * the head message of some FIFO channel is delivered
//     (optionally also delivered-and-kept, to model duplication faults),
// and verifies in every reachable state:
//   * at most one node inside its critical section,
//   * token uniqueness for token-based algorithms (resident tokens via
//     MutexNode::has_token plus in-flight token-kind messages),
//   * the algorithm's structural invariants (modelcheck/invariants.hpp:
//     Neilsen's NEXT-forest and sink census, Raymond's HOLDER walk),
//   * no terminal state leaves a waiter stuck (deadlock AND bounded
//     starvation freedom: with finite request budgets, every terminal
//     state must have all requests served and channels empty).
//
// Transitions run the production MutexNode handler code, restored from
// the node's own snapshot() — the model checked is exactly the
// implementation shipped in src/core and src/baselines, with no
// re-modelling gap, and any algorithm added to the registry joins this
// coverage for free once it implements snapshot()/restore().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "modelcheck/invariants.hpp"
#include "proto/algorithm.hpp"
#include "topology/tree.hpp"

namespace dmx::modelcheck {

/// One nondeterministic step, for counterexample traces.
struct Action {
  enum class Type {
    kRequest,
    kRelease,
    kDeliver,
    kDeliverDup,
    kCrash,
    kRegenerate,
  };
  Type type = Type::kRequest;
  NodeId node = kNilNode;  // requester / releaser / recipient / crash victim
  NodeId from = kNilNode;  // deliver: channel sender
  std::string to_string() const;
};

struct ExplorerConfig {
  /// The algorithm under test (must outlive the explorer).
  const proto::Algorithm* algorithm = nullptr;
  int n = 3;
  NodeId initial_token_holder = 1;
  /// Logical tree (must outlive the explorer); required iff the algorithm
  /// declares needs_tree.
  const topology::Tree* tree = nullptr;
  /// Each node may enter its critical section at most this many times —
  /// the bound that makes the state space finite. At most 255.
  int requests_per_node = 1;
  /// Exploration aborts (inconclusive) beyond this many states.
  std::size_t max_states = 5'000'000;
  /// Fault injection at exploration level: delivery of a head message of
  /// one of these kinds is additionally explored as a DUPLICATED delivery
  /// (the handler runs but the message stays in flight). Duplicating a
  /// token kind seeds a token-uniqueness bug the checker must catch, with
  /// a minimal counterexample trace.
  std::vector<std::string> duplicate_message_kinds;
  /// Crash fault at exploration level: when set, a kCrash action for this
  /// node is enabled in every pre-crash state, so the crash is explored at
  /// EVERY point of the protocol — including while the victim holds the
  /// token or has it in flight. The crash silently vacates the victim's
  /// CS, voids its budget and drops its inbound channels (the network's
  /// dead-destination discard); messages the victim already sent stay
  /// deliverable.
  NodeId crash_node = kNilNode;
  /// With a crash scheduled, enables the kRegenerate action in every
  /// post-crash state: the survivors elect a regenerator by quorum
  /// consent, all pre-crash in-flight messages are fenced (the epoch
  /// bump), the protocol is rebuilt over the compact survivor world and
  /// pending requests are re-issued. With this OFF a token-holder crash
  /// must surface as a "terminal state leaves node waiting forever"
  /// counterexample — the starvation the repair machinery exists to fix.
  bool regeneration = true;
  /// Optional corruption of the initial node states (seeded-bug configs);
  /// runs right after the factory builds the nodes.
  std::function<void(std::vector<std::unique_ptr<proto::MutexNode>>&)>
      mutate_initial;
  /// Extra invariant hook, checked after the algorithm's registered one.
  InvariantHook extra_invariant;
};

struct ExplorerResult {
  bool ok = false;
  /// States visited (deduplicated).
  std::size_t states = 0;
  /// Transitions executed.
  std::size_t transitions = 0;
  /// Terminal (quiescent) states encountered.
  std::size_t terminal_states = 0;
  /// Empty when ok; otherwise the violated property.
  std::string violation;
  /// Action sequence from the initial state to the violating state.
  std::vector<Action> counterexample;
  /// debug_state() of every node in the violating state (index 0 unused;
  /// empty when ok or when the violation was a handler assertion).
  std::vector<std::string> violating_node_states;
  /// True if max_states was hit before exhausting the space.
  bool truncated = false;
};

/// Runs the exhaustive search (BFS over the state graph).
ExplorerResult explore(const ExplorerConfig& config);

}  // namespace dmx::modelcheck
