// Exhaustive explicit-state model checker for the Neilsen algorithm.
//
// Chapter 5 proves mutual exclusion, deadlock freedom and starvation
// freedom by hand; this module makes those proofs executable. For a small
// system (N nodes, each allowed a bounded number of CS entries) it
// explores EVERY reachable interleaving of the nondeterministic actions
//   * a node issues a request,
//   * a node in its critical section releases,
//   * the head message of some FIFO channel is delivered,
// and verifies in every reachable state:
//   * token uniqueness (resident tokens + in-flight PRIVILEGEs == 1),
//   * at most one node in its critical section,
//   * the NEXT structure stays an acyclic forest whose paths end at
//     sinks (Lemma 2),
//   * no terminal state leaves a waiter stuck (deadlock AND bounded
//     starvation freedom: with finite request budgets, every terminal
//     state must have all requests served and channels empty).
//
// Transitions are executed by the production NeilsenNode handler code
// (restored from compact state), so the model checked is exactly the
// implementation shipped in src/core — no re-modelling gap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "topology/tree.hpp"

namespace dmx::modelcheck {

/// One nondeterministic step, for counterexample traces.
struct Action {
  enum class Type { kRequest, kRelease, kDeliver };
  Type type = Type::kRequest;
  NodeId node = kNilNode;  // requester / releaser / recipient
  NodeId from = kNilNode;  // deliver: channel sender
  std::string to_string() const;
};

struct ExplorerConfig {
  int n = 3;
  NodeId initial_token_holder = 1;
  /// Logical tree (must outlive the explorer).
  const topology::Tree* tree = nullptr;
  /// Each node may enter its critical section at most this many times —
  /// the bound that makes the state space finite.
  int requests_per_node = 1;
  /// Exploration aborts (inconclusive) beyond this many states.
  std::size_t max_states = 5'000'000;
};

struct ExplorerResult {
  bool ok = false;
  /// States visited (deduplicated).
  std::size_t states = 0;
  /// Transitions executed.
  std::size_t transitions = 0;
  /// Terminal (quiescent) states encountered.
  std::size_t terminal_states = 0;
  /// Empty when ok; otherwise the violated property.
  std::string violation;
  /// Action sequence from the initial state to the violating state.
  std::vector<Action> counterexample;
  /// True if max_states was hit before exhausting the space.
  bool truncated = false;
};

/// Runs the exhaustive search (BFS over the state graph).
ExplorerResult explore(const ExplorerConfig& config);

}  // namespace dmx::modelcheck
