#include "modelcheck/invariants.hpp"

#include <string>
#include <vector>

#include "baselines/raymond.hpp"
#include "common/check.hpp"
#include "core/neilsen_node.hpp"

namespace dmx::modelcheck {
namespace {

using baselines::RaymondNode;
using core::NeilsenNode;

/// Resolves the typed node pointers once per state — the chase loops
/// below would otherwise pay a std::function call plus a dynamic_cast per
/// pointer step.
template <typename Node>
std::vector<const Node*> typed_nodes(const StateView& view,
                                     const char* what) {
  std::vector<const Node*> nodes(static_cast<std::size_t>(view.n) + 1,
                                 nullptr);
  for (NodeId v = 1; v <= view.n; ++v) {
    nodes[static_cast<std::size_t>(v)] =
        dynamic_cast<const Node*>(&view.node(v));
    DMX_CHECK_MSG(nodes[static_cast<std::size_t>(v)] != nullptr,
                  what << " hook on a foreign node type");
  }
  return nodes;
}

/// Chapter 3/5 structure: NEXT paths terminate at sinks (Lemma 2), the
/// sink census matches the in-flight request count, and — in quiescent
/// states — the FOLLOW chain from the token holder enumerates exactly the
/// waiting nodes (the implicit-queue completeness claim of the Abstract).
std::string check_neilsen(const StateView& view) {
  const int n = view.n;
  const std::vector<const NeilsenNode*> node =
      typed_nodes<NeilsenNode>(view, "Neilsen");
  for (NodeId v = 1; v <= n; ++v) {
    NodeId cur = v;
    int steps = 0;
    while (node[static_cast<std::size_t>(cur)]->next() != kNilNode) {
      cur = node[static_cast<std::size_t>(cur)]->next();
      if (++steps >= n) {
        return "NEXT path does not reach a sink (Lemma 2)";
      }
    }
  }
  const std::size_t in_flight_requests = view.count_in_flight("REQUEST");
  std::size_t sinks = 0;
  for (NodeId v = 1; v <= n; ++v) {
    const NeilsenNode& current = *node[static_cast<std::size_t>(v)];
    if (!current.is_sink()) continue;
    ++sinks;
    if (!current.holding() &&
        current.cs_status() == NeilsenNode::CsStatus::kIdle) {
      return "idle sink without the token";
    }
  }
  if (sinks < 1 || sinks > in_flight_requests + 1) {
    return std::to_string(sinks) + " sinks with " +
           std::to_string(in_flight_requests) + " requests in flight";
  }
  if (view.count_in_flight_total() == 0) {
    NodeId holder = kNilNode;
    std::size_t waiting = 0;
    for (NodeId v = 1; v <= n; ++v) {
      const NeilsenNode& current = *node[static_cast<std::size_t>(v)];
      if (current.has_token()) holder = v;
      if (current.cs_status() == NeilsenNode::CsStatus::kWaiting) ++waiting;
    }
    if (holder == kNilNode) {
      return "quiescent state without a token holder";
    }
    std::vector<bool> seen(static_cast<std::size_t>(n) + 1, false);
    std::size_t chain_length = 0;
    NodeId cur = node[static_cast<std::size_t>(holder)]->follow();
    while (cur != kNilNode) {
      if (seen[static_cast<std::size_t>(cur)] ||
          node[static_cast<std::size_t>(cur)]->cs_status() !=
              NeilsenNode::CsStatus::kWaiting) {
        return "FOLLOW chain corrupt (cycle or non-waiter)";
      }
      seen[static_cast<std::size_t>(cur)] = true;
      ++chain_length;
      cur = node[static_cast<std::size_t>(cur)]->follow();
    }
    if (chain_length != waiting) {
      return "FOLLOW chain covers " + std::to_string(chain_length) + " of " +
             std::to_string(waiting) + " waiting nodes";
    }
  }
  return "";
}

/// Raymond: HOLDER pointers lead every node to the token within n hops.
/// While a PRIVILEGE is in flight from u to w, u.holder==w and w.holder==u
/// form an expected transient 2-cycle; the walk then terminates at the
/// in-flight recipient instead.
std::string check_raymond(const StateView& view) {
  const std::vector<const RaymondNode*> node =
      typed_nodes<RaymondNode>(view, "Raymond");
  NodeId privilege_target = kNilNode;
  view.for_each_in_flight(
      [&privilege_target](NodeId, NodeId to, const net::Message& message) {
        if (message.kind() == "PRIVILEGE") privilege_target = to;
      });
  for (NodeId v = 1; v <= view.n; ++v) {
    NodeId cur = v;
    int steps = 0;
    while (node[static_cast<std::size_t>(cur)]->holder() != cur &&
           cur != privilege_target) {
      cur = node[static_cast<std::size_t>(cur)]->holder();
      if (++steps > view.n) {
        return "HOLDER pointers cycle";
      }
    }
  }
  return "";
}

}  // namespace

std::size_t StateView::count_in_flight(std::string_view kind) const {
  std::size_t count = 0;
  for_each_in_flight(
      [&count, kind](NodeId, NodeId, const net::Message& message) {
        if (message.kind() == kind) ++count;
      });
  return count;
}

std::size_t StateView::count_in_flight_total() const {
  std::size_t count = 0;
  for_each_in_flight(
      [&count](NodeId, NodeId, const net::Message&) { ++count; });
  return count;
}

InvariantHook invariant_hook_for(const proto::Algorithm& algorithm) {
  if (algorithm.name == "Neilsen") return check_neilsen;
  if (algorithm.name == "Raymond") return check_raymond;
  return nullptr;
}

}  // namespace dmx::modelcheck
