#include "baselines/central.hpp"

#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

void CentralNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  waiting_ = true;
  if (is_coordinator()) {
    coordinator_handle_request(ctx, self_);
  } else {
    ctx.send(coordinator_,
             std::make_unique<CentralMessage>(CentralMessage::Type::kRequest));
  }
}

void CentralNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_);
  in_cs_ = false;
  if (is_coordinator()) {
    busy_with_ = kNilNode;
    coordinator_grant_next(ctx);
  } else {
    ctx.send(coordinator_,
             std::make_unique<CentralMessage>(CentralMessage::Type::kRelease));
  }
}

void CentralNode::coordinator_handle_request(proto::Context& ctx,
                                             NodeId who) {
  if (busy_with_ == kNilNode) {
    busy_with_ = who;
    if (who == self_) {
      // Own request granted locally, no messages.
      DMX_CHECK(waiting_);
      waiting_ = false;
      in_cs_ = true;
      ctx.grant();
    } else {
      ctx.send(who,
               std::make_unique<CentralMessage>(CentralMessage::Type::kGrant));
    }
  } else {
    queue_.push_back(who);
  }
}

void CentralNode::coordinator_grant_next(proto::Context& ctx) {
  DMX_CHECK(busy_with_ == kNilNode);
  if (queue_.empty()) return;
  const NodeId next = queue_.front();
  queue_.pop_front();
  busy_with_ = next;
  if (next == self_) {
    DMX_CHECK(waiting_);
    waiting_ = false;
    in_cs_ = true;
    ctx.grant();
  } else {
    ctx.send(next,
             std::make_unique<CentralMessage>(CentralMessage::Type::kGrant));
  }
}

void CentralNode::on_message(proto::Context& ctx, NodeId from,
                             const net::Message& message) {
  const auto* msg = dynamic_cast<const CentralMessage*>(&message);
  DMX_CHECK_MSG(msg != nullptr, "unexpected message kind " << message.kind());
  switch (msg->type()) {
    case CentralMessage::Type::kRequest:
      DMX_CHECK(is_coordinator());
      coordinator_handle_request(ctx, from);
      break;
    case CentralMessage::Type::kRelease:
      DMX_CHECK(is_coordinator());
      DMX_CHECK_MSG(busy_with_ == from,
                    "RELEASE from " << from << " but grant is at "
                                    << busy_with_);
      busy_with_ = kNilNode;
      coordinator_grant_next(ctx);
      break;
    case CentralMessage::Type::kGrant:
      DMX_CHECK(!is_coordinator());
      DMX_CHECK(waiting_);
      waiting_ = false;
      in_cs_ = true;
      ctx.grant();
      break;
  }
}

std::size_t CentralNode::state_bytes() const {
  std::size_t bytes = 2 * sizeof(bool) + sizeof(NodeId);  // waiting/in_cs/coord
  if (is_coordinator()) {
    bytes += sizeof(NodeId) + queue_.size() * sizeof(NodeId);
  }
  return bytes;
}

std::string CentralNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32(coordinator_);
  w.boolean(waiting_);
  w.boolean(in_cs_);
  w.i32(busy_with_);
  w.i32_seq(queue_);
  return w.take();
}

void CentralNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_, "snapshot from a different node");
  coordinator_ = r.i32();
  waiting_ = r.boolean();
  in_cs_ = r.boolean();
  busy_with_ = r.i32();
  r.i32_seq(queue_);
  r.finish();
}

std::string CentralNode::debug_state() const {
  std::ostringstream oss;
  oss << (is_coordinator() ? "coord" : "client")
      << " waiting=" << (waiting_ ? 't' : 'f')
      << " in_cs=" << (in_cs_ ? 't' : 'f');
  if (is_coordinator()) {
    oss << " busy_with=" << busy_with_ << " queued=" << queue_.size();
  }
  return oss.str();
}

proto::Algorithm make_central_algorithm() {
  proto::Algorithm algo;
  algo.name = "Central";
  algo.token_based = false;
  algo.needs_tree = false;
  algo.holder_sees_remote_requests = false;
  algo.factory = [](const proto::ClusterSpec& spec) {
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] =
          std::make_unique<CentralNode>(v, spec.initial_token_holder);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
