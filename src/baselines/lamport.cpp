#include "baselines/lamport.hpp"

#include <algorithm>
#include <sstream>
#include <memory>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

void LamportNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  waiting_ = true;
  clock_ += 1;
  const int ts = clock_;
  request_ts_[static_cast<std::size_t>(self_)] = ts;
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_) {
      ctx.send(j, std::make_unique<LamportMessage>(
                      LamportMessage::Type::kRequest, ts));
    }
  }
  try_enter(ctx);  // n == 1 enters immediately
}

void LamportNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_);
  in_cs_ = false;
  request_ts_[static_cast<std::size_t>(self_)] = 0;
  clock_ += 1;
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_) {
      ctx.send(j, std::make_unique<LamportMessage>(
                      LamportMessage::Type::kRelease, clock_));
    }
  }
}

void LamportNode::try_enter(proto::Context& ctx) {
  if (!waiting_) return;
  const int my_ts = request_ts_[static_cast<std::size_t>(self_)];
  DMX_CHECK(my_ts > 0);
  for (NodeId j = 1; j <= n_; ++j) {
    if (j == self_) continue;
    const int their_ts = request_ts_[static_cast<std::size_t>(j)];
    if (their_ts != 0 && before(their_ts, j, my_ts, self_)) {
      return;  // an earlier request is queued
    }
    // "Heard from j after our request" in the paper's total order on
    // (timestamp, node id) — the id tie-break matters when the ACK
    // optimization suppresses explicit acknowledgements.
    if (!before(my_ts, self_, last_ts_[static_cast<std::size_t>(j)], j)) {
      return;
    }
  }
  waiting_ = false;
  in_cs_ = true;
  ctx.grant();
}

void LamportNode::on_message(proto::Context& ctx, NodeId from,
                             const net::Message& message) {
  const auto* msg = dynamic_cast<const LamportMessage*>(&message);
  DMX_CHECK_MSG(msg != nullptr, "unexpected message kind " << message.kind());
  clock_ = std::max(clock_, msg->timestamp()) + 1;
  last_ts_[static_cast<std::size_t>(from)] =
      std::max(last_ts_[static_cast<std::size_t>(from)], msg->timestamp());
  switch (msg->type()) {
    case LamportMessage::Type::kRequest: {
      request_ts_[static_cast<std::size_t>(from)] = msg->timestamp();
      // ACK unless our own outstanding REQUEST (already broadcast, FIFO
      // delivery) substitutes for it.
      const bool suppress =
          ack_optimization_ &&
          request_ts_[static_cast<std::size_t>(self_)] != 0;
      if (!suppress) {
        ctx.send(from, std::make_unique<LamportMessage>(
                           LamportMessage::Type::kAck, clock_));
      }
      break;
    }
    case LamportMessage::Type::kRelease:
      request_ts_[static_cast<std::size_t>(from)] = 0;
      break;
    case LamportMessage::Type::kAck:
      break;  // state already updated above
  }
  try_enter(ctx);
}

std::size_t LamportNode::state_bytes() const {
  // The replicated queue + received-timestamp vector + clock: the O(N)
  // per-node structure Neilsen's three scalars replace.
  return 2 * static_cast<std::size_t>(n_) * sizeof(int) + sizeof(int) +
         2 * sizeof(bool);
}

std::string LamportNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32(n_);
  w.boolean(ack_optimization_);
  w.i32(clock_);
  w.boolean(waiting_);
  w.boolean(in_cs_);
  w.i32_seq(request_ts_);
  w.i32_seq(last_ts_);
  return w.take();
}

void LamportNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_ && r.i32() == n_,
                "snapshot from a different node");
  ack_optimization_ = r.boolean();
  clock_ = r.i32();
  waiting_ = r.boolean();
  in_cs_ = r.boolean();
  r.i32_seq(request_ts_);
  r.i32_seq(last_ts_);
  r.finish();
}

std::string LamportNode::debug_state() const {
  std::ostringstream oss;
  oss << "clock=" << clock_ << " waiting=" << (waiting_ ? 't' : 'f')
      << " in_cs=" << (in_cs_ ? 't' : 'f');
  return oss.str();
}

proto::Algorithm make_lamport_algorithm(bool ack_optimization) {
  proto::Algorithm algo;
  algo.name = ack_optimization ? "Lamport" : "Lamport-noopt";
  algo.token_based = false;
  algo.needs_tree = false;
  algo.holder_sees_remote_requests = true;
  algo.factory = [ack_optimization](const proto::ClusterSpec& spec) {
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] =
          std::make_unique<LamportNode>(v, spec.n, ack_optimization);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
