#include "baselines/registry.hpp"

#include "baselines/carvalho_roucairol.hpp"
#include "baselines/central.hpp"
#include "baselines/lamport.hpp"
#include "baselines/maekawa.hpp"
#include "baselines/raymond.hpp"
#include "baselines/ricart_agrawala.hpp"
#include "baselines/singhal.hpp"
#include "baselines/suzuki_kasami.hpp"
#include "common/check.hpp"
#include "core/algorithm.hpp"

namespace dmx::baselines {

std::vector<proto::Algorithm> all_algorithms() {
  std::vector<proto::Algorithm> algorithms;
  algorithms.push_back(core::make_neilsen_algorithm());
  algorithms.push_back(make_raymond_algorithm());
  algorithms.push_back(make_central_algorithm());
  algorithms.push_back(make_suzuki_kasami_algorithm());
  algorithms.push_back(make_singhal_algorithm());
  algorithms.push_back(make_lamport_algorithm());
  algorithms.push_back(make_ricart_agrawala_algorithm());
  algorithms.push_back(make_carvalho_roucairol_algorithm());
  algorithms.push_back(make_maekawa_algorithm());
  return algorithms;
}

std::vector<proto::Algorithm> token_algorithms() {
  std::vector<proto::Algorithm> result;
  for (auto& algo : all_algorithms()) {
    if (algo.token_based) result.push_back(std::move(algo));
  }
  return result;
}

proto::Algorithm algorithm_by_name(const std::string& name) {
  for (auto& algo : all_algorithms()) {
    if (algo.name == name) return algo;
  }
  DMX_CHECK_MSG(false, "unknown algorithm: " << name);
  return {};  // unreachable
}

}  // namespace dmx::baselines
