#include "baselines/ricart_agrawala.hpp"

#include <algorithm>
#include <sstream>
#include <memory>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

void RaNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  waiting_ = true;
  my_seq_ = clock_ + 1;
  replies_outstanding_ = n_ - 1;
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_) {
      ctx.send(j,
               std::make_unique<RaMessage>(RaMessage::Type::kRequest, my_seq_));
    }
  }
  if (replies_outstanding_ == 0) {  // single-node system
    waiting_ = false;
    in_cs_ = true;
    ctx.grant();
  }
}

void RaNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_);
  in_cs_ = false;
  for (NodeId j = 1; j <= n_; ++j) {
    if (deferred_[static_cast<std::size_t>(j)]) {
      deferred_[static_cast<std::size_t>(j)] = false;
      ctx.send(j,
               std::make_unique<RaMessage>(RaMessage::Type::kReply, clock_));
    }
  }
}

void RaNode::on_message(proto::Context& ctx, NodeId from,
                        const net::Message& message) {
  const auto* msg = dynamic_cast<const RaMessage*>(&message);
  DMX_CHECK_MSG(msg != nullptr, "unexpected message kind " << message.kind());
  clock_ = std::max(clock_, msg->sequence());
  switch (msg->type()) {
    case RaMessage::Type::kRequest: {
      // Defer while inside the CS, or while requesting with priority over
      // the incoming request.
      const bool mine_first =
          waiting_ && before(my_seq_, self_, msg->sequence(), from);
      if (in_cs_ || mine_first) {
        deferred_[static_cast<std::size_t>(from)] = true;
      } else {
        ctx.send(from,
                 std::make_unique<RaMessage>(RaMessage::Type::kReply, clock_));
      }
      break;
    }
    case RaMessage::Type::kReply:
      DMX_CHECK(waiting_ && replies_outstanding_ > 0);
      if (--replies_outstanding_ == 0) {
        waiting_ = false;
        in_cs_ = true;
        ctx.grant();
      }
      break;
  }
}

std::size_t RaNode::state_bytes() const {
  // Deferred-reply bitmap + clocks.
  return static_cast<std::size_t>(n_) * sizeof(bool) + 3 * sizeof(int) +
         2 * sizeof(bool);
}

std::string RaNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32(n_);
  w.i32(clock_);
  w.i32(my_seq_);
  w.boolean(waiting_);
  w.boolean(in_cs_);
  w.i32(replies_outstanding_);
  w.u8_seq(deferred_);
  return w.take();
}

void RaNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_ && r.i32() == n_,
                "snapshot from a different node");
  clock_ = r.i32();
  my_seq_ = r.i32();
  waiting_ = r.boolean();
  in_cs_ = r.boolean();
  replies_outstanding_ = r.i32();
  r.u8_seq(deferred_);
  r.finish();
}

std::string RaNode::debug_state() const {
  std::ostringstream oss;
  oss << "seq=" << my_seq_ << " waiting=" << (waiting_ ? 't' : 'f')
      << " in_cs=" << (in_cs_ ? 't' : 'f')
      << " outstanding=" << replies_outstanding_;
  return oss.str();
}

proto::Algorithm make_ricart_agrawala_algorithm() {
  proto::Algorithm algo;
  algo.name = "Ricart-Agrawala";
  algo.token_based = false;
  algo.needs_tree = false;
  algo.holder_sees_remote_requests = true;
  algo.factory = [](const proto::ClusterSpec& spec) {
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] = std::make_unique<RaNode>(v, spec.n);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
