#include "baselines/maekawa.hpp"

#include <algorithm>
#include <sstream>
#include <memory>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

MaekawaNode::MaekawaNode(NodeId self, std::vector<NodeId> quorum)
    : self_(self), quorum_(std::move(quorum)) {
  DMX_CHECK_MSG(
      std::find(quorum_.begin(), quorum_.end(), self_) != quorum_.end(),
      "committee of node " << self_ << " must contain the node itself");
}

void MaekawaNode::send_or_local(proto::Context& ctx, NodeId to,
                                MaekawaMessage msg) {
  if (to == self_) {
    dispatch(ctx, self_, msg);
  } else {
    ctx.send(to, std::make_unique<MaekawaMessage>(msg));
  }
}

void MaekawaNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_cs_ && !in_cs_);
  waiting_cs_ = true;
  my_seq_ = ++clock_;
  locked_members_.clear();
  failed_members_.clear();
  pending_inquires_.clear();
  for (NodeId member : quorum_) {
    send_or_local(ctx, member,
                  MaekawaMessage(MaekawaMessage::Type::kRequest, my_seq_));
  }
}

void MaekawaNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_);
  in_cs_ = false;
  locked_members_.clear();
  for (NodeId member : quorum_) {
    send_or_local(ctx, member,
                  MaekawaMessage(MaekawaMessage::Type::kRelease, clock_));
  }
}

void MaekawaNode::try_enter(proto::Context& ctx) {
  if (!waiting_cs_ || locked_members_.size() != quorum_.size()) return;
  waiting_cs_ = false;
  in_cs_ = true;
  failed_members_.clear();
  pending_inquires_.clear();
  ctx.grant();
}

// --- Arbiter role ---------------------------------------------------------

void MaekawaNode::arbiter_grant(proto::Context& ctx, Priority request) {
  locked_for_ = request;
  send_or_local(ctx, request.second,
                MaekawaMessage(MaekawaMessage::Type::kLocked, request.first));
}

void MaekawaNode::arbiter_on_request(proto::Context& ctx, Priority request) {
  if (!locked_for_.has_value()) {
    arbiter_grant(ctx, request);
    return;
  }
  waiting_.insert({request, WaitingRequest{request, false}});
  // A newcomer that outranks the current lock triggers (at most one
  // outstanding) INQUIRE toward the lock holder; the INQUIRE names the
  // lock holder's own request sequence so a stale INQUIRE from a
  // previous round is recognizable.
  if (request < *locked_for_ && !inquire_outstanding_) {
    inquire_outstanding_ = true;
    send_or_local(
        ctx, locked_for_->second,
        MaekawaMessage(MaekawaMessage::Type::kInquire, locked_for_->first));
  }
  // Sanders' rule: FAIL every waiting request that is outranked — by the
  // lock or by a better waiter — so it can answer INQUIREs elsewhere.
  const Priority best_waiting = waiting_.begin()->first;
  for (auto& [priority, entry] : waiting_) {
    const bool is_frontrunner =
        priority == best_waiting && priority < *locked_for_;
    if (!is_frontrunner && !entry.fail_sent) {
      entry.fail_sent = true;
      send_or_local(
          ctx, priority.second,
          MaekawaMessage(MaekawaMessage::Type::kFail, priority.first));
    }
  }
}

void MaekawaNode::arbiter_on_release(proto::Context& ctx, NodeId from) {
  DMX_CHECK_MSG(locked_for_.has_value() && locked_for_->second == from,
                "RELEASE from " << from << " which does not hold the lock");
  locked_for_.reset();
  inquire_outstanding_ = false;
  if (!waiting_.empty()) {
    const Priority best = waiting_.begin()->first;
    waiting_.erase(waiting_.begin());
    arbiter_grant(ctx, best);
  }
}

void MaekawaNode::arbiter_on_relinquish(proto::Context& ctx, NodeId from) {
  DMX_CHECK_MSG(locked_for_.has_value() && locked_for_->second == from,
                "RELINQUISH from " << from
                                   << " which does not hold the lock");
  // The relinquished request goes back into the queue (it already knows it
  // is outranked, so no further FAIL is owed to it).
  waiting_.insert({*locked_for_, WaitingRequest{*locked_for_, true}});
  locked_for_.reset();
  inquire_outstanding_ = false;
  DMX_CHECK(!waiting_.empty());
  const Priority best = waiting_.begin()->first;
  waiting_.erase(waiting_.begin());
  arbiter_grant(ctx, best);
}

// --- Requester role --------------------------------------------------------

void MaekawaNode::requester_on_locked(proto::Context& ctx, NodeId member,
                                      int seq) {
  if (!waiting_cs_ || seq != my_seq_) return;  // stale round
  locked_members_.insert(member);
  failed_members_.erase(member);
  try_enter(ctx);
}

void MaekawaNode::requester_on_fail(proto::Context& ctx, NodeId member,
                                    int seq) {
  if (!waiting_cs_ || seq != my_seq_) return;  // stale round
  failed_members_.insert(member);
  requester_relinquish_pending(ctx);
}

void MaekawaNode::requester_relinquish_pending(proto::Context& ctx) {
  if (failed_members_.empty()) return;
  // We are provably outranked somewhere: give back every inquired lock.
  // A returned lock goes to a better request, so record the member as
  // failed — relinquishing IS failure knowledge. Without this memory a
  // later LOCKED from the original failing arbiter can erase the last
  // recorded FAIL while this lock is still gone, leaving the node unable
  // to answer the next INQUIRE and deadlocking the whole system (found by
  // the exhaustive explorer on star(4); see tests/modelcheck_test.cpp).
  for (NodeId member : pending_inquires_) {
    locked_members_.erase(member);
    failed_members_.insert(member);
    send_or_local(ctx, member,
                  MaekawaMessage(MaekawaMessage::Type::kRelinquish, clock_));
  }
  pending_inquires_.clear();
}

void MaekawaNode::requester_on_inquire(proto::Context& ctx, NodeId member,
                                       int seq) {
  if (in_cs_ || !waiting_cs_ || seq != my_seq_) {
    // Either we already entered (our RELEASE will answer), or the INQUIRE
    // is stale: it crossed our RELEASE in flight, or it concerns a
    // previous request round whose lock we no longer hold.
    return;
  }
  if (!failed_members_.empty()) {
    locked_members_.erase(member);
    failed_members_.insert(member);  // the returned lock outranks us too
    send_or_local(ctx, member,
                  MaekawaMessage(MaekawaMessage::Type::kRelinquish, clock_));
  } else {
    // Undecided: remember the inquiry; a later FAIL resolves it.
    pending_inquires_.insert(member);
  }
}

// --- Dispatch ----------------------------------------------------------------

void MaekawaNode::dispatch(proto::Context& ctx, NodeId from,
                           const MaekawaMessage& msg) {
  clock_ = std::max(clock_, msg.sequence());
  switch (msg.type()) {
    case MaekawaMessage::Type::kRequest:
      arbiter_on_request(ctx, Priority{msg.sequence(), from});
      break;
    case MaekawaMessage::Type::kRelease:
      arbiter_on_release(ctx, from);
      break;
    case MaekawaMessage::Type::kRelinquish:
      arbiter_on_relinquish(ctx, from);
      break;
    case MaekawaMessage::Type::kLocked:
      requester_on_locked(ctx, from, msg.sequence());
      break;
    case MaekawaMessage::Type::kFail:
      requester_on_fail(ctx, from, msg.sequence());
      break;
    case MaekawaMessage::Type::kInquire:
      requester_on_inquire(ctx, from, msg.sequence());
      break;
  }
}

void MaekawaNode::on_message(proto::Context& ctx, NodeId from,
                             const net::Message& message) {
  const auto* msg = dynamic_cast<const MaekawaMessage*>(&message);
  DMX_CHECK_MSG(msg != nullptr, "unexpected message kind " << message.kind());
  dispatch(ctx, from, *msg);
}

std::size_t MaekawaNode::state_bytes() const {
  // Committee list + arbiter queue + requester bookkeeping sets.
  return quorum_.size() * sizeof(NodeId) +
         waiting_.size() * (sizeof(int) + sizeof(NodeId) + sizeof(bool)) +
         (locked_members_.size() + failed_members_.size() +
          pending_inquires_.size()) *
             sizeof(NodeId) +
         sizeof(int) * 2 + sizeof(bool) * 3;
}

std::string MaekawaNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32_seq(quorum_);
  w.boolean(locked_for_.has_value());
  if (locked_for_.has_value()) {
    w.i32(locked_for_->first);
    w.i32(locked_for_->second);
  }
  w.boolean(inquire_outstanding_);
  w.i32(static_cast<std::int32_t>(waiting_.size()));
  for (const auto& [priority, entry] : waiting_) {  // map order: canonical
    w.i32(priority.first);
    w.i32(priority.second);
    w.boolean(entry.fail_sent);
  }
  w.i32(clock_);
  w.i32(my_seq_);
  w.boolean(waiting_cs_);
  w.boolean(in_cs_);
  w.i32_seq(locked_members_);
  w.i32_seq(failed_members_);
  w.i32_seq(pending_inquires_);
  return w.take();
}

void MaekawaNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_, "snapshot from a different node");
  std::vector<NodeId> quorum;
  r.i32_seq(quorum);
  DMX_CHECK_MSG(quorum == quorum_, "snapshot from a different committee");
  if (r.boolean()) {
    const int priority = r.i32();
    locked_for_ = Priority{priority, r.i32()};
  } else {
    locked_for_.reset();
  }
  inquire_outstanding_ = r.boolean();
  const std::int32_t waiting_count = r.i32();
  waiting_.clear();
  for (std::int32_t i = 0; i < waiting_count; ++i) {
    const int sequence = r.i32();
    const Priority priority{sequence, r.i32()};
    waiting_.emplace(priority, WaitingRequest{priority, r.boolean()});
  }
  clock_ = r.i32();
  my_seq_ = r.i32();
  waiting_cs_ = r.boolean();
  in_cs_ = r.boolean();
  std::vector<NodeId> members;
  r.i32_seq(members);
  locked_members_ = std::set<NodeId>(members.begin(), members.end());
  r.i32_seq(members);
  failed_members_ = std::set<NodeId>(members.begin(), members.end());
  r.i32_seq(members);
  pending_inquires_ = std::set<NodeId>(members.begin(), members.end());
  r.finish();
}

std::string MaekawaNode::debug_state() const {
  std::ostringstream oss;
  oss << "waiting=" << (waiting_cs_ ? 't' : 'f')
      << " in_cs=" << (in_cs_ ? 't' : 'f') << " locked_by="
      << locked_members_.size() << "/" << quorum_.size();
  if (locked_for_.has_value()) {
    oss << " arbiter_lock=(" << locked_for_->first << ","
        << locked_for_->second << ")";
  }
  return oss.str();
}

proto::Algorithm make_maekawa_algorithm() {
  proto::Algorithm algo;
  algo.name = "Maekawa";
  algo.token_based = false;
  algo.needs_tree = false;
  algo.holder_sees_remote_requests = false;
  algo.factory = [](const proto::ClusterSpec& spec) {
    const quorum::QuorumSet quorums = quorum::maekawa_quorums(spec.n);
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] = std::make_unique<MaekawaNode>(
          v, quorums[static_cast<std::size_t>(v)]);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
