#include "baselines/suzuki_kasami.hpp"

#include <algorithm>
#include <sstream>
#include <memory>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

SkNode::SkNode(NodeId self, int n, bool is_initial_holder)
    : self_(self), n_(n), rn_(static_cast<std::size_t>(n) + 1, 0),
      has_token_(is_initial_holder) {
  if (is_initial_holder) {
    token_.last_granted.assign(static_cast<std::size_t>(n) + 1, 0);
  }
}

void SkNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  if (has_token_) {
    in_cs_ = true;
    ctx.grant();
    return;
  }
  waiting_ = true;
  rn_[static_cast<std::size_t>(self_)] += 1;
  const int sn = rn_[static_cast<std::size_t>(self_)];
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_) {
      ctx.send(j, std::make_unique<SkRequestMessage>(sn));
    }
  }
}

void SkNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_ && has_token_);
  in_cs_ = false;
  // LN[i] := RN[i]: this request is now satisfied.
  token_.last_granted[static_cast<std::size_t>(self_)] =
      rn_[static_cast<std::size_t>(self_)];
  // Append every node with an unsatisfied request that is not yet queued.
  for (NodeId j = 1; j <= n_; ++j) {
    if (j == self_) continue;
    const bool outstanding = rn_[static_cast<std::size_t>(j)] ==
                             token_.last_granted[static_cast<std::size_t>(j)] + 1;
    if (outstanding && std::find(token_.queue.begin(), token_.queue.end(),
                                 j) == token_.queue.end()) {
      token_.queue.push_back(j);
    }
  }
  if (!token_.queue.empty()) {
    const NodeId next = token_.queue.front();
    token_.queue.pop_front();
    has_token_ = false;
    ctx.send(next, std::make_unique<SkTokenMessage>(std::move(token_)));
    token_ = SkToken{};
  }
}

void SkNode::on_message(proto::Context& ctx, NodeId from,
                        const net::Message& message) {
  if (const auto* req = dynamic_cast<const SkRequestMessage*>(&message)) {
    auto& rn = rn_[static_cast<std::size_t>(from)];
    rn = std::max(rn, req->sequence());
    // Idle token holder passes the token iff the request is current.
    if (has_token_ && !in_cs_ && !waiting_ &&
        rn == token_.last_granted[static_cast<std::size_t>(from)] + 1) {
      has_token_ = false;
      ctx.send(from, std::make_unique<SkTokenMessage>(std::move(token_)));
      token_ = SkToken{};
    }
    return;
  }
  if (auto* tok = dynamic_cast<const SkTokenMessage*>(&message)) {
    DMX_CHECK_MSG(waiting_, "TOKEN at node " << self_ << " not waiting");
    token_ = tok->token();
    has_token_ = true;
    waiting_ = false;
    in_cs_ = true;
    ctx.grant();
    return;
  }
  DMX_CHECK_MSG(false, "unexpected message kind " << message.kind());
}

bool SkNode::has_remote_request() const {
  if (!has_token_) return false;
  for (const NodeId v : token_.queue) {
    if (v != self_) return true;
  }
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_ && rn_[static_cast<std::size_t>(j)] >
                          token_.last_granted[static_cast<std::size_t>(j)]) {
      return true;
    }
  }
  return false;
}

std::size_t SkNode::state_bytes() const {
  std::size_t bytes = static_cast<std::size_t>(n_) * sizeof(int)  // RN
                      + sizeof(bool);
  if (has_token_) {
    bytes += static_cast<std::size_t>(n_) * sizeof(int) +
             token_.queue.size() * sizeof(NodeId);
  }
  return bytes;
}

std::string SkNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32(n_);
  w.i32_seq(rn_);
  w.boolean(has_token_);
  if (has_token_) {  // token_ is normalized to empty while not held
    w.i32_seq(token_.last_granted);
    w.i32_seq(token_.queue);
  }
  w.boolean(waiting_);
  w.boolean(in_cs_);
  return w.take();
}

void SkNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_ && r.i32() == n_,
                "snapshot from a different node");
  r.i32_seq(rn_);
  has_token_ = r.boolean();
  if (has_token_) {
    r.i32_seq(token_.last_granted);
    r.i32_seq(token_.queue);
  } else {
    token_ = SkToken{};
  }
  waiting_ = r.boolean();
  in_cs_ = r.boolean();
  r.finish();
}

std::string SkNode::debug_state() const {
  std::ostringstream oss;
  oss << "token=" << (has_token_ ? 't' : 'f')
      << " waiting=" << (waiting_ ? 't' : 'f') << " RN[self]="
      << rn_[static_cast<std::size_t>(self_)];
  return oss.str();
}

proto::Algorithm make_suzuki_kasami_algorithm() {
  proto::Algorithm algo;
  algo.name = "Suzuki-Kasami";
  algo.token_based = true;
  algo.token_message_kinds = {"TOKEN"};
  algo.needs_tree = false;
  algo.holder_sees_remote_requests = true;
  algo.factory = [](const proto::ClusterSpec& spec) {
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] = std::make_unique<SkNode>(
          v, spec.n, v == spec.initial_token_holder);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
