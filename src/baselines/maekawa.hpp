// Maekawa's sqrt(N) quorum algorithm (§2.6), with Sanders' deadlock fix.
//
// Each node I has a committee S_I (pairwise-intersecting, built in
// src/quorum). To enter, I must be "locked" by every committee member.
// An arbiter locks for the highest-priority request it has seen; priority
// inversion is repaired via INQUIRE (ask the current lock holder to give
// the lock back) and RELINQUISH, while FAIL tells a requester it is
// outranked (so it can answer INQUIREs immediately). Per the Sanders
// correction, an arbiter FAILs any queued request that is outranked by a
// newer arrival, not only the newcomer — this is what makes the protocol
// deadlock-free and raises the worst case to ~7 sqrt(N) messages.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/wire_format.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"
#include "quorum/quorum.hpp"

namespace dmx::baselines {

class MaekawaMessage final : public net::Message {
 public:
  enum class Type { kRequest, kLocked, kRelease, kFail, kInquire, kRelinquish };
  explicit MaekawaMessage(Type type, int sequence = 0)
      : net::Message(kind_for(type)), type_(type), sequence_(sequence) {}
  Type type() const { return type_; }
  int sequence() const { return sequence_; }
  // Every Maekawa message carries the sequence number of the request it
  // concerns (LOCKED/FAIL/INQUIRE match the requester's round, RELEASE/
  // RELINQUISH carry the sender's clock), so the payload is one integer
  // for all six types — not just REQUEST, as an earlier version accounted.
  std::size_t payload_bytes() const override { return sizeof(int); }
  net::MessagePtr clone() const override {
    return std::make_unique<MaekawaMessage>(*this);
  }
  std::string encode() const override {
    // describe() renders only the kind; every Maekawa message carries the
    // request sequence it concerns, which the explorer must distinguish.
    return std::string(kind()) + "(" + std::to_string(sequence_) + ")";
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("maekawa.msg");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.u8(static_cast<std::uint8_t>(type_));
    w.i32(sequence_);
  }

 private:
  static net::MessageKind kind_for(Type type) {
    static const net::MessageKind kinds[] = {
        net::MessageKind::of("REQUEST"),  net::MessageKind::of("LOCKED"),
        net::MessageKind::of("RELEASE"),  net::MessageKind::of("FAIL"),
        net::MessageKind::of("INQUIRE"),  net::MessageKind::of("RELINQUISH")};
    return kinds[static_cast<int>(type)];
  }

  Type type_;
  int sequence_;
};

class MaekawaNode final : public proto::MutexNode {
 public:
  /// `quorum` is this node's committee (containing the node itself).
  MaekawaNode(NodeId self, std::vector<NodeId> quorum);

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return false; }
  /// A remote request queued at this node's arbiter role, or an INQUIRE we
  /// owe an answer to. NOTE: a Maekawa CS holder is NOT guaranteed to see
  /// remote interest — an outranked request gets FAIL from arbiters the
  /// holder never hears about (holder_sees_remote_requests is false).
  bool has_remote_request() const override {
    if (!pending_inquires_.empty()) return true;
    for (const auto& [priority, request] : waiting_) {
      if (priority.second != self_) return true;
    }
    return false;
  }
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

  const std::vector<NodeId>& quorum() const { return quorum_; }

 private:
  /// Request priority: lower (sequence, origin) outranks.
  using Priority = std::pair<int, NodeId>;

  // --- Arbiter role (this node as committee member of others) ----------
  struct WaitingRequest {
    Priority priority;
    bool fail_sent = false;
  };
  void arbiter_on_request(proto::Context& ctx, Priority request);
  void arbiter_on_release(proto::Context& ctx, NodeId from);
  void arbiter_on_relinquish(proto::Context& ctx, NodeId from);
  void arbiter_grant(proto::Context& ctx, Priority request);

  // --- Requester role ----------------------------------------------------
  // LOCKED/FAIL/INQUIRE carry the sequence number of the request they
  // concern; the requester ignores messages whose sequence is not its
  // current request's (stale traffic from a previous round racing the
  // round boundary — answering a stale INQUIRE would relinquish a lock
  // this node no longer holds).
  void requester_on_locked(proto::Context& ctx, NodeId member, int seq);
  void requester_on_fail(proto::Context& ctx, NodeId member, int seq);
  void requester_on_inquire(proto::Context& ctx, NodeId member, int seq);
  void requester_relinquish_pending(proto::Context& ctx);
  void try_enter(proto::Context& ctx);

  /// Messages to our own committee membership short-circuit locally
  /// (Maekawa: a requester "pretends to have received the REQUEST
  /// itself"); only cross-node traffic hits the network.
  void send_or_local(proto::Context& ctx, NodeId to, MaekawaMessage msg);
  void dispatch(proto::Context& ctx, NodeId from, const MaekawaMessage& msg);

  NodeId self_;
  std::vector<NodeId> quorum_;

  // Arbiter state.
  std::optional<Priority> locked_for_;
  bool inquire_outstanding_ = false;
  std::map<Priority, WaitingRequest> waiting_;  // ordered by priority

  // Requester state.
  int clock_ = 0;
  int my_seq_ = 0;
  bool waiting_cs_ = false;
  bool in_cs_ = false;
  std::set<NodeId> locked_members_;   // members currently locked for us
  std::set<NodeId> failed_members_;   // members that FAILed us (un-cleared)
  std::set<NodeId> pending_inquires_; // INQUIREs we could not answer yet
};

/// Committees come from quorum::maekawa_quorums (projective plane when
/// possible, grid otherwise).
proto::Algorithm make_maekawa_algorithm();

}  // namespace dmx::baselines
