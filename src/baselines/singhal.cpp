#include "baselines/singhal.hpp"

#include <memory>
#include <sstream>

#include "common/check.hpp"

namespace dmx::baselines {

SinghalNode::SinghalNode(NodeId self, int n)
    : self_(self), n_(n),
      sv_(static_cast<std::size_t>(n) + 1, SinghalState::kNone),
      sn_(static_cast<std::size_t>(n) + 1, 0) {
  // Staircase initialization: node i assumes nodes 1..i-1 are requesting.
  // Node 1 holds the token. This asymmetry guarantees that the requesting
  // sets of any two nodes intersect at the token's trail.
  for (NodeId j = 1; j < self; ++j) {
    sv(j) = SinghalState::kRequesting;
  }
  if (self == 1) {
    sv(1) = SinghalState::kHolding;
    has_token_ = true;
    token_.tsv.assign(static_cast<std::size_t>(n) + 1, SinghalState::kNone);
    token_.tsn.assign(static_cast<std::size_t>(n) + 1, 0);
  }
}

void SinghalNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  if (has_token_) {
    DMX_CHECK(sv(self_) == SinghalState::kHolding);
    sv(self_) = SinghalState::kExecuting;
    in_cs_ = true;
    ctx.grant();
    return;
  }
  waiting_ = true;
  sv(self_) = SinghalState::kRequesting;
  sn(self_) += 1;
  const int seq = sn(self_);
  // The heuristic: ask only the nodes we believe are requesting (they
  // either hold the token, will hold it soon, or know who does).
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_ && sv(j) == SinghalState::kRequesting) {
      ctx.send(j, std::make_unique<SinghalRequestMessage>(seq));
    }
  }
}

void SinghalNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_ && has_token_);
  in_cs_ = false;
  sv(self_) = SinghalState::kNone;
  token_.tsv[static_cast<std::size_t>(self_)] = SinghalState::kNone;
  token_.tsn[static_cast<std::size_t>(self_)] = sn(self_);
  // Mutual knowledge merge between the node and the token: fresher
  // sequence number wins.
  for (NodeId j = 1; j <= n_; ++j) {
    if (sn(j) > token_.tsn[static_cast<std::size_t>(j)]) {
      token_.tsn[static_cast<std::size_t>(j)] = sn(j);
      token_.tsv[static_cast<std::size_t>(j)] = sv(j);
    } else {
      sn(j) = token_.tsn[static_cast<std::size_t>(j)];
      sv(j) = token_.tsv[static_cast<std::size_t>(j)];
    }
  }
  // Round-robin fairness scan for the next requester, starting past self.
  for (int offset = 1; offset <= n_; ++offset) {
    const NodeId j = static_cast<NodeId>((self_ - 1 + offset) % n_ + 1);
    if (j != self_ && sv(j) == SinghalState::kRequesting) {
      has_token_ = false;
      ctx.send(j, std::make_unique<SinghalTokenMessage>(std::move(token_)));
      token_ = SinghalToken{};
      return;
    }
  }
  sv(self_) = SinghalState::kHolding;  // nobody wants it; keep holding
}

void SinghalNode::on_message(proto::Context& ctx, NodeId from,
                             const net::Message& message) {
  if (const auto* req =
          dynamic_cast<const SinghalRequestMessage*>(&message)) {
    if (req->sequence() <= sn(from)) {
      return;  // stale request; already superseded
    }
    sn(from) = req->sequence();
    const SinghalState previous = sv(from);
    sv(from) = SinghalState::kRequesting;
    switch (sv(self_)) {
      case SinghalState::kNone:
        break;  // nothing to contribute
      case SinghalState::kRequesting:
        // Make the relation symmetric: if we did not already consider
        // `from` a requester, it does not know about our request either.
        if (previous != SinghalState::kRequesting) {
          ctx.send(from, std::make_unique<SinghalRequestMessage>(sn(self_)));
        }
        break;
      case SinghalState::kExecuting:
        break;  // will be served at release via the merged arrays
      case SinghalState::kHolding:
        // Idle token holder: hand over immediately.
        DMX_CHECK(has_token_);
        sv(self_) = SinghalState::kNone;
        token_.tsv[static_cast<std::size_t>(from)] = SinghalState::kRequesting;
        token_.tsn[static_cast<std::size_t>(from)] = sn(from);
        has_token_ = false;
        ctx.send(from, std::make_unique<SinghalTokenMessage>(std::move(token_)));
        token_ = SinghalToken{};
        break;
    }
    return;
  }
  if (const auto* tok = dynamic_cast<const SinghalTokenMessage*>(&message)) {
    DMX_CHECK_MSG(waiting_, "TOKEN at node " << self_ << " not waiting");
    token_ = tok->token();
    has_token_ = true;
    waiting_ = false;
    in_cs_ = true;
    sv(self_) = SinghalState::kExecuting;
    ctx.grant();
    return;
  }
  DMX_CHECK_MSG(false, "unexpected message kind " << message.kind());
}

std::size_t SinghalNode::state_bytes() const {
  std::size_t bytes =
      static_cast<std::size_t>(n_) * (sizeof(char) + sizeof(int)) +
      sizeof(bool);
  if (has_token_) {
    bytes += static_cast<std::size_t>(n_) * (sizeof(char) + sizeof(int));
  }
  return bytes;
}

std::string SinghalNode::debug_state() const {
  std::ostringstream oss;
  oss << "SV[self]=" << static_cast<char>(sv_[static_cast<std::size_t>(self_)])
      << " token=" << (has_token_ ? 't' : 'f') << " SN[self]="
      << sn_[static_cast<std::size_t>(self_)];
  return oss.str();
}

proto::Algorithm make_singhal_algorithm() {
  proto::Algorithm algo;
  algo.name = "Singhal";
  algo.token_based = true;
  algo.token_message_kinds = {"TOKEN"};
  algo.needs_tree = false;
  algo.factory = [](const proto::ClusterSpec& spec) {
    // The staircase initialization fixes node 1 as the initial holder.
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] =
          std::make_unique<SinghalNode>(v, spec.n);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
