#include "baselines/singhal.hpp"

#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

SinghalNode::SinghalNode(NodeId self, int n)
    : self_(self), n_(n),
      sv_(static_cast<std::size_t>(n) + 1, SinghalState::kNone),
      sn_(static_cast<std::size_t>(n) + 1, 0) {
  // Staircase initialization: node i assumes nodes 1..i-1 are requesting.
  // Node 1 holds the token. This asymmetry guarantees that the requesting
  // sets of any two nodes intersect at the token's trail.
  for (NodeId j = 1; j < self; ++j) {
    sv(j) = SinghalState::kRequesting;
  }
  if (self == 1) {
    sv(1) = SinghalState::kHolding;
    has_token_ = true;
    token_.tsv.assign(static_cast<std::size_t>(n) + 1, SinghalState::kNone);
    token_.tsn.assign(static_cast<std::size_t>(n) + 1, 0);
  }
}

void SinghalNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  if (has_token_) {
    DMX_CHECK(sv(self_) == SinghalState::kHolding);
    sv(self_) = SinghalState::kExecuting;
    in_cs_ = true;
    ctx.grant();
    return;
  }
  waiting_ = true;
  sv(self_) = SinghalState::kRequesting;
  sn(self_) += 1;
  const int seq = sn(self_);
  // The heuristic: ask only the nodes we believe are requesting (they
  // either hold the token, will hold it soon, or know who does).
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_ && sv(j) == SinghalState::kRequesting) {
      ctx.send(j, std::make_unique<SinghalRequestMessage>(self_, seq));
    }
  }
}

void SinghalNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_ && has_token_);
  in_cs_ = false;
  sv(self_) = SinghalState::kNone;
  token_.tsv[static_cast<std::size_t>(self_)] = SinghalState::kNone;
  token_.tsn[static_cast<std::size_t>(self_)] = sn(self_);
  // Mutual knowledge merge between the node and the token: strictly
  // fresher sequence number wins. Ties at SN >= 1 adopt the token's view
  // (a token entry (N, k) means request k was satisfied — real knowledge
  // that trims stale R entries and keeps later fan-outs small). Ties at
  // SN == 0 keep the LOCAL view: both sides hold priors there, and
  // letting the token's init (N, 0) erase the staircase prior (R, 0)
  // destroys the request-set intersection property — the exhaustive
  // explorer found the resulting starvation on line(3) with two entries
  // per node.
  for (NodeId j = 1; j <= n_; ++j) {
    if (sn(j) > token_.tsn[static_cast<std::size_t>(j)]) {
      token_.tsn[static_cast<std::size_t>(j)] = sn(j);
      token_.tsv[static_cast<std::size_t>(j)] = sv(j);
    } else if (token_.tsn[static_cast<std::size_t>(j)] > sn(j) ||
               sn(j) >= 1) {
      sn(j) = token_.tsn[static_cast<std::size_t>(j)];
      sv(j) = token_.tsv[static_cast<std::size_t>(j)];
    }
  }
  // Round-robin fairness scan for the next requester, starting past self.
  // The scan reads the TOKEN's merged view, not the local SV: under the
  // strict merge every TSV[j]=R is backed by a real request (TSN >= 1),
  // whereas the local SV legitimately over-approximates (staircase
  // priors) to steer request fan-out — handing the token to an
  // over-approximated entry would strand it at a non-requester.
  for (int offset = 1; offset <= n_; ++offset) {
    const NodeId j = static_cast<NodeId>((self_ - 1 + offset) % n_ + 1);
    if (j != self_ &&
        token_.tsv[static_cast<std::size_t>(j)] == SinghalState::kRequesting) {
      has_token_ = false;
      last_token_sent_to_ = j;
      ctx.send(j, std::make_unique<SinghalTokenMessage>(std::move(token_)));
      token_ = SinghalToken{};
      return;
    }
  }
  sv(self_) = SinghalState::kHolding;  // nobody wants it; keep holding
}

void SinghalNode::on_message(proto::Context& ctx, NodeId from,
                             const net::Message& message) {
  if (const auto* req =
          dynamic_cast<const SinghalRequestMessage*>(&message)) {
    const NodeId origin = req->origin();
    if (req->sequence() <= sn(origin)) {
      return;  // stale request; already superseded (also ends any forward
               // chase that loops back over known ground)
    }
    sn(origin) = req->sequence();
    const SinghalState previous = sv(origin);
    sv(origin) = SinghalState::kRequesting;
    switch (sv(self_)) {
      case SinghalState::kNone:
        // We can neither serve nor carry this request to the token at our
        // own release: chase the token along the trail of our last
        // hand-off. Trail pointers reach the current holder (or a
        // requester who will hold it and merge at release), so the
        // request cannot strand at an out-of-the-loop node — the
        // starvation the exhaustive explorer found on line(3) with two
        // entries per node.
        if (last_token_sent_to_ != kNilNode && last_token_sent_to_ != origin) {
          ctx.send(last_token_sent_to_, std::make_unique<SinghalRequestMessage>(
                                            origin, req->sequence()));
        }
        break;
      case SinghalState::kRequesting:
        // Make the relation symmetric: if we did not already consider
        // `origin` a requester, it does not know about our request either.
        if (previous != SinghalState::kRequesting) {
          ctx.send(origin,
                   std::make_unique<SinghalRequestMessage>(self_, sn(self_)));
        }
        break;
      case SinghalState::kExecuting:
        break;  // we hold the token; served at release via the merge
      case SinghalState::kHolding:
        // Idle token holder: hand over immediately.
        DMX_CHECK(has_token_);
        sv(self_) = SinghalState::kNone;
        token_.tsv[static_cast<std::size_t>(origin)] =
            SinghalState::kRequesting;
        token_.tsn[static_cast<std::size_t>(origin)] = sn(origin);
        has_token_ = false;
        last_token_sent_to_ = origin;
        ctx.send(origin,
                 std::make_unique<SinghalTokenMessage>(std::move(token_)));
        token_ = SinghalToken{};
        break;
    }
    return;
  }
  if (const auto* tok = dynamic_cast<const SinghalTokenMessage*>(&message)) {
    DMX_CHECK_MSG(waiting_, "TOKEN at node " << self_ << " not waiting");
    token_ = tok->token();
    has_token_ = true;
    waiting_ = false;
    in_cs_ = true;
    sv(self_) = SinghalState::kExecuting;
    ctx.grant();
    return;
  }
  DMX_CHECK_MSG(false, "unexpected message kind " << message.kind());
}

bool SinghalNode::has_remote_request() const {
  if (!has_token_) return false;
  // Read-only replay of the release-path merge: where the local sequence
  // number is strictly fresher the local view wins; otherwise the token's
  // view wins (at the SN==0 tie the token's init entry is N, so the
  // staircase prior — an over-approximation, not a real request — never
  // reports a phantom waiter here, matching the hand-off scan).
  for (NodeId j = 1; j <= n_; ++j) {
    if (j == self_) continue;
    const auto idx = static_cast<std::size_t>(j);
    const SinghalState merged =
        sn_[idx] > token_.tsn[idx] ? sv_[idx] : token_.tsv[idx];
    if (merged == SinghalState::kRequesting) return true;
  }
  return false;
}

std::size_t SinghalNode::state_bytes() const {
  std::size_t bytes =
      static_cast<std::size_t>(n_) * (sizeof(char) + sizeof(int)) +
      sizeof(bool) + sizeof(NodeId);  // + the token-trail pointer
  if (has_token_) {
    bytes += static_cast<std::size_t>(n_) * (sizeof(char) + sizeof(int));
  }
  return bytes;
}

std::string SinghalNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32(n_);
  w.u8_seq(sv_);
  w.i32_seq(sn_);
  w.boolean(has_token_);
  if (has_token_) {  // token_ is normalized to empty while not held
    w.u8_seq(token_.tsv);
    w.i32_seq(token_.tsn);
  }
  w.boolean(waiting_);
  w.boolean(in_cs_);
  w.i32(last_token_sent_to_);
  return w.take();
}

void SinghalNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_ && r.i32() == n_,
                "snapshot from a different node");
  r.u8_seq(sv_);
  r.i32_seq(sn_);
  has_token_ = r.boolean();
  if (has_token_) {
    r.u8_seq(token_.tsv);
    r.i32_seq(token_.tsn);
  } else {
    token_ = SinghalToken{};
  }
  waiting_ = r.boolean();
  in_cs_ = r.boolean();
  last_token_sent_to_ = r.i32();
  r.finish();
}

std::string SinghalNode::debug_state() const {
  std::ostringstream oss;
  oss << "SV[self]=" << static_cast<char>(sv_[static_cast<std::size_t>(self_)])
      << " token=" << (has_token_ ? 't' : 'f') << " SN[self]="
      << sn_[static_cast<std::size_t>(self_)];
  return oss.str();
}

proto::Algorithm make_singhal_algorithm() {
  proto::Algorithm algo;
  algo.name = "Singhal";
  algo.token_based = true;
  algo.token_message_kinds = {"TOKEN"};
  algo.needs_tree = false;
  algo.holder_sees_remote_requests = true;
  algo.factory = [](const proto::ClusterSpec& spec) {
    // The staircase initialization fixes node 1 as the initial holder.
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] =
          std::make_unique<SinghalNode>(v, spec.n);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
