// Carvalho–Roucairol's optimization of Ricart–Agrawala (§2.3).
//
// A REPLY from node j is an authorization that remains valid across
// repeated entries until j requests again; a node re-requests only from
// nodes whose authorization it lost. Messages per entry range from 0
// (all authorizations retained) to 2(N-1).
#pragma once

#include <string>
#include <vector>

#include "net/wire_format.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::baselines {

class CrMessage final : public net::Message {
 public:
  enum class Type { kRequest, kReply };
  CrMessage(Type type, int sequence)
      : net::Message(kind_for(type)), type_(type), sequence_(sequence) {}
  Type type() const { return type_; }
  int sequence() const { return sequence_; }
  std::size_t payload_bytes() const override { return sizeof(int); }
  std::string describe() const override {
    return std::string(kind()) + "(sn=" + std::to_string(sequence_) + ")";
  }
  net::MessagePtr clone() const override {
    return std::make_unique<CrMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("cr.msg");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.u8(static_cast<std::uint8_t>(type_));
    w.i32(sequence_);
  }

 private:
  static net::MessageKind kind_for(Type type) {
    static const net::MessageKind kinds[] = {net::MessageKind::of("REQUEST"),
                                             net::MessageKind::of("REPLY")};
    return kinds[static_cast<int>(type)];
  }

  Type type_;
  int sequence_;
};

class CrNode final : public proto::MutexNode {
 public:
  CrNode(NodeId self, int n)
      : self_(self), n_(n),
        authorized_(static_cast<std::size_t>(n) + 1, false),
        deferred_(static_cast<std::size_t>(n) + 1, false) {
    authorized_[static_cast<std::size_t>(self)] = true;
  }

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return false; }
  /// A REPLY owed to another node at release. Transitive waits compose:
  /// a remote waiter blocked on a third party eventually defers at us or
  /// at a node we will hand authorization to.
  bool has_remote_request() const override {
    for (NodeId j = 1; j <= n_; ++j) {
      if (deferred_[static_cast<std::size_t>(j)]) return true;
    }
    return false;
  }
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

  bool authorized_by(NodeId j) const {
    return authorized_[static_cast<std::size_t>(j)];
  }

 private:
  static bool before(int ts_a, NodeId a, int ts_b, NodeId b) {
    return ts_a < ts_b || (ts_a == ts_b && a < b);
  }
  void try_enter(proto::Context& ctx);

  NodeId self_;
  int n_;
  int clock_ = 0;
  int my_seq_ = 0;
  bool waiting_ = false;
  bool in_cs_ = false;
  std::vector<bool> authorized_;  // permission from j still valid
  std::vector<bool> deferred_;    // reply owed to j at release
};

proto::Algorithm make_carvalho_roucairol_algorithm();

}  // namespace dmx::baselines
