// Raymond's tree-based algorithm (§2.7) — the paper's closest relative.
//
// The token sits at some node of an unrooted tree; every other node's
// HOLDER pointer gives the neighbour toward it. Each node keeps a FIFO
// queue of requests (its own id or a neighbour's), forwards at most one
// outstanding REQUEST toward the holder (the ASKED flag), and passes the
// PRIVILEGE back along the request path. Worst case 2D messages per entry
// and synchronization delay up to D — both halved/beaten by Neilsen's
// edge-inversion design, which is exactly what the benches compare.
#pragma once

#include <deque>
#include <string>

#include "net/wire_format.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::baselines {

class RaymondMessage final : public net::Message {
 public:
  enum class Type { kRequest, kPrivilege };
  explicit RaymondMessage(Type type)
      : net::Message(kind_for(type)), type_(type) {}
  Type type() const { return type_; }
  std::size_t payload_bytes() const override { return 0; }
  net::MessagePtr clone() const override {
    return std::make_unique<RaymondMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("raymond.msg");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter(out).u8(static_cast<std::uint8_t>(type_));
  }

 private:
  static net::MessageKind kind_for(Type type) {
    static const net::MessageKind kinds[] = {
        net::MessageKind::of("REQUEST"), net::MessageKind::of("PRIVILEGE")};
    return kinds[static_cast<int>(type)];
  }

  Type type_;
};

class RaymondNode final : public proto::MutexNode {
 public:
  /// `holder` is the neighbour toward the token, or the node's own id if
  /// it is the initial token holder.
  RaymondNode(NodeId self, NodeId holder) : self_(self), holder_(holder) {}

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return holder_ == self_; }
  /// A neighbour's REQUEST queued here (possibly on behalf of a distant
  /// subtree) — own queue entries do not count.
  bool has_remote_request() const override {
    for (const NodeId v : queue_) {
      if (v != self_) return true;
    }
    return false;
  }
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

  NodeId holder() const { return holder_; }
  bool asked() const { return asked_; }
  bool using_cs() const { return using_; }
  bool waiting() const { return waiting_; }
  const std::deque<NodeId>& queue() const { return queue_; }

 private:
  /// Raymond's ASSIGN_PRIVILEGE: if we hold an unused token and someone
  /// is queued, pass it (or enter, if we queued ourselves first).
  void assign_privilege(proto::Context& ctx);
  /// Raymond's MAKE_REQUEST: forward one REQUEST toward the holder on
  /// behalf of the queue head, unless one is already outstanding.
  void make_request(proto::Context& ctx);

  NodeId self_;
  NodeId holder_;
  bool using_ = false;
  bool asked_ = false;
  bool waiting_ = false;  // application blocked (self is or was queued)
  std::deque<NodeId> queue_;
};

proto::Algorithm make_raymond_algorithm();

}  // namespace dmx::baselines
