#include "baselines/raymond.hpp"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

void RaymondNode::assign_privilege(proto::Context& ctx) {
  if (holder_ != self_ || using_ || queue_.empty()) return;
  const NodeId head = queue_.front();
  queue_.pop_front();
  if (head == self_) {
    DMX_CHECK(waiting_);
    waiting_ = false;
    using_ = true;
    ctx.grant();
  } else {
    holder_ = head;
    asked_ = false;
    ctx.send(head,
             std::make_unique<RaymondMessage>(RaymondMessage::Type::kPrivilege));
  }
}

void RaymondNode::make_request(proto::Context& ctx) {
  if (holder_ == self_ || queue_.empty() || asked_) return;
  asked_ = true;
  ctx.send(holder_,
           std::make_unique<RaymondMessage>(RaymondMessage::Type::kRequest));
}

void RaymondNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !using_);
  DMX_CHECK_MSG(std::find(queue_.begin(), queue_.end(), self_) == queue_.end(),
                "self already queued");
  waiting_ = true;
  queue_.push_back(self_);
  assign_privilege(ctx);
  make_request(ctx);
}

void RaymondNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(using_);
  using_ = false;
  assign_privilege(ctx);
  make_request(ctx);
}

void RaymondNode::on_message(proto::Context& ctx, NodeId from,
                             const net::Message& message) {
  const auto* msg = dynamic_cast<const RaymondMessage*>(&message);
  DMX_CHECK_MSG(msg != nullptr, "unexpected message kind " << message.kind());
  switch (msg->type()) {
    case RaymondMessage::Type::kRequest:
      queue_.push_back(from);
      break;
    case RaymondMessage::Type::kPrivilege:
      DMX_CHECK_MSG(holder_ == from, "PRIVILEGE from " << from
                                                       << " but holder is "
                                                       << holder_);
      holder_ = self_;
      asked_ = false;
      break;
  }
  assign_privilege(ctx);
  make_request(ctx);
}

std::size_t RaymondNode::state_bytes() const {
  // HOLDER + USING + ASKED + the explicit request queue (the structure
  // Neilsen's FOLLOW variable replaces).
  return sizeof(NodeId) + 2 * sizeof(bool) + queue_.size() * sizeof(NodeId);
}

std::string RaymondNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32(holder_);
  w.boolean(using_);
  w.boolean(asked_);
  w.boolean(waiting_);
  w.i32_seq(queue_);
  return w.take();
}

void RaymondNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_, "snapshot from a different node");
  holder_ = r.i32();
  using_ = r.boolean();
  asked_ = r.boolean();
  waiting_ = r.boolean();
  r.i32_seq(queue_);
  r.finish();
}

std::string RaymondNode::debug_state() const {
  std::ostringstream oss;
  oss << "HOLDER=" << holder_ << " USING=" << (using_ ? 't' : 'f')
      << " ASKED=" << (asked_ ? 't' : 'f') << " |Q|=" << queue_.size();
  return oss.str();
}

proto::Algorithm make_raymond_algorithm() {
  proto::Algorithm algo;
  algo.name = "Raymond";
  algo.token_based = true;
  algo.token_message_kinds = {"PRIVILEGE"};
  algo.needs_tree = true;
  algo.holder_sees_remote_requests = true;
  algo.factory = [](const proto::ClusterSpec& spec) {
    DMX_CHECK_MSG(spec.tree != nullptr, "Raymond requires a logical tree");
    DMX_CHECK(spec.tree->size() == spec.n);
    const std::vector<NodeId> toward =
        spec.tree->next_pointers_toward(spec.initial_token_holder);
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      const NodeId holder = v == spec.initial_token_holder
                                ? v
                                : toward[static_cast<std::size_t>(v)];
      nodes[static_cast<std::size_t>(v)] =
          std::make_unique<RaymondNode>(v, holder);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
