#include "baselines/carvalho_roucairol.hpp"

#include <algorithm>
#include <sstream>
#include <memory>

#include "common/check.hpp"
#include "proto/snapshot.hpp"

namespace dmx::baselines {

void CrNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  waiting_ = true;
  my_seq_ = clock_ + 1;
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_ && !authorized_[static_cast<std::size_t>(j)]) {
      ctx.send(j,
               std::make_unique<CrMessage>(CrMessage::Type::kRequest, my_seq_));
    }
  }
  try_enter(ctx);  // may already hold every authorization
}

void CrNode::try_enter(proto::Context& ctx) {
  if (!waiting_) return;
  for (NodeId j = 1; j <= n_; ++j) {
    if (!authorized_[static_cast<std::size_t>(j)]) return;
  }
  waiting_ = false;
  in_cs_ = true;
  ctx.grant();
}

void CrNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_);
  in_cs_ = false;
  for (NodeId j = 1; j <= n_; ++j) {
    if (deferred_[static_cast<std::size_t>(j)]) {
      deferred_[static_cast<std::size_t>(j)] = false;
      authorized_[static_cast<std::size_t>(j)] = false;
      ctx.send(j, std::make_unique<CrMessage>(CrMessage::Type::kReply, clock_));
    }
  }
}

void CrNode::on_message(proto::Context& ctx, NodeId from,
                        const net::Message& message) {
  const auto* msg = dynamic_cast<const CrMessage*>(&message);
  DMX_CHECK_MSG(msg != nullptr, "unexpected message kind " << message.kind());
  clock_ = std::max(clock_, msg->sequence());
  switch (msg->type()) {
    case CrMessage::Type::kRequest: {
      const bool mine_first =
          waiting_ && before(my_seq_, self_, msg->sequence(), from);
      if (in_cs_ || mine_first) {
        deferred_[static_cast<std::size_t>(from)] = true;
      } else {
        // Grant our permission away; if we are still waiting AND relied on
        // a standing authorization from `from`, we must simultaneously
        // re-request (we just lost the authorization). If we never held
        // it, our original REQUEST is still outstanding — re-sending would
        // put a duplicate in flight whose eventual second REPLY could be
        // mis-booked as authorization for a LATER round (the exhaustive
        // explorer found the resulting double-entry on line(3)).
        const bool had_authorization =
            authorized_[static_cast<std::size_t>(from)];
        authorized_[static_cast<std::size_t>(from)] = false;
        ctx.send(from,
                 std::make_unique<CrMessage>(CrMessage::Type::kReply, clock_));
        if (waiting_ && had_authorization) {
          ctx.send(from, std::make_unique<CrMessage>(CrMessage::Type::kRequest,
                                                     my_seq_));
        }
      }
      break;
    }
    case CrMessage::Type::kReply:
      authorized_[static_cast<std::size_t>(from)] = true;
      try_enter(ctx);
      break;
  }
}

std::size_t CrNode::state_bytes() const {
  return 2 * static_cast<std::size_t>(n_) * sizeof(bool) + 3 * sizeof(int) +
         2 * sizeof(bool);
}

std::string CrNode::snapshot() const {
  proto::SnapshotWriter w;
  w.i32(self_);
  w.i32(n_);
  w.i32(clock_);
  w.i32(my_seq_);
  w.boolean(waiting_);
  w.boolean(in_cs_);
  w.u8_seq(authorized_);
  w.u8_seq(deferred_);
  return w.take();
}

void CrNode::restore(std::string_view blob) {
  proto::SnapshotReader r(blob);
  DMX_CHECK_MSG(r.i32() == self_ && r.i32() == n_,
                "snapshot from a different node");
  clock_ = r.i32();
  my_seq_ = r.i32();
  waiting_ = r.boolean();
  in_cs_ = r.boolean();
  r.u8_seq(authorized_);
  r.u8_seq(deferred_);
  r.finish();
}

std::string CrNode::debug_state() const {
  std::size_t held = 0;
  for (NodeId j = 1; j <= n_; ++j) {
    if (authorized_[static_cast<std::size_t>(j)]) ++held;
  }
  std::ostringstream oss;
  oss << "seq=" << my_seq_ << " waiting=" << (waiting_ ? 't' : 'f')
      << " in_cs=" << (in_cs_ ? 't' : 'f') << " auth=" << held << "/" << n_;
  return oss.str();
}

proto::Algorithm make_carvalho_roucairol_algorithm() {
  proto::Algorithm algo;
  algo.name = "Carvalho-Roucairol";
  algo.token_based = false;
  algo.needs_tree = false;
  algo.holder_sees_remote_requests = true;
  algo.factory = [](const proto::ClusterSpec& spec) {
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] = std::make_unique<CrNode>(v, spec.n);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
