#include "baselines/carvalho_roucairol.hpp"

#include <algorithm>
#include <sstream>
#include <memory>

#include "common/check.hpp"

namespace dmx::baselines {

void CrNode::request_cs(proto::Context& ctx) {
  DMX_CHECK(!waiting_ && !in_cs_);
  waiting_ = true;
  my_seq_ = clock_ + 1;
  for (NodeId j = 1; j <= n_; ++j) {
    if (j != self_ && !authorized_[static_cast<std::size_t>(j)]) {
      ctx.send(j,
               std::make_unique<CrMessage>(CrMessage::Type::kRequest, my_seq_));
    }
  }
  try_enter(ctx);  // may already hold every authorization
}

void CrNode::try_enter(proto::Context& ctx) {
  if (!waiting_) return;
  for (NodeId j = 1; j <= n_; ++j) {
    if (!authorized_[static_cast<std::size_t>(j)]) return;
  }
  waiting_ = false;
  in_cs_ = true;
  ctx.grant();
}

void CrNode::release_cs(proto::Context& ctx) {
  DMX_CHECK(in_cs_);
  in_cs_ = false;
  for (NodeId j = 1; j <= n_; ++j) {
    if (deferred_[static_cast<std::size_t>(j)]) {
      deferred_[static_cast<std::size_t>(j)] = false;
      authorized_[static_cast<std::size_t>(j)] = false;
      ctx.send(j, std::make_unique<CrMessage>(CrMessage::Type::kReply, clock_));
    }
  }
}

void CrNode::on_message(proto::Context& ctx, NodeId from,
                        const net::Message& message) {
  const auto* msg = dynamic_cast<const CrMessage*>(&message);
  DMX_CHECK_MSG(msg != nullptr, "unexpected message kind " << message.kind());
  clock_ = std::max(clock_, msg->sequence());
  switch (msg->type()) {
    case CrMessage::Type::kRequest: {
      const bool mine_first =
          waiting_ && before(my_seq_, self_, msg->sequence(), from);
      if (in_cs_ || mine_first) {
        deferred_[static_cast<std::size_t>(from)] = true;
      } else {
        // Grant our permission away; if we are still waiting ourselves we
        // must simultaneously re-request from `from` (we just lost the
        // authorization we would otherwise have relied on).
        authorized_[static_cast<std::size_t>(from)] = false;
        ctx.send(from,
                 std::make_unique<CrMessage>(CrMessage::Type::kReply, clock_));
        if (waiting_) {
          ctx.send(from, std::make_unique<CrMessage>(CrMessage::Type::kRequest,
                                                     my_seq_));
        }
      }
      break;
    }
    case CrMessage::Type::kReply:
      authorized_[static_cast<std::size_t>(from)] = true;
      try_enter(ctx);
      break;
  }
}

std::size_t CrNode::state_bytes() const {
  return 2 * static_cast<std::size_t>(n_) * sizeof(bool) + 3 * sizeof(int) +
         2 * sizeof(bool);
}

std::string CrNode::debug_state() const {
  std::size_t held = 0;
  for (NodeId j = 1; j <= n_; ++j) {
    if (authorized_[static_cast<std::size_t>(j)]) ++held;
  }
  std::ostringstream oss;
  oss << "seq=" << my_seq_ << " waiting=" << (waiting_ ? 't' : 'f')
      << " in_cs=" << (in_cs_ ? 't' : 'f') << " auth=" << held << "/" << n_;
  return oss.str();
}

proto::Algorithm make_carvalho_roucairol_algorithm() {
  proto::Algorithm algo;
  algo.name = "Carvalho-Roucairol";
  algo.token_based = false;
  algo.needs_tree = false;
  algo.factory = [](const proto::ClusterSpec& spec) {
    std::vector<std::unique_ptr<proto::MutexNode>> nodes(
        static_cast<std::size_t>(spec.n) + 1);
    for (NodeId v = 1; v <= spec.n; ++v) {
      nodes[static_cast<std::size_t>(v)] = std::make_unique<CrNode>(v, spec.n);
    }
    return nodes;
  };
  return algo;
}

}  // namespace dmx::baselines
