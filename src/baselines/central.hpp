// Centralized mutual exclusion (the yardstick of §6.1–6.3).
//
// One coordinator holds an explicit waiting queue. Clients send REQUEST,
// receive GRANT, and send RELEASE on exit — three messages per entry (zero
// when the coordinator itself requests). Synchronization delay is two
// messages (RELEASE then GRANT), which is the figure the paper's one-
// message delay is compared against.
#pragma once

#include <deque>
#include <string>

#include "net/wire_format.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::baselines {

class CentralMessage final : public net::Message {
 public:
  enum class Type { kRequest, kGrant, kRelease };
  explicit CentralMessage(Type type)
      : net::Message(kind_for(type)), type_(type) {}
  Type type() const { return type_; }
  std::size_t payload_bytes() const override { return 0; }
  net::MessagePtr clone() const override {
    return std::make_unique<CentralMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("central.msg");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter(out).u8(static_cast<std::uint8_t>(type_));
  }

 private:
  static net::MessageKind kind_for(Type type) {
    static const net::MessageKind kinds[] = {net::MessageKind::of("REQUEST"),
                                             net::MessageKind::of("GRANT"),
                                             net::MessageKind::of("RELEASE")};
    return kinds[static_cast<int>(type)];
  }

  Type type_;
};

class CentralNode final : public proto::MutexNode {
 public:
  CentralNode(NodeId self, NodeId coordinator)
      : self_(self), coordinator_(coordinator) {}

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return false; }
  /// Only the coordinator has any visibility: a remote client queued
  /// behind the current grant. Client holders are always blind
  /// (holder_sees_remote_requests is false for this scheme).
  bool has_remote_request() const override {
    if (!is_coordinator()) return false;
    for (const NodeId v : queue_) {
      if (v != self_) return true;
    }
    return false;
  }
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

  bool is_coordinator() const { return self_ == coordinator_; }

 private:
  // Coordinator-side: hands the resource to the next waiter, if any.
  void coordinator_grant_next(proto::Context& ctx);
  // Coordinator-side: a request arrived (from a client or from itself).
  void coordinator_handle_request(proto::Context& ctx, NodeId who);

  NodeId self_;
  NodeId coordinator_;
  bool waiting_ = false;
  bool in_cs_ = false;
  // Coordinator state:
  NodeId busy_with_ = kNilNode;       // node currently granted, or nil
  std::deque<NodeId> queue_;          // waiting requesters, FIFO
};

/// Centralized coordinator scheme; ClusterSpec::initial_token_holder is
/// the coordinator.
proto::Algorithm make_central_algorithm();

}  // namespace dmx::baselines
