// Singhal's heuristically-aided token algorithm (§2.5).
//
// Each node maintains state vectors SV[1..N] (last known state of every
// node: R requesting, E executing, H holding idle, N neither) and SN[1..N]
// (highest known request sequence numbers). The token carries mirror
// arrays TSV/TSN. The heuristic: send REQUEST only to nodes believed to be
// in state R (likely token holders or on the token's path). Initialization
// uses the "staircase" pattern (node i assumes all lower-numbered nodes
// are requesting) which guarantees requests intersect the token's
// location knowledge.
#pragma once

#include <string>
#include <vector>

#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::baselines {

enum class SinghalState : char {
  kRequesting = 'R',
  kExecuting = 'E',
  kHolding = 'H',
  kNone = 'N',
};

class SinghalRequestMessage final : public net::Message {
 public:
  explicit SinghalRequestMessage(int sequence)
      : net::Message(request_kind()), sequence_(sequence) {}
  int sequence() const { return sequence_; }
  std::size_t payload_bytes() const override { return sizeof(int); }
  std::string describe() const override {
    return "REQUEST(sn=" + std::to_string(sequence_) + ")";
  }

 private:
  static net::MessageKind request_kind() {
    static const net::MessageKind kind = net::MessageKind::of("REQUEST");
    return kind;
  }

  int sequence_;
};

/// The token's state knowledge (TSV/TSN), merged with the receiver's
/// local knowledge on every hand-off.
struct SinghalToken {
  std::vector<SinghalState> tsv;  // index 1..n
  std::vector<int> tsn;           // index 1..n
};

class SinghalTokenMessage final : public net::Message {
 public:
  explicit SinghalTokenMessage(SinghalToken token)
      : net::Message(token_kind()), token_(std::move(token)) {}
  const SinghalToken& token() const { return token_; }
  std::size_t payload_bytes() const override {
    return (token_.tsv.size() - 1) * (sizeof(char) + sizeof(int));
  }

 private:
  static net::MessageKind token_kind() {
    static const net::MessageKind kind = net::MessageKind::of("TOKEN");
    return kind;
  }

  SinghalToken token_;
};

class SinghalNode final : public proto::MutexNode {
 public:
  SinghalNode(NodeId self, int n);

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return has_token_; }
  std::size_t state_bytes() const override;
  std::string debug_state() const override;

  SinghalState known_state(NodeId j) const {
    return sv_[static_cast<std::size_t>(j)];
  }

 private:
  SinghalState& sv(NodeId j) { return sv_[static_cast<std::size_t>(j)]; }
  int& sn(NodeId j) { return sn_[static_cast<std::size_t>(j)]; }

  NodeId self_;
  int n_;
  std::vector<SinghalState> sv_;
  std::vector<int> sn_;
  bool has_token_ = false;
  SinghalToken token_;  // valid only while has_token_
  bool waiting_ = false;
  bool in_cs_ = false;
};

proto::Algorithm make_singhal_algorithm();

}  // namespace dmx::baselines
