// Singhal's heuristically-aided token algorithm (§2.5).
//
// Each node maintains state vectors SV[1..N] (last known state of every
// node: R requesting, E executing, H holding idle, N neither) and SN[1..N]
// (highest known request sequence numbers). The token carries mirror
// arrays TSV/TSN. The heuristic: send REQUEST only to nodes believed to be
// in state R (likely token holders or on the token's path). Initialization
// uses the "staircase" pattern (node i assumes all lower-numbered nodes
// are requesting) which guarantees requests intersect the token's
// location knowledge.
#pragma once

#include <string>
#include <vector>

#include "net/wire_format.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::baselines {

enum class SinghalState : char {
  kRequesting = 'R',
  kExecuting = 'E',
  kHolding = 'H',
  kNone = 'N',
};

/// REQUEST(origin, sn): `origin` is the node whose request this is — not
/// necessarily the envelope sender, because a node that can neither serve
/// nor use a request forwards it along the token trail (see
/// SinghalNode::on_message).
class SinghalRequestMessage final : public net::Message {
 public:
  SinghalRequestMessage(NodeId origin, int sequence)
      : net::Message(request_kind()), origin_(origin), sequence_(sequence) {}
  NodeId origin() const { return origin_; }
  int sequence() const { return sequence_; }
  std::size_t payload_bytes() const override {
    return sizeof(NodeId) + sizeof(int);
  }
  std::string describe() const override {
    return "REQUEST(origin=" + std::to_string(origin_) +
           ",sn=" + std::to_string(sequence_) + ")";
  }
  net::MessagePtr clone() const override {
    return std::make_unique<SinghalRequestMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind =
        net::MessageKind::of("singhal.request");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.i32(origin_);
    w.i32(sequence_);
  }

 private:
  static net::MessageKind request_kind() {
    static const net::MessageKind kind = net::MessageKind::of("REQUEST");
    return kind;
  }

  NodeId origin_;
  int sequence_;
};

/// The token's state knowledge (TSV/TSN), merged with the receiver's
/// local knowledge on every hand-off.
struct SinghalToken {
  std::vector<SinghalState> tsv;  // index 1..n
  std::vector<int> tsn;           // index 1..n
};

class SinghalTokenMessage final : public net::Message {
 public:
  explicit SinghalTokenMessage(SinghalToken token)
      : net::Message(token_kind()), token_(std::move(token)) {}
  const SinghalToken& token() const { return token_; }
  std::size_t payload_bytes() const override {
    return (token_.tsv.size() - 1) * (sizeof(char) + sizeof(int));
  }
  net::MessagePtr clone() const override {
    return std::make_unique<SinghalTokenMessage>(*this);
  }
  std::string encode() const override {
    // describe() renders only "TOKEN"; the explorer must distinguish
    // tokens by their TSV/TSN knowledge arrays.
    std::string out = "TOKEN[";
    for (const SinghalState s : token_.tsv) {
      out.push_back(static_cast<char>(s));
    }
    out += "|";
    for (const int sn : token_.tsn) {
      out += std::to_string(sn) + ",";
    }
    out += "]";
    return out;
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("singhal.token");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.u32(static_cast<std::uint32_t>(token_.tsv.size()));
    for (const SinghalState s : token_.tsv) {
      w.u8(static_cast<std::uint8_t>(s));
    }
    w.u32(static_cast<std::uint32_t>(token_.tsn.size()));
    for (const int sn : token_.tsn) w.i32(sn);
  }

 private:
  static net::MessageKind token_kind() {
    static const net::MessageKind kind = net::MessageKind::of("TOKEN");
    return kind;
  }

  SinghalToken token_;
};

class SinghalNode final : public proto::MutexNode {
 public:
  SinghalNode(NodeId self, int n);

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return has_token_; }
  /// A remote requester the release-path scan would hand the token to:
  /// the merged node/token view (fresher sequence number wins, exactly as
  /// release_cs merges) shows some j != self in state R. Non-holders
  /// report false.
  bool has_remote_request() const override;
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

  SinghalState known_state(NodeId j) const {
    return sv_[static_cast<std::size_t>(j)];
  }

 private:
  SinghalState& sv(NodeId j) { return sv_[static_cast<std::size_t>(j)]; }
  int& sn(NodeId j) { return sn_[static_cast<std::size_t>(j)]; }

  NodeId self_;
  int n_;
  std::vector<SinghalState> sv_;
  std::vector<int> sn_;
  bool has_token_ = false;
  SinghalToken token_;  // valid only while has_token_
  bool waiting_ = false;
  bool in_cs_ = false;
  /// Token trail: the node this one last handed the token to (kNilNode
  /// until the first hand-off). Following these pointers from any past
  /// holder reaches the current holder, which is what makes the N-state
  /// request forwarding below terminate.
  NodeId last_token_sent_to_ = kNilNode;
};

proto::Algorithm make_singhal_algorithm();

}  // namespace dmx::baselines
