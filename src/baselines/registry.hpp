// Central registry of every implemented mutual-exclusion algorithm.
// Benches and cross-algorithm tests iterate this list so each new
// algorithm automatically joins every safety/liveness suite and table.
#pragma once

#include <vector>

#include "proto/algorithm.hpp"

namespace dmx::baselines {

/// All algorithms: the Neilsen core plus the eight Chapter 2 baselines.
std::vector<proto::Algorithm> all_algorithms();

/// Only the token-based ones (Neilsen, Raymond, Suzuki–Kasami, Singhal).
std::vector<proto::Algorithm> token_algorithms();

/// Finds an algorithm by name (aborts if absent).
proto::Algorithm algorithm_by_name(const std::string& name);

}  // namespace dmx::baselines
