// Lamport's distributed queue algorithm (§2.1).
//
// Logical clocks totally order requests; every node mirrors the waiting
// queue. REQUEST is broadcast, ACKNOWLEDGEd by every receiver, and a
// RELEASE broadcast retires it: at most 3(N-1) messages per entry. The
// thesis notes the ACK can be skipped when the receiver itself has an
// outstanding request (its own REQUEST/RELEASE substitutes under FIFO
// channels); the flag below enables that optimization.
#pragma once

#include <string>
#include <vector>

#include "net/wire_format.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::baselines {

class LamportMessage final : public net::Message {
 public:
  enum class Type { kRequest, kAck, kRelease };
  LamportMessage(Type type, int timestamp)
      : net::Message(kind_for(type)), type_(type), timestamp_(timestamp) {}
  Type type() const { return type_; }
  int timestamp() const { return timestamp_; }
  std::size_t payload_bytes() const override { return sizeof(int); }
  std::string describe() const override {
    return std::string(kind()) + "(ts=" + std::to_string(timestamp_) + ")";
  }
  net::MessagePtr clone() const override {
    return std::make_unique<LamportMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("lamport.msg");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.u8(static_cast<std::uint8_t>(type_));
    w.i32(timestamp_);
  }

 private:
  static net::MessageKind kind_for(Type type) {
    static const net::MessageKind kinds[] = {
        net::MessageKind::of("REQUEST"), net::MessageKind::of("ACKNOWLEDGE"),
        net::MessageKind::of("RELEASE")};
    return kinds[static_cast<int>(type)];
  }

  Type type_;
  int timestamp_;
};

class LamportNode final : public proto::MutexNode {
 public:
  LamportNode(NodeId self, int n, bool ack_optimization)
      : self_(self), n_(n),
        ack_optimization_(ack_optimization),
        request_ts_(static_cast<std::size_t>(n) + 1, 0),
        last_ts_(static_cast<std::size_t>(n) + 1, 0) {}

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return false; }
  /// The replicated queue holds a pending request from some other node
  /// (REQUEST is broadcast, so the grant holder always sees it).
  bool has_remote_request() const override {
    for (NodeId j = 1; j <= n_; ++j) {
      if (j != self_ && request_ts_[static_cast<std::size_t>(j)] != 0) {
        return true;
      }
    }
    return false;
  }
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

 private:
  /// (ts, id) lexicographic priority; true if a beats b.
  static bool before(int ts_a, NodeId a, int ts_b, NodeId b) {
    return ts_a < ts_b || (ts_a == ts_b && a < b);
  }
  /// Enters the CS if our request heads the queue and every other node
  /// has been heard from after our request timestamp.
  void try_enter(proto::Context& ctx);

  NodeId self_;
  int n_;
  bool ack_optimization_;
  int clock_ = 0;
  bool waiting_ = false;
  bool in_cs_ = false;
  /// The replicated queue: pending request timestamp per node (0 = none).
  /// One outstanding request per node makes a map-by-node exact.
  std::vector<int> request_ts_;
  /// Highest timestamp received from each node (any message type).
  std::vector<int> last_ts_;
};

/// `ack_optimization` selects the thesis variant that suppresses ACKs when
/// the receiver has its own outstanding request.
proto::Algorithm make_lamport_algorithm(bool ack_optimization = true);

}  // namespace dmx::baselines
