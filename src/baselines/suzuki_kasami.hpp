// Suzuki–Kasami broadcast token algorithm (§2.4).
//
// A requester broadcasts REQUEST(sn) to all other nodes; the token is an
// explicit object carrying LN[1..N] (the sequence number of each node's
// last satisfied request) and a FIFO queue of nodes with outstanding
// requests. N-1 REQUEST messages plus one TOKEN transfer per entry (zero
// when the requester already holds the token).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "net/wire_format.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"

namespace dmx::baselines {

class SkRequestMessage final : public net::Message {
 public:
  explicit SkRequestMessage(int sequence)
      : net::Message(request_kind()), sequence_(sequence) {}
  int sequence() const { return sequence_; }
  std::size_t payload_bytes() const override { return sizeof(int); }
  std::string describe() const override {
    return "REQUEST(sn=" + std::to_string(sequence_) + ")";
  }
  net::MessagePtr clone() const override {
    return std::make_unique<SkRequestMessage>(*this);
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("sk.request");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter(out).i32(sequence_);
  }

 private:
  static net::MessageKind request_kind() {
    static const net::MessageKind kind = net::MessageKind::of("REQUEST");
    return kind;
  }

  int sequence_;
};

/// The explicit token: LN array plus the token-resident queue — the data
/// structure whose absence is Neilsen's storage-overhead claim (§6.4).
struct SkToken {
  std::vector<int> last_granted;  // LN[1..n]; index 0 unused
  std::deque<NodeId> queue;
};

class SkTokenMessage final : public net::Message {
 public:
  explicit SkTokenMessage(SkToken token)
      : net::Message(token_kind()), token_(std::move(token)) {}
  const SkToken& token() const { return token_; }
  SkToken take() && { return std::move(token_); }
  std::size_t payload_bytes() const override {
    return (token_.last_granted.size() - 1) * sizeof(int) +
           token_.queue.size() * sizeof(NodeId);
  }
  net::MessagePtr clone() const override {
    return std::make_unique<SkTokenMessage>(*this);
  }
  std::string encode() const override {
    // describe() renders only "TOKEN"; the explorer must distinguish
    // tokens by their LN array and resident queue.
    std::string out = "TOKEN[";
    for (const int ln : token_.last_granted) {
      out += std::to_string(ln) + ",";
    }
    out += "|";
    for (const NodeId v : token_.queue) {
      out += std::to_string(v) + ",";
    }
    out += "]";
    return out;
  }
  net::MessageKind wire_kind() const override {
    static const net::MessageKind kind = net::MessageKind::of("sk.token");
    return kind;
  }
  void encode_binary(std::string& out) const override {
    net::WireWriter w(out);
    w.u32(static_cast<std::uint32_t>(token_.last_granted.size()));
    for (const int ln : token_.last_granted) w.i32(ln);
    w.u32(static_cast<std::uint32_t>(token_.queue.size()));
    for (const NodeId v : token_.queue) w.i32(v);
  }

 private:
  static net::MessageKind token_kind() {
    static const net::MessageKind kind = net::MessageKind::of("TOKEN");
    return kind;
  }

  SkToken token_;
};

class SkNode final : public proto::MutexNode {
 public:
  SkNode(NodeId self, int n, bool is_initial_holder);

  void request_cs(proto::Context& ctx) override;
  void release_cs(proto::Context& ctx) override;
  void on_message(proto::Context& ctx, NodeId from,
                  const net::Message& message) override;
  bool has_token() const override { return has_token_; }
  /// A remote node with an unsatisfied request, visible to the token
  /// holder either on the token's queue or as RN[j] ahead of LN[j] (the
  /// release-path condition that would enqueue j). Non-holders have no
  /// token arrays to consult and report false.
  bool has_remote_request() const override;
  std::size_t state_bytes() const override;
  std::string debug_state() const override;
  std::string snapshot() const override;
  void restore(std::string_view blob) override;

  int request_number(NodeId j) const {
    return rn_[static_cast<std::size_t>(j)];
  }

 private:
  NodeId self_;
  int n_;
  std::vector<int> rn_;  // RN[1..n], highest request number seen per node
  bool has_token_ = false;
  SkToken token_;        // valid only while has_token_
  bool waiting_ = false;
  bool in_cs_ = false;
};

proto::Algorithm make_suzuki_kasami_algorithm();

}  // namespace dmx::baselines
