#include "net/network.hpp"

#include <algorithm>
#include <utility>

namespace dmx::net {

std::uint64_t MessageStats::sent(MessageKind kind) const {
  if (!kind.valid() || kind.id() >= sent_by_kind_id.size()) return 0;
  return sent_by_kind_id[kind.id()];
}

std::uint64_t MessageStats::sent(std::string_view kind) const {
  return sent(MessageKind::lookup(kind));
}

std::map<std::string, std::uint64_t> MessageStats::by_kind() const {
  std::map<std::string, std::uint64_t> view;
  for (std::uint32_t id = 0; id < sent_by_kind_id.size(); ++id) {
    if (sent_by_kind_id[id] == 0) continue;
    view.emplace(std::string(MessageKind::from_id(id).name()),
                 sent_by_kind_id[id]);
  }
  return view;
}

Network::Network(sim::Simulator& sim, int n,
                 std::unique_ptr<LatencyModel> latency, std::uint64_t seed)
    : sim_(sim), n_(n), latency_(std::move(latency)), rng_(seed) {
  DMX_CHECK(n_ >= 1);
  DMX_CHECK(latency_ != nullptr);
  channel_last_delivery_.assign(
      static_cast<std::size_t>(n_ + 1) * static_cast<std::size_t>(n_ + 1), 0);
  node_down_.assign(static_cast<std::size_t>(n_ + 1), 0);
  link_severed_.assign(channel_last_delivery_.size(), 0);
}

void Network::set_delivery_handler(DeliveryHandler handler) {
  handler_ = std::move(handler);
}

std::uint32_t Network::acquire_slot() {
  if (free_head_ != kNpos) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNpos;
    return slot;
  }
  DMX_CHECK_MSG(slots_.size() < kNpos, "envelope slot space exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Network::send(NodeId from, NodeId to, MessagePtr message) {
  send(ResourceId{0}, from, to, std::move(message));
}

void Network::send(ResourceId resource, NodeId from, NodeId to,
                   MessagePtr message) {
  send(resource, from, to, std::move(message), resource_epoch(resource));
}

void Network::send(ResourceId resource, NodeId from, NodeId to,
                   MessagePtr message, Epoch epoch) {
  DMX_CHECK_MSG(resource >= 0, "bad resource " << resource);
  DMX_CHECK_MSG(from >= 1 && from <= n_, "bad sender " << from);
  DMX_CHECK_MSG(to >= 1 && to <= n_, "bad recipient " << to);
  DMX_CHECK_MSG(from != to, "node " << from << " sending to itself");
  DMX_CHECK(message != nullptr);

  const MessageKind kind = message->kind_id();
  stats_.total_sent += 1;
  stats_.total_payload_bytes += message->payload_bytes();
  if (kind.id() >= stats_.sent_by_kind_id.size()) {
    stats_.sent_by_kind_id.resize(kind.id() + 1, 0);  // warms once per kind
  }
  stats_.sent_by_kind_id[kind.id()] += 1;
  if (static_cast<std::size_t>(resource) >= resource_stats_.size()) {
    resource_stats_.resize(static_cast<std::size_t>(resource) + 1);
    in_flight_by_resource_.resize(static_cast<std::size_t>(resource) + 1);
  }
  MessageStats& rstats = resource_stats_[static_cast<std::size_t>(resource)];
  rstats.total_sent += 1;
  rstats.total_payload_bytes += message->payload_bytes();
  if (kind.id() >= rstats.sent_by_kind_id.size()) {
    rstats.sent_by_kind_id.resize(kind.id() + 1, 0);
  }
  rstats.sent_by_kind_id[kind.id()] += 1;

  // Crash/partition faults: a dead endpoint or severed link eats the
  // message at send time. Counted as sent (the sender did the work) and
  // dropped, like the injection knobs below.
  if (node_down_[static_cast<std::size_t>(from)] ||
      node_down_[static_cast<std::size_t>(to)] ||
      link_severed_[link_index(from, to)]) {
    stats_.total_dropped += 1;
    rstats.total_dropped += 1;
    return;
  }

  // Failure injection: the message is counted as sent but vanishes.
  if (drop_next_kind_.valid() && kind == drop_next_kind_) {
    drop_next_kind_ = MessageKind();
    stats_.total_dropped += 1;
    rstats.total_dropped += 1;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.chance(drop_probability_)) {
    stats_.total_dropped += 1;
    rstats.total_dropped += 1;
    return;
  }

  const Tick now = sim_.now();
  const Tick latency = latency_->sample(from, to, rng_);
  DMX_CHECK(latency >= 1);

  // FIFO per channel: a message may not arrive before the previously sent
  // message on the same ordered channel.
  Tick deliver_at = now + latency;
  Tick& last = channel_last_delivery_[static_cast<std::size_t>(from) *
                                          static_cast<std::size_t>(n_ + 1) +
                                      static_cast<std::size_t>(to)];
  deliver_at = std::max(deliver_at, last);
  last = deliver_at;

  const std::uint32_t slot = acquire_slot();
  Envelope& env = slots_[slot].env;
  env.id = next_envelope_id_++;
  env.resource = resource;
  env.from = from;
  env.to = to;
  env.sent_at = now;
  env.deliver_at = deliver_at;
  env.epoch = epoch;
  env.message = std::move(message);
  slots_[slot].active = true;
  ++in_flight_count_;
  if (kind.id() >= in_flight_by_kind_.size()) {
    in_flight_by_kind_.resize(kind.id() + 1, 0);  // warms once per kind
  }
  ++in_flight_by_kind_[kind.id()];
  auto& resource_kinds =
      in_flight_by_resource_[static_cast<std::size_t>(resource)];
  if (kind.id() >= resource_kinds.size()) {
    resource_kinds.resize(kind.id() + 1, 0);
  }
  ++resource_kinds[kind.id()];
  if (static_cast<std::size_t>(resource) >= in_flight_by_epoch_.size()) {
    in_flight_by_epoch_.resize(static_cast<std::size_t>(resource) + 1);
  }
  auto& epoch_layers = in_flight_by_epoch_[static_cast<std::size_t>(resource)];
  if (epoch >= epoch_layers.size()) {
    epoch_layers.resize(static_cast<std::size_t>(epoch) + 1);
  }
  auto& epoch_kinds = epoch_layers[static_cast<std::size_t>(epoch)];
  if (kind.id() >= epoch_kinds.size()) {
    epoch_kinds.resize(kind.id() + 1, 0);
  }
  ++epoch_kinds[kind.id()];
  if (observer_ != nullptr) {
    observer_->on_send(env);
  }
  sim_.schedule_at(deliver_at, [this, slot] { deliver(slot); });

  // Failure injection: re-send a clone of the message on the same channel.
  // Disarm before recursing (one duplicate, not an avalanche); the FIFO
  // clamp orders the duplicate behind the original.
  if (duplicate_next_kind_.valid() && kind == duplicate_next_kind_) {
    duplicate_next_kind_ = MessageKind();
    stats_.total_duplicated += 1;
    send(resource, from, to, slots_[slot].env.message->clone(), epoch);
  }
}

void Network::deliver(std::uint32_t slot_index) {
  EnvelopeSlot& slot = slots_[slot_index];
  DMX_CHECK(slot.active);
  // Detach the envelope and recycle the slot before invoking the handler:
  // the handler may send new messages, reusing this slot.
  Envelope env = std::move(slot.env);
  slot.active = false;
  slot.next_free = free_head_;
  free_head_ = slot_index;
  --in_flight_count_;
  --in_flight_by_kind_[env.message->kind_id().id()];
  --in_flight_by_resource_[static_cast<std::size_t>(env.resource)]
                          [env.message->kind_id().id()];
  --in_flight_by_epoch_[static_cast<std::size_t>(env.resource)]
                       [static_cast<std::size_t>(env.epoch)]
                       [env.message->kind_id().id()];
  // The destination crashed while this envelope was in transit: the wire
  // delivers into a dead socket.
  if (node_down_[static_cast<std::size_t>(env.to)]) {
    discard(std::move(env), DiscardReason::kDeadDestination);
    return;
  }
  // Epoch fence: an envelope from a pre-repair world never reaches a
  // handler. This is where a lost-then-found stale token dies.
  if (env.epoch != resource_epoch(env.resource)) {
    discard(std::move(env), DiscardReason::kStaleEpoch);
    return;
  }
  if (observer_ != nullptr) {
    observer_->on_deliver(env);
  }
  DMX_CHECK_MSG(handler_ != nullptr, "no delivery handler installed");
  handler_(env);
}

void Network::discard(Envelope env, DiscardReason reason) {
  MessageStats& rstats =
      resource_stats_[static_cast<std::size_t>(env.resource)];
  if (reason == DiscardReason::kStaleEpoch) {
    stats_.total_fenced += 1;
    rstats.total_fenced += 1;
  } else {
    stats_.total_dropped += 1;
    rstats.total_dropped += 1;
  }
  if (discard_handler_) discard_handler_(env, reason);
}

void Network::reset_stats() {
  stats_ = MessageStats{};
  for (MessageStats& rstats : resource_stats_) rstats = MessageStats{};
}

const MessageStats& Network::stats(ResourceId resource) const {
  static const MessageStats kEmpty;
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= resource_stats_.size()) {
    return kEmpty;
  }
  return resource_stats_[static_cast<std::size_t>(resource)];
}

void Network::set_drop_probability(double p) {
  DMX_CHECK(p >= 0.0 && p <= 1.0);
  drop_probability_ = p;
}

void Network::drop_next(std::string_view kind) {
  // Intern (not lookup): arming a drop for a kind that has not been sent
  // yet must still match the first send of that kind.
  drop_next_kind_ = MessageKind::of(kind);
}

void Network::duplicate_next(std::string_view kind) {
  duplicate_next_kind_ = MessageKind::of(kind);
}

void Network::set_node_down(NodeId v) {
  DMX_CHECK_MSG(v >= 1 && v <= n_, "bad node " << v);
  node_down_[static_cast<std::size_t>(v)] = 1;
}

void Network::set_node_up(NodeId v) {
  DMX_CHECK_MSG(v >= 1 && v <= n_, "bad node " << v);
  node_down_[static_cast<std::size_t>(v)] = 0;
}

bool Network::is_node_down(NodeId v) const {
  DMX_CHECK_MSG(v >= 1 && v <= n_, "bad node " << v);
  return node_down_[static_cast<std::size_t>(v)] != 0;
}

void Network::partition(NodeId a, NodeId b) {
  DMX_CHECK_MSG(a >= 1 && a <= n_, "bad node " << a);
  DMX_CHECK_MSG(b >= 1 && b <= n_, "bad node " << b);
  DMX_CHECK_MSG(a != b, "cannot partition node " << a << " from itself");
  link_severed_[link_index(a, b)] = 1;
  link_severed_[link_index(b, a)] = 1;
}

void Network::heal(NodeId a, NodeId b) {
  DMX_CHECK_MSG(a >= 1 && a <= n_, "bad node " << a);
  DMX_CHECK_MSG(b >= 1 && b <= n_, "bad node " << b);
  DMX_CHECK_MSG(a != b, "cannot heal node " << a << " with itself");
  link_severed_[link_index(a, b)] = 0;
  link_severed_[link_index(b, a)] = 0;
}

bool Network::is_partitioned(NodeId a, NodeId b) const {
  DMX_CHECK_MSG(a >= 1 && a <= n_, "bad node " << a);
  DMX_CHECK_MSG(b >= 1 && b <= n_, "bad node " << b);
  return link_severed_[link_index(a, b)] != 0;
}

void Network::set_resource_epoch(ResourceId resource, Epoch epoch) {
  DMX_CHECK_MSG(resource >= 0, "bad resource " << resource);
  if (static_cast<std::size_t>(resource) >= resource_epoch_.size()) {
    resource_epoch_.resize(static_cast<std::size_t>(resource) + 1, 0);
  }
  resource_epoch_[static_cast<std::size_t>(resource)] = epoch;
}

Epoch Network::resource_epoch(ResourceId resource) const {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= resource_epoch_.size()) {
    return 0;
  }
  return resource_epoch_[static_cast<std::size_t>(resource)];
}

void Network::set_discard_handler(DiscardHandler handler) {
  discard_handler_ = std::move(handler);
}

std::size_t Network::in_flight_count(MessageKind kind) const {
  if (!kind.valid() || kind.id() >= in_flight_by_kind_.size()) return 0;
  return in_flight_by_kind_[kind.id()];
}

std::size_t Network::in_flight_count(std::string_view kind) const {
  return in_flight_count(MessageKind::lookup(kind));
}

std::size_t Network::in_flight_count(ResourceId resource,
                                     MessageKind kind) const {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= in_flight_by_resource_.size()) {
    return 0;
  }
  const auto& kinds = in_flight_by_resource_[static_cast<std::size_t>(resource)];
  if (!kind.valid() || kind.id() >= kinds.size()) return 0;
  return kinds[kind.id()];
}

std::size_t Network::in_flight_count(ResourceId resource, Epoch epoch,
                                     MessageKind kind) const {
  if (resource < 0 ||
      static_cast<std::size_t>(resource) >= in_flight_by_epoch_.size()) {
    return 0;
  }
  const auto& layers = in_flight_by_epoch_[static_cast<std::size_t>(resource)];
  if (static_cast<std::size_t>(epoch) >= layers.size()) return 0;
  const auto& kinds = layers[static_cast<std::size_t>(epoch)];
  if (!kind.valid() || kind.id() >= kinds.size()) return 0;
  return kinds[kind.id()];
}

void Network::for_each_in_flight(
    const std::function<void(const Envelope&)>& fn) const {
  for (const EnvelopeSlot& slot : slots_) {
    if (slot.active) fn(slot.env);
  }
}

}  // namespace dmx::net
