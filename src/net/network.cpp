#include "net/network.hpp"

#include <algorithm>
#include <utility>

namespace dmx::net {
namespace {

/// Packs an ordered (from, to) pair into one map key.
std::uint64_t channel_key(NodeId from, NodeId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
          << 32) |
         static_cast<std::uint32_t>(to);
}

}  // namespace

std::uint64_t MessageStats::sent(std::string_view kind) const {
  auto it = sent_by_kind.find(std::string(kind));
  return it == sent_by_kind.end() ? 0 : it->second;
}

Network::Network(sim::Simulator& sim, int n,
                 std::unique_ptr<LatencyModel> latency, std::uint64_t seed)
    : sim_(sim), n_(n), latency_(std::move(latency)), rng_(seed) {
  DMX_CHECK(n_ >= 1);
  DMX_CHECK(latency_ != nullptr);
}

void Network::set_delivery_handler(DeliveryHandler handler) {
  handler_ = std::move(handler);
}

void Network::send(NodeId from, NodeId to, MessagePtr message) {
  DMX_CHECK_MSG(from >= 1 && from <= n_, "bad sender " << from);
  DMX_CHECK_MSG(to >= 1 && to <= n_, "bad recipient " << to);
  DMX_CHECK_MSG(from != to, "node " << from << " sending to itself");
  DMX_CHECK(message != nullptr);

  stats_.total_sent += 1;
  stats_.total_payload_bytes += message->payload_bytes();
  stats_.sent_by_kind[std::string(message->kind())] += 1;

  // Failure injection: the message is counted as sent but vanishes.
  if (drop_next_kind_.has_value() && message->kind() == *drop_next_kind_) {
    drop_next_kind_.reset();
    stats_.total_dropped += 1;
    return;
  }
  if (drop_probability_ > 0.0 && rng_.chance(drop_probability_)) {
    stats_.total_dropped += 1;
    return;
  }

  const Tick now = sim_.now();
  const Tick latency = latency_->sample(from, to, rng_);
  DMX_CHECK(latency >= 1);

  // FIFO per channel: a message may not arrive before the previously sent
  // message on the same ordered channel.
  Tick deliver_at = now + latency;
  auto& last = channel_last_delivery_[channel_key(from, to)];
  deliver_at = std::max(deliver_at, last);
  last = deliver_at;

  const std::uint64_t id = next_envelope_id_++;
  Envelope env{id, from, to, now, deliver_at, std::move(message)};
  if (observer_ != nullptr) {
    observer_->on_send(env);
  }
  in_flight_.emplace(id, std::move(env));
  sim_.schedule_at(deliver_at, [this, id] { deliver(id); });
}

void Network::deliver(std::uint64_t envelope_id) {
  auto it = in_flight_.find(envelope_id);
  DMX_CHECK(it != in_flight_.end());
  Envelope env = std::move(it->second);
  in_flight_.erase(it);
  if (observer_ != nullptr) {
    observer_->on_deliver(env);
  }
  DMX_CHECK_MSG(handler_ != nullptr, "no delivery handler installed");
  handler_(env);
}

void Network::reset_stats() { stats_ = MessageStats{}; }

void Network::set_drop_probability(double p) {
  DMX_CHECK(p >= 0.0 && p <= 1.0);
  drop_probability_ = p;
}

void Network::drop_next(std::string_view kind) {
  drop_next_kind_ = std::string(kind);
}

std::size_t Network::in_flight_count(std::string_view kind) const {
  std::size_t count = 0;
  for (const auto& [id, env] : in_flight_) {
    if (env.message->kind() == kind) ++count;
  }
  return count;
}

void Network::for_each_in_flight(
    const std::function<void(const Envelope&)>& fn) const {
  for (const auto& [id, env] : in_flight_) {
    fn(env);
  }
}

}  // namespace dmx::net
