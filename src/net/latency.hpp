// Pluggable per-message latency models for the simulated network.
#pragma once

#include <memory>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace dmx::net {

/// Samples the in-flight latency for one message on the (from, to) channel.
/// Implementations must return a value >= 1 so causality (send before
/// receive) is visible in virtual time.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Tick sample(NodeId from, NodeId to, Rng& rng) = 0;
};

/// Constant latency; the default for all message/hop-count experiments
/// (with latency 1, elapsed ticks equal sequential message hops, which is
/// exactly the unit §6.3 measures synchronization delay in).
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(Tick ticks) : ticks_(ticks) { DMX_CHECK(ticks >= 1); }
  Tick sample(NodeId, NodeId, Rng&) override { return ticks_; }

 private:
  Tick ticks_;
};

/// Uniform latency in [lo, hi]; models jittery but bounded links.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Tick lo, Tick hi) : lo_(lo), hi_(hi) {
    DMX_CHECK(lo >= 1 && lo <= hi);
  }
  Tick sample(NodeId, NodeId, Rng& rng) override {
    return rng.uniform_int(lo_, hi_);
  }

 private:
  Tick lo_;
  Tick hi_;
};

/// Exponential latency with the given mean, clamped to >= 1; models
/// heavy-tailed delays to stress message-reordering across channels
/// (per-channel FIFO is still enforced by the Network).
class ExponentialLatency final : public LatencyModel {
 public:
  explicit ExponentialLatency(double mean_ticks) : mean_(mean_ticks) {
    DMX_CHECK(mean_ticks >= 1.0);
  }
  Tick sample(NodeId, NodeId, Rng& rng) override {
    const double v = rng.exponential(mean_);
    return v < 1.0 ? Tick{1} : static_cast<Tick>(v);
  }

 private:
  double mean_;
};

}  // namespace dmx::net
