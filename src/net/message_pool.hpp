// Recycling arena for protocol message (and other fixed-size) storage.
//
// Every simulated send allocates a Message and every delivery frees it;
// under saturation that is millions of malloc/free pairs per experiment.
// The pool intercepts Message::operator new/delete and recycles blocks
// through per-size-class free lists: after a short warm-up, steady-state
// send/deliver traffic touches the heap zero times.
//
// Size classes are 16-byte granules up to 256 bytes. Each message kind has
// a fixed concrete type and therefore a fixed size, so bucketing by size
// class recycles storage "per kind" exactly, while also letting kinds of
// equal size share a free list. Oversized blocks (> 256 bytes) pass
// through to the global heap and are counted separately.
//
// The pool is thread-local: the simulator is single-threaded, and a
// thread-local free list needs no locking. A block must be freed on the
// thread that allocated it (true for all simulation code; asserted by the
// outstanding counter staying balanced in tests).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace dmx::net {

class MessagePool {
 public:
  struct Stats {
    std::uint64_t fresh_allocations = 0;   // blocks obtained from the heap
    std::uint64_t pool_hits = 0;           // blocks served from a free list
    std::uint64_t oversize_allocations = 0;  // > kMaxPooledSize, passthrough
    std::uint64_t outstanding = 0;         // live blocks right now
  };

  static constexpr std::size_t kGranule = 16;
  static constexpr std::size_t kMaxPooledSize = 256;

  /// This thread's pool.
  static MessagePool& local();

  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;
  ~MessagePool();

  void* allocate(std::size_t size);
  void deallocate(void* p, std::size_t size) noexcept;

  const Stats& stats() const { return stats_; }

  /// Releases all cached free blocks back to the heap (outstanding blocks
  /// are untouched). Used by tests to isolate measurements.
  void trim() noexcept;

 private:
  static constexpr std::size_t kBuckets = kMaxPooledSize / kGranule;

  struct FreeBlock {
    FreeBlock* next;
  };

  static std::size_t bucket_of(std::size_t size) {
    return (size - 1) / kGranule;  // size >= 1 (operator new contract)
  }

  std::array<FreeBlock*, kBuckets> free_ = {};
  Stats stats_;
};

}  // namespace dmx::net
