// Recycling arena for protocol message (and other fixed-size) storage.
//
// Every send allocates a Message and every delivery frees it; under
// saturation that is millions of malloc/free pairs per experiment. The
// pool intercepts Message::operator new/delete and recycles blocks
// through per-size-class free lists: after a short warm-up, steady-state
// send/deliver traffic touches the heap zero times.
//
// Size classes are 16-byte granules up to 256 bytes. Each message kind
// has a fixed concrete type and therefore a fixed size, so bucketing by
// size class recycles storage "per kind" exactly, while also letting
// kinds of equal size share a free list. Oversized blocks (> 256 bytes)
// pass through to the global heap and are counted separately.
//
// Threading (the executor substrate's contract): allocation always comes
// from the calling thread's pool and is lock-free. Every block carries a
// 16-byte header naming its owner pool and size class, so a block may be
// freed on ANY thread: a local free pushes straight onto the owner's
// per-class free list (no atomics), a cross-thread free pushes onto the
// owner's lock-free return stack (one CAS), and the owner reclaims the
// returned blocks in bulk on its next allocation miss. This is what lets
// a worker pool allocate a message on worker A and free it on worker B
// without either heap traffic or a lock.
//
// Pools outlive threads: local() hands out pools leased from a global
// registry, and a finished thread parks its pool there (to be adopted by
// a future thread) instead of destroying it — so a block freed after its
// allocating thread exited still finds a live owner for its return stack.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dmx::net {

class MessagePool {
 public:
  struct Stats {
    std::uint64_t fresh_allocations = 0;  // blocks obtained from the heap
    std::uint64_t pool_hits = 0;          // blocks served from a free list
    std::uint64_t oversize_allocations = 0;  // > kMaxPooledSize, passthrough
    std::uint64_t outstanding = 0;        // live blocks right now
    std::uint64_t remote_frees = 0;       // frees arriving from other threads
  };

  static constexpr std::size_t kGranule = 16;
  static constexpr std::size_t kMaxPooledSize = 256;

  /// This thread's pool (leased from the global registry on first use).
  static MessagePool& local();

  /// Frees a block allocated by any thread's pool; routes to the owner's
  /// local free list or its cross-thread return stack as appropriate.
  static void free_block(void* p) noexcept;

  MessagePool() = default;
  MessagePool(const MessagePool&) = delete;
  MessagePool& operator=(const MessagePool&) = delete;
  ~MessagePool();

  void* allocate(std::size_t size);
  /// Instance-form free; equivalent to free_block(p) (the owner is read
  /// from the block header, not assumed to be this pool).
  void deallocate(void* p, std::size_t size) noexcept;

  /// Consistent snapshot of this pool's counters as seen by the owning
  /// thread (remote frees are folded in from the atomic side).
  Stats stats() const;

  /// Releases all cached free blocks — including any parked on the
  /// cross-thread return stack — back to the heap (outstanding blocks are
  /// untouched). Used by tests to isolate measurements.
  void trim() noexcept;

 private:
  static constexpr std::size_t kBuckets = kMaxPooledSize / kGranule;
  static constexpr std::uint32_t kOversizeBucket = 0xffffffffu;

  /// Prefixed to every block. 16 bytes keeps the payload on the same
  /// alignment ::operator new provided.
  struct alignas(16) Header {
    MessagePool* owner;
    std::uint32_t bucket;
  };

  struct FreeBlock {
    FreeBlock* next;
  };

  static std::size_t bucket_of(std::size_t size) {
    return (size - 1) / kGranule;  // size >= 1 (operator new contract)
  }
  static Header* header_of(void* payload) {
    return reinterpret_cast<Header*>(static_cast<char*>(payload) -
                                     sizeof(Header));
  }
  static void* payload_of(Header* header) {
    return reinterpret_cast<char*>(header) + sizeof(Header);
  }

  void free_local(Header* header, void* payload) noexcept;
  void free_remote(Header* header, void* payload) noexcept;
  /// Pulls everything off the return stack into the local free lists.
  void drain_remote() noexcept;

  std::array<FreeBlock*, kBuckets> free_ = {};
  // Owner-thread counters (plain; pool adoption hands over via the
  // registry mutex).
  std::uint64_t fresh_allocations_ = 0;
  std::uint64_t pool_hits_ = 0;
  std::uint64_t oversize_allocations_ = 0;
  std::uint64_t allocated_ = 0;
  std::uint64_t freed_local_ = 0;
  // Cross-thread side: Treiber stack of returned blocks + fold counter.
  std::atomic<FreeBlock*> remote_head_{nullptr};
  std::atomic<std::uint64_t> freed_remote_{0};
};

}  // namespace dmx::net
