#include "net/message_pool.hpp"

#include <mutex>
#include <new>
#include <vector>

namespace dmx::net {

namespace {

/// Fast owner identity for free_block(): null until this thread first
/// leases a pool, null again after its lease is returned — both states
/// correctly route frees through the cross-thread path.
thread_local MessagePool* tl_pool = nullptr;

/// Parked pools whose threads exited, awaiting adoption. Heap-allocated
/// and never destroyed: blocks freed during static destruction must still
/// find their owner pools alive.
struct Registry {
  std::mutex mutex;
  std::vector<MessagePool*> parked;
};

Registry& registry() {
  static Registry* instance = new Registry;
  return *instance;
}

/// Thread-local lease: parks the pool (instead of destroying it) when the
/// thread exits, so outstanding blocks keep a live owner for their
/// cross-thread return stack.
struct Lease {
  MessagePool* pool = nullptr;
  ~Lease() {
    if (pool == nullptr) return;
    tl_pool = nullptr;
    Registry& reg = registry();
    std::lock_guard<std::mutex> guard(reg.mutex);
    reg.parked.push_back(pool);
  }
};
thread_local Lease tl_lease;

}  // namespace

MessagePool& MessagePool::local() {
  if (tl_pool == nullptr) {
    Registry& reg = registry();
    MessagePool* pool = nullptr;
    {
      std::lock_guard<std::mutex> guard(reg.mutex);
      if (!reg.parked.empty()) {
        pool = reg.parked.back();
        reg.parked.pop_back();
      }
    }
    if (pool == nullptr) pool = new MessagePool;
    tl_lease.pool = pool;
    tl_pool = pool;
  }
  return *tl_pool;
}

MessagePool::~MessagePool() { trim(); }

void* MessagePool::allocate(std::size_t size) {
  if (size == 0) size = 1;
  ++allocated_;
  if (size > kMaxPooledSize) {
    ++oversize_allocations_;
    void* raw = ::operator new(sizeof(Header) + size);
    Header* header = new (raw) Header{this, kOversizeBucket};
    return payload_of(header);
  }
  const std::size_t bucket = bucket_of(size);
  FreeBlock* block = free_[bucket];
  if (block == nullptr) {
    drain_remote();
    block = free_[bucket];
  }
  if (block != nullptr) {
    free_[bucket] = block->next;
    ++pool_hits_;
    return block;
  }
  ++fresh_allocations_;
  // Allocate the bucket's full granule span so the block is reusable by
  // any size in the class.
  void* raw = ::operator new(sizeof(Header) + (bucket + 1) * kGranule);
  Header* header = new (raw) Header{this, static_cast<std::uint32_t>(bucket)};
  return payload_of(header);
}

void MessagePool::free_block(void* p) noexcept {
  if (p == nullptr) return;
  Header* header = header_of(p);
  MessagePool* owner = header->owner;
  if (owner == tl_pool) {
    owner->free_local(header, p);
  } else {
    owner->free_remote(header, p);
  }
}

void MessagePool::deallocate(void* p, std::size_t /*size*/) noexcept {
  free_block(p);
}

void MessagePool::free_local(Header* header, void* payload) noexcept {
  ++freed_local_;
  if (header->bucket == kOversizeBucket) {
    ::operator delete(header);
    return;
  }
  auto* block = static_cast<FreeBlock*>(payload);
  block->next = free_[header->bucket];
  free_[header->bucket] = block;
}

void MessagePool::free_remote(Header* header, void* payload) noexcept {
  if (header->bucket == kOversizeBucket) {
    ::operator delete(header);
    freed_remote_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto* block = static_cast<FreeBlock*>(payload);
  FreeBlock* head = remote_head_.load(std::memory_order_relaxed);
  do {
    block->next = head;
  } while (!remote_head_.compare_exchange_weak(head, block,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  freed_remote_.fetch_add(1, std::memory_order_release);
}

void MessagePool::drain_remote() noexcept {
  FreeBlock* list = remote_head_.exchange(nullptr, std::memory_order_acquire);
  while (list != nullptr) {
    FreeBlock* next = list->next;
    Header* header = header_of(list);
    list->next = free_[header->bucket];
    free_[header->bucket] = list;
    list = next;
  }
}

MessagePool::Stats MessagePool::stats() const {
  Stats stats;
  stats.fresh_allocations = fresh_allocations_;
  stats.pool_hits = pool_hits_;
  stats.oversize_allocations = oversize_allocations_;
  stats.remote_frees = freed_remote_.load(std::memory_order_acquire);
  stats.outstanding = allocated_ - freed_local_ - stats.remote_frees;
  return stats;
}

void MessagePool::trim() noexcept {
  drain_remote();
  for (FreeBlock*& head : free_) {
    while (head != nullptr) {
      FreeBlock* next = head->next;
      ::operator delete(header_of(head));
      head = next;
    }
  }
}

}  // namespace dmx::net
