#include "net/message_pool.hpp"

#include <new>

namespace dmx::net {

MessagePool& MessagePool::local() {
  static thread_local MessagePool pool;
  return pool;
}

MessagePool::~MessagePool() { trim(); }

void* MessagePool::allocate(std::size_t size) {
  if (size == 0) size = 1;
  if (size > kMaxPooledSize) {
    ++stats_.oversize_allocations;
    ++stats_.outstanding;
    return ::operator new(size);
  }
  const std::size_t bucket = bucket_of(size);
  if (FreeBlock* block = free_[bucket]) {
    free_[bucket] = block->next;
    ++stats_.pool_hits;
    ++stats_.outstanding;
    return block;
  }
  ++stats_.fresh_allocations;
  ++stats_.outstanding;
  // Allocate the bucket's full granule span so the block is reusable by
  // any size in the class.
  return ::operator new((bucket + 1) * kGranule);
}

void MessagePool::deallocate(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  if (size == 0) size = 1;
  --stats_.outstanding;
  if (size > kMaxPooledSize) {
    ::operator delete(p);
    return;
  }
  const std::size_t bucket = bucket_of(size);
  auto* block = static_cast<FreeBlock*>(p);
  block->next = free_[bucket];
  free_[bucket] = block;
}

void MessagePool::trim() noexcept {
  for (FreeBlock*& head : free_) {
    while (head != nullptr) {
      FreeBlock* next = head->next;
      ::operator delete(head);
      head = next;
    }
  }
}

}  // namespace dmx::net
