// Simulated fully connected reliable network with per-channel FIFO.
//
// Reproduces the paper's network assumptions (Chapter 2): nodes are fully
// connected by a reliable network, and "messages sent by the same node are
// not allowed to overtake each other while in transit". We enforce FIFO
// per ordered (from, to) channel by never scheduling a delivery earlier
// than the previous delivery on the same channel.
//
// The network is also the measurement point for every message-complexity
// experiment: it counts sends per message kind, accounts payload bytes,
// and exposes the set of in-flight messages so invariant checkers can
// verify token uniqueness including PRIVILEGE messages in transit.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace dmx::net {

/// A message in flight or being delivered.
struct Envelope {
  std::uint64_t id = 0;
  NodeId from = kNilNode;
  NodeId to = kNilNode;
  Tick sent_at = 0;
  Tick deliver_at = 0;
  MessagePtr message;
};

/// Aggregate send counters, keyed by Message::kind().
struct MessageStats {
  std::uint64_t total_sent = 0;
  std::uint64_t total_dropped = 0;
  std::uint64_t total_payload_bytes = 0;
  std::map<std::string, std::uint64_t> sent_by_kind;

  /// Count for one kind (0 if never sent).
  std::uint64_t sent(std::string_view kind) const;
};

/// Observer hooks for tracing; both calls happen after counters update.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_send(const Envelope& env) = 0;
  virtual void on_deliver(const Envelope& env) = 0;
};

class Network {
 public:
  /// Delivery callback: invoked in virtual time when a message arrives.
  using DeliveryHandler = std::function<void(const Envelope&)>;

  /// `n` nodes are numbered 1..n. The latency model must outlive sampling
  /// (owned here). `seed` drives latency sampling only.
  Network(sim::Simulator& sim, int n, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed = 1);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int size() const { return n_; }

  /// Sends `message` from `from` to `to` (both in 1..n, from != to).
  /// Delivery is scheduled on the simulator; the handler fires at the
  /// delivery tick.
  void send(NodeId from, NodeId to, MessagePtr message);

  /// Installs the delivery handler (the harness). Must be set before the
  /// first delivery fires.
  void set_delivery_handler(DeliveryHandler handler);

  /// Optional tracing observer (not owned). Pass nullptr to clear.
  void set_observer(NetworkObserver* observer) { observer_ = observer; }

  const MessageStats& stats() const { return stats_; }

  /// Resets counters (not in-flight messages); used between measurement
  /// epochs so each probe counts only its own traffic.
  void reset_stats();

  // --- Failure injection ---------------------------------------------------
  // The paper assumes a reliable network (Chapter 2). These knobs break
  // that assumption on purpose: failure-injection tests demonstrate that
  // the assumption is load-bearing (a lost PRIVILEGE is a lost token; a
  // lost REQUEST is a starved node) and that the invariant checkers
  // actually detect the damage.

  /// Every subsequent message is dropped with probability `p` (sampled
  /// from this network's deterministic RNG).
  void set_drop_probability(double p);

  /// Drops the next sent message whose kind() equals `kind` (one-shot).
  void drop_next(std::string_view kind);

  /// Number of messages currently in flight.
  std::size_t in_flight_count() const { return in_flight_.size(); }

  /// Number of in-flight messages of one kind (e.g. "PRIVILEGE").
  std::size_t in_flight_count(std::string_view kind) const;

  /// Visits every in-flight envelope (order unspecified).
  void for_each_in_flight(
      const std::function<void(const Envelope&)>& fn) const;

 private:
  void deliver(std::uint64_t envelope_id);

  sim::Simulator& sim_;
  int n_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  double drop_probability_ = 0.0;
  std::optional<std::string> drop_next_kind_;
  DeliveryHandler handler_;
  NetworkObserver* observer_ = nullptr;
  std::uint64_t next_envelope_id_ = 1;
  MessageStats stats_;
  // Last scheduled delivery tick per ordered channel, for FIFO.
  std::unordered_map<std::uint64_t, Tick> channel_last_delivery_;
  // In-flight envelopes by id.
  std::unordered_map<std::uint64_t, Envelope> in_flight_;
};

}  // namespace dmx::net
