// Simulated fully connected reliable network with per-channel FIFO.
//
// Reproduces the paper's network assumptions (Chapter 2): nodes are fully
// connected by a reliable network, and "messages sent by the same node are
// not allowed to overtake each other while in transit". We enforce FIFO
// per ordered (from, to) channel by never scheduling a delivery earlier
// than the previous delivery on the same channel.
//
// The network is also the measurement point for every message-complexity
// experiment: it counts sends per message kind, accounts payload bytes,
// and exposes the set of in-flight messages so invariant checkers can
// verify token uniqueness including PRIVILEGE messages in transit.
//
// Hot-path layout (the zero-allocation kernel):
//  * the per-channel FIFO clamp is a dense vector<Tick> indexed by
//    from * (n + 1) + to — one cache line probe, no hashing;
//  * in-flight envelopes live in a slot map with an intrusive free list;
//    slots recycle, so steady-state send/deliver never allocates;
//  * per-kind counters are a flat vector indexed by interned MessageKind
//    id; the string-keyed map view is materialized only for reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace dmx::net {

/// A message in flight or being delivered. One network carries every
/// resource of a multi-resource LockSpace: the resource id demultiplexes
/// deliveries into per-resource protocol instances. Single-resource
/// substrates leave it at 0.
struct Envelope {
  std::uint64_t id = 0;
  ResourceId resource = 0;
  NodeId from = kNilNode;
  NodeId to = kNilNode;
  Tick sent_at = 0;
  Tick deliver_at = 0;
  /// Sender's configuration epoch for this resource. The network fences
  /// envelopes whose epoch trails the resource's current epoch (see
  /// set_resource_epoch): a PRIVILEGE minted before a crash-repair must
  /// never be delivered into the regenerated world.
  Epoch epoch = 0;
  MessagePtr message;
};

/// Aggregate send counters, keyed by interned message kind.
struct MessageStats {
  std::uint64_t total_sent = 0;
  std::uint64_t total_dropped = 0;
  std::uint64_t total_duplicated = 0;
  /// Envelopes discarded at delivery because their epoch trailed the
  /// resource's current epoch (stale-token fencing).
  std::uint64_t total_fenced = 0;
  std::uint64_t total_payload_bytes = 0;
  /// Sends per kind, indexed by MessageKind::id(). May be shorter than
  /// MessageKind::registered_count(); missing entries mean zero.
  std::vector<std::uint64_t> sent_by_kind_id;

  /// Count for one kind (0 if never sent).
  std::uint64_t sent(MessageKind kind) const;
  std::uint64_t sent(std::string_view kind) const;

  /// Lazy reporting view: kind string -> count, kinds with zero sends
  /// omitted. Builds a fresh map; not for hot paths.
  std::map<std::string, std::uint64_t> by_kind() const;
};

/// Observer hooks for tracing; both calls happen after counters update.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_send(const Envelope& env) = 0;
  virtual void on_deliver(const Envelope& env) = 0;
};

class Network {
 public:
  /// Delivery callback: invoked in virtual time when a message arrives.
  using DeliveryHandler = std::function<void(const Envelope&)>;

  /// `n` nodes are numbered 1..n. The latency model must outlive sampling
  /// (owned here). `seed` drives latency sampling only.
  Network(sim::Simulator& sim, int n, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed = 1);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int size() const { return n_; }

  /// Sends `message` from `from` to `to` (both in 1..n, from != to).
  /// Delivery is scheduled on the simulator; the handler fires at the
  /// delivery tick. Equivalent to send(0, from, to, message).
  void send(NodeId from, NodeId to, MessagePtr message);

  /// Resource-tagged send: the envelope carries `resource` so the delivery
  /// handler can route it to the right protocol instance, and per-resource
  /// counters are maintained. FIFO is still per ordered (from, to) channel
  /// across all resources (one physical link per node pair). The envelope
  /// is stamped with the resource's current epoch.
  void send(ResourceId resource, NodeId from, NodeId to, MessagePtr message);

  /// Epoch-stamped send: as above but the envelope carries the sender's
  /// own epoch, which may trail the resource's current one — a recovered
  /// but not yet reintegrated node sends with its stale epoch, and those
  /// envelopes are fenced at delivery.
  void send(ResourceId resource, NodeId from, NodeId to, MessagePtr message,
            Epoch epoch);

  /// Installs the delivery handler (the harness). Must be set before the
  /// first delivery fires.
  void set_delivery_handler(DeliveryHandler handler);

  /// Optional tracing observer (not owned). Pass nullptr to clear.
  void set_observer(NetworkObserver* observer) { observer_ = observer; }

  const MessageStats& stats() const { return stats_; }

  /// Per-resource send counters (zeros for a resource never sent on).
  const MessageStats& stats(ResourceId resource) const;

  /// Resets counters (not in-flight messages); used between measurement
  /// epochs so each probe counts only its own traffic.
  void reset_stats();

  // --- Failure injection ---------------------------------------------------
  // The paper assumes a reliable network (Chapter 2). These knobs break
  // that assumption on purpose: failure-injection tests demonstrate that
  // the assumption is load-bearing (a lost PRIVILEGE is a lost token; a
  // lost REQUEST is a starved node) and that the invariant checkers
  // actually detect the damage.

  /// Every subsequent message is dropped with probability `p` (sampled
  /// from this network's deterministic RNG).
  void set_drop_probability(double p);

  /// Drops the next sent message of kind `kind` (one-shot).
  void drop_next(std::string_view kind);

  /// Duplicates the next sent message of kind `kind` (one-shot): a second,
  /// independent envelope with a cloned message is scheduled on the same
  /// channel, FIFO-behind the original. A duplicated PRIVILEGE/TOKEN is a
  /// forged second token — the token-uniqueness invariant must catch it,
  /// which is exactly what the swarm tester and failure-injection tests
  /// assert. The duplicate counts toward total_sent and per-kind stats
  /// (it does traverse the network) plus total_duplicated.
  void duplicate_next(std::string_view kind);

  // --- Crash faults and link faults ---------------------------------------
  // Node-level and link-level reachability state consumed by the fault
  // substrate (src/fault). All O(1) per send/deliver: node state is a
  // dense byte vector, link state a dense (n+1)^2 byte table.

  /// Marks node `v` crashed: subsequent sends to or from it are dropped at
  /// send, and envelopes already in flight toward it are discarded at
  /// their delivery tick (the wire does not care that the plug was pulled
  /// mid-transit). Dead drops count into total_dropped.
  void set_node_down(NodeId v);

  /// Marks node `v` reachable again. In-flight state is unaffected; the
  /// node is epoch-stale until the harness reintegrates it.
  void set_node_up(NodeId v);

  bool is_node_down(NodeId v) const;

  /// Severs the link between `a` and `b` symmetrically: sends either way
  /// are dropped (counted into total_dropped) until heal(a, b).
  void partition(NodeId a, NodeId b);

  /// Restores the link between `a` and `b`.
  void heal(NodeId a, NodeId b);

  bool is_partitioned(NodeId a, NodeId b) const;

  /// Sets the current epoch of `resource`. Envelopes whose stamped epoch
  /// trails this are fenced at delivery: discarded, counted into
  /// total_fenced, and reported to the discard handler — never delivered.
  /// This is the wire half of "a stale token is never granted".
  void set_resource_epoch(ResourceId resource, Epoch epoch);

  Epoch resource_epoch(ResourceId resource) const;

  /// Why an in-flight envelope was discarded instead of delivered.
  enum class DiscardReason : std::uint8_t { kDeadDestination, kStaleEpoch };

  /// Called at the delivery tick of every discarded envelope, after
  /// counters are decremented. The LockSpace hooks this to re-check token
  /// uniqueness exactly where token loss becomes observable. Pass nullptr
  /// to clear.
  using DiscardHandler = std::function<void(const Envelope&, DiscardReason)>;
  void set_discard_handler(DiscardHandler handler);

  /// Number of messages currently in flight.
  std::size_t in_flight_count() const { return in_flight_count_; }

  /// Number of in-flight messages of one kind (e.g. "PRIVILEGE"). O(1):
  /// per-kind counters are maintained on send/deliver, because the
  /// token-uniqueness invariant queries this after every event.
  std::size_t in_flight_count(MessageKind kind) const;
  std::size_t in_flight_count(std::string_view kind) const;

  /// Number of in-flight messages of one kind on one resource. O(1): the
  /// per-resource LockSpace re-checks token uniqueness for the delivered
  /// envelope's resource after every event.
  std::size_t in_flight_count(ResourceId resource, MessageKind kind) const;

  /// Number of in-flight messages of one kind on one resource stamped
  /// with exactly `epoch`. O(1). The fault-tolerant token-uniqueness
  /// invariant counts only current-epoch tokens: a stale PRIVILEGE still
  /// in flight is already dead (it will be fenced), so it must not make a
  /// regenerated token look like a duplicate.
  std::size_t in_flight_count(ResourceId resource, Epoch epoch,
                              MessageKind kind) const;

  /// Visits every in-flight envelope (order unspecified).
  void for_each_in_flight(
      const std::function<void(const Envelope&)>& fn) const;

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  struct EnvelopeSlot {
    Envelope env;
    std::uint32_t next_free = kNpos;
    bool active = false;
  };

  void deliver(std::uint32_t slot_index);
  void discard(Envelope env, DiscardReason reason);
  std::uint32_t acquire_slot();
  std::size_t link_index(NodeId a, NodeId b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_ + 1) +
           static_cast<std::size_t>(b);
  }

  sim::Simulator& sim_;
  int n_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  double drop_probability_ = 0.0;
  MessageKind drop_next_kind_;       // invalid = disarmed
  MessageKind duplicate_next_kind_;  // invalid = disarmed
  DeliveryHandler handler_;
  NetworkObserver* observer_ = nullptr;
  std::uint64_t next_envelope_id_ = 1;
  MessageStats stats_;
  // Last scheduled delivery tick per ordered channel, dense (n+1)^2 table
  // indexed by from * (n + 1) + to.
  std::vector<Tick> channel_last_delivery_;
  // In-flight envelopes: slot map with intrusive free list.
  std::vector<EnvelopeSlot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::size_t in_flight_count_ = 0;
  // In-flight messages per kind id (missing entries mean zero).
  std::vector<std::size_t> in_flight_by_kind_;
  // Per-resource layers of the same counters, indexed by resource id then
  // kind id. Grown on first use of a resource/kind; steady state is
  // allocation-free once every (resource, kind) pair has been seen.
  std::vector<std::vector<std::size_t>> in_flight_by_resource_;
  std::vector<MessageStats> resource_stats_;
  // Fault state. Epochs stay tiny (one bump per repair), so the per-epoch
  // counter layer [resource][epoch][kind] remains dense and O(1) to probe.
  std::vector<std::uint8_t> node_down_;        // index 1..n, 1 = crashed
  std::vector<std::uint8_t> link_severed_;     // dense (n+1)^2, symmetric
  std::vector<Epoch> resource_epoch_;          // index by resource, 0 default
  std::vector<std::vector<std::vector<std::size_t>>> in_flight_by_epoch_;
  DiscardHandler discard_handler_;
};

}  // namespace dmx::net
