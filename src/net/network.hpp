// Simulated fully connected reliable network with per-channel FIFO.
//
// Reproduces the paper's network assumptions (Chapter 2): nodes are fully
// connected by a reliable network, and "messages sent by the same node are
// not allowed to overtake each other while in transit". We enforce FIFO
// per ordered (from, to) channel by never scheduling a delivery earlier
// than the previous delivery on the same channel.
//
// The network is also the measurement point for every message-complexity
// experiment: it counts sends per message kind, accounts payload bytes,
// and exposes the set of in-flight messages so invariant checkers can
// verify token uniqueness including PRIVILEGE messages in transit.
//
// Hot-path layout (the zero-allocation kernel):
//  * the per-channel FIFO clamp is a dense vector<Tick> indexed by
//    from * (n + 1) + to — one cache line probe, no hashing;
//  * in-flight envelopes live in a slot map with an intrusive free list;
//    slots recycle, so steady-state send/deliver never allocates;
//  * per-kind counters are a flat vector indexed by interned MessageKind
//    id; the string-keyed map view is materialized only for reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/latency.hpp"
#include "net/message.hpp"
#include "sim/simulator.hpp"

namespace dmx::net {

/// A message in flight or being delivered. One network carries every
/// resource of a multi-resource LockSpace: the resource id demultiplexes
/// deliveries into per-resource protocol instances. Single-resource
/// substrates leave it at 0.
struct Envelope {
  std::uint64_t id = 0;
  ResourceId resource = 0;
  NodeId from = kNilNode;
  NodeId to = kNilNode;
  Tick sent_at = 0;
  Tick deliver_at = 0;
  MessagePtr message;
};

/// Aggregate send counters, keyed by interned message kind.
struct MessageStats {
  std::uint64_t total_sent = 0;
  std::uint64_t total_dropped = 0;
  std::uint64_t total_duplicated = 0;
  std::uint64_t total_payload_bytes = 0;
  /// Sends per kind, indexed by MessageKind::id(). May be shorter than
  /// MessageKind::registered_count(); missing entries mean zero.
  std::vector<std::uint64_t> sent_by_kind_id;

  /// Count for one kind (0 if never sent).
  std::uint64_t sent(MessageKind kind) const;
  std::uint64_t sent(std::string_view kind) const;

  /// Lazy reporting view: kind string -> count, kinds with zero sends
  /// omitted. Builds a fresh map; not for hot paths.
  std::map<std::string, std::uint64_t> by_kind() const;
};

/// Observer hooks for tracing; both calls happen after counters update.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_send(const Envelope& env) = 0;
  virtual void on_deliver(const Envelope& env) = 0;
};

class Network {
 public:
  /// Delivery callback: invoked in virtual time when a message arrives.
  using DeliveryHandler = std::function<void(const Envelope&)>;

  /// `n` nodes are numbered 1..n. The latency model must outlive sampling
  /// (owned here). `seed` drives latency sampling only.
  Network(sim::Simulator& sim, int n, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed = 1);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  int size() const { return n_; }

  /// Sends `message` from `from` to `to` (both in 1..n, from != to).
  /// Delivery is scheduled on the simulator; the handler fires at the
  /// delivery tick. Equivalent to send(0, from, to, message).
  void send(NodeId from, NodeId to, MessagePtr message);

  /// Resource-tagged send: the envelope carries `resource` so the delivery
  /// handler can route it to the right protocol instance, and per-resource
  /// counters are maintained. FIFO is still per ordered (from, to) channel
  /// across all resources (one physical link per node pair).
  void send(ResourceId resource, NodeId from, NodeId to, MessagePtr message);

  /// Installs the delivery handler (the harness). Must be set before the
  /// first delivery fires.
  void set_delivery_handler(DeliveryHandler handler);

  /// Optional tracing observer (not owned). Pass nullptr to clear.
  void set_observer(NetworkObserver* observer) { observer_ = observer; }

  const MessageStats& stats() const { return stats_; }

  /// Per-resource send counters (zeros for a resource never sent on).
  const MessageStats& stats(ResourceId resource) const;

  /// Resets counters (not in-flight messages); used between measurement
  /// epochs so each probe counts only its own traffic.
  void reset_stats();

  // --- Failure injection ---------------------------------------------------
  // The paper assumes a reliable network (Chapter 2). These knobs break
  // that assumption on purpose: failure-injection tests demonstrate that
  // the assumption is load-bearing (a lost PRIVILEGE is a lost token; a
  // lost REQUEST is a starved node) and that the invariant checkers
  // actually detect the damage.

  /// Every subsequent message is dropped with probability `p` (sampled
  /// from this network's deterministic RNG).
  void set_drop_probability(double p);

  /// Drops the next sent message of kind `kind` (one-shot).
  void drop_next(std::string_view kind);

  /// Duplicates the next sent message of kind `kind` (one-shot): a second,
  /// independent envelope with a cloned message is scheduled on the same
  /// channel, FIFO-behind the original. A duplicated PRIVILEGE/TOKEN is a
  /// forged second token — the token-uniqueness invariant must catch it,
  /// which is exactly what the swarm tester and failure-injection tests
  /// assert. The duplicate counts toward total_sent and per-kind stats
  /// (it does traverse the network) plus total_duplicated.
  void duplicate_next(std::string_view kind);

  /// Number of messages currently in flight.
  std::size_t in_flight_count() const { return in_flight_count_; }

  /// Number of in-flight messages of one kind (e.g. "PRIVILEGE"). O(1):
  /// per-kind counters are maintained on send/deliver, because the
  /// token-uniqueness invariant queries this after every event.
  std::size_t in_flight_count(MessageKind kind) const;
  std::size_t in_flight_count(std::string_view kind) const;

  /// Number of in-flight messages of one kind on one resource. O(1): the
  /// per-resource LockSpace re-checks token uniqueness for the delivered
  /// envelope's resource after every event.
  std::size_t in_flight_count(ResourceId resource, MessageKind kind) const;

  /// Visits every in-flight envelope (order unspecified).
  void for_each_in_flight(
      const std::function<void(const Envelope&)>& fn) const;

 private:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  struct EnvelopeSlot {
    Envelope env;
    std::uint32_t next_free = kNpos;
    bool active = false;
  };

  void deliver(std::uint32_t slot_index);
  std::uint32_t acquire_slot();

  sim::Simulator& sim_;
  int n_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  double drop_probability_ = 0.0;
  MessageKind drop_next_kind_;       // invalid = disarmed
  MessageKind duplicate_next_kind_;  // invalid = disarmed
  DeliveryHandler handler_;
  NetworkObserver* observer_ = nullptr;
  std::uint64_t next_envelope_id_ = 1;
  MessageStats stats_;
  // Last scheduled delivery tick per ordered channel, dense (n+1)^2 table
  // indexed by from * (n + 1) + to.
  std::vector<Tick> channel_last_delivery_;
  // In-flight envelopes: slot map with intrusive free list.
  std::vector<EnvelopeSlot> slots_;
  std::uint32_t free_head_ = kNpos;
  std::size_t in_flight_count_ = 0;
  // In-flight messages per kind id (missing entries mean zero).
  std::vector<std::size_t> in_flight_by_kind_;
  // Per-resource layers of the same counters, indexed by resource id then
  // kind id. Grown on first use of a resource/kind; steady state is
  // allocation-free once every (resource, kind) pair has been seen.
  std::vector<std::vector<std::size_t>> in_flight_by_resource_;
  std::vector<MessageStats> resource_stats_;
};

}  // namespace dmx::net
