// Interned message-kind identifiers.
//
// Per-kind statistics, failure injection, and the token-uniqueness
// invariant all key on a message's kind. Comparing and hashing kind
// *strings* on every send put a std::map lookup on the hottest path in the
// repository; interning replaces that with an integer compare.
//
// Interning rules:
//  * A kind string is registered once, on first use, and receives the next
//    small integer id. Ids are dense (0..registered_count()-1), stable for
//    the lifetime of the process, and never reused.
//  * Registration is guarded by a mutex and safe to call from any thread;
//    id -> name lookup is lock-free (fixed-capacity table, no relocation).
//  * At most kMaxKinds distinct kinds may be registered (a protocol suite
//    has dozens, not hundreds; exceeding the cap is a bug and throws).
//  * A default-constructed MessageKind is the invalid kind: it compares
//    unequal to every registered kind and names itself "?". lookup() of an
//    unregistered string returns it, so "count of unknown kind" queries
//    cleanly report zero.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dmx::net {

class MessageKind {
 public:
  static constexpr std::uint32_t kInvalidId = 0xffffffffu;
  static constexpr std::size_t kMaxKinds = 256;

  /// The invalid kind.
  constexpr MessageKind() = default;

  /// Returns the id for `name`, registering it on first use.
  static MessageKind of(std::string_view name);

  /// Returns the id for `name` if registered, the invalid kind otherwise.
  /// Never registers.
  static MessageKind lookup(std::string_view name);

  /// Number of kinds registered so far.
  static std::size_t registered_count();

  /// The kind with id `id` (must be < registered_count()).
  static MessageKind from_id(std::uint32_t id);

  std::uint32_t id() const { return id_; }
  bool valid() const { return id_ != kInvalidId; }

  /// The interned kind string ("?" for the invalid kind).
  std::string_view name() const;

  friend bool operator==(MessageKind a, MessageKind b) {
    return a.id_ == b.id_;
  }
  friend bool operator!=(MessageKind a, MessageKind b) {
    return a.id_ != b.id_;
  }

 private:
  explicit constexpr MessageKind(std::uint32_t id) : id_(id) {}

  std::uint32_t id_ = kInvalidId;
};

}  // namespace dmx::net
