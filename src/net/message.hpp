// Polymorphic protocol messages.
//
// Every algorithm defines its own message structs deriving from Message.
// The base class carries only the interned MessageKind: the paper's
// PRIVILEGE message "needs no data structure", and the storage-overhead
// experiment (E5) measures payload_bytes() per message kind to reproduce
// §6.4.
//
// Kind contract: a concrete message class resolves its kind(s) to
// MessageKind once (function-local static) and passes the id to the base
// constructor. All hot-path kind comparisons — per-kind send counters,
// failure injection, token-uniqueness checks — are integer compares; the
// kind *string* is only materialized for reporting and traces.
//
// Allocation contract: messages allocate from the calling thread's
// MessagePool, so make_unique<SomeMessage>() recycles storage and the
// steady-state send/deliver path never touches the heap — freeing is
// legal from any thread (owner-return free lists). Classes with
// heap-owning members (vectors, strings) still pay for those members;
// keep token payloads preallocated where throughput matters.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <string_view>

#include "net/message_kind.hpp"
#include "net/message_pool.hpp"

namespace dmx::net {

class Message;
using MessagePtr = std::unique_ptr<Message>;

class Message {
 public:
  explicit Message(MessageKind kind) : kind_(kind) {}
  virtual ~Message() = default;

  /// Interned kind id; the hot-path identity of this message.
  MessageKind kind_id() const { return kind_; }

  /// Stable message-kind label used for per-kind counters and traces,
  /// e.g. "REQUEST", "PRIVILEGE", "REPLY".
  std::string_view kind() const { return kind_.name(); }

  /// Size of the semantic payload in bytes (excluding addressing), as the
  /// paper accounts it: a Neilsen REQUEST carries two integers (8 bytes),
  /// a PRIVILEGE carries nothing (0 bytes), a Suzuki–Kasami token carries
  /// LN[1..N] plus a queue, etc.
  virtual std::size_t payload_bytes() const = 0;

  /// Human-readable rendering for traces; defaults to kind().
  virtual std::string describe() const { return std::string(kind()); }

  /// Deep copy with the same dynamic type and content. Used by the
  /// network's duplicate-injection (the duplicate is an independent
  /// envelope) and by tooling that needs to retain sent messages.
  virtual MessagePtr clone() const = 0;

  /// Canonical full-content rendering, used by the schedule explorer to
  /// hash and compare system states. Defaults to describe(), which is
  /// exact for messages whose payload it fully renders; classes whose
  /// describe() omits payload fields (e.g. token arrays) must override —
  /// two messages with equal encode() must be behaviorally identical.
  virtual std::string encode() const { return describe(); }

  /// Interned id of this message's wire codec in the transport codec
  /// registry (src/transport/codec). Kind strings like "REQUEST" are
  /// shared across algorithm families with different payload layouts, so
  /// each concrete message class interns a distinct family-qualified codec
  /// name (e.g. "neilsen.request") and returns it here; decode then always
  /// reconstructs the exact concrete type the sender serialized. The
  /// default (the invalid kind) marks a class with no registered codec —
  /// the transport refuses to ship it.
  virtual MessageKind wire_kind() const { return MessageKind(); }

  /// Appends this message's binary payload encoding to `out`
  /// (little-endian fixed-width fields; see net/wire_format.hpp). The
  /// paired decoder is registered with the transport codec registry under
  /// wire_kind(). Default: empty payload. The round-trip contract is
  /// pinned by tests/transport/wire_codec_test.cpp: decode(encode_binary)
  /// must reproduce a message with identical encode() and payload_bytes().
  virtual void encode_binary(std::string& out) const { (void)out; }

  // Route all message storage through the recycling pool. A block carries
  // its owner pool and size class in a header, so deletion works from any
  // thread (a message allocated on one pool worker and delivered on
  // another returns to its owner's free lists) and through a Message*.
  static void* operator new(std::size_t size) {
    return MessagePool::local().allocate(size);
  }
  static void operator delete(void* p, std::size_t) noexcept {
    MessagePool::free_block(p);
  }

 private:
  MessageKind kind_;
};

}  // namespace dmx::net
