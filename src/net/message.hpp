// Polymorphic protocol messages.
//
// Every algorithm defines its own message structs deriving from Message.
// The base class deliberately carries nothing: the paper's PRIVILEGE
// message "needs no data structure", and the storage-overhead experiment
// (E5) measures payload_bytes() per message kind to reproduce §6.4.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace dmx::net {

class Message {
 public:
  virtual ~Message() = default;

  /// Stable message-kind label used for per-kind counters and traces,
  /// e.g. "REQUEST", "PRIVILEGE", "REPLY".
  virtual std::string_view kind() const = 0;

  /// Size of the semantic payload in bytes (excluding addressing), as the
  /// paper accounts it: a Neilsen REQUEST carries two integers (8 bytes),
  /// a PRIVILEGE carries nothing (0 bytes), a Suzuki–Kasami token carries
  /// LN[1..N] plus a queue, etc.
  virtual std::size_t payload_bytes() const = 0;

  /// Human-readable rendering for traces; defaults to kind().
  virtual std::string describe() const { return std::string(kind()); }
};

using MessagePtr = std::unique_ptr<Message>;

}  // namespace dmx::net
