// Binary wire primitives shared by every message family's codec.
//
// Fixed-width little-endian fields appended to a std::string: the format
// is explicit and platform-independent (no struct punning, no host
// endianness leaks), and a bounds-checked WireReader turns truncated or
// corrupt input into a WireError instead of undefined behavior — a frame
// arriving off a real socket is attacker-shaped data, unlike the in-
// process snapshots of src/proto/snapshot.hpp which trust their producer.
//
// Message classes implement encode_binary() with WireWriter helpers; the
// paired decoders in src/transport/codec.cpp read the same field order
// back with a WireReader. tests/transport/wire_codec_test.cpp pins the
// round trip for every registered family.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace dmx::net {

/// Decoding failure: truncated buffer, length overflow, unknown codec.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian field writer over a caller-owned string.
class WireWriter {
 public:
  explicit WireWriter(std::string& out) : out_(out) {}

  void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }

  void u32(std::uint32_t value) {
    out_.push_back(static_cast<char>(value & 0xff));
    out_.push_back(static_cast<char>((value >> 8) & 0xff));
    out_.push_back(static_cast<char>((value >> 16) & 0xff));
    out_.push_back(static_cast<char>((value >> 24) & 0xff));
  }

  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }

  void u64(std::uint64_t value) {
    u32(static_cast<std::uint32_t>(value & 0xffffffffu));
    u32(static_cast<std::uint32_t>(value >> 32));
  }

 private:
  std::string& out_;
};

/// Bounds-checked little-endian field reader over a borrowed buffer.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    const auto b = [this](std::size_t i) {
      return static_cast<std::uint32_t>(
          static_cast<std::uint8_t>(data_[pos_ + i]));
    };
    const std::uint32_t value =
        b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
    pos_ += 4;
    return value;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }

  /// Reads a u32 element count that the remaining buffer can plausibly
  /// hold (each element at least `min_element_bytes`); rejects counts that
  /// would make a decoder loop allocate unboundedly from a corrupt frame.
  std::uint32_t count(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (min_element_bytes != 0 &&
        static_cast<std::size_t>(n) > remaining() / min_element_bytes) {
      throw WireError("wire count " + std::to_string(n) +
                      " exceeds remaining buffer");
    }
    return n;
  }

 private:
  void need(std::size_t bytes) const {
    if (data_.size() - pos_ < bytes) {
      throw WireError("wire buffer truncated: need " + std::to_string(bytes) +
                      " bytes, have " + std::to_string(data_.size() - pos_));
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace dmx::net
