#include "net/message_kind.hpp"

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/check.hpp"

namespace dmx::net {
namespace {

// Names live in a fixed-capacity table of pointers to heap strings that are
// intentionally never freed: readers resolve id -> name without taking the
// registration mutex, which requires entries to never move or die.
struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string_view, std::uint32_t> by_name;  // keys point
                                                                // into names
  std::array<const std::string*, MessageKind::kMaxKinds> names = {};
  std::atomic<std::uint32_t> count{0};
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

}  // namespace

MessageKind MessageKind::of(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.by_name.find(name);
  if (it != reg.by_name.end()) return MessageKind(it->second);
  const std::uint32_t id = reg.count.load(std::memory_order_relaxed);
  DMX_CHECK_MSG(id < kMaxKinds, "message-kind registry full (" << kMaxKinds
                                                               << " kinds)");
  const std::string* stored = new std::string(name);  // leaked, see Registry
  reg.names[id] = stored;
  reg.by_name.emplace(std::string_view(*stored), id);
  // Publish after the name slot is written so lock-free readers of
  // names[id'] for id' < count always see initialized entries.
  reg.count.store(id + 1, std::memory_order_release);
  return MessageKind(id);
}

MessageKind MessageKind::lookup(std::string_view name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  auto it = reg.by_name.find(name);
  return it == reg.by_name.end() ? MessageKind() : MessageKind(it->second);
}

std::size_t MessageKind::registered_count() {
  return registry().count.load(std::memory_order_acquire);
}

MessageKind MessageKind::from_id(std::uint32_t id) {
  DMX_CHECK(id < registered_count());
  return MessageKind(id);
}

std::string_view MessageKind::name() const {
  if (!valid()) return "?";
  Registry& reg = registry();
  DMX_CHECK(id_ < reg.count.load(std::memory_order_acquire));
  return *reg.names[id_];
}

}  // namespace dmx::net
