#include "trace/trace.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace dmx::trace {

void MessageTrace::on_send(const net::Envelope& env) {
  TraceRecord record;
  record.envelope_id = env.id;
  record.from = env.from;
  record.to = env.to;
  record.resource = env.resource;
  record.sent_at = env.sent_at;
  record.description = env.message->describe();
  records_.push_back(std::move(record));
}

void MessageTrace::on_deliver(const net::Envelope& env) {
  // Deliveries arrive in nondecreasing time but ids are unordered across
  // channels; search from the back where the envelope usually is.
  auto it = std::find_if(
      records_.rbegin(), records_.rend(),
      [&](const TraceRecord& r) { return r.envelope_id == env.id; });
  if (it != records_.rend()) {
    it->delivered_at = env.deliver_at;
  }
}

std::size_t MessageTrace::count_matching(std::string_view needle) const {
  return static_cast<std::size_t>(std::count_if(
      records_.begin(), records_.end(), [&](const TraceRecord& r) {
        return r.description.find(needle) != std::string::npos;
      }));
}

std::string MessageTrace::dump() const {
  std::ostringstream oss;
  for (const TraceRecord& record : records_) {
    oss << std::setw(6) << record.sent_at << " ";
    if (record.delivered()) {
      oss << std::setw(6) << record.delivered_at;
    } else {
      oss << std::setw(6) << "lost?";
    }
    oss << "  r" << record.resource << "  " << record.from << " -> "
        << record.to << "  " << record.description << "\n";
  }
  return oss.str();
}

std::string render_dag(const std::vector<const core::NeilsenNode*>& nodes) {
  std::ostringstream oss;
  for (std::size_t v = 1; v < nodes.size(); ++v) {
    if (v > 1) oss << "  ";
    const core::NeilsenNode& node = *nodes[v];
    if (node.is_sink()) {
      oss << v << ":sink[" << node.state_label() << "]";
    } else {
      oss << v << "->" << node.next();
    }
    if (node.follow() != kNilNode) {
      oss << "(follow " << node.follow() << ")";
    }
  }
  return oss.str();
}

}  // namespace dmx::trace
