// Protocol tracing: a network observer recording every send/delivery with
// virtual timestamps, and a renderer for the Neilsen NEXT-graph (the
// paper's Figure 1/2 diagrams as text). Used by examples and debugging;
// cheap enough to leave attached during tests.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/neilsen_node.hpp"
#include "net/network.hpp"

namespace dmx::trace {

/// One traced message.
struct TraceRecord {
  std::uint64_t envelope_id = 0;
  NodeId from = kNilNode;
  NodeId to = kNilNode;
  /// The resource lane the envelope rode (service-layer traffic); 0 for
  /// single-resource cores that predate the service layer.
  ResourceId resource = 0;
  Tick sent_at = 0;
  Tick delivered_at = -1;  // -1 while in flight (or dropped)
  std::string description;

  bool delivered() const { return delivered_at >= 0; }
};

class MessageTrace final : public net::NetworkObserver {
 public:
  void on_send(const net::Envelope& env) override;
  void on_deliver(const net::Envelope& env) override;

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  /// Number of traced messages matching a substring of the description
  /// (e.g. "REQUEST" or "PRIVILEGE").
  std::size_t count_matching(std::string_view needle) const;

  /// Aligned text dump: one line per message, send/delivery times, route,
  /// payload description.
  std::string dump() const;

 private:
  std::vector<TraceRecord> records_;
};

/// Renders the current NEXT structure of a Neilsen cluster as text, e.g.
/// "1->2  2->3  3:sink[H]  4->3" — the arrows of the paper's figures.
/// `nodes` is indexed 1..n with index 0 unused (core::NodeView shape).
std::string render_dag(const std::vector<const core::NeilsenNode*>& nodes);

}  // namespace dmx::trace
