// Substrate-independent protocol interface.
//
// Every mutual-exclusion algorithm in this repository is written as a pure
// event-driven state machine (a MutexNode per participant) that talks to
// the outside world only through a Context. The same protocol code then
// runs unchanged on the deterministic simulator (src/harness) and on the
// multi-threaded in-memory runtime (src/runtime) — the substitution
// argument in DESIGN.md depends on this.
//
// Protocol contract (mirrors the paper's Chapter 2 assumptions):
//  * request_cs() may only be called when the node is neither waiting for
//    nor inside its critical section (at most one outstanding request).
//  * The protocol calls Context::grant() exactly once per request_cs(),
//    possibly synchronously from within request_cs() or from on_message().
//  * release_cs() may only be called after the grant, when the application
//    leaves its critical section.
//  * Handlers run under per-node local mutual exclusion (the substrate
//    guarantees no two handlers of one node run concurrently).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace dmx::proto {

/// The protocol's window to the world, implemented by each substrate.
class Context {
 public:
  virtual ~Context() = default;

  /// This node's identifier (1..N).
  virtual NodeId self() const = 0;

  /// Number of nodes in the system.
  virtual int cluster_size() const = 0;

  /// Sends a protocol message to another node (reliable, per-channel FIFO).
  virtual void send(NodeId to, net::MessagePtr message) = 0;

  /// Reports that the pending critical-section request is granted. The
  /// application is considered inside its critical section from this call
  /// until it invokes release_cs().
  virtual void grant() = 0;
};

/// One participant in a mutual-exclusion protocol.
class MutexNode {
 public:
  virtual ~MutexNode() = default;

  /// The application wants to enter its critical section.
  virtual void request_cs(Context& ctx) = 0;

  /// The application leaves its critical section.
  virtual void release_cs(Context& ctx) = 0;

  /// A protocol message arrived from `from`.
  virtual void on_message(Context& ctx, NodeId from,
                          const net::Message& message) = 0;

  /// True iff this node currently possesses the system-wide token,
  /// including while executing its critical section. Assertion-based
  /// algorithms (which have no token) always return false.
  virtual bool has_token() const = 0;

  /// True iff a request from ANOTHER node is pending at this one: queued
  /// behind this node's token/grant (FOLLOW set, a non-self queue entry, a
  /// deferred reply owed, an unanswered INQUIRE, ...). Own requests never
  /// count. Service layers consult this on the release path — a lease
  /// chain ends early when the holder can see a remote waiter — and it is
  /// only guaranteed meaningful at a node that currently holds the token
  /// or the grant; see Algorithm::holder_sees_remote_requests for whether
  /// a holder is guaranteed to observe remote interest at all.
  virtual bool has_remote_request() const = 0;

  /// Resident protocol state in bytes, accounted the way §6.4 does:
  /// semantic variable sizes (bool=1, int=4) plus current dynamic
  /// structures (queues, arrays). Used by the storage-overhead bench.
  virtual std::size_t state_bytes() const = 0;

  /// One-line rendering of the protocol variables, for traces and the
  /// paper-example tests (e.g. "HOLDING=f NEXT=2 FOLLOW=0").
  virtual std::string debug_state() const = 0;

  /// Compact canonical serialization of the protocol variables. Two nodes
  /// of the same class with equal protocol state produce byte-identical
  /// blobs — the schedule explorer (src/modelcheck) deduplicates system
  /// states on these, so members that are only meaningful under a guard
  /// (e.g. a token payload held only while has_token()) must be normalized
  /// when inactive. Classes that keep identity fields (self id, cluster
  /// size) include them and verify them on restore; identity-free classes
  /// (NeilsenNode keeps only the paper's three variables) accept any
  /// well-formed blob of the same class.
  virtual std::string snapshot() const = 0;

  /// Restores this node to the state captured by snapshot() on a node of
  /// the same class and identity. The restored node runs the exact same
  /// handler code as a live node — this is what lets the model checker
  /// explore the production implementation rather than a re-model.
  virtual void restore(std::string_view blob) = 0;
};

}  // namespace dmx::proto
