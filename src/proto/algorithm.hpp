// Algorithm descriptors and the registry used by benches and tests to
// iterate over every implemented protocol uniformly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "proto/mutex_node.hpp"
#include "topology/tree.hpp"

namespace dmx::proto {

/// Everything an algorithm may need to instantiate its nodes.
struct ClusterSpec {
  int n = 0;
  /// Initial token holder for token-based algorithms; also the coordinator
  /// for the centralized scheme and the reference node for initial
  /// Lamport-style clocks.
  NodeId initial_token_holder = 1;
  /// Logical structure for path-forwarding algorithms (Neilsen, Raymond).
  /// Ignored by broadcast/quorum algorithms. May be null for those.
  const topology::Tree* tree = nullptr;
  /// Seed for any algorithm-internal randomness (none of the implemented
  /// protocols randomize, but the spec carries it for extensions).
  std::uint64_t seed = 1;
  /// Configuration generation these instances belong to: 0 for the initial
  /// membership, bumped by every crash-recovery structure repair. Snapshots
  /// and repair logs use it to tell regenerated worlds apart.
  Epoch epoch = 0;
};

/// Builds the N protocol nodes (index 0 unused, 1..n populated) in their
/// initial post-INIT state.
using NodeFactory =
    std::function<std::vector<std::unique_ptr<MutexNode>>(const ClusterSpec&)>;

/// Static metadata + factory for one algorithm.
struct Algorithm {
  std::string name;
  bool token_based = false;
  /// Message kinds whose in-flight presence represents the token (for the
  /// token-uniqueness invariant): e.g. {"PRIVILEGE"} for Neilsen/Raymond.
  std::vector<std::string> token_message_kinds;
  /// True if the algorithm needs `ClusterSpec::tree`.
  bool needs_tree = false;
  /// True iff a node holding the token/grant is GUARANTEED to observe a
  /// remote waiter via MutexNode::has_remote_request() before that waiter
  /// can starve: requests reach the holder directly (broadcast, deferred
  /// replies) or by forwarding (DAG/tree paths, token trails). False for
  /// schemes whose holder can stay blind — Central clients never see the
  /// coordinator's queue, and a Maekawa holder's arbiters FAIL outranked
  /// requests without consulting it. Lease renewal at a chain cap is only
  /// sound when this is true; blind algorithms must yield unconditionally.
  bool holder_sees_remote_requests = false;
  NodeFactory factory;
};

}  // namespace dmx::proto
