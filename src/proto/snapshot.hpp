// Compact binary serialization helpers for MutexNode::snapshot/restore.
//
// The format is intentionally dumb: fixed-width little-endian fields
// appended in declaration order, containers length-prefixed. What matters
// is canonicality — two nodes of the same class with equal protocol state
// must produce byte-identical blobs, because the model checker deduplicates
// system states on the concatenated snapshots. Serialize ordered
// containers in iteration order and normalize any "valid only while X"
// members (e.g. a token payload held only while has_token) to a fixed
// value when inactive.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/check.hpp"

namespace dmx::proto {

class SnapshotWriter {
 public:
  void u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }
  void boolean(bool value) { u8(value ? 1 : 0); }
  void i32(std::int32_t value) {
    const auto u = static_cast<std::uint32_t>(value);
    out_.push_back(static_cast<char>(u & 0xff));
    out_.push_back(static_cast<char>((u >> 8) & 0xff));
    out_.push_back(static_cast<char>((u >> 16) & 0xff));
    out_.push_back(static_cast<char>((u >> 24) & 0xff));
  }
  /// Length-prefixed sequence of i32-encodable values.
  template <typename Container>
  void i32_seq(const Container& values) {
    i32(static_cast<std::int32_t>(values.size()));
    for (const auto& value : values) {
      i32(static_cast<std::int32_t>(value));
    }
  }
  /// Length-prefixed sequence of bytes (bools, enums-as-char).
  template <typename Container>
  void u8_seq(const Container& values) {
    i32(static_cast<std::int32_t>(values.size()));
    for (const auto& value : values) {
      u8(static_cast<std::uint8_t>(value));
    }
  }
  /// Length-prefixed byte string (e.g. a nested blob).
  void str(std::string_view value) {
    i32(static_cast<std::int32_t>(value.size()));
    out_.append(value);
  }

  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view blob) : blob_(blob) {}

  std::uint8_t u8() {
    DMX_CHECK_MSG(pos_ < blob_.size(), "snapshot blob underflow");
    return static_cast<std::uint8_t>(blob_[pos_++]);
  }
  bool boolean() { return u8() != 0; }
  std::int32_t i32() {
    std::uint32_t u = 0;
    u |= static_cast<std::uint32_t>(u8());
    u |= static_cast<std::uint32_t>(u8()) << 8;
    u |= static_cast<std::uint32_t>(u8()) << 16;
    u |= static_cast<std::uint32_t>(u8()) << 24;
    return static_cast<std::int32_t>(u);
  }
  /// Reads a length-prefixed i32 sequence into `out` (cleared first).
  template <typename Container>
  void i32_seq(Container& out) {
    const std::int32_t count = i32();
    DMX_CHECK(count >= 0);
    out.clear();
    for (std::int32_t i = 0; i < count; ++i) {
      out.push_back(
          static_cast<typename Container::value_type>(this->i32()));
    }
  }
  template <typename Container>
  void u8_seq(Container& out) {
    const std::int32_t count = i32();
    DMX_CHECK(count >= 0);
    out.clear();
    for (std::int32_t i = 0; i < count; ++i) {
      out.push_back(static_cast<typename Container::value_type>(u8()));
    }
  }

  /// Asserts the blob was consumed exactly — catches schema drift between
  /// snapshot() and restore().
  void finish() const {
    DMX_CHECK_MSG(pos_ == blob_.size(), "snapshot blob not fully consumed");
  }

 private:
  std::string_view blob_;
  std::size_t pos_ = 0;
};

}  // namespace dmx::proto
