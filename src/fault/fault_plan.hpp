// Crash-fault injection schedule shared by every substrate.
//
// The paper (Chapter 2) assumes a fixed, permanently live node set; a
// crashed token holder therefore deadlocks every token algorithm in the
// registry silently. A FaultPlan breaks that assumption on purpose and
// deterministically: it is a sorted schedule of node crash/recovery
// events that
//  * the sim LockSpace applies in virtual time (each event is a
//    simulator event, so the whole run stays a pure function of
//    (code, seed, plan)),
//  * the ThreadedLockSpace applies by wall-clock delay or by direct
//    crash()/recover() calls (thread-kill-equivalent quiescing: the
//    crashed node's strand tasks stop executing protocol handlers),
//  * the exhaustive explorer mirrors with crash/regenerate transitions.
//
// Crash semantics: the node stops executing handlers, its resident
// protocol state is frozen (NOT reset — recovery brings the old state
// back, which is exactly the lost-then-found stale-token scenario epoch
// fencing exists for), and the network drops all traffic addressed to it.
// Recovery semantics: the node is reachable again but epoch-stale until
// the next membership repair reintegrates it with fresh state.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace dmx::fault {

struct FaultEvent {
  enum class Kind : std::uint8_t { kCrash, kRecover };
  /// Virtual tick (sim substrates) or microseconds from start (threaded
  /// drivers) at which the event fires.
  Tick at = 0;
  NodeId node = kNilNode;
  Kind kind = Kind::kCrash;
};

/// An ordered crash/recovery schedule. Build with crash()/recover(); the
/// plan keeps events sorted by (at, insertion order) so application is
/// deterministic.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& crash(Tick at, NodeId node) {
    insert({at, node, FaultEvent::Kind::kCrash});
    return *this;
  }
  FaultPlan& recover(Tick at, NodeId node) {
    insert({at, node, FaultEvent::Kind::kRecover});
    return *this;
  }

  bool empty() const { return events_.empty(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Validates the plan against an n-node system: ids in range, no crash
  /// of an already-crashed node, no recovery of a live one, and no two
  /// events for one node at the same tick — a same-tick crash+recovery
  /// pair would resolve by insertion order (the sort is stable), which is
  /// an ambiguity, not a schedule; recoveries must be scheduled at a
  /// strictly later tick than the crash they undo. Returns an empty
  /// string when well-formed, else the first problem.
  std::string validate(int n) const;

  /// One-line rendering for repro commands: "crash 3@50 recover 3@400".
  std::string describe() const;

 private:
  void insert(FaultEvent event);

  std::vector<FaultEvent> events_;  // sorted by (at, insertion order)
};

}  // namespace dmx::fault
