// Epoch membership: the compact renumbering of survivors that structure
// repair runs protocols over.
//
// Every algorithm factory builds a cluster of nodes 1..k; after a crash
// the survivor set is a sparse subset of the original ids, so repair
// renumbers the k survivors densely (rank 1..k, ascending original id)
// and instantiates a fresh k-node protocol world over the ranks. The
// harness translates at the boundary: envelopes and application calls use
// original ids, protocol handlers see ranks. Renumbering — rather than
// instantiating n nodes and ignoring the dead — is what keeps broadcast
// and quorum algorithms (reply counting, RN array sizing, committee
// construction) correct among survivors with zero per-algorithm repair
// code.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace dmx::fault {

struct Membership {
  /// Rank -> original id; index 0 unused, 1..k populated, ascending.
  std::vector<NodeId> members;
  /// Original id -> rank; 0 = not a member of this epoch.
  std::vector<NodeId> rank;

  int size() const { return static_cast<int>(members.size()) - 1; }
  bool contains(NodeId original) const {
    return original >= 1 &&
           original < static_cast<NodeId>(rank.size()) &&
           rank[static_cast<std::size_t>(original)] != kNilNode;
  }
  NodeId rank_of(NodeId original) const {
    DMX_CHECK(contains(original));
    return rank[static_cast<std::size_t>(original)];
  }
  NodeId original_of(NodeId r) const {
    DMX_CHECK(r >= 1 && r <= size());
    return members[static_cast<std::size_t>(r)];
  }

  /// All n nodes, rank == original id (epoch 0).
  static Membership identity(int n) {
    Membership m;
    m.members.resize(static_cast<std::size_t>(n) + 1);
    m.rank.resize(static_cast<std::size_t>(n) + 1);
    for (NodeId v = 0; v <= n; ++v) {
      m.members[static_cast<std::size_t>(v)] = v;
      m.rank[static_cast<std::size_t>(v)] = v;
    }
    m.members[0] = kNilNode;
    m.rank[0] = kNilNode;
    return m;
  }

  /// Survivors of an n-node system: up[v] != 0 keeps node v.
  static Membership survivors(int n, const std::vector<std::uint8_t>& up) {
    DMX_CHECK(static_cast<int>(up.size()) >= n + 1);
    Membership m;
    m.members.assign(1, kNilNode);
    m.rank.assign(static_cast<std::size_t>(n) + 1, kNilNode);
    for (NodeId v = 1; v <= n; ++v) {
      if (!up[static_cast<std::size_t>(v)]) continue;
      m.members.push_back(v);
      m.rank[static_cast<std::size_t>(v)] =
          static_cast<NodeId>(m.members.size()) - 1;
    }
    return m;
  }
};

}  // namespace dmx::fault
