#include "fault/fault_plan.hpp"

#include <algorithm>

namespace dmx::fault {

void FaultPlan::insert(FaultEvent event) {
  // Stable position: after every event with at <= event.at, so equal-tick
  // events keep insertion order.
  const auto pos = std::find_if(
      events_.begin(), events_.end(),
      [&event](const FaultEvent& e) { return e.at > event.at; });
  events_.insert(pos, event);
}

std::string FaultPlan::validate(int n) const {
  std::vector<std::uint8_t> up(static_cast<std::size_t>(n) + 1, 1);
  // Last tick at which each node had an event (-1 = none yet); two events
  // for one node on the same tick are rejected below.
  std::vector<Tick> last_at(static_cast<std::size_t>(n) + 1, -1);
  for (const FaultEvent& event : events_) {
    if (event.node < 1 || event.node > n) {
      return "fault event names node " + std::to_string(event.node) +
             " outside 1.." + std::to_string(n);
    }
    if (event.at < 0) return "fault event scheduled at negative time";
    auto& prev_at = last_at[static_cast<std::size_t>(event.node)];
    if (prev_at == event.at) {
      return "node " + std::to_string(event.node) +
             " has two fault events at tick " + std::to_string(event.at) +
             "; same-tick crash+recovery is ambiguous (its outcome would "
             "depend on insertion order) — schedule the recovery at least "
             "one tick later";
    }
    prev_at = event.at;
    auto& alive = up[static_cast<std::size_t>(event.node)];
    if (event.kind == FaultEvent::Kind::kCrash) {
      if (!alive) {
        return "node " + std::to_string(event.node) +
               " crashed while already down";
      }
      alive = 0;
    } else {
      if (alive) {
        return "node " + std::to_string(event.node) +
               " recovered while already up";
      }
      alive = 1;
    }
  }
  return "";
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultEvent& event : events_) {
    if (!out.empty()) out += ' ';
    out += event.kind == FaultEvent::Kind::kCrash ? "crash " : "recover ";
    out += std::to_string(event.node);
    out += '@';
    out += std::to_string(event.at);
  }
  return out.empty() ? "none" : out;
}

}  // namespace dmx::fault
