// Sharded multi-resource lock service over the deterministic simulator.
//
// A LockSpace manages M named resources across N nodes. Every resource is
// backed by its own protocol instance from the registry (per-resource
// algorithm selection allowed), yet ONE net::Network carries all of them:
// envelopes are tagged with a dense ResourceId and deliveries demultiplex
// into the resource's node instances. Placement is a consistent-hash
// Directory (lock name -> home node = initial token holder / tree root),
// so it is deterministic and stable as resources are added.
//
// Invariants are per resource and re-checked after every event, exactly
// as harness::Cluster does for its single critical section:
//  * at most one node inside resource r's critical section;
//  * for token-based algorithms, exactly one token PER RESOURCE, counting
//    resident tokens and in-flight token messages. Both sides are O(1):
//    in-flight tokens query the network's per-resource counters, and
//    resident tokens are a harness-maintained counter — each handler
//    mutates exactly one node's protocol instance, so the harness
//    reconciles that node's has_token() against a per-node mirror after
//    the handler instead of scanning all N nodes after every event.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "fault/fault_plan.hpp"
#include "fault/membership.hpp"
#include "net/network.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"
#include "service/directory.hpp"
#include "service/lease.hpp"
#include "sim/simulator.hpp"
#include "topology/tree.hpp"

namespace dmx::service {

struct LockSpaceConfig {
  int n = 0;
  /// Default protocol for resources opened without an explicit algorithm.
  proto::Algorithm algorithm;
  /// Shared logical tree for path-forwarding algorithms. If any opened
  /// resource's algorithm needs a tree and none is given, a star centered
  /// on node 1 is used (the paper's best topology; every home is <= 2 hops
  /// from every requester).
  std::optional<topology::Tree> tree;
  Tick fixed_latency = 1;
  /// Optional custom latency model (overrides fixed_latency).
  std::unique_ptr<net::LatencyModel> latency_model;
  std::uint64_t seed = 1;
  /// Virtual points per node on the directory's consistent-hash ring.
  int directory_vnodes = 16;
  /// Timing-wheel span for the underlying simulator.
  std::size_t wheel_span = sim::Simulator::kDefaultWheelSpan;
  /// Crash/recovery schedule applied in virtual time (empty = no faults).
  fault::FaultPlan fault_plan;
  /// When true (the default), each crash or recovery schedules a structure
  /// repair after `detect_after` ticks: survivors elect a regenerator
  /// (src/quorum consent), the epoch bumps, and fresh protocol instances
  /// are built over the compact survivor membership with the token minted
  /// at the winner. When false, faults are injected but never repaired —
  /// the configuration the token-loss counterexample tests run in.
  bool recovery_enabled = true;
  /// Failure-detection timeout: virtual ticks between a fault event and
  /// the repair it triggers, modeling timeout-based detection.
  Tick detect_after = 25;
  /// When true, a second acquire from a node already requesting or inside
  /// a resource's CS queues FIFO behind the first (per resource, node)
  /// instead of being a caller error — the precondition for local grant
  /// chaining. Default off: the protocol's one-outstanding-request
  /// contract stays enforced and existing behavior is bit-identical.
  bool queue_local = false;
  /// Lease policy for local grant chaining on the release path (effective
  /// only with queue_local; max_hold_ns is ignored — virtual time has no
  /// wall clock, the sim's bound is max_chain alone).
  LeaseConfig lease;
};

/// Completion handle for an async acquire. The space sets `granted` (and
/// `granted_at`) when the node enters the resource's critical section —
/// possibly synchronously from within acquire().
struct Acquisition {
  bool granted = false;
  Tick granted_at = -1;
};
using Ticket = std::shared_ptr<const Acquisition>;

class LockSpace {
 public:
  /// Fires on CS entry: (resource, node).
  using GrantCallback = std::function<void(ResourceId, NodeId)>;
  /// Per-event invariant hook, called with the resource the event touched.
  using PostEventHook = std::function<void(LockSpace&, ResourceId)>;
  /// Fires when node membership changes: (node, up). `up == false` at the
  /// moment of a crash; `up == true` when a recovered node is reintegrated
  /// by a repair. Drivers use it to stop and restart per-node client
  /// loops.
  using MembershipHook = std::function<void(NodeId, bool)>;

  explicit LockSpace(LockSpaceConfig config);
  ~LockSpace();

  LockSpace(const LockSpace&) = delete;
  LockSpace& operator=(const LockSpace&) = delete;

  int nodes() const { return config_.n; }
  int resource_count() const { return static_cast<int>(resources_.size()); }
  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *network_; }
  const Directory& directory() const { return directory_; }

  /// Opens (or finds) the named resource, instantiating its protocol nodes
  /// with the token parked at the directory's home node. The two-argument
  /// form selects a per-resource algorithm (e.g. Raymond for one shard,
  /// Neilsen for the rest); it must agree with any previous open of the
  /// same name.
  ResourceId open(std::string_view name);
  ResourceId open(std::string_view name, const proto::Algorithm& algorithm);

  ResourceId lookup(std::string_view name) const {
    return directory_.lookup(name);
  }
  const std::string& name(ResourceId r) const { return directory_.name(r); }
  NodeId home_node(ResourceId r) const { return directory_.home_node(r); }
  const proto::Algorithm& algorithm(ResourceId r) const;

  /// Async acquire: node `v` requests resource `r`. Returns a completion
  /// handle that flips to granted when the node enters the CS; `on_grant`
  /// (optional) fires at the same moment. One outstanding request per
  /// (resource, node) — the protocol's own precondition.
  Ticket acquire(ResourceId r, NodeId v, GrantCallback on_grant = nullptr);
  /// Name-based sugar: opens the resource on demand.
  Ticket acquire(std::string_view name, NodeId v,
                 GrantCallback on_grant = nullptr);

  /// Node `v` leaves resource `r`'s critical section.
  void release(ResourceId r, NodeId v);

  bool is_idle(ResourceId r, NodeId v) const;
  bool is_waiting(ResourceId r, NodeId v) const;
  bool is_in_cs(ResourceId r, NodeId v) const;
  /// Node inside resource `r`'s critical section, or kNilNode.
  NodeId occupant(ResourceId r) const;

  proto::MutexNode& node(ResourceId r, NodeId v);

  std::uint64_t total_entries() const { return total_entries_; }
  std::uint64_t entries(ResourceId r) const;

  /// CS entries handed directly to a co-located waiter on the release path
  /// (zero protocol messages), and release-time lease yields that offered
  /// the token back to the protocol while local waiters still queued.
  std::uint64_t chained_grants() const { return chained_grants_; }
  std::uint64_t lease_yields() const { return lease_yields_; }
  /// Local waiters currently queued behind (r, v)'s outstanding request.
  std::size_t local_queue_depth(ResourceId r, NodeId v) const;

  /// Harness-maintained count of resource `r`'s tokens resident at nodes
  /// (excluding in-flight token messages). 0 for non-token algorithms.
  /// Tests cross-check it against an explicit has_token() scan.
  int resident_tokens(ResourceId r) const;

  /// Runs the built-in per-resource invariant checks for one resource.
  void check_invariants(ResourceId r);
  /// ... and for every resource (used at quiescence and by tests; the
  /// per-event path only checks the touched resource).
  void check_all_invariants();

  /// Extra per-event invariant hook (e.g. the swarm's per-algorithm
  /// structural checks); runs after the built-in checks with the resource
  /// the event touched.
  void set_post_event_hook(PostEventHook hook);

  void set_membership_hook(MembershipHook hook);

  // --- Crash faults ---------------------------------------------------------
  // The scheduled path applies config.fault_plan in virtual time; tests
  // may also crash/recover nodes directly at the current tick.

  /// Crashes node `v` now: its protocol state freezes (NOT reset — a later
  /// recovery brings the stale state back), the network drops its traffic,
  /// any CS occupancy or waiting tickets it holds are voided, and — with
  /// recovery enabled — a repair is scheduled after `detect_after` ticks.
  void crash(NodeId v);

  /// Recovers node `v` now: reachable again but epoch-stale (its frozen
  /// instances are fenced) until the scheduled repair reintegrates it.
  void recover(NodeId v);

  bool is_node_up(NodeId v) const;
  /// Number of currently live nodes.
  int alive_count() const;

  /// Current configuration epoch of resource `r` (0 until first repair).
  Epoch epoch(ResourceId r) const;
  /// True between a fault hitting resource `r` and its repair; a degraded
  /// token resource may transiently have zero live tokens.
  bool is_degraded(ResourceId r) const;
  /// Compact survivor membership of `r`'s current epoch.
  const fault::Membership& membership(ResourceId r) const;

  /// Drains all pending simulator events.
  void run_to_quiescence() { sim_.run(); }

 private:
  class ResourceContext;
  enum class AppState : std::uint8_t { kIdle, kWaiting, kInCs };

  /// A co-located client queued behind this node's outstanding request
  /// (queue_local only); granted either by a chained hand-off or by
  /// promotion into the protocol when the chain yields.
  struct LocalWaiter {
    std::shared_ptr<Acquisition> ticket;
    GrantCallback callback;
  };

  struct Resource {
    proto::Algorithm algorithm;
    std::vector<net::MessageKind> token_kinds;
    NodeId home = kNilNode;
    std::vector<std::unique_ptr<proto::MutexNode>> nodes;      // 1..n
    std::vector<std::unique_ptr<ResourceContext>> contexts;    // 0..n-1
    std::vector<AppState> app_state;                           // 1..n
    std::vector<GrantCallback> grant_callbacks;                // 1..n
    std::vector<std::shared_ptr<Acquisition>> tickets;         // 1..n
    NodeId occupant = kNilNode;
    std::uint64_t entries = 0;
    /// Tokens resident at nodes, maintained incrementally: `token_at` is
    /// a per-node mirror of has_token(), reconciled against the one node
    /// each handler mutates. Reconciling (rather than diffing a snapshot
    /// taken before the handler) keeps the counter exact even when a
    /// grant callback re-enters release()/acquire() mid-event. Keeps the
    /// per-event uniqueness check O(#token_kinds).
    int resident_tokens = 0;
    std::vector<std::uint8_t> token_at;  // 1..n, token-based only
    /// Fault-tolerance state. Epoch 0 runs over the identity membership
    /// (membership == nullptr) with zero overhead on the no-fault path.
    Epoch epoch = 0;
    std::vector<Epoch> node_epoch;  // 1..n: epoch of each node's instance
    std::shared_ptr<const fault::Membership> membership;  // null = identity
    /// Tree the current epoch's path-forwarding instances were built over
    /// (kept alive because factories may retain structure derived from it).
    std::optional<topology::Tree> repair_tree;
    bool degraded = false;
    /// Set when a repair arrived while a live node occupied the CS: the
    /// repair runs inside that node's release() instead, which then skips
    /// the protocol release (the old world is discarded wholesale).
    bool repair_pending = false;
    /// Per-node FIFO of co-located waiters (queue_local only; 1..n).
    std::vector<std::deque<LocalWaiter>> local_queue;
    /// Consecutive chained grants since the token last arrived through the
    /// protocol at each node (1..n); reset on every yield or renewal.
    std::vector<int> chain_len;
  };

  Resource& resource(ResourceId r);
  const Resource& resource(ResourceId r) const;
  void ensure_tree();
  void on_grant(ResourceId r, NodeId v);
  void deliver(const net::Envelope& env);
  void on_discard(const net::Envelope& env, net::Network::DiscardReason reason);
  void apply_fault(const fault::FaultEvent& event);
  void repair_all();
  void repair_resource(ResourceId r);
  /// Reconciles node `v`'s entry of the resident-token mirror after a
  /// handler ran on it.
  static void sync_resident_token(Resource& res, NodeId v);
  /// Moves the head of (res, v)'s local queue into the application-level
  /// waiting slot (ticket + callback, state kWaiting). The caller issues
  /// the protocol request (or lets a pending repair re-issue it). Returns
  /// false if the queue was empty.
  static bool promote_local_waiter(Resource& res, NodeId v);

  LockSpaceConfig config_;
  std::uint64_t chained_grants_ = 0;
  std::uint64_t lease_yields_ = 0;
  Directory directory_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Resource>> resources_;  // by ResourceId
  std::uint64_t total_entries_ = 0;
  PostEventHook post_event_hook_;
  MembershipHook membership_hook_;
  std::vector<std::uint8_t> node_up_;  // 1..n, 1 = alive
  /// Nodes whose crash fired the membership hook and which have not yet
  /// been reintegrated by any repair (the first repair that readmits the
  /// node fires the rejoin hook and clears the bit).
  std::vector<std::uint8_t> rejoin_pending_;  // 1..n
  /// True once any fault is scheduled or injected; gates the (slightly
  /// wider) fault-aware acquire/release/invariant paths so the no-fault
  /// configuration behaves exactly as before.
  bool fault_active_ = false;
  fault::Membership identity_;
};

}  // namespace dmx::service
