#include "service/space_workload.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/check.hpp"

namespace dmx::service {

ZipfSampler::ZipfSampler(int m, double s) {
  DMX_CHECK(m >= 1);
  DMX_CHECK(s >= 0.0);
  cdf_.resize(static_cast<std::size_t>(m));
  double total = 0.0;
  for (int k = 0; k < m; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[static_cast<std::size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
}

int ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(it == cdf_.end() ? cdf_.size() - 1
                                           : it - cdf_.begin());
}

namespace {

/// Shared driver state across all client loops.
struct Driver {
  LockSpace& space;
  SpaceWorkloadConfig config;
  Rng rng;
  ZipfSampler zipf;
  std::uint64_t completed = 0;
  bool stopped = false;
  std::vector<std::uint64_t> entries_by_resource;
  Tick max_wait = 0;

  Driver(LockSpace& s, const SpaceWorkloadConfig& cfg)
      : space(s), config(cfg), rng(cfg.seed),
        zipf(s.resource_count(), cfg.zipf_s) {
    entries_by_resource.assign(
        static_cast<std::size_t>(space.resource_count()), 0);
  }

  Tick sample_hold() {
    if (config.hold_hi <= config.hold_lo) return config.hold_lo;
    return rng.uniform_int(config.hold_lo, config.hold_hi);
  }

  Tick sample_think() {
    if (config.mean_think_ticks <= 0.0) return 1;
    const auto t = static_cast<Tick>(rng.exponential(config.mean_think_ticks));
    return std::max<Tick>(t, 1);
  }

  /// Zipf-draws a resource for node `v`. With queue_local the draw stands
  /// as-is — a busy (resource, node) acquire queues behind the node's
  /// outstanding request, which is how co-located chains form. Otherwise,
  /// if the drawn resource already has a request outstanding from `v`
  /// (one per (resource, node) is the protocol's precondition), falls
  /// through to the next rank so the client keeps working instead of
  /// double-requesting.
  ResourceId pick(NodeId v) {
    const int m = space.resource_count();
    const int first = zipf.sample(rng);
    if (config.queue_local) return static_cast<ResourceId>(first);
    for (int i = 0; i < m; ++i) {
      const auto r = static_cast<ResourceId>((first + i) % m);
      if (space.is_idle(r, v)) return r;
    }
    return kNilResource;  // every resource busy from this node
  }

  void issue(NodeId v) {
    if (stopped) return;
    if (!space.is_node_up(v)) return;  // loop dies; rejoin restarts it
    const ResourceId r = pick(v);
    if (r == kNilResource) {
      // More clients on this node than resources; retry next tick.
      space.simulator().schedule_after(1, [this, v] { issue(v); });
      return;
    }
    const Tick requested_at = space.simulator().now();
    space.acquire(r, v, [this, requested_at](ResourceId res, NodeId entered) {
      max_wait = std::max(max_wait, space.simulator().now() - requested_at);
      space.simulator().schedule_after(sample_hold(), [this, res, entered] {
        // Under faults the release may be a ghost (the node died in the
        // CS, or a repair revoked its world); LockSpace no-ops it. The
        // entry itself DID happen, so it still counts.
        space.release(res, entered);
        ++entries_by_resource[static_cast<std::size_t>(res)];
        ++completed;
        if (completed >= config.target_entries) {
          stopped = true;
          return;
        }
        space.simulator().schedule_after(sample_think(), [this, entered] {
          issue(entered);
        });
      });
    });
  }

  /// A reintegrated node gets a fresh set of client loops. Loops die with
  /// their node (issue() on a dead node returns, a crash voids waiting
  /// tickets), so the rejoin is the restart point.
  void rejoin(NodeId v) {
    for (int c = 0; c < config.clients_per_node; ++c) {
      space.simulator().schedule_after(sample_think(),
                                       [this, v] { issue(v); });
    }
  }
};

}  // namespace

SpaceWorkloadResult run_space_workload(LockSpace& space,
                                       const SpaceWorkloadConfig& config) {
  DMX_CHECK(config.target_entries >= 1);
  DMX_CHECK(config.clients_per_node >= 1);
  DMX_CHECK_MSG(space.resource_count() >= 1,
                "open resources before running the workload");
  space.run_to_quiescence();
  space.network().reset_stats();

  auto driver = std::make_unique<Driver>(space, config);
  const Tick started_at = space.simulator().now();
  const std::uint64_t entries_before = space.total_entries();

  // Client loops follow membership: a crash kills the node's loops, the
  // repair that readmits it restarts them. (Claims the space's membership
  // hook for the duration of the run.)
  space.set_membership_hook([d = driver.get()](NodeId v, bool up) {
    if (up) d->rejoin(v);
  });

  // Stagger initial arrivals by the think-time distribution (saturation
  // starts the herd at once, deliberately).
  for (NodeId v = 1; v <= space.nodes(); ++v) {
    for (int c = 0; c < config.clients_per_node; ++c) {
      const Tick offset =
          config.mean_think_ticks > 0.0 ? driver->sample_think() : 0;
      space.simulator().schedule_after(
          offset, [d = driver.get(), v] { d->issue(v); });
    }
  }
  space.run_to_quiescence();
  space.set_membership_hook(nullptr);
  DMX_CHECK_MSG(driver->completed >= config.target_entries,
                "space workload stalled at " << driver->completed << " of "
                                             << config.target_entries
                                             << " entries (liveness bug?)");
  space.check_all_invariants();

  SpaceWorkloadResult result;
  result.entries = space.total_entries() - entries_before;
  result.messages = space.network().stats().total_sent;
  result.messages_per_entry =
      static_cast<double>(result.messages) /
      static_cast<double>(std::max<std::uint64_t>(result.entries, 1));
  result.makespan = space.simulator().now() - started_at;
  result.entries_per_kilotick =
      result.makespan > 0
          ? 1000.0 * static_cast<double>(result.entries) /
                static_cast<double>(result.makespan)
          : 0.0;
  result.entries_by_resource = std::move(driver->entries_by_resource);
  result.max_wait_ticks = driver->max_wait;
  return result;
}

}  // namespace dmx::service
