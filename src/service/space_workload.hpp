// Closed-loop multi-resource workload over a LockSpace.
//
// Each node runs `clients_per_node` independent client loops: pick a
// resource by Zipfian popularity (rank r gets probability ~ 1/r^s; s = 0
// is uniform), acquire it, hold, release, think, repeat. Contention skew
// across resources is the new workload axis a multi-resource service
// opens: s ~ 1 concentrates traffic on a few hot locks (the realistic
// regime), s = 0 spreads it evenly (the scaling regime).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "service/lock_space.hpp"

namespace dmx::service {

/// Deterministic Zipf(s) sampler over ranks 0..m-1 (rank 0 hottest).
/// Inverse-CDF on a precomputed table; O(log m) per sample.
class ZipfSampler {
 public:
  ZipfSampler(int m, double s);

  /// Draws a rank in [0, m) using `rng`.
  int sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

struct SpaceWorkloadConfig {
  /// Total CS entries to complete across all resources and nodes.
  std::uint64_t target_entries = 1000;
  /// Independent client loops per node; each holds at most one lock at a
  /// time, so a node can have up to this many resources locked at once.
  int clients_per_node = 1;
  /// Zipf skew of resource popularity (0 = uniform).
  double zipf_s = 0.0;
  /// Mean exponential think time between release and the next acquire;
  /// 0 means immediate re-acquire (saturation).
  double mean_think_ticks = 0.0;
  /// CS hold time drawn uniformly from [hold_lo, hold_hi].
  Tick hold_lo = 0;
  Tick hold_hi = 0;
  std::uint64_t seed = 42;
  /// When true (requires a LockSpace opened with queue_local), a client
  /// keeps its Zipf draw even if the node already has that resource
  /// outstanding — the acquire queues locally, forming the co-located
  /// waiter chains the lease policy serves. When false a busy draw falls
  /// through to the next rank (the historical behavior; local queues
  /// never form).
  bool queue_local = false;
};

struct SpaceWorkloadResult {
  std::uint64_t entries = 0;
  std::uint64_t messages = 0;
  double messages_per_entry = 0.0;
  Tick makespan = 0;
  /// Aggregate virtual-time throughput: entries per 1000 ticks. The
  /// multi-resource scaling metric — independent resources admit
  /// concurrent critical sections, so this grows with resource count
  /// while a single resource is pinned near 1/handoff-latency.
  double entries_per_kilotick = 0.0;
  /// Completed entries per resource, indexed by ResourceId.
  std::vector<std::uint64_t> entries_by_resource;
  /// Longest acquire-to-grant wait any client experienced, in virtual
  /// ticks — the bounded-waiting observable: with a finite lease cap it
  /// stays bounded; an unbounded chain starves a remote waiter and this
  /// grows toward the makespan.
  Tick max_wait_ticks = 0;
};

/// Drives `space` (with every resource already opened) until
/// `target_entries` complete, then drains to quiescence. Resets network
/// counters at the start so the result covers only this workload.
SpaceWorkloadResult run_space_workload(LockSpace& space,
                                       const SpaceWorkloadConfig& config);

}  // namespace dmx::service
