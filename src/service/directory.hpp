// Consistent-hash resource directory: lock names -> dense ResourceIds ->
// home nodes.
//
// A LockSpace serves M named resources over N nodes. Placement must be
// deterministic (every client computes the same home for a name, with no
// coordination) and stable: opening new resources never moves existing
// ones, and growing the node set moves only ~1/N of the names (the
// classic consistent-hashing guarantee, via a ring of virtual node
// points). The home node is where the resource's token starts — for tree
// algorithms it is the root the initial NEXT/HOLDER orientation points
// toward, cf. the per-resource token instances in token-based DME surveys
// (arXiv:2502.04708).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace dmx::service {

class Directory {
 public:
  /// `n` nodes (1..n) each contribute `vnodes_per_node` virtual points to
  /// the hash ring; more points smooth the name distribution. `seed`
  /// perturbs the point hashes so distinct spaces can shard differently.
  explicit Directory(int n, int vnodes_per_node = 16, std::uint64_t seed = 1);

  int nodes() const { return n_; }
  int resource_count() const { return static_cast<int>(names_.size()); }

  /// Interns `name`, assigning the next dense ResourceId on first sight.
  /// Re-opening an existing name returns its original id (and home).
  ResourceId open(std::string_view name);

  /// The id previously assigned to `name`, or kNilResource.
  ResourceId lookup(std::string_view name) const;

  const std::string& name(ResourceId id) const;

  /// Home node of an opened resource: the ring successor of the name's
  /// hash. Captured at open() time, so it is stable for the life of the
  /// directory regardless of later openings.
  NodeId home_node(ResourceId id) const;

  /// Ring placement for an arbitrary name (without interning it) — what
  /// home_node would be if the name were opened now.
  NodeId place(std::string_view name) const;

  /// Home nodes of every opened resource, indexed by ResourceId.
  const std::vector<NodeId>& homes() const { return homes_; }

 private:
  int n_;
  /// Ring of (point hash, node) sorted by hash; place() takes the first
  /// point at or after the name hash (wrapping).
  std::vector<std::pair<std::uint64_t, NodeId>> ring_;
  std::unordered_map<std::string, ResourceId> ids_;
  std::vector<std::string> names_;  // indexed by ResourceId
  std::vector<NodeId> homes_;       // indexed by ResourceId
};

}  // namespace dmx::service
