// Multi-resource lock service on the multi-threaded runtime.
//
// Execution substrate: every (resource, node) protocol state machine owns
// an exec::Strand — a serialized task queue — and all strands of all
// nodes share ONE work-stealing worker pool (exec::Executor). Message
// delivery, request and release are strand-enqueued tasks, so each state
// machine keeps the paper's one-event-at-a-time semantics while
// independent resources (even on the same node) run in parallel across
// the pool. This replaces the PR-3 architecture of one mailbox event-loop
// thread per node, which serialized every resource of a node behind one
// thread and capped the service at ~1.6x a single resource no matter how
// many resources it carried.
//
// The client API is blocking: lock(r, v) parks the calling application
// thread until node v holds resource r's critical section; ScopedLock is
// the RAII sugar. Multiple application threads may contend for the same
// (resource, node) pair — local waiters queue behind one protocol request
// at a time (the paper's one-outstanding-request precondition), and the
// resource hands off locally before the next protocol round trip.
//
// Safety instrumentation: per-resource occupancy counters assert that no
// two nodes are ever inside one resource's critical section (violations
// surface through first_error()), the cross-thread analogue of the
// simulator harness's per-event exclusivity check.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "exec/executor.hpp"
#include "fault/membership.hpp"
#include "net/message_kind.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"
#include "service/directory.hpp"
#include "service/lease.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/tree.hpp"

namespace dmx::service {

/// Outcome of a bounded-wait lock attempt.
enum class LockError {
  kOk = 0,
  /// The wait deadline passed without a grant; the request stays posted
  /// and a grant that arrives with nobody waiting is released back.
  kTimeout,
  /// The lock can never be granted: the calling node has crashed, or the
  /// resource is dead (its token died with a crashed node and recovery is
  /// disabled or lacks a live majority).
  kUnavailable,
};

struct ThreadedLockSpaceConfig {
  int n = 0;
  /// Protocol backing every resource without an explicit override.
  proto::Algorithm algorithm;
  /// Names of the resources to serve; fixed at construction (the strands
  /// own the protocol instances, so the set cannot grow live).
  std::vector<std::string> resources;
  /// Per-resource algorithm overrides, keyed by resource name — parity
  /// with the sim LockSpace's open(name, algorithm). Every named resource
  /// must appear in `resources`.
  std::vector<std::pair<std::string, proto::Algorithm>> resource_algorithms;
  /// Shared logical tree for path-forwarding algorithms; defaults to a
  /// star centered on node 1 when required and absent.
  std::optional<topology::Tree> tree;
  /// Artificial per-message delivery delay bound in microseconds (0 = no
  /// delay); shakes out schedule-dependent bugs in stress tests.
  unsigned jitter_us = 0;
  std::uint64_t seed = 1;
  int directory_vnodes = 16;
  /// Worker threads in the shared pool; 0 = hardware concurrency.
  int workers = 0;
  /// Bounded spin rounds before an idle worker parks (see ExecutorConfig).
  int spin = 64;
  /// Whether crash() triggers structure repair (election + token
  /// regeneration over the survivors). Off, a crash that kills a
  /// resource's home leaves the resource unavailable — try_lock_for
  /// returns LockError::kUnavailable instead of waiting forever.
  bool recovery_enabled = true;
  /// Local grant-chaining lease: how many consecutive releases may hand
  /// the CS straight to a co-located waiter (one condvar wake, zero
  /// protocol messages) before the token must be offered back to the
  /// protocol so remote requesters keep bounded waiting.
  LeaseConfig lease;
};

class ThreadedLockSpace {
 public:
  explicit ThreadedLockSpace(ThreadedLockSpaceConfig config);
  ~ThreadedLockSpace();

  ThreadedLockSpace(const ThreadedLockSpace&) = delete;
  ThreadedLockSpace& operator=(const ThreadedLockSpace&) = delete;

  int nodes() const { return config_.n; }
  int resource_count() const { return directory_.resource_count(); }
  int workers() const { return executor_.workers(); }
  const Directory& directory() const { return directory_; }

  ResourceId lookup(std::string_view name) const {
    return directory_.lookup(name);
  }
  const std::string& name(ResourceId r) const { return directory_.name(r); }
  NodeId home_node(ResourceId r) const { return directory_.home_node(r); }
  /// Algorithm backing resource `r` (the default or its override).
  const proto::Algorithm& algorithm(ResourceId r) const;

  /// Blocks until node `v` holds resource `r`'s critical section.
  void lock(ResourceId r, NodeId v);
  /// Bounded-wait lock: like lock(), but gives up after `timeout`
  /// (kTimeout) and reports a dead node or dead resource as kUnavailable
  /// instead of blocking forever.
  LockError try_lock_for(ResourceId r, NodeId v,
                         std::chrono::milliseconds timeout);
  /// Leaves the critical section; must be called by the holder. After a
  /// crash, a zombie holder's unlock is tolerated as a no-op ghost.
  void unlock(ResourceId r, NodeId v);

  /// Crash-fault injection: node `v` dies in place. Its strand tasks are
  /// quiesced via epoch fencing (the thread-kill equivalent — queued work
  /// dies unobserved, no strand is ever blocked), traffic to and from it
  /// is dropped, its local waiters wake with kUnavailable, and — with
  /// recovery enabled — the survivors elect a regenerator and every
  /// resource is rebuilt over the compact survivor world.
  void crash(NodeId v);
  /// The crashed node rejoins; with recovery enabled, every resource is
  /// repaired over the enlarged membership (fresh epoch, re-minted token).
  void recover(NodeId v);
  bool is_node_up(NodeId v) const;
  /// Reconfiguration epoch of resource `r` (0 until the first repair).
  Epoch epoch(ResourceId r) const;

  std::uint64_t total_entries() const;
  std::uint64_t entries(ResourceId r) const;
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  /// Releases that handed the CS straight to a co-located waiter without
  /// a protocol round, and lease windows that closed with local waiters
  /// still queued (the token went back to the protocol anyway — the
  /// bounded-waiting cap at work).
  std::uint64_t chained_grants() const {
    return chained_grants_.load(std::memory_order_relaxed);
  }
  std::uint64_t lease_yields() const {
    return lease_yields_.load(std::memory_order_relaxed);
  }
  /// Application threads of node `v` currently parked in lock() /
  /// try_lock_for() on `r`. Test observability for the FIFO hand-off
  /// queue; racy by nature, stable once the callers are known parked.
  int local_waiters(ResourceId r, NodeId v);

  /// First protocol or exclusivity error observed on any thread, if any.
  std::optional<std::string> first_error() const;

  /// Merged runtime metrics: every telemetry metric recorded in this
  /// process (the registry is process-global) plus this space's executor
  /// counters folded in as exec.* and the message count as service.*.
  telemetry::MetricsSnapshot telemetry_snapshot() const;

 private:
  struct ResourceNode;

  /// Per-resource repair bookkeeping; `mutex` serializes repairs against
  /// each other and against the holder checks in unlock().
  struct RepairState {
    std::mutex mutex;
    /// Repair requested while a live survivor held the lock; the holder's
    /// unlock completes it.
    bool pending = false;
    /// When the stale membership was first observed (0 = no repair in
    /// flight); spans deferred repairs, so fault.repair_ns measures the
    /// client-visible regeneration latency, not just the install step.
    std::uint64_t repair_started_ns = 0;
    /// Membership of the resource's current epoch (empty = identity).
    fault::Membership membership;
    /// Repair topologies, kept alive for the instances referencing them.
    std::vector<std::unique_ptr<topology::Tree>> trees;
  };

  /// Per-resource interned metric ids and token-kind set, resolved once
  /// at construction so the hot paths never touch the registry's mutex.
  struct ResourceTelemetry {
    telemetry::HistogramId wait_ns;
    telemetry::CounterId ok;
    telemetry::CounterId timeouts;
    telemetry::CounterId unavailable;
    /// Interned kinds of this resource's token-carrying messages, for
    /// flight-recording token forwards in route().
    std::vector<net::MessageKind> token_kinds;
  };

  ResourceNode& rn(ResourceId r, NodeId v);
  void route(ResourceId r, NodeId from, NodeId to, net::MessagePtr message,
             Epoch tag);
  /// Flips resource `r` unavailable, stamping the window start once.
  void mark_unavailable(ResourceId r);
  void record_error(const std::string& what);
  /// Records the error, then releases every parked application thread —
  /// no grant is ever coming once a protocol handler has thrown.
  void fail(const std::string& what);
  /// Repairs resource `r` if its membership is stale: elects a winner by
  /// quorum consent, bumps the epoch (fencing every queued old-world
  /// task), installs fresh compact-world instances via per-strand reset
  /// tasks, and re-issues requests for nodes with parked waiters. Defers
  /// (pending) while a live node holds the lock; marks the resource
  /// unavailable when no live majority exists.
  void maybe_repair(ResourceId r);
  /// Wakes every parked waiter of resource `r` (predicate re-check).
  void wake_all(ResourceId r);
  LockError wait_for_grant(ResourceId r, NodeId v,
                           const std::chrono::milliseconds* timeout);

  ThreadedLockSpaceConfig config_;
  Directory directory_;
  exec::Executor executor_;
  std::vector<proto::Algorithm> algorithms_;  // by ResourceId
  /// (resource, node) state machines, indexed r * n + (v - 1). Destroyed
  /// after the executor stops, which drops their queued tasks unrun.
  std::vector<std::unique_ptr<ResourceNode>> nodes_;
  /// Liveness by node id (index 1..n) and dead-resource flags by id.
  std::unique_ptr<std::atomic<bool>[]> node_down_;
  std::unique_ptr<std::atomic<bool>[]> unavailable_;
  /// Current reconfiguration epoch by ResourceId; tasks posted from
  /// application threads are tagged with it and fenced on mismatch.
  std::unique_ptr<std::atomic<Epoch>[]> resource_epoch_;
  std::vector<std::unique_ptr<RepairState>> repair_;  // by ResourceId
  /// Initial token holder by ResourceId (the resource's "home" for
  /// token-loss detection when recovery is disabled).
  std::vector<NodeId> initial_holder_;
  /// Any crash ever injected (enables ghost-unlock tolerance).
  std::atomic<bool> fault_active_{false};
  /// Per-resource occupancy (0 or 1 when exclusion holds) and entry
  /// counts, indexed by ResourceId.
  std::unique_ptr<std::atomic<int>[]> occupancy_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> entries_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> chained_grants_{0};
  std::atomic<std::uint64_t> lease_yields_{0};
  std::atomic<bool> failed_{false};

  std::vector<ResourceTelemetry> resource_telemetry_;  // by ResourceId
  telemetry::HistogramId hold_hist_;
  telemetry::HistogramId chain_hist_;
  telemetry::HistogramId repair_hist_;
  telemetry::HistogramId unavail_hist_;
  /// telemetry::now_ns() when resource r last became unavailable (0 when
  /// it is not); closes the fault.unavail_window_ns histogram on repair.
  std::unique_ptr<std::atomic<std::uint64_t>[]> unavailable_since_ns_;

  mutable std::mutex error_mutex_;
  std::optional<std::string> first_error_;
};

/// RAII holder: locks on construction, unlocks on destruction. Move-only.
class ScopedLock {
 public:
  ScopedLock(ThreadedLockSpace& space, ResourceId r, NodeId v)
      : space_(&space), resource_(r), node_(v) {
    space_->lock(resource_, node_);
  }
  ScopedLock(ThreadedLockSpace& space, std::string_view name, NodeId v)
      : ScopedLock(space, space.lookup(name), v) {}

  ScopedLock(ScopedLock&& other) noexcept
      : space_(other.space_), resource_(other.resource_),
        node_(other.node_) {
    other.space_ = nullptr;
  }
  ScopedLock& operator=(ScopedLock&&) = delete;
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  ~ScopedLock() {
    if (space_ != nullptr) space_->unlock(resource_, node_);
  }

 private:
  ThreadedLockSpace* space_;
  ResourceId resource_;
  NodeId node_;
};

}  // namespace dmx::service
