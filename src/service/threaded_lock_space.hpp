// Multi-resource lock service on the multi-threaded runtime.
//
// One mailbox-driven event-loop thread per NODE carries every resource:
// mailbox items are tagged with a dense ResourceId and demultiplex into
// the node's per-resource protocol instances, so M resources cost M state
// machines but still only N threads — the same architecture the
// deterministic LockSpace uses over one net::Network. Protocol code is
// identical on both substrates.
//
// The client API is blocking: lock(r, v) parks the calling application
// thread until node v holds resource r's critical section; ScopedLock is
// the RAII sugar. Multiple application threads may contend for the same
// (resource, node) pair — local waiters queue behind one protocol request
// at a time (the paper's one-outstanding-request precondition), and the
// resource hands off locally before the next protocol round trip.
//
// Safety instrumentation: per-resource occupancy counters assert that no
// two nodes are ever inside one resource's critical section (violations
// surface through first_error()), the cross-thread analogue of the
// simulator harness's per-event exclusivity check.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "proto/algorithm.hpp"
#include "proto/mutex_node.hpp"
#include "service/directory.hpp"
#include "topology/tree.hpp"

namespace dmx::service {

struct ThreadedLockSpaceConfig {
  int n = 0;
  /// Protocol backing every resource (per-resource selection is a sim-
  /// substrate feature; the threaded service keeps one algorithm).
  proto::Algorithm algorithm;
  /// Names of the resources to serve; fixed at construction (the actor
  /// threads own the protocol instances, so the set cannot grow live).
  std::vector<std::string> resources;
  /// Shared logical tree for path-forwarding algorithms; defaults to a
  /// star centered on node 1 when required and absent.
  std::optional<topology::Tree> tree;
  /// Artificial per-message delivery delay bound in microseconds (0 = no
  /// delay); shakes out schedule-dependent bugs in stress tests.
  unsigned jitter_us = 0;
  std::uint64_t seed = 1;
  int directory_vnodes = 16;
};

class ThreadedLockSpace {
 public:
  explicit ThreadedLockSpace(ThreadedLockSpaceConfig config);
  ~ThreadedLockSpace();

  ThreadedLockSpace(const ThreadedLockSpace&) = delete;
  ThreadedLockSpace& operator=(const ThreadedLockSpace&) = delete;

  int nodes() const { return config_.n; }
  int resource_count() const { return directory_.resource_count(); }
  const Directory& directory() const { return directory_; }

  ResourceId lookup(std::string_view name) const {
    return directory_.lookup(name);
  }
  const std::string& name(ResourceId r) const { return directory_.name(r); }
  NodeId home_node(ResourceId r) const { return directory_.home_node(r); }

  /// Blocks until node `v` holds resource `r`'s critical section.
  void lock(ResourceId r, NodeId v);
  /// Leaves the critical section; must be called by the holder.
  void unlock(ResourceId r, NodeId v);

  std::uint64_t total_entries() const;
  std::uint64_t entries(ResourceId r) const;
  std::uint64_t messages_sent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }

  /// First protocol or exclusivity error observed on any thread, if any.
  std::optional<std::string> first_error() const;

 private:
  class NodeActor;

  void route(ResourceId r, NodeId from, NodeId to, net::MessagePtr message);
  void record_error(const std::string& what);

  ThreadedLockSpaceConfig config_;
  Directory directory_;
  std::vector<std::unique_ptr<NodeActor>> actors_;  // index 0 unused
  /// Per-resource occupancy (0 or 1 when exclusion holds) and entry
  /// counts, indexed by ResourceId.
  std::unique_ptr<std::atomic<int>[]> occupancy_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> entries_;
  std::atomic<std::uint64_t> messages_sent_{0};

  mutable std::mutex error_mutex_;
  std::optional<std::string> first_error_;
};

/// RAII holder: locks on construction, unlocks on destruction. Move-only.
class ScopedLock {
 public:
  ScopedLock(ThreadedLockSpace& space, ResourceId r, NodeId v)
      : space_(&space), resource_(r), node_(v) {
    space_->lock(resource_, node_);
  }
  ScopedLock(ThreadedLockSpace& space, std::string_view name, NodeId v)
      : ScopedLock(space, space.lookup(name), v) {}

  ScopedLock(ScopedLock&& other) noexcept
      : space_(other.space_), resource_(other.resource_),
        node_(other.node_) {
    other.space_ = nullptr;
  }
  ScopedLock& operator=(ScopedLock&&) = delete;
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

  ~ScopedLock() {
    if (space_ != nullptr) space_->unlock(resource_, node_);
  }

 private:
  ThreadedLockSpace* space_;
  ResourceId resource_;
  NodeId node_;
};

}  // namespace dmx::service
