#include "service/lock_space.hpp"

#include <utility>

#include "common/check.hpp"
#include "quorum/election.hpp"

namespace dmx::service {

/// The protocol's window to the world for one (resource, node) pair: sends
/// are tagged with the resource so the shared network can demultiplex.
///
/// After a crash repair the protocol instances live in the compact
/// survivor world (ids 1..k), while the network and the application keep
/// original ids. This context is the translation boundary: self() and
/// send() targets are compact ranks, converted through the epoch's
/// membership at the wire. At epoch 0 membership is null and ranks equal
/// original ids, so the no-fault path pays nothing.
class LockSpace::ResourceContext final : public proto::Context {
 public:
  ResourceContext(LockSpace& space, ResourceId resource, NodeId self)
      : space_(space), resource_(resource), original_(self), rank_(self) {}

  NodeId self() const override { return rank_; }
  int cluster_size() const override {
    return membership_ ? membership_->size() : space_.nodes();
  }
  void send(NodeId to, net::MessagePtr message) override {
    const NodeId to_original = membership_ ? membership_->original_of(to) : to;
    space_.network_->send(resource_, original_, to_original,
                          std::move(message), epoch_);
  }
  void grant() override { space_.on_grant(resource_, original_); }

  /// Moves this context into a repaired epoch's compact world.
  void rebind(std::shared_ptr<const fault::Membership> membership,
              Epoch epoch) {
    rank_ = membership->rank_of(original_);
    membership_ = std::move(membership);
    epoch_ = epoch;
  }

  const fault::Membership* membership() const { return membership_.get(); }

 private:
  LockSpace& space_;
  ResourceId resource_;
  NodeId original_;
  NodeId rank_;
  Epoch epoch_ = 0;
  std::shared_ptr<const fault::Membership> membership_;
};

LockSpace::LockSpace(LockSpaceConfig config)
    : config_(std::move(config)),
      directory_(config_.n, config_.directory_vnodes, config_.seed),
      sim_(config_.wheel_span) {
  DMX_CHECK(config_.n >= 1);
  std::unique_ptr<net::LatencyModel> latency =
      config_.latency_model
          ? std::move(config_.latency_model)
          : std::make_unique<net::FixedLatency>(config_.fixed_latency);
  network_ = std::make_unique<net::Network>(sim_, config_.n,
                                            std::move(latency), config_.seed);
  network_->set_delivery_handler(
      [this](const net::Envelope& env) { deliver(env); });
  node_up_.assign(static_cast<std::size_t>(config_.n) + 1, 1);
  rejoin_pending_.assign(static_cast<std::size_t>(config_.n) + 1, 0);
  identity_ = fault::Membership::identity(config_.n);
  network_->set_discard_handler(
      [this](const net::Envelope& env, net::Network::DiscardReason reason) {
        on_discard(env, reason);
      });
  if (!config_.fault_plan.empty()) {
    const std::string problem = config_.fault_plan.validate(config_.n);
    DMX_CHECK_MSG(problem.empty(), "bad fault plan: " << problem);
    fault_active_ = true;
    for (const fault::FaultEvent& event : config_.fault_plan.events()) {
      sim_.schedule_at(event.at, [this, event] { apply_fault(event); });
    }
  }
}

LockSpace::~LockSpace() = default;

void LockSpace::ensure_tree() {
  if (!config_.tree.has_value()) {
    config_.tree = topology::Tree::star(config_.n, 1);
  }
  DMX_CHECK(config_.tree->size() == config_.n);
}

ResourceId LockSpace::open(std::string_view name) {
  return open(name, config_.algorithm);
}

ResourceId LockSpace::open(std::string_view name,
                           const proto::Algorithm& algorithm) {
  const ResourceId existing = directory_.lookup(name);
  if (existing != kNilResource) {
    DMX_CHECK_MSG(resource(existing).algorithm.name == algorithm.name,
                  "resource " << name << " already open with algorithm "
                              << resource(existing).algorithm.name);
    return existing;
  }

  const ResourceId id = directory_.open(name);
  auto res = std::make_unique<Resource>();
  res->algorithm = algorithm;
  res->token_kinds.reserve(algorithm.token_message_kinds.size());
  for (const std::string& kind : algorithm.token_message_kinds) {
    res->token_kinds.push_back(net::MessageKind::of(kind));
  }
  res->home = directory_.home_node(id);

  proto::ClusterSpec spec;
  spec.n = config_.n;
  // Singhal's staircase initialization pins the token to node 1; every
  // other algorithm parks the resource's token at its home node.
  spec.initial_token_holder = algorithm.name == "Singhal" ? 1 : res->home;
  if (algorithm.needs_tree) {
    ensure_tree();
    spec.tree = &*config_.tree;
  }
  spec.seed = config_.seed;
  res->nodes = algorithm.factory(spec);
  DMX_CHECK_MSG(res->nodes.size() == static_cast<std::size_t>(config_.n) + 1,
                "factory must return n+1 slots (index 0 unused)");
  res->contexts.reserve(static_cast<std::size_t>(config_.n));
  for (NodeId v = 1; v <= config_.n; ++v) {
    DMX_CHECK(res->nodes[static_cast<std::size_t>(v)] != nullptr);
    res->contexts.push_back(std::make_unique<ResourceContext>(*this, id, v));
  }
  res->app_state.assign(static_cast<std::size_t>(config_.n) + 1,
                        AppState::kIdle);
  res->grant_callbacks.assign(static_cast<std::size_t>(config_.n) + 1,
                              nullptr);
  res->tickets.assign(static_cast<std::size_t>(config_.n) + 1, nullptr);
  res->node_epoch.assign(static_cast<std::size_t>(config_.n) + 1, 0);
  res->local_queue.resize(static_cast<std::size_t>(config_.n) + 1);
  res->chain_len.assign(static_cast<std::size_t>(config_.n) + 1, 0);
  // Seed the resident-token mirror with one full scan; every subsequent
  // event reconciles just the node it mutated.
  if (res->algorithm.token_based) {
    res->token_at.assign(static_cast<std::size_t>(config_.n) + 1, 0);
    for (NodeId v = 1; v <= config_.n; ++v) {
      if (res->nodes[static_cast<std::size_t>(v)]->has_token()) {
        res->token_at[static_cast<std::size_t>(v)] = 1;
        ++res->resident_tokens;
      }
    }
  }
  resources_.push_back(std::move(res));
  check_invariants(id);
  return id;
}

LockSpace::Resource& LockSpace::resource(ResourceId r) {
  DMX_CHECK(r >= 0 && static_cast<std::size_t>(r) < resources_.size());
  return *resources_[static_cast<std::size_t>(r)];
}

const LockSpace::Resource& LockSpace::resource(ResourceId r) const {
  DMX_CHECK(r >= 0 && static_cast<std::size_t>(r) < resources_.size());
  return *resources_[static_cast<std::size_t>(r)];
}

const proto::Algorithm& LockSpace::algorithm(ResourceId r) const {
  return resource(r).algorithm;
}

proto::MutexNode& LockSpace::node(ResourceId r, NodeId v) {
  Resource& res = resource(r);
  DMX_CHECK(v >= 1 && v <= config_.n);
  return *res.nodes[static_cast<std::size_t>(v)];
}

Ticket LockSpace::acquire(ResourceId r, NodeId v, GrantCallback on_grant) {
  Resource& res = resource(r);
  DMX_CHECK(v >= 1 && v <= config_.n);
  if (fault_active_ && !node_up_[static_cast<std::size_t>(v)]) {
    // A dead node cannot request; the caller gets a ticket that never
    // grants (drivers treat it as a failed acquire).
    return std::make_shared<Acquisition>();
  }
  if (res.app_state[static_cast<std::size_t>(v)] != AppState::kIdle) {
    DMX_CHECK_MSG(config_.queue_local,
                  "node " << v << " already requesting or in CS of resource "
                          << directory_.name(r));
    // Queue behind this node's outstanding request: granted by a chained
    // hand-off at release, or promoted into the protocol when the chain
    // yields.
    auto ticket = std::make_shared<Acquisition>();
    res.local_queue[static_cast<std::size_t>(v)].push_back(
        {ticket, std::move(on_grant)});
    return ticket;
  }
  res.app_state[static_cast<std::size_t>(v)] = AppState::kWaiting;
  res.grant_callbacks[static_cast<std::size_t>(v)] = std::move(on_grant);
  auto ticket = std::make_shared<Acquisition>();
  res.tickets[static_cast<std::size_t>(v)] = ticket;
  if (fault_active_ &&
      res.node_epoch[static_cast<std::size_t>(v)] != res.epoch) {
    // Recovered but not yet reintegrated: park the request application-
    // side. The next repair rebinds this node and re-issues it.
    return ticket;
  }
  res.nodes[static_cast<std::size_t>(v)]->request_cs(
      *res.contexts[static_cast<std::size_t>(v) - 1]);
  sync_resident_token(res, v);
  check_invariants(r);
  if (post_event_hook_) post_event_hook_(*this, r);
  return ticket;
}

Ticket LockSpace::acquire(std::string_view name, NodeId v,
                          GrantCallback on_grant) {
  // Reuse an existing resource regardless of which algorithm it was
  // opened with; only a miss opens under the space default.
  const ResourceId r = directory_.lookup(name);
  return acquire(r == kNilResource ? open(name) : r, v, std::move(on_grant));
}

void LockSpace::on_grant(ResourceId r, NodeId v) {
  Resource& res = resource(r);
  if (fault_active_) {
    // The fencing invariant: a grant must come from a live, epoch-current
    // instance. A stale token that somehow reached a handler granting here
    // would be the lost-then-found token being honored — the exact bug the
    // epoch machinery exists to make impossible.
    DMX_CHECK_MSG(node_up_[static_cast<std::size_t>(v)],
                  "grant on resource " << directory_.name(r)
                                       << " at crashed node " << v);
    DMX_CHECK_MSG(
        res.node_epoch[static_cast<std::size_t>(v)] == res.epoch,
        "stale-epoch grant on resource "
            << directory_.name(r) << ": node " << v << " runs epoch "
            << res.node_epoch[static_cast<std::size_t>(v)]
            << " but the resource is at epoch " << res.epoch);
  }
  DMX_CHECK_MSG(res.app_state[static_cast<std::size_t>(v)] ==
                    AppState::kWaiting,
                "grant for node " << v << " which is not waiting on "
                                  << directory_.name(r));
  DMX_CHECK_MSG(res.occupant == kNilNode,
                "mutual exclusion violated on resource "
                    << directory_.name(r) << ": node " << v
                    << " granted while node " << res.occupant
                    << " is inside its critical section");
  res.app_state[static_cast<std::size_t>(v)] = AppState::kInCs;
  res.occupant = v;
  ++res.entries;
  ++total_entries_;
  if (auto& ticket = res.tickets[static_cast<std::size_t>(v)]) {
    ticket->granted = true;
    ticket->granted_at = sim_.now();
    ticket = nullptr;
  }
  // Take the callback by move so a new acquire from within it is safe.
  auto callback = std::move(res.grant_callbacks[static_cast<std::size_t>(v)]);
  res.grant_callbacks[static_cast<std::size_t>(v)] = nullptr;
  if (callback) callback(r, v);
}

void LockSpace::release(ResourceId r, NodeId v) {
  Resource& res = resource(r);
  DMX_CHECK(v >= 1 && v <= config_.n);
  if (fault_active_ && (res.occupant != v ||
                        !node_up_[static_cast<std::size_t>(v)])) {
    // The occupancy was voided by a crash (either this node died in the
    // CS, or a repair discarded the world it was granted in). The driver's
    // scheduled release is a ghost; ignore it.
    return;
  }
  DMX_CHECK_MSG(res.occupant == v, "release of " << directory_.name(r)
                                                 << " by node " << v
                                                 << " but occupant is "
                                                 << res.occupant);
  res.app_state[static_cast<std::size_t>(v)] = AppState::kIdle;
  res.occupant = kNilNode;
  auto& queue = res.local_queue[static_cast<std::size_t>(v)];
  int& chain = res.chain_len[static_cast<std::size_t>(v)];
  if (!queue.empty() && !res.repair_pending &&
      (!fault_active_ ||
       res.node_epoch[static_cast<std::size_t>(v)] == res.epoch)) {
    // Local grant chaining: the token (or grant) stays put and the CS is
    // handed straight to the next co-located waiter — zero protocol
    // messages — as long as the lease allows. At the cap boundary the
    // lease renews in place iff the algorithm guarantees the holder sees
    // remote interest and none is visible; blind algorithms (Central,
    // Maekawa) always yield at the cap, which is what keeps remote
    // waiting bounded on all nine.
    bool hand_off = lease_chain_allowed(config_.lease, chain);
    if (!hand_off && config_.lease.max_chain != 0 &&
        lease_renewable(config_.lease,
                        res.algorithm.holder_sees_remote_requests,
                        res.nodes[static_cast<std::size_t>(v)]
                            ->has_remote_request())) {
      chain = 0;
      hand_off = true;
    }
    if (hand_off) {
      ++chain;
      ++chained_grants_;
      LocalWaiter next = std::move(queue.front());
      queue.pop_front();
      res.app_state[static_cast<std::size_t>(v)] = AppState::kInCs;
      res.occupant = v;
      ++res.entries;
      ++total_entries_;
      if (next.ticket) {
        next.ticket->granted = true;
        next.ticket->granted_at = sim_.now();
      }
      if (next.callback) next.callback(r, v);
      check_invariants(r);
      if (post_event_hook_) post_event_hook_(*this, r);
      return;
    }
  }
  chain = 0;
  if (!queue.empty()) ++lease_yields_;
  if (res.repair_pending) {
    // A repair arrived while this node sat in the CS. Skip the protocol
    // release — the world it would release into is being discarded — and
    // run the deferred repair now that the CS is empty. A queued local
    // waiter is promoted to the application-level waiting slot first so
    // the repair re-issues its request into the fresh world.
    promote_local_waiter(res, v);
    res.repair_pending = false;
    repair_resource(r);
    if (post_event_hook_) post_event_hook_(*this, r);
    return;
  }
  res.nodes[static_cast<std::size_t>(v)]->release_cs(
      *res.contexts[static_cast<std::size_t>(v) - 1]);
  sync_resident_token(res, v);
  // The chain yielded (or chaining is off): the next local waiter, if
  // any, re-enters through the protocol so remote requesters get their
  // turn first.
  if (promote_local_waiter(res, v)) {
    res.nodes[static_cast<std::size_t>(v)]->request_cs(
        *res.contexts[static_cast<std::size_t>(v) - 1]);
    sync_resident_token(res, v);
  }
  check_invariants(r);
  if (post_event_hook_) post_event_hook_(*this, r);
}

bool LockSpace::promote_local_waiter(Resource& res, NodeId v) {
  auto& queue = res.local_queue[static_cast<std::size_t>(v)];
  if (queue.empty()) return false;
  LocalWaiter next = std::move(queue.front());
  queue.pop_front();
  res.app_state[static_cast<std::size_t>(v)] = AppState::kWaiting;
  res.grant_callbacks[static_cast<std::size_t>(v)] = std::move(next.callback);
  res.tickets[static_cast<std::size_t>(v)] = std::move(next.ticket);
  return true;
}

bool LockSpace::is_idle(ResourceId r, NodeId v) const {
  return resource(r).app_state[static_cast<std::size_t>(v)] ==
         AppState::kIdle;
}

bool LockSpace::is_waiting(ResourceId r, NodeId v) const {
  return resource(r).app_state[static_cast<std::size_t>(v)] ==
         AppState::kWaiting;
}

bool LockSpace::is_in_cs(ResourceId r, NodeId v) const {
  return resource(r).app_state[static_cast<std::size_t>(v)] ==
         AppState::kInCs;
}

NodeId LockSpace::occupant(ResourceId r) const { return resource(r).occupant; }

std::uint64_t LockSpace::entries(ResourceId r) const {
  return resource(r).entries;
}

int LockSpace::resident_tokens(ResourceId r) const {
  return resource(r).resident_tokens;
}

std::size_t LockSpace::local_queue_depth(ResourceId r, NodeId v) const {
  return resource(r).local_queue[static_cast<std::size_t>(v)].size();
}

void LockSpace::check_invariants(ResourceId r) {
  // CS exclusivity per resource is structural (on_grant checks). Verify
  // per-resource token uniqueness: the harness-maintained resident-token
  // counter plus in-flight token messages of THIS resource — O(1) on both
  // sides (the former replaced an O(N) has_token() scan per event).
  Resource& res = resource(r);
  if (!res.algorithm.token_based) return;
  DMX_CHECK_MSG(res.resident_tokens >= 0,
                "resource " << directory_.name(r)
                            << " resident-token counter went negative");
  if (fault_active_) {
    // Fault-aware counting: only live tokens matter — resident at an
    // up, epoch-current node, or in flight stamped with the current
    // epoch. A token frozen inside a crashed node or trailing the fence
    // is already dead; counting it would make a legitimate regeneration
    // look like a duplicate. O(n) scan, paid only when faults are active.
    std::size_t live = 0;
    for (NodeId v = 1; v <= config_.n; ++v) {
      if (res.token_at[static_cast<std::size_t>(v)] &&
          node_up_[static_cast<std::size_t>(v)] &&
          res.node_epoch[static_cast<std::size_t>(v)] == res.epoch) {
        ++live;
      }
    }
    for (const net::MessageKind kind : res.token_kinds) {
      live += network_->in_flight_count(r, res.epoch, kind);
    }
    if (res.degraded) {
      // Between fault and repair the token may be lost, never duplicated.
      DMX_CHECK_MSG(live <= 1, "resource "
                                   << directory_.name(r)
                                   << " live token count is " << live
                                   << " during degraded epoch " << res.epoch);
    } else {
      DMX_CHECK_MSG(live == 1, "resource "
                                   << directory_.name(r) << " token count is "
                                   << live << " at epoch " << res.epoch
                                   << " (must be exactly 1)");
    }
    return;
  }
  std::size_t tokens = static_cast<std::size_t>(res.resident_tokens);
  for (const net::MessageKind kind : res.token_kinds) {
    tokens += network_->in_flight_count(r, kind);
  }
  DMX_CHECK_MSG(tokens == 1, "resource " << directory_.name(r)
                                         << " token count is " << tokens
                                         << " (must be exactly 1)");
}

void LockSpace::check_all_invariants() {
  for (ResourceId r = 0; r < resource_count(); ++r) check_invariants(r);
}

void LockSpace::set_post_event_hook(PostEventHook hook) {
  post_event_hook_ = std::move(hook);
}

void LockSpace::set_membership_hook(MembershipHook hook) {
  membership_hook_ = std::move(hook);
}

bool LockSpace::is_node_up(NodeId v) const {
  DMX_CHECK(v >= 1 && v <= config_.n);
  return node_up_[static_cast<std::size_t>(v)] != 0;
}

int LockSpace::alive_count() const {
  int alive = 0;
  for (NodeId v = 1; v <= config_.n; ++v) {
    alive += node_up_[static_cast<std::size_t>(v)];
  }
  return alive;
}

Epoch LockSpace::epoch(ResourceId r) const { return resource(r).epoch; }

bool LockSpace::is_degraded(ResourceId r) const {
  return resource(r).degraded || resource(r).repair_pending;
}

const fault::Membership& LockSpace::membership(ResourceId r) const {
  const Resource& res = resource(r);
  return res.membership ? *res.membership : identity_;
}

void LockSpace::deliver(const net::Envelope& env) {
  DMX_CHECK(env.to >= 1 && env.to <= config_.n);
  Resource& res = resource(env.resource);
  NodeId from = env.from;
  if (fault_active_) {
    // The network already discards envelopes to dead nodes and fences
    // stale epochs; anything arriving here must be current-world. Guard
    // anyway — a handler running on a stale instance would corrupt it.
    if (!node_up_[static_cast<std::size_t>(env.to)] ||
        res.node_epoch[static_cast<std::size_t>(env.to)] != env.epoch) {
      return;
    }
    ResourceContext& ctx = *res.contexts[static_cast<std::size_t>(env.to) - 1];
    if (ctx.membership() != nullptr) from = ctx.membership()->rank_of(env.from);
  }
  res.nodes[static_cast<std::size_t>(env.to)]->on_message(
      *res.contexts[static_cast<std::size_t>(env.to) - 1], from,
      *env.message);
  sync_resident_token(res, env.to);
  check_invariants(env.resource);
  if (post_event_hook_) post_event_hook_(*this, env.resource);
}

void LockSpace::on_discard(const net::Envelope& env,
                           net::Network::DiscardReason /*reason*/) {
  // A discarded envelope may have carried the token into the void (dead
  // destination) — this is the moment token loss becomes observable, so
  // re-check uniqueness here exactly like after a delivery.
  check_invariants(env.resource);
  if (post_event_hook_) post_event_hook_(*this, env.resource);
}

void LockSpace::apply_fault(const fault::FaultEvent& event) {
  if (event.kind == fault::FaultEvent::Kind::kCrash) {
    crash(event.node);
  } else {
    recover(event.node);
  }
}

void LockSpace::crash(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK_MSG(node_up_[static_cast<std::size_t>(v)],
                "node " << v << " crashed while already down");
  fault_active_ = true;
  node_up_[static_cast<std::size_t>(v)] = 0;
  rejoin_pending_[static_cast<std::size_t>(v)] = 1;
  network_->set_node_down(v);
  for (ResourceId r = 0; r < resource_count(); ++r) {
    Resource& res = resource(r);
    if (res.occupant == v) {
      // The occupant died inside the CS; the CS is empty again (the dead
      // node will never release) and the token it held is frozen with it.
      res.occupant = kNilNode;
      res.app_state[static_cast<std::size_t>(v)] = AppState::kIdle;
    } else if (res.app_state[static_cast<std::size_t>(v)] ==
               AppState::kWaiting) {
      // Void the dead node's pending request: the ticket never grants.
      res.app_state[static_cast<std::size_t>(v)] = AppState::kIdle;
      res.grant_callbacks[static_cast<std::size_t>(v)] = nullptr;
      res.tickets[static_cast<std::size_t>(v)] = nullptr;
    }
    // Local waiters die with their node: their tickets never grant.
    res.local_queue[static_cast<std::size_t>(v)].clear();
    res.chain_len[static_cast<std::size_t>(v)] = 0;
    if (config_.recovery_enabled && res.algorithm.token_based) {
      // Until the repair we cannot tell whether the token died with the
      // node; tolerate transient loss. With recovery disabled checks stay
      // strict so a lost token is CAUGHT, not excused.
      res.degraded = true;
    }
    check_invariants(r);
    if (post_event_hook_) post_event_hook_(*this, r);
  }
  if (membership_hook_) membership_hook_(v, false);
  if (config_.recovery_enabled) {
    sim_.schedule_after(config_.detect_after, [this] { repair_all(); });
  }
}

void LockSpace::recover(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK_MSG(!node_up_[static_cast<std::size_t>(v)],
                "node " << v << " recovered while already up");
  node_up_[static_cast<std::size_t>(v)] = 1;
  network_->set_node_up(v);
  // The node is back but runs its frozen pre-crash instances; every
  // resource whose epoch moved on fences it until repair_all reintegrates
  // it with fresh state.
  if (config_.recovery_enabled) {
    sim_.schedule_after(config_.detect_after, [this] { repair_all(); });
  }
}

void LockSpace::repair_all() {
  for (ResourceId r = 0; r < resource_count(); ++r) {
    Resource& res = resource(r);
    if (res.repair_pending) continue;  // already deferred to release()
    // Repair iff the current membership differs from the live set or the
    // resource is degraded; multiple scheduled detections collapse to one
    // repair this way.
    bool current = !res.degraded;
    for (NodeId v = 1; v <= config_.n && current; ++v) {
      const bool member = res.membership
                              ? res.membership->contains(v)
                              : true;
      const bool up = node_up_[static_cast<std::size_t>(v)] != 0;
      if (member != up) current = false;
      if (up && res.node_epoch[static_cast<std::size_t>(v)] != res.epoch) {
        current = false;
      }
    }
    if (current) continue;
    if (res.occupant != kNilNode) {
      // A live node is inside the CS; repairing now would revoke a held
      // lock. Defer to its release.
      res.repair_pending = true;
      continue;
    }
    repair_resource(r);
    if (post_event_hook_) post_event_hook_(*this, r);
  }
}

void LockSpace::repair_resource(ResourceId r) {
  Resource& res = resource(r);
  const NodeId winner = quorum::elect_regenerator(config_.n, node_up_);
  if (winner == kNilNode) {
    // No live majority: regeneration would risk a token on each side of a
    // partition. Stay degraded until enough nodes return.
    return;
  }
  auto membership = std::make_shared<fault::Membership>(
      fault::Membership::survivors(config_.n, node_up_));
  const int k = membership->size();
  res.epoch += 1;
  network_->set_resource_epoch(r, res.epoch);

  // Rebuild the protocol world over the compact survivor ids. The winner
  // is the smallest live node, so its rank is 1 — which also satisfies
  // Singhal's pinned initial holder. Path-forwarding algorithms get a
  // fresh star over the survivors rooted at the winner (every survivor
  // <= 2 hops from the token, the paper's best topology).
  proto::ClusterSpec spec;
  spec.n = k;
  spec.initial_token_holder = membership->rank_of(winner);
  if (res.algorithm.needs_tree) {
    res.repair_tree = topology::Tree::star(k, spec.initial_token_holder);
    spec.tree = &*res.repair_tree;
  }
  spec.seed = config_.seed;
  spec.epoch = res.epoch;
  auto fresh = res.algorithm.factory(spec);
  DMX_CHECK(fresh.size() == static_cast<std::size_t>(k) + 1);

  std::vector<NodeId> reintegrated;
  for (NodeId rank = 1; rank <= k; ++rank) {
    const NodeId original = membership->original_of(rank);
    if (rejoin_pending_[static_cast<std::size_t>(original)]) {
      rejoin_pending_[static_cast<std::size_t>(original)] = 0;
      reintegrated.push_back(original);
    }
    res.nodes[static_cast<std::size_t>(original)] =
        std::move(fresh[static_cast<std::size_t>(rank)]);
    res.node_epoch[static_cast<std::size_t>(original)] = res.epoch;
    res.contexts[static_cast<std::size_t>(original) - 1]->rebind(membership,
                                                                 res.epoch);
  }
  res.membership = membership;
  res.degraded = false;

  // Reseed the resident-token mirror: survivors from the fresh instances,
  // dead nodes keep their frozen (stale, fenced) entries.
  if (res.algorithm.token_based) {
    res.resident_tokens = 0;
    for (NodeId v = 1; v <= config_.n; ++v) {
      res.token_at[static_cast<std::size_t>(v)] =
          res.nodes[static_cast<std::size_t>(v)]->has_token() ? 1 : 0;
      res.resident_tokens += res.token_at[static_cast<std::size_t>(v)];
    }
  }

  // Re-issue requests parked by survivors (their pre-repair protocol
  // requests died with the old world; tickets and callbacks are intact).
  // Ascending original id keeps the repair deterministic.
  for (NodeId rank = 1; rank <= k; ++rank) {
    const NodeId original = membership->original_of(rank);
    if (res.app_state[static_cast<std::size_t>(original)] !=
        AppState::kWaiting) {
      continue;
    }
    res.nodes[static_cast<std::size_t>(original)]->request_cs(
        *res.contexts[static_cast<std::size_t>(original) - 1]);
    sync_resident_token(res, original);
  }
  check_invariants(r);
  for (const NodeId v : reintegrated) {
    if (membership_hook_) membership_hook_(v, true);
  }
}

void LockSpace::sync_resident_token(Resource& res, NodeId v) {
  if (!res.algorithm.token_based) return;
  const bool has = res.nodes[static_cast<std::size_t>(v)]->has_token();
  res.resident_tokens +=
      static_cast<int>(has) -
      static_cast<int>(res.token_at[static_cast<std::size_t>(v)]);
  res.token_at[static_cast<std::size_t>(v)] = has ? 1 : 0;
}

}  // namespace dmx::service
