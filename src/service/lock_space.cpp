#include "service/lock_space.hpp"

#include <utility>

#include "common/check.hpp"

namespace dmx::service {

/// The protocol's window to the world for one (resource, node) pair: sends
/// are tagged with the resource so the shared network can demultiplex.
class LockSpace::ResourceContext final : public proto::Context {
 public:
  ResourceContext(LockSpace& space, ResourceId resource, NodeId self)
      : space_(space), resource_(resource), self_(self) {}

  NodeId self() const override { return self_; }
  int cluster_size() const override { return space_.nodes(); }
  void send(NodeId to, net::MessagePtr message) override {
    space_.network_->send(resource_, self_, to, std::move(message));
  }
  void grant() override { space_.on_grant(resource_, self_); }

 private:
  LockSpace& space_;
  ResourceId resource_;
  NodeId self_;
};

LockSpace::LockSpace(LockSpaceConfig config)
    : config_(std::move(config)),
      directory_(config_.n, config_.directory_vnodes, config_.seed),
      sim_(config_.wheel_span) {
  DMX_CHECK(config_.n >= 1);
  std::unique_ptr<net::LatencyModel> latency =
      config_.latency_model
          ? std::move(config_.latency_model)
          : std::make_unique<net::FixedLatency>(config_.fixed_latency);
  network_ = std::make_unique<net::Network>(sim_, config_.n,
                                            std::move(latency), config_.seed);
  network_->set_delivery_handler(
      [this](const net::Envelope& env) { deliver(env); });
}

LockSpace::~LockSpace() = default;

void LockSpace::ensure_tree() {
  if (!config_.tree.has_value()) {
    config_.tree = topology::Tree::star(config_.n, 1);
  }
  DMX_CHECK(config_.tree->size() == config_.n);
}

ResourceId LockSpace::open(std::string_view name) {
  return open(name, config_.algorithm);
}

ResourceId LockSpace::open(std::string_view name,
                           const proto::Algorithm& algorithm) {
  const ResourceId existing = directory_.lookup(name);
  if (existing != kNilResource) {
    DMX_CHECK_MSG(resource(existing).algorithm.name == algorithm.name,
                  "resource " << name << " already open with algorithm "
                              << resource(existing).algorithm.name);
    return existing;
  }

  const ResourceId id = directory_.open(name);
  auto res = std::make_unique<Resource>();
  res->algorithm = algorithm;
  res->token_kinds.reserve(algorithm.token_message_kinds.size());
  for (const std::string& kind : algorithm.token_message_kinds) {
    res->token_kinds.push_back(net::MessageKind::of(kind));
  }
  res->home = directory_.home_node(id);

  proto::ClusterSpec spec;
  spec.n = config_.n;
  // Singhal's staircase initialization pins the token to node 1; every
  // other algorithm parks the resource's token at its home node.
  spec.initial_token_holder = algorithm.name == "Singhal" ? 1 : res->home;
  if (algorithm.needs_tree) {
    ensure_tree();
    spec.tree = &*config_.tree;
  }
  spec.seed = config_.seed;
  res->nodes = algorithm.factory(spec);
  DMX_CHECK_MSG(res->nodes.size() == static_cast<std::size_t>(config_.n) + 1,
                "factory must return n+1 slots (index 0 unused)");
  res->contexts.reserve(static_cast<std::size_t>(config_.n));
  for (NodeId v = 1; v <= config_.n; ++v) {
    DMX_CHECK(res->nodes[static_cast<std::size_t>(v)] != nullptr);
    res->contexts.push_back(std::make_unique<ResourceContext>(*this, id, v));
  }
  res->app_state.assign(static_cast<std::size_t>(config_.n) + 1,
                        AppState::kIdle);
  res->grant_callbacks.assign(static_cast<std::size_t>(config_.n) + 1,
                              nullptr);
  res->tickets.assign(static_cast<std::size_t>(config_.n) + 1, nullptr);
  // Seed the resident-token mirror with one full scan; every subsequent
  // event reconciles just the node it mutated.
  if (res->algorithm.token_based) {
    res->token_at.assign(static_cast<std::size_t>(config_.n) + 1, 0);
    for (NodeId v = 1; v <= config_.n; ++v) {
      if (res->nodes[static_cast<std::size_t>(v)]->has_token()) {
        res->token_at[static_cast<std::size_t>(v)] = 1;
        ++res->resident_tokens;
      }
    }
  }
  resources_.push_back(std::move(res));
  check_invariants(id);
  return id;
}

LockSpace::Resource& LockSpace::resource(ResourceId r) {
  DMX_CHECK(r >= 0 && static_cast<std::size_t>(r) < resources_.size());
  return *resources_[static_cast<std::size_t>(r)];
}

const LockSpace::Resource& LockSpace::resource(ResourceId r) const {
  DMX_CHECK(r >= 0 && static_cast<std::size_t>(r) < resources_.size());
  return *resources_[static_cast<std::size_t>(r)];
}

const proto::Algorithm& LockSpace::algorithm(ResourceId r) const {
  return resource(r).algorithm;
}

proto::MutexNode& LockSpace::node(ResourceId r, NodeId v) {
  Resource& res = resource(r);
  DMX_CHECK(v >= 1 && v <= config_.n);
  return *res.nodes[static_cast<std::size_t>(v)];
}

Ticket LockSpace::acquire(ResourceId r, NodeId v, GrantCallback on_grant) {
  Resource& res = resource(r);
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK_MSG(res.app_state[static_cast<std::size_t>(v)] == AppState::kIdle,
                "node " << v << " already requesting or in CS of resource "
                        << directory_.name(r));
  res.app_state[static_cast<std::size_t>(v)] = AppState::kWaiting;
  res.grant_callbacks[static_cast<std::size_t>(v)] = std::move(on_grant);
  auto ticket = std::make_shared<Acquisition>();
  res.tickets[static_cast<std::size_t>(v)] = ticket;
  res.nodes[static_cast<std::size_t>(v)]->request_cs(
      *res.contexts[static_cast<std::size_t>(v) - 1]);
  sync_resident_token(res, v);
  check_invariants(r);
  if (post_event_hook_) post_event_hook_(*this, r);
  return ticket;
}

Ticket LockSpace::acquire(std::string_view name, NodeId v,
                          GrantCallback on_grant) {
  // Reuse an existing resource regardless of which algorithm it was
  // opened with; only a miss opens under the space default.
  const ResourceId r = directory_.lookup(name);
  return acquire(r == kNilResource ? open(name) : r, v, std::move(on_grant));
}

void LockSpace::on_grant(ResourceId r, NodeId v) {
  Resource& res = resource(r);
  DMX_CHECK_MSG(res.app_state[static_cast<std::size_t>(v)] ==
                    AppState::kWaiting,
                "grant for node " << v << " which is not waiting on "
                                  << directory_.name(r));
  DMX_CHECK_MSG(res.occupant == kNilNode,
                "mutual exclusion violated on resource "
                    << directory_.name(r) << ": node " << v
                    << " granted while node " << res.occupant
                    << " is inside its critical section");
  res.app_state[static_cast<std::size_t>(v)] = AppState::kInCs;
  res.occupant = v;
  ++res.entries;
  ++total_entries_;
  if (auto& ticket = res.tickets[static_cast<std::size_t>(v)]) {
    ticket->granted = true;
    ticket->granted_at = sim_.now();
    ticket = nullptr;
  }
  // Take the callback by move so a new acquire from within it is safe.
  auto callback = std::move(res.grant_callbacks[static_cast<std::size_t>(v)]);
  res.grant_callbacks[static_cast<std::size_t>(v)] = nullptr;
  if (callback) callback(r, v);
}

void LockSpace::release(ResourceId r, NodeId v) {
  Resource& res = resource(r);
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK_MSG(res.occupant == v, "release of " << directory_.name(r)
                                                 << " by node " << v
                                                 << " but occupant is "
                                                 << res.occupant);
  res.app_state[static_cast<std::size_t>(v)] = AppState::kIdle;
  res.occupant = kNilNode;
  res.nodes[static_cast<std::size_t>(v)]->release_cs(
      *res.contexts[static_cast<std::size_t>(v) - 1]);
  sync_resident_token(res, v);
  check_invariants(r);
  if (post_event_hook_) post_event_hook_(*this, r);
}

bool LockSpace::is_idle(ResourceId r, NodeId v) const {
  return resource(r).app_state[static_cast<std::size_t>(v)] ==
         AppState::kIdle;
}

bool LockSpace::is_waiting(ResourceId r, NodeId v) const {
  return resource(r).app_state[static_cast<std::size_t>(v)] ==
         AppState::kWaiting;
}

bool LockSpace::is_in_cs(ResourceId r, NodeId v) const {
  return resource(r).app_state[static_cast<std::size_t>(v)] ==
         AppState::kInCs;
}

NodeId LockSpace::occupant(ResourceId r) const { return resource(r).occupant; }

std::uint64_t LockSpace::entries(ResourceId r) const {
  return resource(r).entries;
}

int LockSpace::resident_tokens(ResourceId r) const {
  return resource(r).resident_tokens;
}

void LockSpace::check_invariants(ResourceId r) {
  // CS exclusivity per resource is structural (on_grant checks). Verify
  // per-resource token uniqueness: the harness-maintained resident-token
  // counter plus in-flight token messages of THIS resource — O(1) on both
  // sides (the former replaced an O(N) has_token() scan per event).
  Resource& res = resource(r);
  if (!res.algorithm.token_based) return;
  DMX_CHECK_MSG(res.resident_tokens >= 0,
                "resource " << directory_.name(r)
                            << " resident-token counter went negative");
  std::size_t tokens = static_cast<std::size_t>(res.resident_tokens);
  for (const net::MessageKind kind : res.token_kinds) {
    tokens += network_->in_flight_count(r, kind);
  }
  DMX_CHECK_MSG(tokens == 1, "resource " << directory_.name(r)
                                         << " token count is " << tokens
                                         << " (must be exactly 1)");
}

void LockSpace::check_all_invariants() {
  for (ResourceId r = 0; r < resource_count(); ++r) check_invariants(r);
}

void LockSpace::set_post_event_hook(PostEventHook hook) {
  post_event_hook_ = std::move(hook);
}

void LockSpace::deliver(const net::Envelope& env) {
  DMX_CHECK(env.to >= 1 && env.to <= config_.n);
  Resource& res = resource(env.resource);
  res.nodes[static_cast<std::size_t>(env.to)]->on_message(
      *res.contexts[static_cast<std::size_t>(env.to) - 1], env.from,
      *env.message);
  sync_resident_token(res, env.to);
  check_invariants(env.resource);
  if (post_event_hook_) post_event_hook_(*this, env.resource);
}

void LockSpace::sync_resident_token(Resource& res, NodeId v) {
  if (!res.algorithm.token_based) return;
  const bool has = res.nodes[static_cast<std::size_t>(v)]->has_token();
  res.resident_tokens +=
      static_cast<int>(has) -
      static_cast<int>(res.token_at[static_cast<std::size_t>(v)]);
  res.token_at[static_cast<std::size_t>(v)] = has ? 1 : 0;
}

}  // namespace dmx::service
