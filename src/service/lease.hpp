// Bounded lease windows for hot-shard local grant chaining.
//
// When a node's protocol instance holds the token for a resource and more
// local clients are queued, the release path may hand the critical section
// directly to the next local waiter — zero protocol messages — instead of
// releasing into the protocol. Unbounded chaining starves remote
// requesters (the swarm tester reproduces this with max_chain < 0), so the
// chain runs under a lease: after `max_chain` consecutive local hand-offs
// (or `max_hold_ns` of wall-clock possession) the token must be offered
// back to the protocol. At that cap boundary one refinement is sound for
// algorithms whose holder is GUARANTEED to observe remote interest
// (proto::Algorithm::holder_sees_remote_requests): if no remote request is
// visible, releasing into the protocol would hand the token straight back
// — the lease renews instead, skipping the pointless round. Blind schemes
// (Central clients, Maekawa holders) must yield unconditionally, which is
// what keeps the bounded-waiting witness green on all nine algorithms.
#pragma once

#include <cstdint>

namespace dmx::service {

struct LeaseConfig {
  /// Consecutive local hand-offs allowed after a protocol grant before the
  /// token must be offered back. 0 disables chaining entirely; negative
  /// means unbounded — the deliberately unsafe configuration the swarm's
  /// starvation counterexample runs.
  int max_chain = 16;
  /// Wall-clock ceiling on one node's continuous possession across a chain
  /// (0 = no ceiling). Only the threaded and TCP substrates consult it;
  /// the deterministic sim has no wall clock and relies on max_chain.
  std::uint64_t max_hold_ns = 2'000'000;
  /// At the max_chain boundary, renew the lease (reset the chain) instead
  /// of yielding when the algorithm guarantees holder-side visibility and
  /// no remote request is pending. Ignored for blind algorithms.
  bool renew_when_no_remote = true;
};

/// Another chained grant is within the lease right now.
inline bool lease_chain_allowed(const LeaseConfig& lease, int chain_len) {
  if (lease.max_chain == 0) return false;
  if (lease.max_chain < 0) return true;
  return chain_len < lease.max_chain;
}

/// At the cap boundary: may the chain counter reset in place rather than
/// yield to the protocol? Callers pass the algorithm's visibility
/// guarantee and the holder's current has_remote_request() observation.
inline bool lease_renewable(const LeaseConfig& lease, bool holder_sees_remote,
                            bool remote_pending) {
  return lease.renew_when_no_remote && holder_sees_remote && !remote_pending;
}

}  // namespace dmx::service
