#include "service/directory.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace dmx::service {
namespace {

/// FNV-1a 64-bit, the repo's standard content hash (determinism tests,
/// swarm trace hashes use the same construction).
std::uint64_t fnv1a(std::string_view data, std::uint64_t hash) {
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t mix64(std::uint64_t x) {
  // SplitMix64 finalizer: decorrelates sequential (node, vnode) indices.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Directory::Directory(int n, int vnodes_per_node, std::uint64_t seed) : n_(n) {
  DMX_CHECK(n >= 1);
  DMX_CHECK(vnodes_per_node >= 1);
  ring_.reserve(static_cast<std::size_t>(n) *
                static_cast<std::size_t>(vnodes_per_node));
  for (NodeId v = 1; v <= n; ++v) {
    for (int k = 0; k < vnodes_per_node; ++k) {
      const std::uint64_t point =
          mix64(seed ^ mix64((static_cast<std::uint64_t>(v) << 32) |
                             static_cast<std::uint64_t>(k)));
      ring_.emplace_back(point, v);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

NodeId Directory::place(std::string_view name) const {
  // FNV-1a alone clusters short sequential names ("lock-1", "lock-2", ...)
  // into one arc of the ring — its final multiply has weak high-bit
  // avalanche. The SplitMix64 finalizer spreads them uniformly.
  const std::uint64_t h = mix64(fnv1a(name, 14695981039346656037ULL));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, NodeId>& point, std::uint64_t key) {
        return point.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the ring
  return it->second;
}

ResourceId Directory::open(std::string_view name) {
  const auto found = ids_.find(std::string(name));
  if (found != ids_.end()) return found->second;
  const auto id = static_cast<ResourceId>(names_.size());
  ids_.emplace(std::string(name), id);
  names_.emplace_back(name);
  homes_.push_back(place(name));
  return id;
}

ResourceId Directory::lookup(std::string_view name) const {
  const auto found = ids_.find(std::string(name));
  return found == ids_.end() ? kNilResource : found->second;
}

const std::string& Directory::name(ResourceId id) const {
  DMX_CHECK(id >= 0 && static_cast<std::size_t>(id) < names_.size());
  return names_[static_cast<std::size_t>(id)];
}

NodeId Directory::home_node(ResourceId id) const {
  DMX_CHECK(id >= 0 && static_cast<std::size_t>(id) < homes_.size());
  return homes_[static_cast<std::size_t>(id)];
}

}  // namespace dmx::service
