#include "service/threaded_lock_space.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/strand.hpp"

namespace dmx::service {

/// One (resource, node) protocol state machine with its strand. Protocol
/// state (`node`, `rng`) is strand-confined: only strand tasks touch it,
/// and the strand's serialization publishes task i's writes to task i+1.
/// The client-side gate (`waiting`/`requested`/`granted`/`held`) bridges
/// application threads and strand tasks under `client_mutex`.
struct ThreadedLockSpace::ResourceNode {
  ResourceNode(ThreadedLockSpace& space, ResourceId resource, NodeId self,
               std::uint64_t seed)
      : space(space), resource(resource), self(self),
        strand(space.executor_), rng(seed), context(*this) {}

  /// proto::Context for this state machine; used only from strand tasks.
  class Context final : public proto::Context {
   public:
    explicit Context(ResourceNode& rn) : rn_(rn) {}
    NodeId self() const override { return rn_.self; }
    int cluster_size() const override { return rn_.space.config_.n; }
    void send(NodeId to, net::MessagePtr message) override {
      rn_.space.route(rn_.resource, rn_.self, to, std::move(message));
    }
    void grant() override { rn_.on_grant(); }

   private:
    ResourceNode& rn_;
  };

  // --- Strand tasks --------------------------------------------------------

  void deliver(NodeId from, net::MessagePtr message) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    try {
      maybe_jitter();
      node->on_message(context, from, *message);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
  }

  void request() {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    try {
      node->request_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
  }

  void release() {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    try {
      node->release_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
  }

  void on_grant() {
    {
      std::lock_guard<std::mutex> guard(client_mutex);
      granted = true;
    }
    client_cv.notify_all();
  }

  void maybe_jitter() {
    if (space.config_.jitter_us == 0) return;
    const auto us = static_cast<unsigned>(rng.uniform_int(
        0, static_cast<std::int64_t>(space.config_.jitter_us)));
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }

  ThreadedLockSpace& space;
  ResourceId resource;
  NodeId self;
  exec::Strand strand;
  std::unique_ptr<proto::MutexNode> node;  // strand-confined
  Rng rng;                                 // strand-confined (jitter)
  Context context;

  /// Local waiters and grant hand-off; client_mutex guards every field.
  std::mutex client_mutex;
  std::condition_variable client_cv;
  int waiting = 0;
  bool requested = false;
  bool granted = false;
  bool held = false;
};

ThreadedLockSpace::ThreadedLockSpace(ThreadedLockSpaceConfig config)
    : config_(std::move(config)),
      directory_(config_.n, config_.directory_vnodes, config_.seed),
      executor_(exec::ExecutorConfig{config_.workers, config_.spin}) {
  DMX_CHECK(config_.n >= 1);
  DMX_CHECK_MSG(!config_.resources.empty(),
                "a ThreadedLockSpace needs at least one resource");

  // Resolve each resource's algorithm (default or per-name override).
  algorithms_.reserve(config_.resources.size());
  for (const std::string& name : config_.resources) {
    const proto::Algorithm* algorithm = &config_.algorithm;
    for (const auto& [override_name, override_algorithm] :
         config_.resource_algorithms) {
      if (override_name == name) algorithm = &override_algorithm;
    }
    algorithms_.push_back(*algorithm);
  }
  for (const auto& [override_name, override_algorithm] :
       config_.resource_algorithms) {
    DMX_CHECK_MSG(std::find(config_.resources.begin(),
                            config_.resources.end(),
                            override_name) != config_.resources.end(),
                  "algorithm override for unknown resource "
                      << override_name);
  }
  bool needs_tree = false;
  for (const proto::Algorithm& algorithm : algorithms_) {
    needs_tree = needs_tree || algorithm.needs_tree;
  }
  if (needs_tree && !config_.tree.has_value()) {
    config_.tree = topology::Tree::star(config_.n, 1);
  }

  const int m = static_cast<int>(config_.resources.size());
  occupancy_ = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(m));
  entries_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    occupancy_[static_cast<std::size_t>(r)].store(0);
    entries_[static_cast<std::size_t>(r)].store(0);
  }

  nodes_.reserve(static_cast<std::size_t>(m) *
                 static_cast<std::size_t>(config_.n));
  Rng seeder(config_.seed);
  for (const std::string& name : config_.resources) {
    const ResourceId r = directory_.open(name);
    const proto::Algorithm& algorithm =
        algorithms_[static_cast<std::size_t>(r)];
    for (NodeId v = 1; v <= config_.n; ++v) {
      nodes_.push_back(
          std::make_unique<ResourceNode>(*this, r, v, seeder.next()));
    }
    proto::ClusterSpec spec;
    spec.n = config_.n;
    spec.initial_token_holder =
        algorithm.name == "Singhal" ? 1 : directory_.home_node(r);
    spec.tree = config_.tree.has_value() ? &*config_.tree : nullptr;
    spec.seed = config_.seed;
    auto protocol_nodes = algorithm.factory(spec);
    DMX_CHECK(protocol_nodes.size() ==
              static_cast<std::size_t>(config_.n) + 1);
    for (NodeId v = 1; v <= config_.n; ++v) {
      rn(r, v).node = std::move(protocol_nodes[static_cast<std::size_t>(v)]);
    }
  }
}

ThreadedLockSpace::~ThreadedLockSpace() {
  // Stop the pool first: workers finish their current task and queued
  // strand tasks are destroyed unrun when the strands go away (their
  // captured messages free cross-thread through the pool's owner-return
  // path).
  executor_.shutdown();
}

ThreadedLockSpace::ResourceNode& ThreadedLockSpace::rn(ResourceId r,
                                                       NodeId v) {
  return *nodes_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(config_.n) +
                 static_cast<std::size_t>(v) - 1];
}

const proto::Algorithm& ThreadedLockSpace::algorithm(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return algorithms_[static_cast<std::size_t>(r)];
}

void ThreadedLockSpace::lock(ResourceId r, NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  ResourceNode& x = rn(r, v);
  {
    std::unique_lock<std::mutex> guard(x.client_mutex);
    ++x.waiting;
    // One protocol request at a time per (resource, node): the first local
    // waiter requests; later waiters ride local hand-off (unlock posts the
    // next request once the current holder leaves).
    if (!x.requested && !x.held) {
      x.requested = true;
      x.strand.post([&x] { x.request(); });
    }
    x.client_cv.wait(guard, [this, &x] {
      return x.granted || failed_.load(std::memory_order_relaxed);
    });
    if (!x.granted) {
      // A protocol handler threw somewhere in the space; waiting for a
      // grant would hang forever. Surface the failure to the caller
      // (details in first_error()).
      --x.waiting;
      DMX_CHECK_MSG(false, "lock service failed while node "
                               << v << " waited on resource " << name(r)
                               << "; see first_error()");
    }
    x.granted = false;
    x.requested = false;
    --x.waiting;
    x.held = true;
  }
  // Exclusivity witness: the grant we just consumed must be the only
  // occupancy of this resource anywhere in the space.
  const int prev = occupancy_[static_cast<std::size_t>(r)].fetch_add(1);
  if (prev != 0) {
    record_error("mutual exclusion violated on resource " + name(r) +
                 ": node " + std::to_string(v) +
                 " entered while occupancy was " + std::to_string(prev));
  }
  entries_[static_cast<std::size_t>(r)].fetch_add(1,
                                                  std::memory_order_relaxed);
}

void ThreadedLockSpace::unlock(ResourceId r, NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  ResourceNode& x = rn(r, v);
  std::lock_guard<std::mutex> guard(x.client_mutex);
  DMX_CHECK_MSG(x.held, "unlock of resource " << name(r) << " on node " << v
                                              << " which does not hold it");
  x.held = false;
  // The witness retires only after the held-check passed (a bogus unlock
  // must not drive the counter negative), yet before the release reaches
  // the protocol — after that the next grant may already increment it.
  occupancy_[static_cast<std::size_t>(r)].fetch_sub(1);
  // Strand FIFO orders the release ahead of the follow-up request, and
  // posting under client_mutex keeps a racing lock() on another thread
  // from slipping its request in between.
  x.strand.post([&x] { x.release(); });
  if (x.waiting > 0 && !x.requested) {
    x.requested = true;
    x.strand.post([&x] { x.request(); });
  }
}

std::uint64_t ThreadedLockSpace::total_entries() const {
  std::uint64_t sum = 0;
  for (int r = 0; r < resource_count(); ++r) {
    sum += entries_[static_cast<std::size_t>(r)].load(
        std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t ThreadedLockSpace::entries(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return entries_[static_cast<std::size_t>(r)].load(
      std::memory_order_relaxed);
}

std::optional<std::string> ThreadedLockSpace::first_error() const {
  std::lock_guard<std::mutex> guard(error_mutex_);
  return first_error_;
}

void ThreadedLockSpace::route(ResourceId r, NodeId from, NodeId to,
                              net::MessagePtr message) {
  DMX_CHECK(to >= 1 && to <= config_.n && to != from);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  ResourceNode& x = rn(r, to);
  x.strand.post([&x, from, msg = std::move(message)]() mutable {
    x.deliver(from, std::move(msg));
  });
}

void ThreadedLockSpace::record_error(const std::string& what) {
  std::lock_guard<std::mutex> guard(error_mutex_);
  if (!first_error_.has_value()) first_error_ = what;
}

void ThreadedLockSpace::fail(const std::string& what) {
  record_error(what);
  failed_.store(true, std::memory_order_seq_cst);
  for (auto& node : nodes_) {
    // Lock/unlock pairs with each waiter's predicate check so the wake
    // cannot slip between its check and its wait.
    { std::lock_guard<std::mutex> guard(node->client_mutex); }
    node->client_cv.notify_all();
  }
}

}  // namespace dmx::service
