#include "service/threaded_lock_space.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "exec/strand.hpp"
#include "quorum/election.hpp"
#include "telemetry/flight_recorder.hpp"

namespace dmx::service {

/// One (resource, node) protocol state machine with its strand. Protocol
/// state (`node`, `rng`, `epoch`, `membership`) is strand-confined: only
/// strand tasks touch it, and the strand's serialization publishes task
/// i's writes to task i+1. The client-side gate (`waiting`/`requested`/
/// `granted`/`held`) bridges application threads and strand tasks under
/// `client_mutex`.
///
/// Crash fencing: every protocol task carries the epoch it was minted in
/// and drops itself when it no longer matches the strand's — the
/// thread-kill equivalent. A crash or repair bumps the epoch, so queued
/// old-world work dies unobserved without ever blocking a strand, and a
/// repair installs a fresh compact-world instance via an unfenced reset
/// task that every later same-strand task observes.
struct ThreadedLockSpace::ResourceNode {
  ResourceNode(ThreadedLockSpace& space, ResourceId resource, NodeId self,
               std::uint64_t seed)
      : space(space), resource(resource), self(self),
        strand(space.executor_), rng(seed), context(*this) {}

  /// proto::Context for this state machine; used only from strand tasks.
  /// Post-repair the protocol instance lives in the compact survivor
  /// world: self()/send() speak ranks to it, the wire keeps original ids.
  class Context final : public proto::Context {
   public:
    explicit Context(ResourceNode& rn) : rn_(rn) {}
    NodeId self() const override {
      return rn_.membership != nullptr ? rn_.membership->rank_of(rn_.self)
                                       : rn_.self;
    }
    int cluster_size() const override {
      return rn_.membership != nullptr ? rn_.membership->size()
                                       : rn_.space.config_.n;
    }
    void send(NodeId to, net::MessagePtr message) override {
      const NodeId to_original =
          rn_.membership != nullptr ? rn_.membership->original_of(to) : to;
      rn_.space.route(rn_.resource, rn_.self, to_original,
                      std::move(message), rn_.epoch);
    }
    void grant() override { rn_.on_grant(); }

   private:
    ResourceNode& rn_;
  };

  // --- Strand tasks --------------------------------------------------------

  bool fenced(Epoch tag) const {
    return tag != epoch ||
           space.node_down_[static_cast<std::size_t>(self)].load(
               std::memory_order_relaxed);
  }

  void deliver(Epoch tag, NodeId from, net::MessagePtr message) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    try {
      maybe_jitter();
      node->on_message(context,
                       membership != nullptr ? membership->rank_of(from)
                                             : from,
                       *message);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  void request(Epoch tag) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    // A repair's re-issue may have beaten this task into the new world
    // (one outstanding protocol request per node, ever).
    if (request_outstanding) return;
    request_outstanding = true;
    try {
      node->request_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  void release(Epoch tag) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    request_outstanding = false;
    try {
      node->release_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  /// Post-repair request re-issue: the node's pre-repair protocol request
  /// died with the old epoch, so if application threads are still parked
  /// (or a request was posted and fenced), ask again in the fresh world —
  /// unless a new-epoch request task already ran here.
  void rerequest(Epoch tag) {
    if (space.failed_.load(std::memory_order_relaxed)) return;
    if (fenced(tag)) return;
    if (request_outstanding) return;
    bool want = false;
    {
      std::lock_guard<std::mutex> guard(client_mutex);
      want = requested || waiting > 0;
      requested = want;
    }
    if (!want) return;
    request_outstanding = true;
    try {
      node->request_cs(context);
    } catch (const std::exception& e) {
      space.fail(e.what());
    }
    publish_remote_pending();
  }

  void on_grant() {
    bool hand_off = false;
    {
      std::lock_guard<std::mutex> guard(client_mutex);
      const bool dead = space.node_down_[static_cast<std::size_t>(self)].load(
          std::memory_order_relaxed);
      if (!dead && waiting > 0) {
        granted = true;
        granted_epoch = epoch;
        grant_via_chain = false;
        hand_off = true;
      } else {
        // Nobody will consume this grant — every waiter timed out, or the
        // node crashed between request and grant. Hand the CS straight
        // back so the resource keeps flowing.
        requested = false;
      }
    }
    if (hand_off) {
      client_cv.notify_all();
      return;
    }
    const Epoch tag = epoch;  // on_grant runs on the strand
    strand.post([this, tag] { release(tag); });
  }

  /// Publishes node->has_remote_request() at the end of every strand
  /// task, so a holder's release can consult it without touching
  /// strand-confined state. The value may lag by an in-flight message —
  /// the lease cap, not this hint, carries the bounded-waiting
  /// guarantee; the hint only decides whether a cap-expired lease may
  /// renew in place.
  void publish_remote_pending() {
    remote_pending.store(node->has_remote_request(),
                         std::memory_order_relaxed);
  }

  void maybe_jitter() {
    if (space.config_.jitter_us == 0) return;
    const auto us = static_cast<unsigned>(rng.uniform_int(
        0, static_cast<std::int64_t>(space.config_.jitter_us)));
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }

  ThreadedLockSpace& space;
  ResourceId resource;
  NodeId self;
  exec::Strand strand;
  std::unique_ptr<proto::MutexNode> node;  // strand-confined
  Rng rng;                                 // strand-confined (jitter)
  /// Reconfiguration epoch this strand's instance belongs to and, post-
  /// repair, the compact membership it speaks. Strand-confined; written
  /// only by reset tasks.
  Epoch epoch = 0;
  std::shared_ptr<const fault::Membership> membership;
  /// Whether this world's instance has an unreleased protocol request in
  /// flight — dedupes the client's posted request against a repair's
  /// re-issue. Strand-confined; cleared by release and by reset.
  bool request_outstanding = false;
  Context context;

  /// Local waiters and grant hand-off; client_mutex guards every field
  /// below except the trailing atomic.
  std::mutex client_mutex;
  std::condition_variable client_cv;
  int waiting = 0;
  bool requested = false;
  bool granted = false;
  /// Arrival-order tickets of the parked waiters: a grant (protocol or
  /// chained) is consumed only by the waiter whose ticket is at the
  /// front, so same-node waiters cannot overtake each other.
  std::deque<std::uint64_t> fifo;
  std::uint64_t ticket_seq = 0;
  /// Consecutive local hand-offs in the current lease window, and
  /// telemetry::now_ns() when the window opened (its first grant).
  int chain_len = 0;
  std::uint64_t chain_started_ns = 0;
  /// Epoch the current holder's grant was minted in; a release chains
  /// only while it still matches the resource's epoch (no repair since).
  Epoch held_epoch = 0;
  /// Whether the pending grant rode the local chain (keeps the lease
  /// window open) or came from the protocol (opens a fresh window).
  bool grant_via_chain = false;
  /// telemetry::now_ns() when the current holder entered (0 = not held);
  /// closes the client.hold_ns histogram at unlock.
  std::uint64_t hold_started_ns = 0;
  /// Epoch the pending grant was minted in: a consumer revalidates it
  /// against the resource's current epoch, so a grant from a world that a
  /// repair has since fenced is discarded instead of entering the CS
  /// alongside the regenerated token.
  Epoch granted_epoch = 0;
  bool held = false;
  /// has_remote_request() as of this strand's last protocol task (see
  /// publish_remote_pending).
  std::atomic<bool> remote_pending{false};
};

ThreadedLockSpace::ThreadedLockSpace(ThreadedLockSpaceConfig config)
    : config_(std::move(config)),
      directory_(config_.n, config_.directory_vnodes, config_.seed),
      executor_(exec::ExecutorConfig{config_.workers, config_.spin}) {
  DMX_CHECK(config_.n >= 1);
  DMX_CHECK_MSG(!config_.resources.empty(),
                "a ThreadedLockSpace needs at least one resource");

  // Resolve each resource's algorithm (default or per-name override).
  algorithms_.reserve(config_.resources.size());
  for (const std::string& name : config_.resources) {
    const proto::Algorithm* algorithm = &config_.algorithm;
    for (const auto& [override_name, override_algorithm] :
         config_.resource_algorithms) {
      if (override_name == name) algorithm = &override_algorithm;
    }
    algorithms_.push_back(*algorithm);
  }
  for (const auto& [override_name, override_algorithm] :
       config_.resource_algorithms) {
    DMX_CHECK_MSG(std::find(config_.resources.begin(),
                            config_.resources.end(),
                            override_name) != config_.resources.end(),
                  "algorithm override for unknown resource "
                      << override_name);
  }
  bool needs_tree = false;
  for (const proto::Algorithm& algorithm : algorithms_) {
    needs_tree = needs_tree || algorithm.needs_tree;
  }
  if (needs_tree && !config_.tree.has_value()) {
    config_.tree = topology::Tree::star(config_.n, 1);
  }

  const int m = static_cast<int>(config_.resources.size());
  occupancy_ = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(m));
  entries_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(m));
  unavailable_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(m));
  resource_epoch_ = std::make_unique<std::atomic<Epoch>[]>(
      static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    occupancy_[static_cast<std::size_t>(r)].store(0);
    entries_[static_cast<std::size_t>(r)].store(0);
    unavailable_[static_cast<std::size_t>(r)].store(false);
    resource_epoch_[static_cast<std::size_t>(r)].store(0);
  }
  node_down_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<std::size_t>(config_.n) + 1);
  for (NodeId v = 0; v <= config_.n; ++v) {
    node_down_[static_cast<std::size_t>(v)].store(false);
  }
  repair_.reserve(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    repair_.push_back(std::make_unique<RepairState>());
    repair_.back()->membership = fault::Membership::identity(config_.n);
  }

  nodes_.reserve(static_cast<std::size_t>(m) *
                 static_cast<std::size_t>(config_.n));
  Rng seeder(config_.seed);
  initial_holder_.assign(static_cast<std::size_t>(m), kNilNode);
  for (const std::string& name : config_.resources) {
    const ResourceId r = directory_.open(name);
    const proto::Algorithm& algorithm =
        algorithms_[static_cast<std::size_t>(r)];
    for (NodeId v = 1; v <= config_.n; ++v) {
      nodes_.push_back(
          std::make_unique<ResourceNode>(*this, r, v, seeder.next()));
    }
    proto::ClusterSpec spec;
    spec.n = config_.n;
    spec.initial_token_holder =
        algorithm.name == "Singhal" ? 1 : directory_.home_node(r);
    spec.tree = config_.tree.has_value() ? &*config_.tree : nullptr;
    spec.seed = config_.seed;
    initial_holder_[static_cast<std::size_t>(r)] = spec.initial_token_holder;
    auto protocol_nodes = algorithm.factory(spec);
    DMX_CHECK(protocol_nodes.size() ==
              static_cast<std::size_t>(config_.n) + 1);
    for (NodeId v = 1; v <= config_.n; ++v) {
      rn(r, v).node = std::move(protocol_nodes[static_cast<std::size_t>(v)]);
    }
  }

  // Resolve every metric id once, here in cold code; the lock/unlock hot
  // paths then record through plain array indices.
  auto& registry = telemetry::Registry::global();
  hold_hist_ = registry.histogram("client.hold_ns");
  chain_hist_ = registry.histogram("client.chain_len");
  repair_hist_ = registry.histogram("fault.repair_ns");
  unavail_hist_ = registry.histogram("fault.unavail_window_ns");
  unavailable_since_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(m));
  resource_telemetry_.reserve(static_cast<std::size_t>(m));
  for (ResourceId r = 0; r < m; ++r) {
    unavailable_since_ns_[static_cast<std::size_t>(r)].store(0);
    const std::string& rname = directory_.name(r);
    ResourceTelemetry rt;
    rt.wait_ns = registry.histogram("client.wait_ns." + rname);
    rt.ok = registry.counter("client.ok." + rname);
    rt.timeouts = registry.counter("client.timeout." + rname);
    rt.unavailable = registry.counter("client.unavailable." + rname);
    for (const std::string& kind :
         algorithms_[static_cast<std::size_t>(r)].token_message_kinds) {
      rt.token_kinds.push_back(net::MessageKind::of(kind));
    }
    resource_telemetry_.push_back(std::move(rt));
  }
}

ThreadedLockSpace::~ThreadedLockSpace() {
  // Stop the pool first: workers finish their current task and queued
  // strand tasks are destroyed unrun when the strands go away (their
  // captured messages free cross-thread through the pool's owner-return
  // path).
  executor_.shutdown();
}

ThreadedLockSpace::ResourceNode& ThreadedLockSpace::rn(ResourceId r,
                                                       NodeId v) {
  return *nodes_[static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(config_.n) +
                 static_cast<std::size_t>(v) - 1];
}

const proto::Algorithm& ThreadedLockSpace::algorithm(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return algorithms_[static_cast<std::size_t>(r)];
}

bool ThreadedLockSpace::is_node_up(NodeId v) const {
  DMX_CHECK(v >= 1 && v <= config_.n);
  return !node_down_[static_cast<std::size_t>(v)].load(
      std::memory_order_relaxed);
}

Epoch ThreadedLockSpace::epoch(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return resource_epoch_[static_cast<std::size_t>(r)].load(
      std::memory_order_acquire);
}

LockError ThreadedLockSpace::wait_for_grant(
    ResourceId r, NodeId v, const std::chrono::milliseconds* timeout) {
  ResourceNode& x = rn(r, v);
  const ResourceTelemetry& rt = resource_telemetry_[static_cast<std::size_t>(r)];
  const std::uint64_t wait_started_ns = telemetry::now_ns();
  telemetry::FlightRecorder::record_at(wait_started_ns,
                                       telemetry::FlightEvent::kRequest, r, v);
  const auto deadline =
      timeout != nullptr
          ? std::chrono::steady_clock::now() + *timeout
          : std::chrono::steady_clock::time_point::max();
  std::uint64_t grant_ns = 0;
  {
    std::unique_lock<std::mutex> guard(x.client_mutex);
    ++x.waiting;
    // Arrival-order ticket: grants are consumed strictly in ticket order,
    // so a later waiter on the same (resource, node) can never overtake
    // an earlier one through a lucky condvar wake.
    const std::uint64_t ticket = x.ticket_seq++;
    x.fifo.push_back(ticket);
    // One protocol request at a time per (resource, node): the first local
    // waiter requests; later waiters ride local hand-off (unlock posts the
    // next request once the current holder leaves).
    if (!x.requested && !x.held) {
      x.requested = true;
      const Epoch tag = resource_epoch_[static_cast<std::size_t>(r)].load(
          std::memory_order_acquire);
      x.strand.post([&x, tag] { x.request(tag); });
    }
    const auto ready = [this, r, &x, ticket] {
      return (x.granted && x.fifo.front() == ticket) ||
             failed_.load(std::memory_order_relaxed) ||
             node_down_[static_cast<std::size_t>(x.self)].load(
                 std::memory_order_relaxed) ||
             unavailable_[static_cast<std::size_t>(r)].load(
                 std::memory_order_relaxed);
    };
    while (true) {
      bool signalled = true;
      if (timeout == nullptr) {
        x.client_cv.wait(guard, ready);
      } else {
        signalled = x.client_cv.wait_until(guard, deadline, ready);
      }
      if (!signalled) {
        // Deadline passed. The request stays posted; a grant arriving
        // with nobody waiting is handed straight back by on_grant.
        --x.waiting;
        x.fifo.erase(std::find(x.fifo.begin(), x.fifo.end(), ticket));
        guard.unlock();
        // The waiter behind us is the new front; a pending grant it was
        // fenced off may now be its to consume.
        x.client_cv.notify_all();
        telemetry::count(rt.timeouts);
        telemetry::FlightRecorder::record(telemetry::FlightEvent::kTimeout, r,
                                          v);
        return LockError::kTimeout;
      }
      if (x.granted && x.fifo.front() == ticket) {
        // Revalidate against the current epoch: a repair may have fenced
        // the world this grant came from, in which case the regenerated
        // token supersedes it and entering would break exclusion. The
        // repair's re-request covers us; keep waiting.
        if (x.granted_epoch !=
            resource_epoch_[static_cast<std::size_t>(r)].load(
                std::memory_order_acquire)) {
          x.granted = false;
          continue;
        }
        x.granted = false;
        x.requested = false;
        --x.waiting;
        x.fifo.pop_front();
        x.held = true;
        x.held_epoch = x.granted_epoch;
        // One clock read serves three consumers: the hold-time stamp,
        // the wait histograms, and the grant flight event.
        grant_ns = telemetry::now_ns();
        x.hold_started_ns = grant_ns;
        if (x.grant_via_chain) {
          x.grant_via_chain = false;  // window stays open, length counted
        } else {
          x.chain_len = 0;  // fresh protocol grant opens a fresh window
          x.chain_started_ns = grant_ns;
        }
        break;
      }
      --x.waiting;
      x.fifo.erase(std::find(x.fifo.begin(), x.fifo.end(), ticket));
      if (node_down_[static_cast<std::size_t>(x.self)].load(
              std::memory_order_relaxed) ||
          unavailable_[static_cast<std::size_t>(r)].load(
              std::memory_order_relaxed)) {
        telemetry::count(rt.unavailable);
        telemetry::FlightRecorder::record(telemetry::FlightEvent::kUnavailable,
                                          r, v);
        return LockError::kUnavailable;
      }
      // A protocol handler threw somewhere in the space; waiting for a
      // grant would hang forever. Surface the failure to the caller
      // (details in first_error()).
      DMX_CHECK_MSG(false, "lock service failed while node "
                               << v << " waited on resource " << name(r)
                               << "; see first_error()");
    }
  }
  // Exclusivity witness: the grant we just consumed must be the only
  // occupancy of this resource anywhere in the space.
  const int prev = occupancy_[static_cast<std::size_t>(r)].fetch_add(1);
  if (prev != 0) {
    record_error("mutual exclusion violated on resource " + name(r) +
                 ": node " + std::to_string(v) +
                 " entered while occupancy was " + std::to_string(prev));
  }
  entries_[static_cast<std::size_t>(r)].fetch_add(1,
                                                  std::memory_order_relaxed);
  // Per-resource lane only; the process-wide "client.wait_ns" roll-up is
  // synthesized at snapshot time (MetricsSnapshot::roll_up), not paid for
  // on every acquisition.
  if (telemetry::sample_1_in_8()) {
    telemetry::observe(rt.wait_ns, grant_ns - wait_started_ns);
  }
  telemetry::count(rt.ok);
  telemetry::FlightRecorder::record_at(grant_ns, telemetry::FlightEvent::kGrant,
                                       r, v);
  return LockError::kOk;
}

void ThreadedLockSpace::lock(ResourceId r, NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  const LockError error = wait_for_grant(r, v, nullptr);
  DMX_CHECK_MSG(error == LockError::kOk,
                "lock of resource " << name(r) << " on node " << v
                                    << " can never be granted (crashed node "
                                       "or dead resource)");
}

LockError ThreadedLockSpace::try_lock_for(ResourceId r, NodeId v,
                                          std::chrono::milliseconds timeout) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  return wait_for_grant(r, v, &timeout);
}

void ThreadedLockSpace::unlock(ResourceId r, NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  ResourceNode& x = rn(r, v);
  // One clock read ahead of the mutex serves the lease-window check, the
  // hold histogram, and the release/chain flight event.
  const std::uint64_t release_ns = telemetry::now_ns();
  std::uint64_t hold_started_ns = 0;
  bool chained = false;
  int chain_arg = 0;
  int ended_chain = 0;  // lease window closed at this length (0 = none)
  bool yielded_with_waiters = false;
  {
    std::lock_guard<std::mutex> guard(x.client_mutex);
    if (!x.held) {
      // After a crash the holder's world may have been revoked under it
      // (the node died in its CS, or a repair fenced its grant); the
      // zombie's unlock is a ghost, not an error.
      if (fault_active_.load(std::memory_order_relaxed)) return;
      DMX_CHECK_MSG(false, "unlock of resource "
                               << name(r) << " on node " << v
                               << " which does not hold it");
    }
    x.held = false;
    hold_started_ns = x.hold_started_ns;
    x.hold_started_ns = 0;
    // The witness retires only after the held-check passed (a bogus unlock
    // must not drive the counter negative), yet before the release reaches
    // the protocol — after that the next grant may already increment it.
    occupancy_[static_cast<std::size_t>(r)].fetch_sub(1);
    const Epoch tag = resource_epoch_[static_cast<std::size_t>(r)].load(
        std::memory_order_acquire);
    // Local grant chaining: with waiters parked on this node and the
    // lease not exhausted, hand the CS straight to the next one — one
    // condvar wake, zero protocol messages. Never across a fault: a
    // repair fences the holder's world (tag != held_epoch) before it can
    // defer, and any crash disables chaining outright (fault_active_) so
    // repairs and token-loss detection see a quiescing resource.
    if (x.waiting > 0 && tag == x.held_epoch &&
        !fault_active_.load(std::memory_order_relaxed) &&
        !failed_.load(std::memory_order_relaxed)) {
      int chain = x.chain_len;
      const bool window_ok =
          config_.lease.max_hold_ns == 0 ||
          release_ns - x.chain_started_ns < config_.lease.max_hold_ns;
      bool hand_off = window_ok && lease_chain_allowed(config_.lease, chain);
      if (!hand_off && config_.lease.max_chain != 0 &&
          lease_renewable(config_.lease,
                          algorithms_[static_cast<std::size_t>(r)]
                              .holder_sees_remote_requests,
                          x.remote_pending.load(std::memory_order_relaxed))) {
        // Lease expired but the protocol instance can see that no remote
        // request is pending: renew in place instead of a pointless
        // release/re-request round trip. Blind algorithms (Maekawa,
        // Central clients) never take this branch, keeping the cap
        // unconditional where remote demand is invisible.
        ended_chain = chain;
        chain = 0;
        x.chain_started_ns = release_ns;
        hand_off = true;
      }
      if (hand_off) {
        x.chain_len = chain + 1;
        chain_arg = x.chain_len;
        x.granted = true;
        x.granted_epoch = x.held_epoch;
        x.grant_via_chain = true;
        chained = true;
      }
    }
    if (!chained) {
      ended_chain = x.chain_len;
      x.chain_len = 0;
      yielded_with_waiters = x.waiting > 0;
      // Strand FIFO orders the release ahead of the follow-up request,
      // and posting under client_mutex keeps a racing lock() on another
      // thread from slipping its request in between.
      x.strand.post([&x, tag] { x.release(tag); });
      if (x.waiting > 0 && !x.requested) {
        x.requested = true;
        x.strand.post([&x, tag] { x.request(tag); });
      }
    }
  }
  // Telemetry off the client mutex.
  if (hold_started_ns != 0 && telemetry::sample_1_in_8()) {
    telemetry::observe(hold_hist_, release_ns - hold_started_ns);
  }
  if (ended_chain > 0) {
    telemetry::observe(chain_hist_,
                       static_cast<std::uint64_t>(ended_chain));
  }
  if (chained) {
    x.client_cv.notify_all();
    chained_grants_.fetch_add(1, std::memory_order_relaxed);
    telemetry::FlightRecorder::record_at(
        release_ns, telemetry::FlightEvent::kChainGrant, r, v, chain_arg);
    // No protocol release happened, so no deferred repair can complete
    // here: chaining requires !fault_active_, and rs.pending implies a
    // crash already flipped it.
    return;
  }
  telemetry::FlightRecorder::record_at(release_ns,
                                       telemetry::FlightEvent::kRelease, r, v);
  if (yielded_with_waiters) {
    lease_yields_.fetch_add(1, std::memory_order_relaxed);
    telemetry::FlightRecorder::record_at(
        release_ns, telemetry::FlightEvent::kLeaseYield, r, v, ended_chain);
  }
  // Complete a repair that deferred while this node held the lock. Taken
  // without client_mutex: maybe_repair acquires client mutexes under the
  // repair mutex, never the reverse.
  bool complete = false;
  {
    RepairState& rs = *repair_[static_cast<std::size_t>(r)];
    std::lock_guard<std::mutex> guard(rs.mutex);
    complete = rs.pending;
    rs.pending = false;
  }
  if (complete) maybe_repair(r);
}

void ThreadedLockSpace::crash(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  if (node_down_[static_cast<std::size_t>(v)].exchange(true)) return;
  fault_active_.store(true, std::memory_order_seq_cst);
  telemetry::FlightRecorder::record(telemetry::FlightEvent::kCrash,
                                    /*resource=*/0, v);
  for (int r = 0; r < resource_count(); ++r) {
    ResourceNode& x = rn(r, v);
    bool was_held = false;
    {
      std::lock_guard<std::mutex> guard(x.client_mutex);
      was_held = x.held;
      x.held = false;
      x.granted = false;
      x.requested = false;
      x.chain_len = 0;
      x.grant_via_chain = false;
    }
    // The victim died inside its CS: the occupancy witness retires with it
    // (the repair will re-mint the token among the survivors).
    if (was_held) occupancy_[static_cast<std::size_t>(r)].fetch_sub(1);
    x.client_cv.notify_all();  // v's waiters wake and see the dead node
  }
  for (int r = 0; r < resource_count(); ++r) {
    if (config_.recovery_enabled) {
      maybe_repair(r);
    } else if (initial_holder_[static_cast<std::size_t>(r)] == v) {
      // Token-loss detection without regeneration: the resource whose
      // home (initial token holder) died can never grant again. Surface
      // it instead of letting try_lock_for wait forever.
      mark_unavailable(r);
      wake_all(r);
    }
  }
}

void ThreadedLockSpace::recover(NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  if (!node_down_[static_cast<std::size_t>(v)].exchange(false)) return;
  telemetry::FlightRecorder::record(telemetry::FlightEvent::kRecover,
                                    /*resource=*/0, v);
  if (!config_.recovery_enabled) return;  // back up, but never reintegrated
  for (int r = 0; r < resource_count(); ++r) {
    maybe_repair(r);
  }
}

void ThreadedLockSpace::maybe_repair(ResourceId r) {
  RepairState& rs = *repair_[static_cast<std::size_t>(r)];
  std::lock_guard<std::mutex> repair_guard(rs.mutex);

  std::vector<std::uint8_t> up(static_cast<std::size_t>(config_.n) + 1, 0);
  for (NodeId v = 1; v <= config_.n; ++v) {
    up[static_cast<std::size_t>(v)] =
        node_down_[static_cast<std::size_t>(v)].load(
            std::memory_order_seq_cst)
            ? 0
            : 1;
  }
  bool current = true;
  for (NodeId v = 1; v <= config_.n; ++v) {
    current = current && (up[static_cast<std::size_t>(v)] != 0) ==
                             rs.membership.contains(v);
  }
  if (current) {
    rs.pending = false;
    return;
  }

  // The membership is stale: a regeneration is (or stays) in flight. The
  // clock starts at first observation and survives deferrals, so the
  // histogram reflects what a waiting client actually experienced.
  if (rs.repair_started_ns == 0) {
    rs.repair_started_ns = telemetry::now_ns();
    telemetry::FlightRecorder::record(telemetry::FlightEvent::kRepairStart, r);
  }

  const NodeId winner = quorum::elect_regenerator(config_.n, up);
  if (winner == kNilNode) {
    // No live majority: the resource stays degraded until enough nodes
    // come back. Waiters are told rather than left hanging.
    mark_unavailable(r);
    wake_all(r);
    return;
  }

  // Fence first: from here on no grant minted in the old world can be
  // consumed (wait_for_grant revalidates granted_epoch against this), and
  // every old-tagged strand task drops itself.
  const Epoch e = resource_epoch_[static_cast<std::size_t>(r)].load(
                      std::memory_order_acquire) +
                  1;
  resource_epoch_[static_cast<std::size_t>(r)].store(
      e, std::memory_order_seq_cst);

  // Defer while a live survivor is inside its CS; its unlock completes
  // the repair (the epoch stays bumped, so the resource quiesces).
  for (NodeId v = 1; v <= config_.n; ++v) {
    if (!up[static_cast<std::size_t>(v)]) continue;
    ResourceNode& x = rn(r, v);
    std::lock_guard<std::mutex> guard(x.client_mutex);
    if (x.held) {
      rs.pending = true;
      return;
    }
  }

  fault::Membership membership =
      fault::Membership::survivors(config_.n, up);
  proto::ClusterSpec spec;
  spec.n = membership.size();
  spec.initial_token_holder = membership.rank_of(winner);
  spec.seed = config_.seed;
  spec.epoch = e;
  const proto::Algorithm& algorithm =
      algorithms_[static_cast<std::size_t>(r)];
  if (algorithm.needs_tree) {
    // Star over the survivors rooted at the winner: diameter 2 from any
    // survivor to the regenerated token, independent of who died.
    rs.trees.push_back(std::make_unique<topology::Tree>(
        topology::Tree::star(spec.n, spec.initial_token_holder)));
    spec.tree = rs.trees.back().get();
  }
  auto fresh = algorithm.factory(spec);
  DMX_CHECK(fresh.size() == static_cast<std::size_t>(spec.n) + 1);
  auto shared =
      std::make_shared<const fault::Membership>(std::move(membership));
  rs.membership = *shared;
  if (unavailable_[static_cast<std::size_t>(r)].exchange(
          false, std::memory_order_seq_cst)) {
    const std::uint64_t since =
        unavailable_since_ns_[static_cast<std::size_t>(r)].exchange(
            0, std::memory_order_relaxed);
    if (since != 0) {
      telemetry::observe(unavail_hist_, telemetry::now_ns() - since);
    }
  }

  // Phase 1: install the fresh world. Reset tasks are unfenced — they ARE
  // the epoch transition on each strand.
  for (NodeId rank = 1; rank <= shared->size(); ++rank) {
    ResourceNode& x = rn(r, shared->original_of(rank));
    x.strand.post([&x, e, shared,
                   fresh_node = std::move(
                       fresh[static_cast<std::size_t>(rank)])]() mutable {
      x.node = std::move(fresh_node);
      x.epoch = e;
      x.membership = shared;
      x.request_outstanding = false;
      x.publish_remote_pending();
    });
  }
  // Phase 2: only after EVERY reset is queued, re-issue requests for
  // parked waiters — any message a re-request triggers is then posted
  // behind the destination's reset in its strand FIFO, never ahead of it.
  for (NodeId rank = 1; rank <= shared->size(); ++rank) {
    ResourceNode& x = rn(r, shared->original_of(rank));
    x.strand.post([&x, e] { x.rerequest(e); });
  }
  telemetry::observe(repair_hist_,
                     telemetry::now_ns() - rs.repair_started_ns);
  rs.repair_started_ns = 0;
  telemetry::FlightRecorder::record(telemetry::FlightEvent::kRepairDone, r,
                                    winner, static_cast<std::int64_t>(e));
}

void ThreadedLockSpace::mark_unavailable(ResourceId r) {
  if (!unavailable_[static_cast<std::size_t>(r)].exchange(
          true, std::memory_order_seq_cst)) {
    unavailable_since_ns_[static_cast<std::size_t>(r)].store(
        telemetry::now_ns(), std::memory_order_relaxed);
    telemetry::FlightRecorder::record(
        telemetry::FlightEvent::kResourceUnavailable, r);
  }
}

void ThreadedLockSpace::wake_all(ResourceId r) {
  for (NodeId v = 1; v <= config_.n; ++v) {
    ResourceNode& x = rn(r, v);
    // Lock/unlock pairs with each waiter's predicate check so the wake
    // cannot slip between its check and its wait.
    { std::lock_guard<std::mutex> guard(x.client_mutex); }
    x.client_cv.notify_all();
  }
}

std::uint64_t ThreadedLockSpace::total_entries() const {
  std::uint64_t sum = 0;
  for (int r = 0; r < resource_count(); ++r) {
    sum += entries_[static_cast<std::size_t>(r)].load(
        std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t ThreadedLockSpace::entries(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return entries_[static_cast<std::size_t>(r)].load(
      std::memory_order_relaxed);
}

int ThreadedLockSpace::local_waiters(ResourceId r, NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  ResourceNode& x = rn(r, v);
  std::lock_guard<std::mutex> guard(x.client_mutex);
  return x.waiting;
}

std::optional<std::string> ThreadedLockSpace::first_error() const {
  std::lock_guard<std::mutex> guard(error_mutex_);
  return first_error_;
}

telemetry::MetricsSnapshot ThreadedLockSpace::telemetry_snapshot() const {
  telemetry::MetricsSnapshot snap = telemetry::Registry::global().snapshot();
  const exec::ExecutorStats stats = executor_.stats();
  snap.set_counter("exec.tasks_executed", stats.tasks_executed);
  snap.set_counter("exec.steals", stats.steals);
  snap.set_counter("exec.parks", stats.parks);
  snap.set_counter("exec.injector_polls", stats.injector_polls);
  snap.set_counter("service.messages_sent", messages_sent());
  snap.set_counter("client.chained_grants", chained_grants());
  snap.set_counter("client.lease_yields", lease_yields());
  // The hot path records wait time on the per-resource lane only; fold
  // the lanes into the process-wide view here, in cold code.
  snap.roll_up("client.wait_ns");
  return snap;
}

void ThreadedLockSpace::route(ResourceId r, NodeId from, NodeId to,
                              net::MessagePtr message, Epoch tag) {
  DMX_CHECK(to >= 1 && to <= config_.n && to != from);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  // Token forwards are the paper's central cost; flight-record them so a
  // failure dump shows the token's path (integer kind compare, no string).
  for (const net::MessageKind kind :
       resource_telemetry_[static_cast<std::size_t>(r)].token_kinds) {
    if (message->kind_id() == kind) {
      telemetry::FlightRecorder::record(telemetry::FlightEvent::kTokenForward,
                                        r, to, /*arg=*/from);
      break;
    }
  }
  // The network drops traffic to and from dead nodes (sends still count,
  // as in the simulated substrate).
  if (node_down_[static_cast<std::size_t>(from)].load(
          std::memory_order_relaxed) ||
      node_down_[static_cast<std::size_t>(to)].load(
          std::memory_order_relaxed)) {
    return;
  }
  ResourceNode& x = rn(r, to);
  x.strand.post([&x, from, tag, msg = std::move(message)]() mutable {
    x.deliver(tag, from, std::move(msg));
  });
}

void ThreadedLockSpace::record_error(const std::string& what) {
  std::lock_guard<std::mutex> guard(error_mutex_);
  if (!first_error_.has_value()) first_error_ = what;
}

void ThreadedLockSpace::fail(const std::string& what) {
  record_error(what);
  failed_.store(true, std::memory_order_seq_cst);
  for (auto& node : nodes_) {
    // Lock/unlock pairs with each waiter's predicate check so the wake
    // cannot slip between its check and its wait.
    { std::lock_guard<std::mutex> guard(node->client_mutex); }
    node->client_cv.notify_all();
  }
}

}  // namespace dmx::service
