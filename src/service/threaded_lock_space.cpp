#include "service/threaded_lock_space.hpp"

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dmx::service {

/// One node: a mailbox, an event-loop thread, and one protocol state
/// machine PER RESOURCE. The loop is the paper's "local mutual exclusion"
/// generalized: every handler of this node — for any resource — runs on
/// this thread, one at a time, so per-resource instances need no locking
/// among themselves.
class ThreadedLockSpace::NodeActor {
 public:
  NodeActor(ThreadedLockSpace& space, NodeId self, int n, int resources,
            unsigned jitter_us, std::uint64_t seed)
      : space_(space), self_(self), n_(n), jitter_us_(jitter_us), rng_(seed) {
    nodes_.resize(static_cast<std::size_t>(resources));
    contexts_.reserve(static_cast<std::size_t>(resources));
    for (ResourceId r = 0; r < resources; ++r) {
      contexts_.push_back(std::make_unique<ResourceContext>(*this, r));
    }
    client_.resize(static_cast<std::size_t>(resources));
  }

  ~NodeActor() { stop_and_join(); }

  /// Installs resource `r`'s protocol instance; before start() only.
  void adopt(ResourceId r, std::unique_ptr<proto::MutexNode> node) {
    nodes_[static_cast<std::size_t>(r)] = std::move(node);
  }

  void start() {
    thread_ = std::thread([this] { run_loop(); });
  }

  void stop_and_join() {
    {
      std::lock_guard<std::mutex> guard(mailbox_mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    mailbox_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void post_message(ResourceId r, NodeId from, net::MessagePtr message) {
    post(Item{ItemKind::kDeliver, r, from, std::move(message)});
  }

  // --- Blocking client API (application threads) -------------------------

  void lock(ResourceId r) {
    std::unique_lock<std::mutex> guard(client_mutex_);
    ClientState& cs = client_[static_cast<std::size_t>(r)];
    ++cs.waiting;
    // One protocol request at a time per (resource, node): the first local
    // waiter requests; later waiters ride local hand-off (unlock posts the
    // next request once the current holder leaves).
    if (!cs.requested && !cs.held) {
      cs.requested = true;
      post(Item{ItemKind::kRequest, r, kNilNode, nullptr});
    }
    client_cv_.wait(guard, [&cs, this] { return cs.granted || failed_; });
    if (failed_ && !cs.granted) {
      // The loop thread died on a protocol error; waiting for a grant
      // would hang forever. Surface the failure to the caller (details in
      // ThreadedLockSpace::first_error()).
      --cs.waiting;
      DMX_CHECK_MSG(false, "lock service node " << self_
                               << " failed; see first_error()");
    }
    cs.granted = false;
    cs.requested = false;
    --cs.waiting;
    cs.held = true;
  }

  /// `before_release` runs under client_mutex_ after the held-check passes
  /// and before the release item is posted — the only window where the
  /// space can retire its occupancy witness without racing the next grant.
  void unlock(ResourceId r, const std::function<void()>& before_release) {
    std::lock_guard<std::mutex> guard(client_mutex_);
    ClientState& cs = client_[static_cast<std::size_t>(r)];
    DMX_CHECK_MSG(cs.held, "unlock of resource " << r << " on node " << self_
                                                 << " which does not hold it");
    cs.held = false;
    before_release();
    // Mailbox FIFO orders the release ahead of the follow-up request, and
    // posting under client_mutex_ keeps a racing lock() on another thread
    // from slipping its request in between.
    post(Item{ItemKind::kRelease, r, kNilNode, nullptr});
    if (cs.waiting > 0 && !cs.requested) {
      cs.requested = true;
      post(Item{ItemKind::kRequest, r, kNilNode, nullptr});
    }
  }

 private:
  friend class ThreadedLockSpace;

  /// proto::Context for one (node, resource) pair; used only from this
  /// actor's loop thread.
  class ResourceContext final : public proto::Context {
   public:
    ResourceContext(NodeActor& actor, ResourceId r)
        : actor_(actor), resource_(r) {}
    NodeId self() const override { return actor_.self_; }
    int cluster_size() const override { return actor_.n_; }
    void send(NodeId to, net::MessagePtr message) override {
      actor_.space_.route(resource_, actor_.self_, to, std::move(message));
    }
    void grant() override { actor_.on_grant(resource_); }

   private:
    NodeActor& actor_;
    ResourceId resource_;
  };

  enum class ItemKind { kDeliver, kRequest, kRelease };
  struct Item {
    ItemKind kind;
    ResourceId resource;
    NodeId from;
    net::MessagePtr message;
  };

  /// Local waiters and grant hand-off for one resource; client_mutex_
  /// guards every field.
  struct ClientState {
    int waiting = 0;
    bool requested = false;
    bool granted = false;
    bool held = false;
  };

  void post(Item item) {
    {
      std::lock_guard<std::mutex> guard(mailbox_mutex_);
      mailbox_.push_back(std::move(item));
    }
    mailbox_cv_.notify_all();
  }

  void on_grant(ResourceId r) {
    {
      std::lock_guard<std::mutex> guard(client_mutex_);
      client_[static_cast<std::size_t>(r)].granted = true;
    }
    client_cv_.notify_all();
  }

  void run_loop() {
    for (;;) {
      Item item{ItemKind::kDeliver, 0, kNilNode, nullptr};
      {
        std::unique_lock<std::mutex> guard(mailbox_mutex_);
        mailbox_cv_.wait(guard,
                         [this] { return stopping_ || !mailbox_.empty(); });
        if (stopping_ && mailbox_.empty()) return;
        item = std::move(mailbox_.front());
        mailbox_.pop_front();
      }
      proto::MutexNode& node =
          *nodes_[static_cast<std::size_t>(item.resource)];
      proto::Context& ctx =
          *contexts_[static_cast<std::size_t>(item.resource)];
      try {
        switch (item.kind) {
          case ItemKind::kDeliver:
            maybe_jitter();
            node.on_message(ctx, item.from, *item.message);
            break;
          case ItemKind::kRequest:
            node.request_cs(ctx);
            break;
          case ItemKind::kRelease:
            node.release_cs(ctx);
            break;
        }
      } catch (const std::exception& e) {
        space_.record_error(e.what());
        // Unblock application threads parked in lock(): no grant is ever
        // coming from this node again.
        {
          std::lock_guard<std::mutex> guard(client_mutex_);
          failed_ = true;
        }
        client_cv_.notify_all();
        return;
      }
    }
  }

  void maybe_jitter() {
    if (jitter_us_ == 0) return;
    const auto us = static_cast<unsigned>(
        rng_.uniform_int(0, static_cast<std::int64_t>(jitter_us_)));
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }

  ThreadedLockSpace& space_;
  NodeId self_;
  int n_;
  unsigned jitter_us_;
  Rng rng_;  // only touched from the loop thread
  std::vector<std::unique_ptr<proto::MutexNode>> nodes_;     // by ResourceId
  std::vector<std::unique_ptr<ResourceContext>> contexts_;   // by ResourceId

  std::thread thread_;
  std::mutex mailbox_mutex_;
  std::condition_variable mailbox_cv_;
  std::deque<Item> mailbox_;
  bool stopping_ = false;

  std::mutex client_mutex_;
  std::condition_variable client_cv_;
  std::vector<ClientState> client_;  // by ResourceId
  bool failed_ = false;              // loop thread died on a protocol error
};

ThreadedLockSpace::ThreadedLockSpace(ThreadedLockSpaceConfig config)
    : config_(std::move(config)),
      directory_(config_.n, config_.directory_vnodes, config_.seed) {
  DMX_CHECK(config_.n >= 1);
  DMX_CHECK_MSG(!config_.resources.empty(),
                "a ThreadedLockSpace needs at least one resource");
  if (config_.algorithm.needs_tree && !config_.tree.has_value()) {
    config_.tree = topology::Tree::star(config_.n, 1);
  }

  const int m = static_cast<int>(config_.resources.size());
  occupancy_ = std::make_unique<std::atomic<int>[]>(
      static_cast<std::size_t>(m));
  entries_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    occupancy_[static_cast<std::size_t>(r)].store(0);
    entries_[static_cast<std::size_t>(r)].store(0);
  }

  actors_.resize(static_cast<std::size_t>(config_.n) + 1);
  Rng seeder(config_.seed);
  for (NodeId v = 1; v <= config_.n; ++v) {
    actors_[static_cast<std::size_t>(v)] = std::make_unique<NodeActor>(
        *this, v, config_.n, m, config_.jitter_us, seeder.next());
  }

  // Instantiate each resource's protocol nodes with the token parked at
  // the directory's home node, then deal node v of resource r to actor v.
  for (const std::string& name : config_.resources) {
    const ResourceId r = directory_.open(name);
    proto::ClusterSpec spec;
    spec.n = config_.n;
    spec.initial_token_holder = config_.algorithm.name == "Singhal"
                                    ? 1
                                    : directory_.home_node(r);
    spec.tree = config_.tree.has_value() ? &*config_.tree : nullptr;
    spec.seed = config_.seed;
    auto nodes = config_.algorithm.factory(spec);
    DMX_CHECK(nodes.size() == static_cast<std::size_t>(config_.n) + 1);
    for (NodeId v = 1; v <= config_.n; ++v) {
      actors_[static_cast<std::size_t>(v)]->adopt(
          r, std::move(nodes[static_cast<std::size_t>(v)]));
    }
  }
  for (NodeId v = 1; v <= config_.n; ++v) {
    actors_[static_cast<std::size_t>(v)]->start();
  }
}

ThreadedLockSpace::~ThreadedLockSpace() {
  for (auto& actor : actors_) {
    if (actor) actor->stop_and_join();
  }
}

void ThreadedLockSpace::lock(ResourceId r, NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  actors_[static_cast<std::size_t>(v)]->lock(r);
  // Exclusivity witness: the grant we just consumed must be the only
  // occupancy of this resource anywhere in the space.
  const int prev = occupancy_[static_cast<std::size_t>(r)].fetch_add(1);
  if (prev != 0) {
    record_error("mutual exclusion violated on resource " + name(r) +
                 ": node " + std::to_string(v) +
                 " entered while occupancy was " + std::to_string(prev));
  }
  entries_[static_cast<std::size_t>(r)].fetch_add(1,
                                                  std::memory_order_relaxed);
}

void ThreadedLockSpace::unlock(ResourceId r, NodeId v) {
  DMX_CHECK(v >= 1 && v <= config_.n);
  DMX_CHECK(r >= 0 && r < resource_count());
  // The witness retires only once the actor has validated the caller
  // actually holds the resource (a bogus unlock must not drive the
  // counter negative), yet still before the release reaches the protocol
  // — after that the next grant may already be incrementing it.
  actors_[static_cast<std::size_t>(v)]->unlock(r, [this, r] {
    occupancy_[static_cast<std::size_t>(r)].fetch_sub(1);
  });
}

std::uint64_t ThreadedLockSpace::total_entries() const {
  std::uint64_t sum = 0;
  for (int r = 0; r < resource_count(); ++r) {
    sum += entries_[static_cast<std::size_t>(r)].load(
        std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t ThreadedLockSpace::entries(ResourceId r) const {
  DMX_CHECK(r >= 0 && r < resource_count());
  return entries_[static_cast<std::size_t>(r)].load(
      std::memory_order_relaxed);
}

std::optional<std::string> ThreadedLockSpace::first_error() const {
  std::lock_guard<std::mutex> guard(error_mutex_);
  return first_error_;
}

void ThreadedLockSpace::route(ResourceId r, NodeId from, NodeId to,
                              net::MessagePtr message) {
  DMX_CHECK(to >= 1 && to <= config_.n && to != from);
  messages_sent_.fetch_add(1, std::memory_order_relaxed);
  actors_[static_cast<std::size_t>(to)]->post_message(r, from,
                                                      std::move(message));
}

void ThreadedLockSpace::record_error(const std::string& what) {
  std::lock_guard<std::mutex> guard(error_mutex_);
  if (!first_error_.has_value()) first_error_ = what;
}

}  // namespace dmx::service
