// Logical topologies for path-forwarding algorithms (Neilsen, Raymond).
//
// The paper requires the logical structure to be acyclic even ignoring
// edge directions and to keep every node on a path to the single sink —
// i.e. the undirected skeleton is a tree. This module owns that skeleton:
// generators for the topologies Chapter 6 analyses (straight line = worst
// case, centralized star = best case, plus k-ary/radiating-star/random for
// sweeps), graph metrics (diameter, eccentricity, paths) and the initial
// NEXT-pointer orientation toward the token holder (Figure 5's result).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace dmx::topology {

class Tree {
 public:
  /// Builds a tree on nodes 1..n from an explicit edge list. Validates
  /// connectivity and acyclicity (throws via DMX_CHECK otherwise).
  static Tree from_edges(int n,
                         const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Straight line 1-2-3-...-n (the paper's worst topology, diameter n-1).
  static Tree line(int n);

  /// Centralized topology: `center` connected to every other node (the
  /// paper's best topology, Figure 8; diameter 2).
  static Tree star(int n, NodeId center = 1);

  /// Raymond's "radiating star": `arms` chains of (near-)equal length
  /// radiating from node 1.
  static Tree radiating_star(int n, int arms);

  /// Balanced k-ary tree rooted at node 1 (children of i are k(i-1)+2 ...).
  static Tree kary(int n, int k);

  /// Uniform random labelled tree via a random Prüfer sequence.
  static Tree random_tree(int n, std::uint64_t seed);

  int size() const { return n_; }

  /// Neighbours of `v` in ascending id order.
  const std::vector<NodeId>& neighbors(NodeId v) const;

  int degree(NodeId v) const { return static_cast<int>(neighbors(v).size()); }

  /// Undirected edge list (each edge once, smaller id first).
  const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edges_;
  }

  /// Hop distance between two nodes.
  int distance(NodeId from, NodeId to) const;

  /// Unique path from `from` to `to`, inclusive of both endpoints.
  std::vector<NodeId> path(NodeId from, NodeId to) const;

  /// Longest distance from `v` to any node.
  int eccentricity(NodeId v) const;

  /// Length of the longest path in the tree (the paper's D).
  int diameter() const;

  /// A node with minimum eccentricity (ties broken toward smaller id).
  NodeId center() const;

  /// Initial NEXT orientation: for every node the neighbour on the path
  /// toward `root`; root itself maps to kNilNode. Index 0 is unused.
  /// This is exactly the state the INIT procedure (Figure 5) establishes.
  std::vector<NodeId> next_pointers_toward(NodeId root) const;

 private:
  Tree(int n, std::vector<std::pair<NodeId, NodeId>> edges,
       std::vector<std::vector<NodeId>> adjacency)
      : n_(n), edges_(std::move(edges)), adjacency_(std::move(adjacency)) {}

  /// BFS parent array rooted at `root` (parent[root] = kNilNode).
  std::vector<NodeId> bfs_parents(NodeId root) const;

  int n_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::vector<NodeId>> adjacency_;  // index 1..n
};

}  // namespace dmx::topology
