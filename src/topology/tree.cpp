#include "topology/tree.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace dmx::topology {

Tree Tree::from_edges(int n,
                      const std::vector<std::pair<NodeId, NodeId>>& edges) {
  DMX_CHECK_MSG(n >= 1, "tree needs at least one node");
  DMX_CHECK_MSG(static_cast<int>(edges.size()) == n - 1,
                "a tree on " << n << " nodes needs " << n - 1 << " edges, got "
                             << edges.size());
  std::vector<std::vector<NodeId>> adjacency(static_cast<std::size_t>(n) + 1);
  std::vector<std::pair<NodeId, NodeId>> normalized;
  normalized.reserve(edges.size());
  for (auto [a, b] : edges) {
    DMX_CHECK_MSG(a >= 1 && a <= n && b >= 1 && b <= n && a != b,
                  "bad edge (" << a << ", " << b << ")");
    adjacency[static_cast<std::size_t>(a)].push_back(b);
    adjacency[static_cast<std::size_t>(b)].push_back(a);
    normalized.emplace_back(std::min(a, b), std::max(a, b));
  }
  for (auto& list : adjacency) {
    std::sort(list.begin(), list.end());
    DMX_CHECK_MSG(std::adjacent_find(list.begin(), list.end()) == list.end(),
                  "duplicate edge");
  }
  std::sort(normalized.begin(), normalized.end());

  // n-1 distinct edges + connected => tree (acyclic follows).
  std::vector<bool> seen(static_cast<std::size_t>(n) + 1, false);
  std::deque<NodeId> frontier{1};
  seen[1] = true;
  int reached = 1;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (NodeId w : adjacency[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        ++reached;
        frontier.push_back(w);
      }
    }
  }
  DMX_CHECK_MSG(reached == n, "edge list is not connected: reached "
                                  << reached << " of " << n);
  return Tree(n, std::move(normalized), std::move(adjacency));
}

Tree Tree::line(int n) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (NodeId i = 1; i < n; ++i) {
    edges.emplace_back(i, i + 1);
  }
  return from_edges(n, edges);
}

Tree Tree::star(int n, NodeId center) {
  DMX_CHECK(center >= 1 && center <= n);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (NodeId i = 1; i <= n; ++i) {
    if (i != center) edges.emplace_back(center, i);
  }
  return from_edges(n, edges);
}

Tree Tree::radiating_star(int n, int arms) {
  DMX_CHECK(n >= 1);
  DMX_CHECK(arms >= 1);
  // Node 1 is the hub; remaining nodes are dealt round-robin onto arms,
  // each arm growing as a chain.
  std::vector<std::pair<NodeId, NodeId>> edges;
  std::vector<NodeId> arm_tip(static_cast<std::size_t>(arms), 1);
  int arm = 0;
  for (NodeId v = 2; v <= n; ++v) {
    edges.emplace_back(arm_tip[static_cast<std::size_t>(arm)], v);
    arm_tip[static_cast<std::size_t>(arm)] = v;
    arm = (arm + 1) % arms;
  }
  return from_edges(n, edges);
}

Tree Tree::kary(int n, int k) {
  DMX_CHECK(k >= 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId v = 2; v <= n; ++v) {
    const NodeId parent = static_cast<NodeId>((v - 2) / k + 1);
    edges.emplace_back(parent, v);
  }
  return from_edges(n, edges);
}

Tree Tree::random_tree(int n, std::uint64_t seed) {
  DMX_CHECK(n >= 1);
  if (n == 1) return from_edges(1, {});
  if (n == 2) return from_edges(2, {{1, 2}});
  // Decode a random Prüfer sequence of length n-2.
  Rng rng(seed);
  std::vector<NodeId> prufer(static_cast<std::size_t>(n - 2));
  for (auto& p : prufer) {
    p = static_cast<NodeId>(rng.uniform_int(1, n));
  }
  std::vector<int> remaining_degree(static_cast<std::size_t>(n) + 1, 1);
  for (NodeId p : prufer) {
    remaining_degree[static_cast<std::size_t>(p)] += 1;
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(static_cast<std::size_t>(n - 1));
  // Min-leaf decoding with an explicit sorted scan; n is small in tests.
  std::vector<bool> used(static_cast<std::size_t>(n) + 1, false);
  for (NodeId p : prufer) {
    for (NodeId leaf = 1; leaf <= n; ++leaf) {
      if (!used[static_cast<std::size_t>(leaf)] &&
          remaining_degree[static_cast<std::size_t>(leaf)] == 1) {
        edges.emplace_back(leaf, p);
        used[static_cast<std::size_t>(leaf)] = true;
        remaining_degree[static_cast<std::size_t>(p)] -= 1;
        break;
      }
    }
  }
  std::vector<NodeId> last;
  for (NodeId v = 1; v <= n; ++v) {
    if (!used[static_cast<std::size_t>(v)] &&
        remaining_degree[static_cast<std::size_t>(v)] >= 1) {
      last.push_back(v);
    }
  }
  DMX_CHECK(last.size() == 2);
  edges.emplace_back(last[0], last[1]);
  return from_edges(n, edges);
}

const std::vector<NodeId>& Tree::neighbors(NodeId v) const {
  DMX_CHECK(v >= 1 && v <= n_);
  return adjacency_[static_cast<std::size_t>(v)];
}

std::vector<NodeId> Tree::bfs_parents(NodeId root) const {
  DMX_CHECK(root >= 1 && root <= n_);
  std::vector<NodeId> parent(static_cast<std::size_t>(n_) + 1, kNilNode);
  std::vector<bool> seen(static_cast<std::size_t>(n_) + 1, false);
  std::deque<NodeId> frontier{root};
  seen[static_cast<std::size_t>(root)] = true;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (NodeId w : adjacency_[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        parent[static_cast<std::size_t>(w)] = v;
        frontier.push_back(w);
      }
    }
  }
  return parent;
}

int Tree::distance(NodeId from, NodeId to) const {
  return static_cast<int>(path(from, to).size()) - 1;
}

std::vector<NodeId> Tree::path(NodeId from, NodeId to) const {
  DMX_CHECK(from >= 1 && from <= n_);
  DMX_CHECK(to >= 1 && to <= n_);
  const std::vector<NodeId> parent = bfs_parents(from);
  std::vector<NodeId> rev;
  for (NodeId v = to; v != kNilNode; v = parent[static_cast<std::size_t>(v)]) {
    rev.push_back(v);
    if (v == from) break;
  }
  DMX_CHECK(rev.back() == from);
  std::reverse(rev.begin(), rev.end());
  return rev;
}

int Tree::eccentricity(NodeId v) const {
  const std::vector<NodeId> parent = bfs_parents(v);
  std::vector<int> depth(static_cast<std::size_t>(n_) + 1, 0);
  int worst = 0;
  // Parents are BFS order-safe: compute depth by walking up (n is small).
  for (NodeId u = 1; u <= n_; ++u) {
    int d = 0;
    for (NodeId w = u; w != v; w = parent[static_cast<std::size_t>(w)]) {
      ++d;
    }
    depth[static_cast<std::size_t>(u)] = d;
    worst = std::max(worst, d);
  }
  return worst;
}

int Tree::diameter() const {
  // Double BFS: farthest node from 1, then farthest from that.
  int best = 0;
  NodeId far1 = 1;
  for (NodeId v = 1; v <= n_; ++v) {
    const int d = distance(1, v);
    if (d > best) {
      best = d;
      far1 = v;
    }
  }
  return eccentricity(far1);
}

NodeId Tree::center() const {
  NodeId best = 1;
  int best_ecc = eccentricity(1);
  for (NodeId v = 2; v <= n_; ++v) {
    const int ecc = eccentricity(v);
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = v;
    }
  }
  return best;
}

std::vector<NodeId> Tree::next_pointers_toward(NodeId root) const {
  return bfs_parents(root);
}

}  // namespace dmx::topology
