// Quorum (committee) construction for Maekawa's algorithm.
//
// Maekawa predefines for each node I a committee S_I containing I such
// that any two committees intersect; the optimum corresponds to a finite
// projective plane with |S_I| = K where N = K(K-1)+1. We provide:
//  * projective-plane quorums via perfect difference sets (exact sqrt-N
//    committees when N = q^2+q+1 and a difference set is found);
//  * grid quorums (row + column of a ceil(sqrt N) grid) for arbitrary N.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"

namespace dmx::quorum {

using QuorumSet = std::vector<std::vector<NodeId>>;  // index 1..n used

/// Grid quorums for any n >= 1: node v's committee is its full row plus
/// its column in a ceil(sqrt n)-wide grid (including v itself). Committees
/// pairwise intersect; size is O(sqrt n).
QuorumSet grid_quorums(int n);

/// Searches for a perfect difference set {d_0=0, d_1, ..., d_{k-1}} mod n
/// with k(k-1)+1 == n; committee of node v is {(v-1+d) mod n + 1}. Returns
/// nullopt if n has the wrong form or the bounded backtracking search
/// fails (practical for n <= ~60: 7, 13, 21, 31, 57).
std::optional<QuorumSet> projective_plane_quorums(int n);

/// Best available construction: projective plane when possible, grid
/// otherwise.
QuorumSet maekawa_quorums(int n);

/// Validation: every committee contains its owner, and all pairs
/// intersect.
bool quorums_valid(const QuorumSet& quorums);

}  // namespace dmx::quorum
