#include "quorum/election.hpp"

#include "common/check.hpp"
#include "quorum/quorum.hpp"

namespace dmx::quorum {

NodeId elect_regenerator(int n, const std::vector<std::uint8_t>& up) {
  DMX_CHECK(n >= 1);
  DMX_CHECK(static_cast<int>(up.size()) >= n + 1);

  int alive = 0;
  for (NodeId v = 1; v <= n; ++v) {
    if (up[static_cast<std::size_t>(v)]) ++alive;
  }
  if (alive * 2 <= n) return kNilNode;

  const QuorumSet quorums = maekawa_quorums(n);

  // Each live node consents to the smallest live candidate. A candidate
  // wins iff every live member of its committee consents to it, i.e. no
  // smaller live node exists — run the check smallest-first and take the
  // first winner.
  for (NodeId candidate = 1; candidate <= n; ++candidate) {
    if (!up[static_cast<std::size_t>(candidate)]) continue;
    bool consented = true;
    for (NodeId member : quorums[static_cast<std::size_t>(candidate)]) {
      if (!up[static_cast<std::size_t>(member)]) continue;  // dead: no vote
      // `member` consents to its smallest known live candidate; since we
      // scan candidates in ascending order, the current candidate is the
      // smallest live node, so every live member consents.
      NodeId smallest = kNilNode;
      for (NodeId v = 1; v <= n; ++v) {
        if (up[static_cast<std::size_t>(v)]) {
          smallest = v;
          break;
        }
      }
      if (smallest != candidate) {
        consented = false;
        break;
      }
    }
    if (consented) return candidate;
  }
  return kNilNode;
}

}  // namespace dmx::quorum
