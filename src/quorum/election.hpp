// Quorum-consent election of the token regenerator.
//
// After token loss the survivors must agree on exactly one node to
// reconstruct the token — two regenerators would mint two tokens and void
// the safety property the service exists for. We reuse Maekawa's committee
// construction (quorum.hpp): a candidate wins by collecting consent from
// every live member of its committee, and each node consents only to the
// smallest live candidate it knows of. Because committees pairwise
// intersect, two simultaneous winners would need disjoint consenting sets,
// which is impossible — so the winner is unique, and with the
// lowest-candidate consent rule it is deterministically the smallest live
// node. The deterministic fold below computes that fixpoint directly;
// both substrates call it at repair time so sim, threaded, and explorer
// repairs all pick the same regenerator for the same survivor set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dmx::quorum {

/// Returns the unique election winner among live nodes of an n-node
/// system (up[v] != 0 means node v is alive), or kNilNode when no winner
/// exists. Regeneration additionally requires a strict majority of the
/// FULL node set alive (alive * 2 > n): a minority partition must never
/// mint a token the majority side could also regenerate.
NodeId elect_regenerator(int n, const std::vector<std::uint8_t>& up);

}  // namespace dmx::quorum
