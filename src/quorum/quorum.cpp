#include "quorum/quorum.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace dmx::quorum {

QuorumSet grid_quorums(int n) {
  DMX_CHECK(n >= 1);
  const int width = static_cast<int>(std::ceil(std::sqrt(n)));
  QuorumSet quorums(static_cast<std::size_t>(n) + 1);
  for (NodeId v = 1; v <= n; ++v) {
    const int idx = v - 1;
    const int row = idx / width;
    const int col = idx % width;
    std::vector<NodeId>& q = quorums[static_cast<std::size_t>(v)];
    // Full row.
    for (int c = 0; c < width; ++c) {
      const int cell = row * width + c;
      if (cell < n) q.push_back(static_cast<NodeId>(cell + 1));
    }
    // Full column (skipping the row cell already added).
    for (int r = 0; r * width + col < n; ++r) {
      if (r == row) continue;
      q.push_back(static_cast<NodeId>(r * width + col + 1));
    }
    std::sort(q.begin(), q.end());
  }
  return quorums;
}

namespace {

/// Backtracking search for a perfect difference set of size k mod n:
/// all pairwise differences d_i - d_j (i != j) distinct mod n.
bool search_difference_set(int n, int k, std::vector<int>& chosen,
                           std::vector<bool>& used_diff, long& budget) {
  if (static_cast<int>(chosen.size()) == k) return true;
  const int last = chosen.back();
  for (int candidate = last + 1; candidate < n; ++candidate) {
    if (--budget <= 0) return false;
    // Check all differences against chosen elements — including
    // collisions *among* the candidate's own differences (e.g.
    // candidate - c1 == c2 - candidate mod n), which the global bitmap
    // alone would miss.
    bool ok = true;
    std::vector<int> new_diffs;
    new_diffs.reserve(2 * chosen.size());
    for (int c : chosen) {
      const int d1 = (candidate - c + n) % n;
      const int d2 = (c - candidate + n) % n;
      if (used_diff[static_cast<std::size_t>(d1)] ||
          used_diff[static_cast<std::size_t>(d2)] || d1 == d2 ||
          std::find(new_diffs.begin(), new_diffs.end(), d1) !=
              new_diffs.end() ||
          std::find(new_diffs.begin(), new_diffs.end(), d2) !=
              new_diffs.end()) {
        ok = false;
        break;
      }
      new_diffs.push_back(d1);
      new_diffs.push_back(d2);
    }
    if (!ok) continue;
    for (int c : chosen) {
      used_diff[static_cast<std::size_t>((candidate - c + n) % n)] = true;
      used_diff[static_cast<std::size_t>((c - candidate + n) % n)] = true;
    }
    chosen.push_back(candidate);
    if (search_difference_set(n, k, chosen, used_diff, budget)) return true;
    chosen.pop_back();
    for (int c : chosen) {
      used_diff[static_cast<std::size_t>((candidate - c + n) % n)] = false;
      used_diff[static_cast<std::size_t>((c - candidate + n) % n)] = false;
    }
  }
  return false;
}

}  // namespace

std::optional<QuorumSet> projective_plane_quorums(int n) {
  if (n < 3) return std::nullopt;
  // n must be k(k-1)+1 for integer k.
  const int k = static_cast<int>((1.0 + std::sqrt(4.0 * n - 3.0)) / 2.0);
  if (k * (k - 1) + 1 != n) return std::nullopt;

  std::vector<int> chosen{0};
  std::vector<bool> used_diff(static_cast<std::size_t>(n), false);
  long budget = 5'000'000;  // bounded search; plenty for n <= 57
  if (!search_difference_set(n, k, chosen, used_diff, budget)) {
    return std::nullopt;
  }
  QuorumSet quorums(static_cast<std::size_t>(n) + 1);
  for (NodeId v = 1; v <= n; ++v) {
    std::vector<NodeId>& q = quorums[static_cast<std::size_t>(v)];
    for (int d : chosen) {
      q.push_back(static_cast<NodeId>((v - 1 + d) % n + 1));
    }
    std::sort(q.begin(), q.end());
  }
  return quorums;
}

QuorumSet maekawa_quorums(int n) {
  if (auto fpp = projective_plane_quorums(n)) {
    return *std::move(fpp);
  }
  return grid_quorums(n);
}

bool quorums_valid(const QuorumSet& quorums) {
  const int n = static_cast<int>(quorums.size()) - 1;
  for (NodeId v = 1; v <= n; ++v) {
    const auto& q = quorums[static_cast<std::size_t>(v)];
    if (!std::binary_search(q.begin(), q.end(), v)) return false;
  }
  for (NodeId a = 1; a <= n; ++a) {
    for (NodeId b = a + 1; b <= n; ++b) {
      const auto& qa = quorums[static_cast<std::size_t>(a)];
      const auto& qb = quorums[static_cast<std::size_t>(b)];
      std::vector<NodeId> common;
      std::set_intersection(qa.begin(), qa.end(), qb.begin(), qb.end(),
                            std::back_inserter(common));
      if (common.empty()) return false;
    }
  }
  return true;
}

}  // namespace dmx::quorum
