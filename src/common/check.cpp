#include "common/check.hpp"

namespace dmx::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream oss;
  oss << "DMX_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw std::logic_error(oss.str());
}

}  // namespace dmx::detail
