#include "common/rng.hpp"

#include <cmath>

namespace dmx {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DMX_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range requested
    return static_cast<std::int64_t>(next());
  }
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~range + 1) % range;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) {
      return lo + static_cast<std::int64_t>(r % range);
    }
  }
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  DMX_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  DMX_CHECK(mean > 0.0);
  // Inverse CDF; guard against log(0).
  double u = uniform01();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log1p(-u);
}

bool Rng::chance(double p) {
  DMX_CHECK(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

Rng Rng::split() {
  return Rng(next() ^ 0xa0761d6478bd642fULL);
}

}  // namespace dmx
