// Deterministic pseudo-random number generation.
//
// We implement xoshiro256** seeded via SplitMix64 rather than relying on
// std::mt19937 + std:: distributions, because the standard distributions
// are not guaranteed to produce identical streams across standard-library
// implementations. Experiment reproducibility (same seed -> same trace on
// any platform) is a hard requirement for the benches in EXPERIMENTS.md.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.hpp"

namespace dmx {

/// xoshiro256** PRNG with SplitMix64 seeding. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a single 64-bit seed.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit output.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// Exponentially distributed real with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p);

  /// Forks an independent generator; deterministic given this one's state.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dmx
